// Package scrubjay is a from-scratch Go implementation of ScrubJay
// (Giménez et al., SC 2017): a framework for analyzing big, heterogeneous
// HPC performance data by decoupling data collection, representation, and
// semantics.
//
// The public surface lives in the internal packages (this is a
// reproduction repository, consumed through its commands and examples):
//
//   - internal/semantics, internal/units — annotate columns with relation
//     type, dimension, units, and sampling cadence
//   - internal/derive — transformations and combinations (natural join,
//     windowed interpolation join)
//   - internal/engine — the derivation engine: dimension queries solved by
//     a memoized, precision-preferring search over schemas
//   - internal/pipeline, internal/cache — reproducible JSON derivation
//     sequences and the opt-in derivation-result cache
//   - internal/rdd, internal/dataset — the data-parallel substrate
//   - internal/wrappers, internal/kvstore, internal/ingest — storage
//     formats and continuous ingestion
//   - internal/facility, internal/workload — synthetic monitoring sources
//   - internal/bench, internal/analysis — experiment harness and
//     distributed statistics
//
// See README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The root-level
// benchmarks (go test -bench=.) mirror the paper's evaluation figures.
package scrubjay
