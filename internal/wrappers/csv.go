package wrappers

import (
	"encoding/csv"
	"fmt"
	"os"
	"time"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/units"
	"scrubjay/internal/value"
)

// parseCell interprets a CSV cell according to the column's semantic entry,
// so that "1490000000" in a datetime column becomes a timestamp rather than
// an integer. Unknown shapes fall back to generic parsing.
func parseCell(text string, e semantics.Entry) (value.Value, error) {
	if text == "" {
		return value.Null(), nil
	}
	switch {
	case e.Units == "datetime":
		if t, err := time.Parse(time.RFC3339Nano, text); err == nil {
			return value.Time(t), nil
		}
		v := value.Parse(text)
		if n, ok := v.AsInt(); ok {
			// Bare integers in datetime columns are Unix seconds.
			return value.TimeNanos(n * 1e9), nil
		}
		return value.Null(), fmt.Errorf("cannot parse %q as datetime", text)
	case e.Units == "timespan":
		v := value.Parse(text)
		if v.Kind() != value.KindSpan {
			return value.Null(), fmt.Errorf("cannot parse %q as timespan", text)
		}
		return v, nil
	default:
		if _, isList := units.IsList(e.Units); isList {
			v := value.Parse(text)
			if v.Kind() != value.KindList {
				return value.Null(), fmt.Errorf("cannot parse %q as list", text)
			}
			return v, nil
		}
		return value.Parse(text), nil
	}
}

// readCSV loads a CSV file with a header row and a schema sidecar.
func readCSV(ctx *rdd.Context, src Source) (*dataset.Dataset, error) {
	schema, err := LoadSchema(src.Path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(src.Path)
	if err != nil {
		return nil, fmt.Errorf("wrappers: csv: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("wrappers: csv %s: %w", src.Path, err)
	}
	if len(records) == 0 {
		return dataset.FromRows(ctx, datasetName(src), nil, schema, src.Partitions), nil
	}
	header := records[0]
	for _, col := range header {
		if _, ok := schema[col]; !ok {
			return nil, fmt.Errorf("wrappers: csv %s: column %q missing from schema sidecar", src.Path, col)
		}
	}
	rows := make([]value.Row, 0, len(records)-1)
	for li, rec := range records[1:] {
		row := make(value.Row, len(header))
		for i, cell := range rec {
			if i >= len(header) {
				return nil, fmt.Errorf("wrappers: csv %s line %d: more cells than header columns", src.Path, li+2)
			}
			col := header[i]
			v, err := parseCell(cell, schema[col])
			if err != nil {
				return nil, fmt.Errorf("wrappers: csv %s line %d column %q: %w", src.Path, li+2, col, err)
			}
			if !v.IsNull() {
				row[col] = v
			}
		}
		rows = append(rows, row)
	}
	return dataset.FromRows(ctx, datasetName(src), rows, schema, src.Partitions), nil
}

// writeCSV stores a dataset as a CSV file with a header row plus a schema
// sidecar, so that reading it back reproduces the dataset.
func writeCSV(ds *dataset.Dataset, dst Source) error {
	if err := SaveSchema(dst.Path, ds.Schema()); err != nil {
		return err
	}
	f, err := os.Create(dst.Path)
	if err != nil {
		return fmt.Errorf("wrappers: csv: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	cols := ds.Schema().Columns()
	if err := w.Write(cols); err != nil {
		return err
	}
	for _, row := range ds.Collect() {
		rec := make([]string, len(cols))
		for i, c := range cols {
			rec[i] = row.Get(c).String()
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
