// Package wrappers implements ScrubJay's data wrappers and unwrappers
// (§4.1, §5.4 of the paper): pluggable functions that parse a storage
// format into a semantically annotated Dataset and write Datasets back out.
// Built-in formats are CSV (with a JSON schema sidecar), JSON-lines
// (lossless tagged values), and tables in the embedded key-value store.
// Custom formats register with RegisterFormat and participate in
// reproducible pipelines by name.
package wrappers

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
)

// Source identifies a dataset in some storage format. It is the
// serializable form used by reproducible pipelines: a format name plus
// format-specific arguments.
type Source struct {
	// Format names the registered wrapper ("csv", "jsonl", "kv", ...).
	Format string `json:"format"`
	// Path is the file path (csv, jsonl) or store directory (kv).
	Path string `json:"path"`
	// Table is the table name within a store (kv only).
	Table string `json:"table,omitempty"`
	// Name overrides the dataset name; defaults to Path/Table.
	Name string `json:"name,omitempty"`
	// Partitions sets the partition count for the loaded RDD (0 = default).
	Partitions int `json:"partitions,omitempty"`
}

// Wrapper parses a Source into a Dataset.
type Wrapper func(ctx *rdd.Context, src Source) (*dataset.Dataset, error)

// Unwrapper writes a Dataset to a Source location.
type Unwrapper func(ds *dataset.Dataset, dst Source) error

var (
	regMu      sync.RWMutex
	wrappers   = map[string]Wrapper{}
	unwrappers = map[string]Unwrapper{}
)

// RegisterFormat installs a wrapper/unwrapper pair under a format name.
// Either function may be nil for read-only or write-only formats.
// Re-registering a name replaces the previous functions.
func RegisterFormat(name string, w Wrapper, u Unwrapper) {
	regMu.Lock()
	defer regMu.Unlock()
	if w != nil {
		wrappers[name] = w
	}
	if u != nil {
		unwrappers[name] = u
	}
}

// Formats lists registered format names, sorted.
func Formats() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	set := map[string]bool{}
	for n := range wrappers {
		set[n] = true
	}
	for n := range unwrappers {
		set[n] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Read loads a Source using its registered wrapper.
func Read(ctx *rdd.Context, src Source) (*dataset.Dataset, error) {
	regMu.RLock()
	w, ok := wrappers[src.Format]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wrappers: no wrapper registered for format %q", src.Format)
	}
	return w(ctx, src)
}

// Write stores a Dataset using the registered unwrapper for dst.Format.
func Write(ds *dataset.Dataset, dst Source) error {
	regMu.RLock()
	u, ok := unwrappers[dst.Format]
	regMu.RUnlock()
	if !ok {
		return fmt.Errorf("wrappers: no unwrapper registered for format %q", dst.Format)
	}
	return u(ds, dst)
}

func init() {
	RegisterFormat("csv", readCSV, writeCSV)
	RegisterFormat("jsonl", readJSONL, writeJSONL)
	RegisterFormat("kv", readKV, writeKV)
}

// SchemaSidecarPath is the conventional location of the schema that
// accompanies a data file.
func SchemaSidecarPath(dataPath string) string { return dataPath + ".schema.json" }

// SaveSchema writes a schema sidecar next to a data file.
func SaveSchema(dataPath string, s semantics.Schema) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(SchemaSidecarPath(dataPath), data, 0o644)
}

// LoadSchema reads the schema sidecar for a data file.
func LoadSchema(dataPath string) (semantics.Schema, error) {
	data, err := os.ReadFile(SchemaSidecarPath(dataPath))
	if err != nil {
		return nil, fmt.Errorf("wrappers: schema sidecar: %w", err)
	}
	var s semantics.Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("wrappers: schema sidecar %s: %w", SchemaSidecarPath(dataPath), err)
	}
	return s, nil
}

func datasetName(src Source) string {
	if src.Name != "" {
		return src.Name
	}
	if src.Table != "" {
		return src.Table
	}
	return src.Path
}
