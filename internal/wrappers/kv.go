package wrappers

import (
	"encoding/json"
	"fmt"

	"scrubjay/internal/dataset"
	"scrubjay/internal/kvstore"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// SchemaKey is the reserved key under which a table's schema is stored.
const SchemaKey = "\x00schema"

// RowKey renders the zero-padded key for the i'th row of a table, so scans
// return rows in insertion order.
func RowKey(i int) string { return fmt.Sprintf("row:%012d", i) }

// readKV loads a table of binary-encoded rows from the embedded key-value
// store (the repo's Cassandra stand-in). The table's schema lives as JSON
// under a reserved key inside the same table.
func readKV(ctx *rdd.Context, src Source) (*dataset.Dataset, error) {
	store, err := kvstore.Open(src.Path)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	tbl, err := store.Table(src.Table)
	if err != nil {
		return nil, err
	}
	raw, err := tbl.Get(SchemaKey)
	if err != nil {
		return nil, fmt.Errorf("wrappers: kv table %q has no schema record: %w", src.Table, err)
	}
	var schema semantics.Schema
	if err := json.Unmarshal(raw, &schema); err != nil {
		return nil, fmt.Errorf("wrappers: kv table %q schema: %w", src.Table, err)
	}
	var rows []value.Row
	var scanErr error
	tbl.Scan("", func(key string, val []byte) bool {
		if key == SchemaKey {
			return true
		}
		row, _, err := value.DecodeRow(val)
		if err != nil {
			scanErr = fmt.Errorf("wrappers: kv table %q key %q: %w", src.Table, key, err)
			return false
		}
		rows = append(rows, row)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return dataset.FromRows(ctx, datasetName(src), rows, schema, src.Partitions), nil
}

// writeKV stores a dataset as a key-value table with zero-padded row keys
// (so scans return rows in insertion order) and the schema under a reserved
// key.
func writeKV(ds *dataset.Dataset, dst Source) error {
	store, err := kvstore.Open(dst.Path)
	if err != nil {
		return err
	}
	defer store.Close()
	tbl, err := store.Table(dst.Table)
	if err != nil {
		return err
	}
	schemaData, err := json.Marshal(ds.Schema())
	if err != nil {
		return err
	}
	if err := tbl.Put(SchemaKey, schemaData); err != nil {
		return err
	}
	for i, row := range ds.Collect() {
		if err := tbl.Put(RowKey(i), row.AppendBinary(nil)); err != nil {
			return err
		}
	}
	return tbl.Flush()
}
