package wrappers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func sampleDataset(ctx *rdd.Context) *dataset.Dataset {
	schema := semantics.NewSchema(
		"timestamp", semantics.TimeDomain(),
		"span", semantics.SpanDomain(),
		"node_id", semantics.IDDomain("compute_node"),
		"nodelist", semantics.IDListDomain("compute_node"),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
		"count", semantics.ValueEntry("count", "count"),
	)
	rows := []value.Row{
		value.NewRow(
			"timestamp", value.TimeNanos(1490000000e9),
			"span", value.Span(1490000000e9, 1490003600e9),
			"node_id", value.Str("cab17"),
			"nodelist", value.StrList("cab17", "cab18"),
			"temp", value.Float(67.4),
			"count", value.Int(42),
		),
		value.NewRow(
			"timestamp", value.TimeNanos(1490000120e9),
			"node_id", value.Str("cab18"),
			"temp", value.Float(61.0),
		),
	}
	return dataset.FromRows(ctx, "sample", rows, schema, 2)
}

func datasetsEqual(t *testing.T, a, b *dataset.Dataset) {
	t.Helper()
	if !a.Schema().Equal(b.Schema()) {
		t.Fatalf("schemas differ:\n%v\n%v", a.Schema(), b.Schema())
	}
	ra := a.SortedBy("timestamp", "node_id")
	rb := b.SortedBy("timestamp", "node_id")
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].Equal(rb[i]) {
			t.Fatalf("row %d differs:\n%v\n%v", i, ra[i], rb[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ctx := rdd.NewContext(2)
	ds := sampleDataset(ctx)
	path := filepath.Join(t.TempDir(), "sample.csv")
	if err := Write(ds, Source{Format: "csv", Path: path}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(ctx, Source{Format: "csv", Path: path, Name: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)
	if got.Name() != "sample" {
		t.Errorf("name = %q", got.Name())
	}
}

func TestCSVUnixSecondsDatetime(t *testing.T) {
	ctx := rdd.NewContext(1)
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	schema := semantics.NewSchema("t", semantics.TimeDomain())
	if err := SaveSchema(path, schema); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("t\n1490000000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := Read(ctx, Source{Format: "csv", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	rows := ds.Collect()
	if len(rows) != 1 || rows[0].Get("t").TimeNanosVal() != 1490000000e9 {
		t.Errorf("rows = %v", rows)
	}
}

func TestCSVErrors(t *testing.T) {
	ctx := rdd.NewContext(1)
	dir := t.TempDir()

	// Missing sidecar.
	if _, err := Read(ctx, Source{Format: "csv", Path: filepath.Join(dir, "none.csv")}); err == nil {
		t.Error("missing sidecar should fail")
	}

	// Column not in schema.
	p1 := filepath.Join(dir, "extra.csv")
	SaveSchema(p1, semantics.NewSchema("a", semantics.ValueEntry("count", "count")))
	os.WriteFile(p1, []byte("a,b\n1,2\n"), 0o644)
	if _, err := Read(ctx, Source{Format: "csv", Path: p1}); err == nil {
		t.Error("unknown column should fail")
	}

	// Bad datetime cell.
	p2 := filepath.Join(dir, "badtime.csv")
	SaveSchema(p2, semantics.NewSchema("t", semantics.TimeDomain()))
	os.WriteFile(p2, []byte("t\nnot-a-time\n"), 0o644)
	if _, err := Read(ctx, Source{Format: "csv", Path: p2}); err == nil {
		t.Error("bad datetime should fail")
	}

	// Bad timespan cell.
	p3 := filepath.Join(dir, "badspan.csv")
	SaveSchema(p3, semantics.NewSchema("s", semantics.SpanDomain()))
	os.WriteFile(p3, []byte("s\nnot-a-span\n"), 0o644)
	if _, err := Read(ctx, Source{Format: "csv", Path: p3}); err == nil {
		t.Error("bad span should fail")
	}

	// Bad list cell.
	p4 := filepath.Join(dir, "badlist.csv")
	SaveSchema(p4, semantics.NewSchema("l", semantics.IDListDomain("compute_node")))
	os.WriteFile(p4, []byte("l\nplain\n"), 0o644)
	if _, err := Read(ctx, Source{Format: "csv", Path: p4}); err == nil {
		t.Error("bad list should fail")
	}
}

func TestCSVEmptyFile(t *testing.T) {
	ctx := rdd.NewContext(1)
	path := filepath.Join(t.TempDir(), "empty.csv")
	SaveSchema(path, semantics.NewSchema("a", semantics.ValueEntry("count", "count")))
	os.WriteFile(path, []byte(""), 0o644)
	ds, err := Read(ctx, Source{Format: "csv", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Count() != 0 {
		t.Errorf("count = %d", ds.Count())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	ctx := rdd.NewContext(2)
	ds := sampleDataset(ctx)
	path := filepath.Join(t.TempDir(), "sample.jsonl")
	if err := Write(ds, Source{Format: "jsonl", Path: path}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(ctx, Source{Format: "jsonl", Path: path, Name: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)
}

func TestJSONLBadLine(t *testing.T) {
	ctx := rdd.NewContext(1)
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	SaveSchema(path, semantics.NewSchema("a", semantics.ValueEntry("count", "count")))
	os.WriteFile(path, []byte("{not json\n"), 0o644)
	if _, err := Read(ctx, Source{Format: "jsonl", Path: path}); err == nil {
		t.Error("bad JSONL line should fail")
	}
}

func TestKVRoundTrip(t *testing.T) {
	ctx := rdd.NewContext(2)
	ds := sampleDataset(ctx)
	dir := t.TempDir()
	if err := Write(ds, Source{Format: "kv", Path: dir, Table: "samples"}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(ctx, Source{Format: "kv", Path: dir, Table: "samples", Name: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)
	if got.Name() != "sample" {
		t.Errorf("name = %q", got.Name())
	}
}

func TestKVMissingSchema(t *testing.T) {
	ctx := rdd.NewContext(1)
	if _, err := Read(ctx, Source{Format: "kv", Path: t.TempDir(), Table: "empty"}); err == nil {
		t.Error("kv table without schema should fail")
	}
}

func TestDefaultDatasetNames(t *testing.T) {
	if datasetName(Source{Path: "/x/y.csv"}) != "/x/y.csv" {
		t.Error("path name default")
	}
	if datasetName(Source{Path: "/s", Table: "t"}) != "t" {
		t.Error("table name default")
	}
	if datasetName(Source{Path: "/s", Table: "t", Name: "n"}) != "n" {
		t.Error("explicit name")
	}
}

func TestUnknownFormat(t *testing.T) {
	ctx := rdd.NewContext(1)
	if _, err := Read(ctx, Source{Format: "parquet"}); err == nil {
		t.Error("unknown read format should fail")
	}
	if err := Write(sampleDataset(ctx), Source{Format: "parquet"}); err == nil {
		t.Error("unknown write format should fail")
	}
}

func TestRegisterCustomFormat(t *testing.T) {
	called := false
	RegisterFormat("test-custom", func(ctx *rdd.Context, src Source) (*dataset.Dataset, error) {
		called = true
		return dataset.FromRows(ctx, "custom", nil, semantics.Schema{}, 1), nil
	}, nil)
	ctx := rdd.NewContext(1)
	if _, err := Read(ctx, Source{Format: "test-custom"}); err != nil || !called {
		t.Errorf("custom wrapper: err=%v called=%v", err, called)
	}
	found := false
	for _, f := range Formats() {
		if f == "test-custom" {
			found = true
		}
	}
	if !found {
		t.Errorf("Formats() = %v missing test-custom", Formats())
	}
}

func TestFormatsListsBuiltins(t *testing.T) {
	fs := strings.Join(Formats(), ",")
	for _, want := range []string{"csv", "jsonl", "kv"} {
		if !strings.Contains(fs, want) {
			t.Errorf("Formats() = %s missing %s", fs, want)
		}
	}
}

func TestSchemaSidecarErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	if _, err := LoadSchema(path); err == nil {
		t.Error("missing sidecar should fail")
	}
	os.WriteFile(SchemaSidecarPath(path), []byte("{bad"), 0o644)
	if _, err := LoadSchema(path); err == nil {
		t.Error("corrupt sidecar should fail")
	}
}

func TestBinRoundTrip(t *testing.T) {
	ctx := rdd.NewContext(2)
	ds := sampleDataset(ctx)
	path := filepath.Join(t.TempDir(), "sample.bin")
	if err := Write(ds, Source{Format: "bin", Path: path}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(ctx, Source{Format: "bin", Path: path, Name: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, got)
}

func TestBinBadInputs(t *testing.T) {
	ctx := rdd.NewContext(1)
	dir := t.TempDir()
	// Missing file.
	if _, err := Read(ctx, Source{Format: "bin", Path: filepath.Join(dir, "none.bin")}); err == nil {
		t.Error("missing file should fail")
	}
	// Bad magic.
	p := filepath.Join(dir, "bad.bin")
	os.WriteFile(p, []byte("NOTMAGIC"), 0o644)
	if _, err := Read(ctx, Source{Format: "bin", Path: p}); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated after magic.
	p2 := filepath.Join(dir, "trunc.bin")
	os.WriteFile(p2, []byte("SJBIN1\n"), 0o644)
	if _, err := Read(ctx, Source{Format: "bin", Path: p2}); err == nil {
		t.Error("truncated header should fail")
	}
}
