package wrappers

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/value"
)

// readJSONL loads a JSON-lines file of tagged-value rows plus its schema
// sidecar. This is ScrubJay's lossless interchange format: every value kind
// round-trips exactly.
func readJSONL(ctx *rdd.Context, src Source) (*dataset.Dataset, error) {
	schema, err := LoadSchema(src.Path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(src.Path)
	if err != nil {
		return nil, fmt.Errorf("wrappers: jsonl: %w", err)
	}
	defer f.Close()
	var rows []value.Row
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var row value.Row
		if err := json.Unmarshal(text, &row); err != nil {
			return nil, fmt.Errorf("wrappers: jsonl %s line %d: %w", src.Path, line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wrappers: jsonl %s: %w", src.Path, err)
	}
	return dataset.FromRows(ctx, datasetName(src), rows, schema, src.Partitions), nil
}

// writeJSONL stores a dataset as one tagged-JSON row per line plus a schema
// sidecar.
func writeJSONL(ds *dataset.Dataset, dst Source) error {
	if err := SaveSchema(dst.Path, ds.Schema()); err != nil {
		return err
	}
	f, err := os.Create(dst.Path)
	if err != nil {
		return fmt.Errorf("wrappers: jsonl: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, row := range ds.Collect() {
		data, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}
