package wrappers

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// binMagic identifies ScrubJay's binary dataset format: a self-contained
// file holding the schema (JSON) followed by length-prefixed binary rows.
// It is roughly an order of magnitude faster to (de)serialize than the
// JSON-lines form and is what the derivation-result cache uses.
var binMagic = []byte("SJBIN1\n")

func init() {
	RegisterFormat("bin", readBin, writeBin)
}

// writeBin stores a dataset in the binary format (schema embedded; no
// sidecar needed).
func writeBin(ds *dataset.Dataset, dst Source) error {
	f, err := os.Create(dst.Path)
	if err != nil {
		return fmt.Errorf("wrappers: bin: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(binMagic); err != nil {
		return err
	}
	schemaJSON, err := json.Marshal(ds.Schema())
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(schemaJSON)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(schemaJSON); err != nil {
		return err
	}
	rows := ds.Collect()
	var cnt []byte
	cnt = binary.AppendUvarint(cnt, uint64(len(rows)))
	if _, err := w.Write(cnt); err != nil {
		return err
	}
	buf := make([]byte, 0, 4096)
	for _, r := range rows {
		buf = buf[:0]
		buf = r.AppendBinary(buf)
		var pre []byte
		pre = binary.AppendUvarint(pre, uint64(len(buf)))
		if _, err := w.Write(pre); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// readBin loads a binary dataset file.
func readBin(ctx *rdd.Context, src Source) (*dataset.Dataset, error) {
	f, err := os.Open(src.Path)
	if err != nil {
		return nil, fmt.Errorf("wrappers: bin: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != string(binMagic) {
		return nil, fmt.Errorf("wrappers: bin %s: bad magic", src.Path)
	}
	schemaLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("wrappers: bin %s: %w", src.Path, err)
	}
	schemaJSON := make([]byte, schemaLen)
	if _, err := io.ReadFull(r, schemaJSON); err != nil {
		return nil, fmt.Errorf("wrappers: bin %s: schema: %w", src.Path, err)
	}
	var schema semantics.Schema
	if err := json.Unmarshal(schemaJSON, &schema); err != nil {
		return nil, fmt.Errorf("wrappers: bin %s: schema: %w", src.Path, err)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("wrappers: bin %s: row count: %w", src.Path, err)
	}
	rows := make([]value.Row, 0, count)
	buf := make([]byte, 0, 4096)
	for i := uint64(0); i < count; i++ {
		sz, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("wrappers: bin %s: row %d: %w", src.Path, i, err)
		}
		if uint64(cap(buf)) < sz {
			buf = make([]byte, sz)
		}
		buf = buf[:sz]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("wrappers: bin %s: row %d: %w", src.Path, i, err)
		}
		row, _, err := value.DecodeRow(buf)
		if err != nil {
			return nil, fmt.Errorf("wrappers: bin %s: row %d: %w", src.Path, i, err)
		}
		rows = append(rows, row)
	}
	return dataset.FromRows(ctx, datasetName(src), rows, schema, src.Partitions), nil
}
