package obs

import "sync"

// TraceRing retains the last-N trace artifacts by id. The nil *TraceRing
// is the disabled state: Put discards, Get misses — callers never branch.
type TraceRing struct {
	mu   sync.Mutex
	cap  int
	ids  []string // insertion order, oldest first
	byID map[string]*Artifact
}

// NewTraceRing builds a ring retaining up to n traces; n <= 0 returns nil
// (tracing storage disabled).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		return nil
	}
	return &TraceRing{cap: n, byID: make(map[string]*Artifact)}
}

// Put stores an artifact, evicting the oldest once the ring is full.
// Storing an id twice replaces the artifact without consuming a slot.
func (r *TraceRing) Put(a *Artifact) {
	if r == nil || a == nil || a.TraceID == "" {
		return
	}
	r.mu.Lock()
	if _, exists := r.byID[a.TraceID]; !exists {
		if len(r.ids) >= r.cap {
			oldest := r.ids[0]
			r.ids = r.ids[1:]
			delete(r.byID, oldest)
		}
		r.ids = append(r.ids, a.TraceID)
	}
	r.byID[a.TraceID] = a
	r.mu.Unlock()
}

// Get fetches an artifact by trace id.
func (r *TraceRing) Get(id string) (*Artifact, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	a, ok := r.byID[id]
	r.mu.Unlock()
	return a, ok
}

// IDs lists retained trace ids, newest first.
func (r *TraceRing) IDs() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, len(r.ids))
	for i, id := range r.ids {
		out[len(r.ids)-1-i] = id
	}
	r.mu.Unlock()
	return out
}

// Len reports the number of retained traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ids)
}
