package obs

import (
	"sync"
	"time"
)

// Tracer owns one trace: a tree of spans sharing one injected monotonic
// clock and one trace id. All methods are safe for concurrent use.
type Tracer struct {
	id    string
	clock Clock

	mu   sync.Mutex
	next int
	root *Span
}

// NewTracer builds a tracer. A nil clock selects WallClock.
func NewTracer(id string, clock Clock) *Tracer {
	if clock == nil {
		clock = WallClock()
	}
	return &Tracer{id: id, clock: clock}
}

// ID returns the trace id.
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Clock returns the tracer's clock (nil for a nil tracer).
func (t *Tracer) Clock() Clock {
	if t == nil {
		return nil
	}
	return t.clock
}

// Start begins the trace's root span. The first call wins the root slot;
// later calls create detached spans (still serialized if reachable).
func (t *Tracer) Start(kind, name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t, id: t.nextID(), kind: kind, name: name, start: t.clock()}
	t.mu.Lock()
	if t.root == nil {
		t.root = sp
	}
	t.mu.Unlock()
	return sp
}

// Root returns the root span (nil before Start).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

func (t *Tracer) nextID() int {
	t.mu.Lock()
	id := t.next
	t.next++
	t.mu.Unlock()
	return id
}

// SpanEvent is a point annotation inside a span — the engine's structured
// explain events attach here.
type SpanEvent struct {
	Kind     string         `json:"kind"`
	AtMicros int64          `json:"at_micros"`
	Text     string         `json:"text,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Span is one node of a trace tree. The nil *Span is a first-class value:
// every method no-ops on it (child constructors return nil), which is the
// disabled-tracing fast path — no allocation, no lock, no clock read.
type Span struct {
	tracer *Tracer
	id     int
	kind   string
	name   string
	start  time.Duration

	mu       sync.Mutex
	ended    bool
	end      time.Duration
	attrs    map[string]any
	events   []SpanEvent
	children []*Span
}

// Child opens a sub-span starting now.
func (s *Span) Child(kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(kind, name, s.tracer.clock())
}

// ChildAt opens a sub-span with an explicit start offset (callers that
// measured the start themselves, e.g. per-task timings recorded on worker
// goroutines and attached after the stage completes).
func (s *Span) ChildAt(kind, name string, start time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, id: s.tracer.nextID(), kind: kind, name: name, start: start}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span at the clock's current reading. Idempotent: the
// first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tracer.clock())
}

// EndAt closes the span at an explicit offset.
func (s *Span) EndAt(end time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = end
	}
	s.mu.Unlock()
}

func (s *Span) setAttr(key string, v any) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.setAttr(key, v)
}

// SetBool records a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.setAttr(key, v)
}

// SetStr records a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.setAttr(key, v)
}

// Event appends a point annotation timestamped now. attrs may be nil; the
// span takes ownership of the map.
func (s *Span) Event(kind, text string, attrs map[string]any) {
	if s == nil {
		return
	}
	at := s.tracer.clock().Microseconds()
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{Kind: kind, AtMicros: at, Text: text, Attrs: attrs})
	s.mu.Unlock()
}

// Clock exposes the tracer's clock so instrumented code can take its own
// readings (per-task timing). Nil for a nil span.
func (s *Span) Clock() Clock {
	if s == nil {
		return nil
	}
	return s.tracer.clock
}

// ID returns the span's tracer-unique id.
func (s *Span) ID() int {
	if s == nil {
		return -1
	}
	return s.id
}

// TraceID returns the owning tracer's trace id ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tracer.id
}

// Kind returns the span kind ("" for nil).
func (s *Span) Kind() string {
	if s == nil {
		return ""
	}
	return s.kind
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start offset.
func (s *Span) Start() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// Duration returns end-start for an ended span; for an open span it
// extends to the latest descendant end, so partially built trees still
// report a sensible extent.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.effectiveEnd() - s.start
}

func (s *Span) effectiveEnd() time.Duration {
	s.mu.Lock()
	ended, end := s.ended, s.end
	children := s.children
	s.mu.Unlock()
	if ended {
		return end
	}
	max := s.start
	for _, c := range children {
		if e := c.effectiveEnd(); e > max {
			max = e
		}
	}
	return max
}

// Children returns a snapshot of the span's children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	s.mu.Unlock()
	return out
}

// AttrInt reads an integer attribute (0 when absent or non-integer).
func (s *Span) AttrInt(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	v := s.attrs[key]
	s.mu.Unlock()
	n, _ := v.(int64)
	return n
}

// AttrBool reads a boolean attribute (false when absent).
func (s *Span) AttrBool(key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	v := s.attrs[key]
	s.mu.Unlock()
	b, _ := v.(bool)
	return b
}
