package obs

import (
	"encoding/json"
	"fmt"
)

// Artifact is the serialized form of one trace: a JSON document whose byte
// encoding is deterministic (struct field order is fixed; attr maps encode
// with sorted keys per encoding/json), so a trace taken with an injected
// deterministic clock serializes byte-identically across runs.
//
// Schema (validated by Check):
//
//	{
//	  "trace_id": string (non-empty),
//	  "root": SpanRecord
//	}
//
//	SpanRecord = {
//	  "id":              int ≥ 0, unique within the artifact,
//	  "kind":            string (non-empty; "query", "plan-search",
//	                     "execute", "step", "stage", "task", ...),
//	  "name":            string,
//	  "start_micros":    int ≥ 0,
//	  "duration_micros": int ≥ 0,
//	  "attrs":           object (optional; values int/bool/string),
//	  "events":          [{kind, at_micros, text, attrs}] (optional),
//	  "children":        [SpanRecord] (optional)
//	}
type Artifact struct {
	TraceID string      `json:"trace_id"`
	Root    *SpanRecord `json:"root"`
}

// SpanRecord is one serialized span.
type SpanRecord struct {
	ID             int            `json:"id"`
	Kind           string         `json:"kind"`
	Name           string         `json:"name"`
	StartMicros    int64          `json:"start_micros"`
	DurationMicros int64          `json:"duration_micros"`
	Attrs          map[string]any `json:"attrs,omitempty"`
	Events         []SpanEvent    `json:"events,omitempty"`
	Children       []*SpanRecord  `json:"children,omitempty"`
}

// Artifact snapshots the trace into its serializable form. Safe to call on
// a live trace (open spans report their extent so far); normally called
// after the root span ended.
func (t *Tracer) Artifact() *Artifact {
	if t == nil {
		return nil
	}
	return &Artifact{TraceID: t.ID(), Root: t.Root().record()}
}

// record snapshots a span subtree. Each span's lock is held only while its
// own fields are copied, never across the recursion.
func (s *Span) record() *SpanRecord {
	if s == nil {
		return nil
	}
	r := &SpanRecord{
		ID:             s.id,
		Kind:           s.kind,
		Name:           s.name,
		StartMicros:    s.start.Microseconds(),
		DurationMicros: s.Duration().Microseconds(),
	}
	s.mu.Lock()
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			r.Attrs[k] = v
		}
	}
	if len(s.events) > 0 {
		r.Events = make([]SpanEvent, len(s.events))
		copy(r.Events, s.events)
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		r.Children = append(r.Children, c.record())
	}
	return r
}

// Encode renders the artifact as indented JSON with a trailing newline.
// The output is deterministic for a deterministic trace.
func (a *Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeArtifact parses and validates a serialized trace.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("obs: decoding trace artifact: %w", err)
	}
	if err := a.Check(); err != nil {
		return nil, err
	}
	return &a, nil
}

// Check validates the artifact against the documented schema: a trace id,
// a root span, and in every span a non-empty kind, non-negative times, and
// an artifact-unique id.
func (a *Artifact) Check() error {
	if a == nil {
		return fmt.Errorf("obs: nil artifact")
	}
	if a.TraceID == "" {
		return fmt.Errorf("obs: artifact has no trace_id")
	}
	if a.Root == nil {
		return fmt.Errorf("obs: artifact has no root span")
	}
	seen := make(map[int]bool)
	return a.Root.check(seen)
}

// Validate checks one span subtree against the SpanRecord schema rules —
// non-empty kinds, non-negative ids and timings, subtree-unique ids —
// without requiring a full artifact. Wire codecs that ship bare subtrees
// (the shuffle spans op) validate with this before accepting a record.
func (r *SpanRecord) Validate() error {
	return r.check(make(map[int]bool))
}

func (r *SpanRecord) check(seen map[int]bool) error {
	if r == nil {
		return fmt.Errorf("obs: null span record")
	}
	if r.Kind == "" {
		return fmt.Errorf("obs: span %d has no kind", r.ID)
	}
	if r.ID < 0 {
		return fmt.Errorf("obs: span has negative id %d", r.ID)
	}
	if seen[r.ID] {
		return fmt.Errorf("obs: duplicate span id %d", r.ID)
	}
	seen[r.ID] = true
	if r.StartMicros < 0 || r.DurationMicros < 0 {
		return fmt.Errorf("obs: span %d has negative timing (start=%d dur=%d)",
			r.ID, r.StartMicros, r.DurationMicros)
	}
	for _, c := range r.Children {
		if err := c.check(seen); err != nil {
			return err
		}
	}
	return nil
}

// SpanCount returns the number of spans in the artifact.
func (a *Artifact) SpanCount() int {
	if a == nil || a.Root == nil {
		return 0
	}
	return a.Root.spanCount()
}

func (r *SpanRecord) spanCount() int {
	n := 1
	for _, c := range r.Children {
		n += c.spanCount()
	}
	return n
}

// AttrInt reads an integer attribute off a decoded record. JSON decoding
// yields float64 for numbers; both representations are accepted.
func (r *SpanRecord) AttrInt(key string) int64 {
	if r == nil {
		return 0
	}
	switch v := r.Attrs[key].(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}

// AttrBool reads a boolean attribute off a decoded record.
func (r *SpanRecord) AttrBool(key string) bool {
	if r == nil {
		return false
	}
	b, _ := r.Attrs[key].(bool)
	return b
}

// Find returns the first span (depth-first, creation order) of the given
// kind, or nil.
func (r *SpanRecord) Find(kind string) *SpanRecord {
	if r == nil {
		return nil
	}
	if r.Kind == kind {
		return r
	}
	for _, c := range r.Children {
		if f := c.Find(kind); f != nil {
			return f
		}
	}
	return nil
}

// FindAll returns every span of the given kind in depth-first order.
func (r *SpanRecord) FindAll(kind string) []*SpanRecord {
	if r == nil {
		return nil
	}
	var out []*SpanRecord
	var walk func(n *SpanRecord)
	walk = func(n *SpanRecord) {
		if n.Kind == kind {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(r)
	return out
}
