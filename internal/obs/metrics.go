package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide metrics registry: named counters, gauges,
// gauge functions, and histograms, rendered as sorted key=value text
// (the GET /metrics format). Get-or-create accessors make registration
// idempotent; all instruments are safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	gaugeFns  map[string]func() int64
	hists     map[string]*Histogram
	histUnits map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		gaugeFns:  make(map[string]func() int64),
		hists:     make(map[string]*Histogram),
		histUnits: make(map[string]string),
	}
}

// Counter returns the named monotonic counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge computed at render time — the natural shape
// for values another component already owns (queue depths, cache sizes).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use. unit
// suffixes the rendered quantile keys: Histogram("latency", "micros")
// renders latency_count, latency_p50_micros, latency_p90_micros, and
// latency_p99_micros.
func (r *Registry) Histogram(name, unit string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.histUnits[name] = unit
	}
	return h
}

// Render produces sorted key=value lines for every instrument. Gauge
// functions run outside the registry lock.
func (r *Registry) Render() string {
	kv := map[string]int64{}
	r.mu.Lock()
	for name, c := range r.counters {
		kv[name] = c.Load()
	}
	for name, g := range r.gauges {
		kv[name] = g.Load()
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	units := make(map[string]string, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
		units[name] = r.histUnits[name]
	}
	r.mu.Unlock()
	for name, fn := range fns {
		kv[name] = fn()
	}
	for name, h := range hists {
		suffix := ""
		if u := units[name]; u != "" {
			suffix = "_" + u
		}
		kv[name+"_count"] = h.Count()
		kv[name+"_p50"+suffix] = h.Quantile(0.50)
		kv[name+"_p90"+suffix] = h.Quantile(0.90)
		kv[name+"_p99"+suffix] = h.Quantile(0.99)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, kv[k])
	}
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reads the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a bounded power-of-two-bucketed histogram over non-negative
// int64 observations: observation v lands in bucket bits(v), so quantiles
// resolve to within a factor of two — plenty for latency and size signals,
// with O(1) observe and no allocation. 48 buckets cover the full useful
// range of microsecond latencies and byte/row sizes.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	max     int64
	buckets [48]int64
}

// Observe records one value. Negative values clamp to zero; values beyond
// the last bucket clamp into it.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[b]++
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Quantile returns an upper bound for the q-quantile, q in (0,1]. Zero
// observations yield zero.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen >= rank {
			return int64(1) << b
		}
	}
	return int64(1) << (len(h.buckets) - 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}
