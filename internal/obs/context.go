package obs

import "context"

// ctxSpanKey carries the active span across API boundaries that speak
// context.Context rather than *Span — the driver threads its exchange span
// to the cluster scheduler this way, so worker subtrees can be grafted
// under the span that owns the exchange.
type ctxSpanKey struct{}

// ContextWithSpan returns a context carrying sp. A nil span is stored as-is
// (SpanFrom then returns nil), preserving the nil-span fast path.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxSpanKey{}, sp)
}

// SpanFrom returns the span carried by ctx, or nil when none is attached.
// The nil result is a valid obs span — every method no-ops on it.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxSpanKey{}).(*Span)
	return sp
}
