package obs

import "time"

// Graft imports a serialized span subtree — recorded by another process on
// its own tracer and clock — as a child of s, returning the imported root.
//
// Two mismatches make a naive copy wrong, and Graft repairs both:
//
//   - IDs: span ids are process-local ints allocated sequentially per
//     tracer, so a worker's ids collide with the driver's. Every imported
//     span is re-numbered from s's tracer (the same allocator live child
//     spans use), so the merged tree still satisfies Artifact.Check's
//     artifact-unique-id invariant.
//   - Clocks: the subtree's start offsets are readings of the remote
//     process's clock, which has a different origin. The subtree is rebased
//     so its root starts at the rebase offset on this trace's clock, with
//     all internal relative timing (child offsets, event timestamps,
//     durations) preserved.
//
// When origin is non-empty it is stamped as the AttrOrigin attribute on
// every imported span, marking the subtree's process of origin ("driver"
// is implied by absence). Attrs and events are deep-copied; integral
// float64 attr values (the JSON decoding of int64) are normalized back to
// int64. A nil receiver or nil record returns nil.
func (s *Span) Graft(rec *SpanRecord, rebase time.Duration, origin string) *Span {
	if s == nil || rec == nil {
		return nil
	}
	base := time.Duration(rec.StartMicros) * time.Microsecond
	return s.graftRec(rec, rebase-base, origin)
}

// graftRec copies one record under parent, shifting every timestamp by
// shift (remote offset + shift = local offset).
func (s *Span) graftRec(rec *SpanRecord, shift time.Duration, origin string) *Span {
	start := time.Duration(rec.StartMicros)*time.Microsecond + shift
	if start < 0 {
		start = 0
	}
	c := s.ChildAt(rec.Kind, rec.Name, start)
	for k, v := range rec.Attrs {
		c.setAttr(k, normalizeAttr(v))
	}
	if origin != "" {
		c.SetStr(AttrOrigin, origin)
	}
	for _, ev := range rec.Events {
		at := time.Duration(ev.AtMicros)*time.Microsecond + shift
		if at < 0 {
			at = 0
		}
		var attrs map[string]any
		if len(ev.Attrs) > 0 {
			attrs = make(map[string]any, len(ev.Attrs))
			for k, v := range ev.Attrs {
				attrs[k] = normalizeAttr(v)
			}
		}
		c.mu.Lock()
		c.events = append(c.events, SpanEvent{Kind: ev.Kind, AtMicros: at.Microseconds(), Text: ev.Text, Attrs: attrs})
		c.mu.Unlock()
	}
	for _, child := range rec.Children {
		c.graftRec(child, shift, origin)
	}
	c.EndAt(start + time.Duration(rec.DurationMicros)*time.Microsecond)
	return c
}

// normalizeAttr undoes encoding/json's number widening: an integral float64
// (how a decoded SpanRecord carries what was an int64 attr) becomes int64
// again, so re-serialized merged artifacts render integers as integers.
func normalizeAttr(v any) any {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return int64(f)
	}
	return v
}
