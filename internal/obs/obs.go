// Package obs is ScrubJay's stdlib-only observability layer: hierarchical
// execution traces (query → plan-search → derivation step → rdd stage →
// task) plus a process-wide metrics registry (counters, gauges, bounded
// histograms with quantile estimation).
//
// Tracing is strictly opt-in and nil-safe. A *Span is a valid receiver when
// nil: every method no-ops (and child constructors return nil), so
// instrumented code writes
//
//	sp := parent.Child(obs.KindStage, name)
//	sp.SetInt(obs.AttrRowsOut, n)
//	sp.End()
//
// unconditionally, and the untraced hot path costs a nil check — no
// allocation, no lock, no clock read. This nil-span invariant is enforced
// by TestNilSpanZeroAlloc and the disabled-tracing overhead gate in ci.sh
// (sjbench -exp obs).
//
// Time is an injected monotonic Clock (a duration since an arbitrary
// origin), never the wall clock directly, so tests freeze it and traces
// serialize byte-identically across runs. A finished trace exports as an
// Artifact — a JSON document that round-trips losslessly and renders as a
// timeline (`scrubjay trace <file|id>`).
package obs

import "time"

// Clock reports elapsed time since an arbitrary fixed origin. Tracers read
// it at span start and end; injecting it makes traces deterministic under
// test (see FrozenClock) while production uses the monotonic wall clock.
type Clock func() time.Duration

// WallClock returns a monotonic clock starting at zero now.
func WallClock() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// FrozenClock returns a clock stuck at zero: every span gets start=0 and
// duration=0, making trace artifacts byte-identical across runs.
func FrozenClock() Clock {
	return func() time.Duration { return 0 }
}

// StepClock returns a clock advancing by step on every read — useful for
// tests that want distinct, deterministic timestamps. The returned clock
// is not safe for concurrent readers; use it from a single goroutine
// (concurrently-read deterministic tests want FrozenClock).
func StepClock(step time.Duration) Clock {
	var n int64
	return func() time.Duration {
		n++
		return time.Duration(n-1) * step
	}
}

// Span kinds, outermost to innermost. The set is open — renderers treat
// unknown kinds as plain tree nodes — but the serving stack emits exactly
// this hierarchy.
const (
	// KindQuery is the root span of one served or CLI query.
	KindQuery = "query"
	// KindSearch is the derivation engine's CSP search (plan-search).
	KindSearch = "plan-search"
	// KindExec covers plan execution (all derivation steps + collect).
	KindExec = "execute"
	// KindStep is one derivation step (transform/combine) of a plan.
	KindStep = "step"
	// KindStage is one rdd stage (a materialize or a shuffle exchange).
	KindStage = "stage"
	// KindTask is one partition of one stage.
	KindTask = "task"
)

// Well-known attribute keys. Values are int64, bool, or string.
const (
	AttrRowsIn      = "rows_in"
	AttrRowsOut     = "rows_out"
	AttrShuffle     = "shuffle"
	AttrShuffleRows = "shuffle_rows"
	// AttrShuffleBytes is the encoded payload volume a distributed exchange
	// pushed through the cluster data plane (internal/shuffle wire bytes).
	AttrShuffleBytes = "shuffle_bytes"
	// AttrWorker identifies the shard worker a distributed task ran against.
	AttrWorker     = "worker"
	AttrPartitions = "partitions"
	// AttrOrigin names the process a span was recorded in ("worker@addr");
	// spans without it originated on the driver. Stamped by Span.Graft when
	// a worker subtree is merged into the driver's trace.
	AttrOrigin = "origin"
	// AttrParentSpan, on a grafted worker subtree root, is the driver span
	// id the worker was told owns its work — the cross-process parent link
	// carried by the shuffle protocol's trace context.
	AttrParentSpan = "parent_span"
	AttrPartition  = "partition"
	AttrCacheHit   = "cache_hit"
	AttrPlanHash   = "plan_hash"
	AttrError      = "error"
	// AttrEstRows/AttrEstCPU/AttrEstShuffleBytes carry the planner's cost
	// prediction on a step span, so traces show estimated next to actual.
	AttrEstRows         = "est_rows"
	AttrEstCPU          = "est_cpu"
	AttrEstShuffleBytes = "est_shuffle_bytes"
)
