package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timeline renders the artifact as a per-query execution timeline: one
// line per span, indented by depth, with total time, self time (total
// minus the children's totals), and the span's attributes (row counts,
// shuffle volumes, cache hits). Deterministic for a deterministic trace.
func (a *Artifact) Timeline() string {
	var b strings.Builder
	if a == nil || a.Root == nil {
		return "(empty trace)\n"
	}
	fmt.Fprintf(&b, "trace %s: %d spans, total %s\n",
		a.TraceID, a.SpanCount(), fmtMicros(a.Root.DurationMicros))
	// A trace with grafted worker subtrees renders an origin column on
	// every span (driver or worker@addr); a purely local trace stays
	// column-free, so single-process output is unchanged.
	a.Root.timeline(&b, 0, a.Root.distributed())
	return b.String()
}

// distributed reports whether any span in the subtree carries an origin
// attr — i.e. the trace includes grafted worker spans.
func (r *SpanRecord) distributed() bool {
	if origin, ok := r.Attrs[AttrOrigin].(string); ok && origin != "" {
		return true
	}
	for _, c := range r.Children {
		if c.distributed() {
			return true
		}
	}
	return false
}

func (r *SpanRecord) timeline(b *strings.Builder, depth int, dist bool) {
	var childTotal int64
	for _, c := range r.Children {
		childTotal += c.DurationMicros
	}
	self := r.DurationMicros - childTotal
	if self < 0 {
		self = 0
	}
	label := r.Kind
	if r.Name != "" && r.Name != r.Kind {
		label += " " + r.Name
	}
	pad := 46 - 2*depth
	if pad < len(label) {
		pad = len(label)
	}
	origin := ""
	if dist {
		origin = " origin=driver"
		if o, ok := r.Attrs[AttrOrigin].(string); ok && o != "" {
			origin = " origin=" + o
		}
	}
	fmt.Fprintf(b, "%s%-*s total=%-9s self=%-9s%s%s%s\n",
		strings.Repeat("  ", depth), pad, label,
		fmtMicros(r.DurationMicros), fmtMicros(self), origin, attrSummary(r), derivedSummary(r))
	for _, c := range r.Children {
		c.timeline(b, depth+1, dist)
	}
	r.workerRollup(b, depth+1)
}

// workerRollup emits one aggregate line per worker whose shipped subtrees
// were grafted directly under r — spans, bytes handled, and wall time — so
// an exchange line reads like a miniature fleet report. Silent when no
// direct child carries an origin attr.
func (r *SpanRecord) workerRollup(b *strings.Builder, depth int) {
	type agg struct {
		spans int
		bytes int64
		wall  int64
	}
	var order []string
	aggs := map[string]*agg{}
	for _, c := range r.Children {
		origin, _ := c.Attrs[AttrOrigin].(string)
		if origin == "" {
			continue
		}
		a := aggs[origin]
		if a == nil {
			a = &agg{}
			aggs[origin] = a
			order = append(order, origin)
		}
		a.spans += c.spanCount()
		a.wall += c.DurationMicros
		a.bytes += c.AttrInt("put_bytes")
	}
	sort.Strings(order)
	for _, origin := range order {
		a := aggs[origin]
		fmt.Fprintf(b, "%s↳ %s: spans=%d bytes=%s wall=%s\n",
			strings.Repeat("  ", depth), origin, a.spans, fmtBytes(a.bytes), fmtMicros(a.wall))
	}
}

// derivedSummary renders actuals a span does not carry itself but its
// subtree does: a derivation step aggregates the rows and bytes its stages
// pushed through shuffles, and a stage missing its own row count sums its
// tasks' — so every step line shows actual data volume next to the
// planner's est_* attributes.
func derivedSummary(r *SpanRecord) string {
	var b strings.Builder
	switch r.Kind {
	case KindStep:
		var rows, bytes int64
		for _, st := range r.FindAll(KindStage) {
			rows += st.AttrInt(AttrShuffleRows)
			bytes += st.AttrInt(AttrShuffleBytes)
		}
		if rows > 0 {
			fmt.Fprintf(&b, " shuffled_rows=%d", rows)
		}
		if bytes > 0 {
			fmt.Fprintf(&b, " shuffled=%s", fmtBytes(bytes))
		}
	case KindStage:
		if _, ok := r.Attrs[AttrRowsOut]; !ok {
			var rows int64
			seen := false
			for _, tk := range r.Children {
				if tk.Kind != KindTask {
					continue
				}
				if _, ok := tk.Attrs[AttrRowsOut]; ok {
					rows += tk.AttrInt(AttrRowsOut)
					seen = true
				}
			}
			if seen {
				fmt.Fprintf(&b, " rows_out=%d", rows)
			}
		}
	}
	return b.String()
}

// attrSummary renders the span's attributes and event count as a sorted
// " k=v ..." suffix.
func attrSummary(r *SpanRecord) string {
	if len(r.Attrs) == 0 && len(r.Events) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.Attrs))
	for k := range r.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		// Origin renders as its own column (timeline), not as an attr.
		if k == AttrOrigin {
			continue
		}
		// Byte-volume attrs render humanized; everything else verbatim.
		if k == AttrShuffleBytes || k == AttrEstShuffleBytes {
			fmt.Fprintf(&b, " %s=%s", k, fmtBytes(r.AttrInt(k)))
			continue
		}
		switch v := r.Attrs[k].(type) {
		case float64:
			fmt.Fprintf(&b, " %s=%d", k, int64(v))
		default:
			fmt.Fprintf(&b, " %s=%v", k, v)
		}
	}
	if n := len(r.Events); n > 0 {
		fmt.Fprintf(&b, " events=%d", n)
	}
	return b.String()
}

// fmtMicros renders a microsecond count via time.Duration's canonical
// formatting ("1.234ms", "2.5s", ...).
func fmtMicros(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}

// fmtBytes humanizes a byte count (B, KiB, MiB, GiB) with one decimal above
// the unit boundary.
func fmtBytes(n int64) string {
	const k = 1024
	switch {
	case n >= k*k*k:
		return fmt.Sprintf("%.1fGiB", float64(n)/(k*k*k))
	case n >= k*k:
		return fmt.Sprintf("%.1fMiB", float64(n)/(k*k))
	case n >= k:
		return fmt.Sprintf("%.1fKiB", float64(n)/k)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
