package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func buildTrace(clock Clock) *Tracer {
	tr := NewTracer("t-test", clock)
	root := tr.Start(KindQuery, "q")
	root.SetStr(AttrPlanHash, "abc123")
	search := root.Child(KindSearch, "plan-search")
	search.SetBool(AttrCacheHit, false)
	search.Event("closure", "closure of \"jobs\": 3 variants", nil)
	search.End()
	exec := root.Child(KindExec, "execute")
	step := exec.Child(KindStep, "natural_join")
	stage := step.Child(KindStage, "jobs|collect")
	stage.SetInt(AttrPartitions, 2)
	stage.SetInt(AttrRowsOut, 10)
	for p := 0; p < 2; p++ {
		task := stage.ChildAt(KindTask, "", stage.Start())
		task.SetInt(AttrPartition, int64(p))
		task.SetInt(AttrRowsOut, 5)
		task.EndAt(task.Start())
	}
	stage.End()
	step.End()
	exec.End()
	root.End()
	return tr
}

func TestArtifactRoundTrip(t *testing.T) {
	tr := buildTrace(StepClock(time.Millisecond))
	art := tr.Artifact()
	if err := art.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := art.SpanCount(); got != 7 {
		t.Errorf("SpanCount = %d, want 7", got)
	}
	enc1, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(enc1)
	if err != nil {
		t.Fatalf("DecodeArtifact: %v", err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("artifact does not round-trip byte-identically:\n%s\nvs\n%s", enc1, enc2)
	}
	if back.Root.Kind != KindQuery {
		t.Errorf("root kind = %q", back.Root.Kind)
	}
	stage := back.Root.Find(KindStage)
	if stage == nil || stage.AttrInt(AttrRowsOut) != 10 {
		t.Errorf("stage span lost attrs: %+v", stage)
	}
	if tasks := back.Root.FindAll(KindTask); len(tasks) != 2 {
		t.Errorf("task spans = %d, want 2", len(tasks))
	}
}

func TestFrozenClockDeterministicBytes(t *testing.T) {
	enc := func() []byte {
		b, err := buildTrace(FrozenClock()).Artifact().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := enc(), enc(); !bytes.Equal(a, b) {
		t.Errorf("frozen-clock traces differ:\n%s\nvs\n%s", a, b)
	}
}

func TestCheckRejectsMalformed(t *testing.T) {
	for name, data := range map[string]string{
		"no trace id": `{"trace_id":"","root":{"id":0,"kind":"query","name":"","start_micros":0,"duration_micros":0}}`,
		"no root":     `{"trace_id":"t"}`,
		"no kind":     `{"trace_id":"t","root":{"id":0,"kind":"","name":"","start_micros":0,"duration_micros":0}}`,
		"dup ids":     `{"trace_id":"t","root":{"id":1,"kind":"query","name":"","start_micros":0,"duration_micros":0,"children":[{"id":1,"kind":"task","name":"","start_micros":0,"duration_micros":0}]}}`,
		"neg time":    `{"trace_id":"t","root":{"id":0,"kind":"query","name":"","start_micros":-1,"duration_micros":0}}`,
	} {
		if _, err := DecodeArtifact([]byte(data)); err == nil {
			t.Errorf("%s: Check accepted malformed artifact", name)
		}
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	child := sp.Child(KindStage, "x")
	if child != nil {
		t.Fatal("nil span produced a non-nil child")
	}
	sp.ChildAt(KindTask, "", 0)
	sp.SetInt(AttrRowsOut, 1)
	sp.SetBool(AttrShuffle, true)
	sp.SetStr(AttrError, "e")
	sp.Event("k", "t", nil)
	sp.End()
	sp.EndAt(time.Second)
	if sp.Clock() != nil || sp.Kind() != "" || sp.Name() != "" || sp.ID() != -1 {
		t.Error("nil span accessors returned non-zero values")
	}
	if sp.Duration() != 0 || sp.Start() != 0 || sp.Children() != nil {
		t.Error("nil span timing accessors returned non-zero values")
	}
	if sp.AttrInt(AttrRowsOut) != 0 || sp.AttrBool(AttrShuffle) {
		t.Error("nil span attr accessors returned non-zero values")
	}
	var tr *Tracer
	if tr.Start(KindQuery, "q") != nil || tr.ID() != "" || tr.Clock() != nil || tr.Root() != nil || tr.Artifact() != nil {
		t.Error("nil tracer methods returned non-zero values")
	}
}

// TestNilSpanZeroAlloc pins the nil-span invariant: the disabled-tracing
// fast path must not allocate. This is the static half of the <3% overhead
// gate in ci.sh (sjbench -exp obs is the dynamic half).
func TestNilSpanZeroAlloc(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child(KindStage, "stage")
		c.SetInt(AttrRowsOut, 42)
		c.SetBool(AttrShuffle, true)
		t := c.ChildAt(KindTask, "", 0)
		t.SetInt(AttrPartition, 0)
		t.EndAt(0)
		c.End()
	})
	if allocs != 0 {
		t.Errorf("nil-span path allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkNilSpan(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.Child(KindStage, "stage")
		c.SetInt(AttrRowsOut, int64(i))
		c.End()
	}
}

func TestSpanDurationOpenSpans(t *testing.T) {
	clock := StepClock(time.Millisecond)
	tr := NewTracer("t", clock)
	root := tr.Start(KindQuery, "q") // start = 0ms
	c := root.Child(KindStage, "s")  // start = 1ms
	c.End()                          // end = 2ms
	// root never ended: its duration must extend to the child's end.
	if got := root.Duration(); got != 2*time.Millisecond {
		t.Errorf("open root duration = %v, want 2ms", got)
	}
}

func TestTraceRing(t *testing.T) {
	if r := NewTraceRing(0); r != nil {
		t.Fatal("capacity 0 should disable the ring")
	}
	var nilRing *TraceRing
	nilRing.Put(&Artifact{TraceID: "x"})
	if _, ok := nilRing.Get("x"); ok || nilRing.Len() != 0 || nilRing.IDs() != nil {
		t.Fatal("nil ring retained a trace")
	}

	r := NewTraceRing(2)
	for _, id := range []string{"a", "b", "c"} {
		r.Put(&Artifact{TraceID: id})
	}
	if _, ok := r.Get("a"); ok {
		t.Error("oldest trace not evicted")
	}
	if _, ok := r.Get("c"); !ok {
		t.Error("newest trace missing")
	}
	if ids := r.IDs(); len(ids) != 2 || ids[0] != "c" || ids[1] != "b" {
		t.Errorf("IDs = %v, want [c b]", ids)
	}
	// Replacing an id must not consume a slot.
	r.Put(&Artifact{TraceID: "c"})
	if r.Len() != 2 {
		t.Errorf("Len = %d after replace, want 2", r.Len())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	// 90 fast observations (~1ms) and 10 slow (~1s), in microseconds.
	for i := 0; i < 90; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(time.Second)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	// Buckets are powers of two, so bounds are within 2x of the truth.
	if p50 < 512 || p50 > 4096 {
		t.Errorf("p50 = %dµs, want ≈1024", p50)
	}
	if p99 < 512*1024 || p99 > 4*1024*1024 {
		t.Errorf("p99 = %dµs, want ≈1s", p99)
	}
	if p50 > p99 {
		t.Error("quantiles out of order")
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
	if h.Max() != time.Second.Microseconds() {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-5)                      // negative clamps to zero
	h.ObserveDuration(400 * time.Hour) // beyond the last bucket clamps
	if h.Quantile(1.0) == 0 {
		t.Error("clamped observation lost")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Counter("a_total").Inc()
	r.Gauge("depth").Set(7)
	r.GaugeFunc("fn_gauge", func() int64 { return 11 })
	r.Histogram("latency", "micros").ObserveDuration(time.Millisecond)
	got := r.Render()
	want := "a_total=1\n" +
		"b_total=3\n" +
		"depth=7\n" +
		"fn_gauge=11\n" +
		"latency_count=1\n" +
		"latency_p50_micros=1024\n" +
		"latency_p90_micros=1024\n" +
		"latency_p99_micros=1024\n"
	if got != want {
		t.Errorf("Render:\n%s\nwant:\n%s", got, want)
	}
	// Get-or-create: same instrument back.
	if r.Counter("a_total").Load() != 1 {
		t.Error("Counter not idempotent")
	}
	if r.Histogram("latency", "micros").Count() != 1 {
		t.Error("Histogram not idempotent")
	}
}

func TestTimeline(t *testing.T) {
	art := buildTrace(StepClock(time.Millisecond)).Artifact()
	out := art.Timeline()
	for _, want := range []string{
		"trace t-test: 7 spans",
		"query q",
		"plan-search",
		"execute",
		"step natural_join",
		"stage jobs|collect",
		"rows_out=10",
		"partitions=2",
		"events=1",
		"total=", "self=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Decoded artifacts (float64 attrs) must render identically.
	enc, _ := art.Encode()
	back, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Timeline() != out {
		t.Errorf("decoded timeline differs:\n%s\nvs\n%s", back.Timeline(), out)
	}
	var empty *Artifact
	if empty.Timeline() != "(empty trace)\n" {
		t.Error("nil artifact timeline")
	}
}

// TestTimelineDerivedActuals covers the renderer's derived columns: byte
// attrs humanized, step lines aggregating shuffle volume from their stage
// descendants, and stages without an own row count summing their tasks'.
func TestTimelineDerivedActuals(t *testing.T) {
	tr := NewTracer("t-derived", StepClock(time.Millisecond))
	root := tr.Start(KindQuery, "q")
	exec := root.Child(KindExec, "execute")
	step := exec.Child(KindStep, "natural_join")
	step.SetInt(AttrEstRows, 40)
	step.SetInt(AttrEstShuffleBytes, 4096)
	write := step.Child(KindStage, "jobs|cogroup-left|shuffle-write")
	write.SetInt(AttrShuffleRows, 20)
	write.SetInt(AttrShuffleBytes, 3*1024*1024)
	// No rows_out on the stage itself: derived from the tasks below.
	for p := 0; p < 2; p++ {
		task := write.ChildAt(KindTask, "", write.Start())
		task.SetInt(AttrPartition, int64(p))
		task.SetInt(AttrRowsOut, 10)
		task.EndAt(task.Start())
	}
	write.End()
	read := step.Child(KindStage, "natural_join(jobs,layout)")
	read.SetInt(AttrShuffleRows, 22)
	read.SetInt(AttrShuffleBytes, 512)
	read.SetInt(AttrRowsOut, 40)
	read.End()
	step.End()
	exec.End()
	root.End()

	out := tr.Artifact().Timeline()
	for _, want := range []string{
		"est_rows=40",
		"est_shuffle_bytes=4.0KiB", // humanized estimate on the step
		"shuffled_rows=42",         // 20 + 22 aggregated onto the step line
		"shuffled=3.0MiB",          // (3MiB + 512B) aggregated, humanized
		"shuffle_bytes=3.0MiB",     // the write stage's own attr, humanized
		"shuffle_bytes=512B",
		"rows_out=20", // derived for the write stage from its two tasks
		"rows_out=40", // the read stage's own attr, untouched
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The derived values must survive an encode/decode round trip (attrs
	// become float64) unchanged.
	enc, _ := tr.Artifact().Encode()
	back, err := DecodeArtifact(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Timeline() != out {
		t.Errorf("decoded timeline differs:\n%s\nvs\n%s", back.Timeline(), out)
	}
}
