package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// TestGraftRenumbersCollidingIDs builds a driver trace and a worker trace
// whose span ids deliberately collide (both tracers allocate 0, 1, 2, ...),
// grafts the worker subtree into the driver tree, and requires the merged
// artifact to pass Check — the artifact-unique-id invariant the grafting
// exists to preserve.
func TestGraftRenumbersCollidingIDs(t *testing.T) {
	driver := NewTracer("t1", StepClock(time.Millisecond))
	root := driver.Start(KindQuery, "q")
	ex := root.Child(KindStage, "heat|shuffle-fetch")

	// The worker's tracer numbers from 0 too: ids 0, 1, 2 collide with the
	// driver's root/exchange ids by construction.
	worker := NewTracer("t1", StepClock(time.Millisecond))
	wroot := worker.Start("worker-shuffle", "heat#1")
	put := wroot.Child("worker-put", "dst0")
	put.SetInt("bytes", 128)
	put.End()
	wroot.SetInt(AttrParentSpan, int64(ex.ID()))
	wroot.Event("merge", "sorted 3 chunks", nil)
	wroot.End()
	rec := worker.Artifact().Root
	if rec.ID != root.ID() {
		t.Fatalf("test premise broken: worker root id %d, driver root id %d — wanted a collision", rec.ID, root.ID())
	}

	g := ex.Graft(rec, ex.Start(), "worker@127.0.0.1:9")
	if g == nil {
		t.Fatal("graft returned nil")
	}
	ex.End()
	root.End()

	a := driver.Artifact()
	if err := a.Check(); err != nil {
		t.Fatalf("merged artifact failed Check: %v", err)
	}

	// The graft also survives a serialization round trip (DecodeArtifact
	// re-runs Check on the decoded form).
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	groot := back.Root.Find("worker-shuffle")
	if groot == nil {
		t.Fatal("grafted worker root missing from artifact")
	}
	if got := groot.Attrs[AttrOrigin]; got != "worker@127.0.0.1:9" {
		t.Fatalf("origin attr = %v, want worker@127.0.0.1:9", got)
	}
	if groot.AttrInt(AttrParentSpan) != int64(ex.ID()) {
		t.Fatalf("parent_span = %d, want %d", groot.AttrInt(AttrParentSpan), ex.ID())
	}
	gput := back.Root.Find("worker-put")
	if gput == nil {
		t.Fatal("grafted child span missing")
	}
	if gput.AttrInt("bytes") != 128 {
		t.Fatalf("grafted child attr bytes = %d, want 128", gput.AttrInt("bytes"))
	}
	if got := groot.Attrs[AttrOrigin]; gput.Attrs[AttrOrigin] != got {
		t.Fatalf("child origin %v != root origin %v", gput.Attrs[AttrOrigin], got)
	}
}

// TestGraftRebasesRemoteClock pins the clock-rebasing arithmetic: a worker
// subtree recorded at a wildly different clock origin lands at the given
// rebase offset with its internal relative timing intact.
func TestGraftRebasesRemoteClock(t *testing.T) {
	driver := NewTracer("t2", FrozenClock())
	root := driver.Start(KindQuery, "q")

	rec := &SpanRecord{
		ID: 0, Kind: "worker-shuffle", Name: "s#1",
		StartMicros: 5_000_000, DurationMicros: 300,
		Events: []SpanEvent{{Kind: "merge", AtMicros: 5_000_100}},
		Children: []*SpanRecord{
			{ID: 1, Kind: "worker-put", Name: "dst1", StartMicros: 5_000_050, DurationMicros: 20},
		},
	}
	g := root.Graft(rec, 10*time.Millisecond, "worker@w1")
	root.End()

	if got := g.Start(); got != 10*time.Millisecond {
		t.Fatalf("grafted root start = %v, want 10ms", got)
	}
	if got := g.Duration(); got != 300*time.Microsecond {
		t.Fatalf("grafted root duration = %v, want 300µs", got)
	}
	kids := g.Children()
	if len(kids) != 1 {
		t.Fatalf("grafted children = %d, want 1", len(kids))
	}
	if got := kids[0].Start(); got != 10*time.Millisecond+50*time.Microsecond {
		t.Fatalf("grafted child start = %v, want 10.05ms", got)
	}
	a := driver.Artifact()
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	groot := a.Root.Find("worker-shuffle")
	if len(groot.Events) != 1 || groot.Events[0].AtMicros != 10_100 {
		t.Fatalf("grafted event at %v, want at_micros=10100", groot.Events)
	}
}

// TestGraftNormalizesJSONNumbers: a record that went through JSON decoding
// carries float64 attr values; the graft must restore int64 so a re-encoded
// merged artifact is not littered with floats.
func TestGraftNormalizesJSONNumbers(t *testing.T) {
	src := &SpanRecord{ID: 0, Kind: "worker-shuffle", Attrs: map[string]any{"bytes": int64(4096)}}
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var rec SpanRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if _, isFloat := rec.Attrs["bytes"].(float64); !isFloat {
		t.Fatalf("test premise broken: decoded attr is %T, expected float64", rec.Attrs["bytes"])
	}
	tr := NewTracer("t3", FrozenClock())
	root := tr.Start(KindQuery, "q")
	g := root.Graft(&rec, 0, "worker@w")
	if v, ok := g.attrs["bytes"].(int64); !ok || v != 4096 {
		t.Fatalf("grafted attr = %#v, want int64(4096)", g.attrs["bytes"])
	}
}
