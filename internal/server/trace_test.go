package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"scrubjay/internal/engine"
	"scrubjay/internal/obs"
)

// hopelessQuery asks for a value dimension no dataset carries, so the
// engine search fails deterministically.
func hopelessQuery() engine.Query {
	return engine.Query{
		Domains: []string{"rack"},
		Values:  []engine.QueryValue{{Dimension: "power"}},
	}
}

// TestQueryTraceEndToEnd runs a served query and fetches its artifact from
// GET /v1/trace/{id}: the header's trace id must resolve, the artifact must
// validate and carry the full query → plan-search → execute → step → stage
// → task tree, the step names must match the plan's non-source steps, and
// the artifact must render.
func TestQueryTraceEndToEnd(t *testing.T) {
	srv := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()})
	traceID := resp.Header.Get(TraceHeader)
	if traceID == "" {
		t.Fatal("query response missing " + TraceHeader + " header")
	}
	header, rows, _ := readStream(t, resp)
	if header.TraceID != traceID {
		t.Fatalf("stream header trace id %q != header %q", header.TraceID, traceID)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}

	cl := &Client{BaseURL: ts.URL}
	art, err := cl.Trace(traceID)
	if err != nil {
		t.Fatalf("fetching trace: %v", err)
	}
	if err := art.Check(); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if art.TraceID != traceID {
		t.Errorf("artifact id = %q, want %q", art.TraceID, traceID)
	}
	root := art.Root
	if root.Kind != obs.KindQuery {
		t.Fatalf("root kind = %q", root.Kind)
	}
	if ph, ok := root.Attrs[obs.AttrPlanHash]; !ok || ph != header.PlanHash {
		t.Errorf("root plan_hash = %v, want %q", ph, header.PlanHash)
	}
	search := root.Find(obs.KindSearch)
	if search == nil {
		t.Fatal("no plan-search span")
	}
	if len(search.Events) == 0 {
		t.Error("fresh search recorded no engine events")
	}
	exec := root.Find(obs.KindExec)
	if exec == nil {
		t.Fatal("no execute span")
	}
	if exec.AttrInt(obs.AttrRowsOut) != 3 {
		t.Errorf("execute rows_out = %d, want 3", exec.AttrInt(obs.AttrRowsOut))
	}

	// Step spans must match the plan's non-source steps, in order.
	var wantSteps []string
	for _, s := range header.Steps {
		if len(s) < 7 || s[:7] != "source:" {
			wantSteps = append(wantSteps, s)
		}
	}
	steps := exec.FindAll(obs.KindStep)
	if len(steps) != len(wantSteps) {
		t.Fatalf("step spans = %d, want %d (%v)", len(steps), len(wantSteps), wantSteps)
	}
	for i, st := range steps {
		if st.Name != wantSteps[i] {
			t.Errorf("step %d = %q, want %q", i, st.Name, wantSteps[i])
		}
	}

	// Stages carry task children with partition indices and row counts.
	stages := root.FindAll(obs.KindStage)
	if len(stages) == 0 {
		t.Fatal("no stage spans")
	}
	var tasks int
	for _, st := range stages {
		for _, ch := range st.Children {
			if ch.Kind == obs.KindTask {
				tasks++
			}
		}
	}
	if tasks == 0 {
		t.Fatal("no task spans under any stage")
	}

	if out := art.Timeline(); len(out) == 0 {
		t.Error("artifact did not render")
	}

	// The id is listed, newest first.
	ids, err := cl.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || ids[0] != traceID {
		t.Errorf("trace list = %v, want %q first", ids, traceID)
	}
}

// TestTraceDisabled pins the off switch: TraceRing < 0 serves queries with
// no trace header and 404s the trace endpoints.
func TestTraceDisabled(t *testing.T) {
	srv := New(testStore(t), Config{Workers: 2, TraceRing: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()})
	if id := resp.Header.Get(TraceHeader); id != "" {
		t.Errorf("disabled tracing still set trace id %q", id)
	}
	header, rows, _ := readStream(t, resp)
	if header.TraceID != "" || len(rows) != 3 {
		t.Errorf("header trace id = %q, rows = %d", header.TraceID, len(rows))
	}
	r2, err := http.Get(ts.URL + "/v1/trace/t00000001")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("trace fetch status = %d, want 404", r2.StatusCode)
	}
}

// TestTraceOnFailedQuery pins that failures keep their traces: the error
// answer carries a trace id whose artifact records the failure.
func TestTraceOnFailedQuery(t *testing.T) {
	srv := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: hopelessQuery()})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	traceID := resp.Header.Get(TraceHeader)
	if traceID == "" {
		t.Fatal("failed query lost its trace id")
	}
	art, err := (&Client{BaseURL: ts.URL}).Trace(traceID)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := art.Root.Attrs[obs.AttrError]; !ok {
		t.Error("failure trace missing error attr")
	}
}
