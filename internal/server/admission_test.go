package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmitterBounds(t *testing.T) {
	a := newAdmitter(2, 1)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if a.inFlight() != 2 {
		t.Errorf("inFlight = %d", a.inFlight())
	}

	// Third caller queues (room for exactly one).
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx) }()
	for a.queueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}

	// Fourth caller overflows the queue and is rejected immediately.
	if err := a.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}

	// A release hands the slot to the queued caller.
	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	if a.inFlight() != 2 || a.queueDepth() != 0 {
		t.Errorf("inFlight = %d, queueDepth = %d", a.inFlight(), a.queueDepth())
	}
	a.release()
	a.release()
}

func TestAdmitterDeadlineWhileQueued(t *testing.T) {
	a := newAdmitter(1, 4)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := a.acquire(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("queued acquire did not respect the deadline")
	}
	if a.queueDepth() != 0 {
		t.Errorf("queueDepth = %d after timeout", a.queueDepth())
	}
}

func TestAdmitterZeroQueue(t *testing.T) {
	a := newAdmitter(1, 0)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded with zero queue", err)
	}
	a.release()
}
