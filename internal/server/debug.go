package server

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the profiling surface: the standard net/http/pprof
// endpoints under /debug/pprof/. It is deliberately a separate handler from
// Handler() so the owning process mounts it on its own listener (sjserved
// -debug-addr) — profiling never shares a port with the query API, and an
// unset debug address exposes nothing.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
