package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scrubjay/internal/stats"
)

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestServerStatsFeedback proves the serving-side statistics loop end to
// end: attaching a store profiles the catalog, executed queries feed
// observations back through the recorder, plans carry estimates, and the
// plan cache keys on the stats epoch so a moved epoch forces a re-search.
func TestServerStatsFeedback(t *testing.T) {
	st := stats.NewStore()
	s := New(testStore(t), Config{Workers: 2, Stats: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// AttachStats profiled the two registered datasets at construction.
	tables, _ := st.Len()
	if tables != 2 {
		t.Fatalf("tables profiled = %d, want 2", tables)
	}
	jobs, ok := st.Table("jobs")
	if !ok || jobs.Rows != 2 {
		t.Fatalf("jobs table stats = %+v ok=%v, want 2 rows", jobs, ok)
	}
	epoch0 := st.Epoch()

	// Executing a query must record derivation observations.
	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()})
	_, rows, trailer := readStream(t, resp)
	if trailer.Error != "" || len(rows) == 0 {
		t.Fatalf("query failed: %+v (%d rows)", trailer, len(rows))
	}
	_, derivs := st.Len()
	if derivs == 0 {
		t.Fatal("executed query recorded no derivation observations")
	}
	if st.Epoch() == epoch0 {
		t.Error("first observations should move the stats epoch")
	}

	// The plan must carry estimates informed by the profiled tables.
	var pr PlanResponse
	resp = postJSON(t, ts.URL+"/v1/plan", QueryRequest{Query: testQuery()})
	decodeJSON(t, resp, &pr)
	if pr.StatsEpoch != st.Epoch() {
		t.Errorf("StatsEpoch = %d, want %d", pr.StatsEpoch, st.Epoch())
	}
	if !strings.Contains(string(pr.Plan), `"estimate"`) {
		t.Errorf("plan JSON carries no step estimates:\n%s", pr.Plan)
	}

	// Same epoch: the plan cache must hit.
	var pr2 PlanResponse
	resp = postJSON(t, ts.URL+"/v1/plan", QueryRequest{Query: testQuery()})
	decodeJSON(t, resp, &pr2)
	if !pr2.CacheHit {
		t.Error("repeat plan at a stable epoch should hit the plan cache")
	}

	// A moved epoch must invalidate the cached plan (fresh search).
	st.SetTable("synthetic", stats.TableStats{Rows: 99})
	if st.Epoch() == pr2.StatsEpoch {
		t.Fatal("SetTable of a new table should move the epoch")
	}
	var pr3 PlanResponse
	resp = postJSON(t, ts.URL+"/v1/plan", QueryRequest{Query: testQuery()})
	decodeJSON(t, resp, &pr3)
	if pr3.CacheHit {
		t.Error("plan cache should miss after the stats epoch moved")
	}
	if pr3.StatsEpoch == pr2.StatsEpoch {
		t.Error("plan response should report the new stats epoch")
	}
}
