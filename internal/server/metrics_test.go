package server

import (
	"testing"
	"time"
)

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	if h.quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	// 90 fast observations (~1ms) and 10 slow (~1s).
	for i := 0; i < 90; i++ {
		h.observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(time.Second)
	}
	p50 := h.quantile(0.50)
	p99 := h.quantile(0.99)
	// Buckets are powers of two, so bounds are within 2x of the truth.
	if p50 < 512 || p50 > 4096 {
		t.Errorf("p50 = %dµs, want ≈1024", p50)
	}
	if p99 < 512*1024 || p99 > 4*1024*1024 {
		t.Errorf("p99 = %dµs, want ≈1s", p99)
	}
	if p50 > p99 {
		t.Error("quantiles out of order")
	}
}

func TestLatencyHistExtremes(t *testing.T) {
	var h latencyHist
	h.observe(0)               // sub-microsecond lands in bucket 0
	h.observe(400 * time.Hour) // beyond the last bucket clamps
	if h.quantile(1.0) == 0 {
		t.Error("clamped observation lost")
	}
}
