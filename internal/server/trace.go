package server

import (
	"fmt"
	"net/http"

	"scrubjay/internal/obs"
)

// TraceHeader is the response header carrying the query's trace id on
// /v1/query and /v1/execute answers (success and error alike). Fetch the
// artifact at GET /v1/trace/{id} while it remains in the ring.
const TraceHeader = "X-Scrubjay-Trace"

// newTracer mints a tracer for one request, or nil when trace retention is
// disabled — the nil tracer's spans are all nil, so a disabled server pays
// only the nil checks (the obs nil-span fast path).
func (s *Server) newTracer() *obs.Tracer {
	if s.traces == nil {
		return nil
	}
	return obs.NewTracer(fmt.Sprintf("t%08x", s.traceSeq.Add(1)), nil)
}

// finishTrace closes the query span and retains the artifact. errText, when
// non-empty, is recorded on the span — failed queries keep their traces,
// which is exactly when an operator wants one.
func (s *Server) finishTrace(tr *obs.Tracer, qspan *obs.Span, errText string) {
	if tr == nil {
		return
	}
	if errText != "" {
		qspan.SetStr(obs.AttrError, errText)
	}
	qspan.End()
	s.traces.Put(tr.Artifact())
}

// serveTrace handles GET /v1/trace/{id}: the serialized trace artifact for
// a recent query.
func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			"no trace %q (the ring retains the last %d; tracing may be disabled)", id, s.traces.Len())
		return
	}
	data, err := a.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding trace: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// serveTraceList handles GET /v1/trace: retained trace ids, newest first.
func (s *Server) serveTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TraceListResponse{TraceIDs: s.traces.IDs()})
}
