package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"scrubjay/internal/bench"
	"scrubjay/internal/dataset"
	"scrubjay/internal/engine"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// testStore builds a two-dataset catalog (jobs with a node list, node →
// rack layout) the engine can answer {job, rack} × application over via
// explode + natural join.
func testStore(t *testing.T) *Store {
	t.Helper()
	jobsSchema := semantics.NewSchema(
		"job_id", semantics.IDDomain("job"),
		"nodelist", semantics.IDListDomain("compute_node"),
		"job_name", semantics.ValueEntry("application", "identifier"),
	)
	layoutSchema := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
	st := NewStore()
	err := st.Register("jobs", []value.Row{
		value.NewRow("job_id", value.Str("j1"), "nodelist", value.StrList("n1", "n2"), "job_name", value.Str("AMG")),
		value.NewRow("job_id", value.Str("j2"), "nodelist", value.StrList("n3"), "job_name", value.Str("mg.C")),
	}, jobsSchema, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	err = st.Register("layout", []value.Row{
		value.NewRow("node", value.Str("n1"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n2"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n3"), "rack", value.Str("r18")),
	}, layoutSchema, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testQuery() engine.Query {
	return engine.Query{
		Domains: []string{"job", "rack"},
		Values:  []engine.QueryValue{{Dimension: "application"}},
	}
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream decodes an NDJSON row stream, failing on structural errors.
func readStream(t *testing.T, resp *http.Response) (StreamHeader, []value.Row, StreamTrailer) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var header *StreamHeader
	var trailer *StreamTrailer
	var rows []value.Row
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Header != nil:
			if header != nil {
				t.Fatal("duplicate stream header")
			}
			header = line.Header
		case line.Trailer != nil:
			trailer = line.Trailer
		case line.Row != nil:
			if header == nil || trailer != nil {
				t.Fatal("row outside header…trailer envelope")
			}
			rows = append(rows, line.Row)
		default:
			t.Fatalf("empty stream line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if header == nil || trailer == nil {
		t.Fatalf("incomplete stream: header=%v trailer=%v", header, trailer)
	}
	return *header, rows, *trailer
}

func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body did not decode: %v", err)
	}
	return e.Error
}

func TestQueryStreamsRows(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	header, rows, trailer := readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()}))
	if header.CacheHit {
		t.Error("first query should be a plan-cache miss")
	}
	if header.PlanHash == "" || len(header.Steps) == 0 {
		t.Errorf("header incomplete: %+v", header)
	}
	if len(rows) != 3 || trailer.Rows != 3 {
		t.Fatalf("rows = %d, trailer = %+v, want 3", len(rows), trailer)
	}
	for _, r := range rows {
		if r.Get("rack").StrVal() == "" {
			t.Errorf("row missing rack: %v", r)
		}
	}

	header2, _, _ := readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()}))
	if !header2.CacheHit {
		t.Error("second query should hit the plan cache")
	}
	if header2.PlanHash != header.PlanHash {
		t.Error("plan hash changed between identical queries")
	}
}

func TestQueryLimit(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rows, trailer := readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery(), Limit: 1}))
	if len(rows) != 1 || !trailer.Truncated {
		t.Errorf("limit ignored: %d rows, trailer %+v", len(rows), trailer)
	}
}

func TestPlanOnlyAndExecute(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/plan", QueryRequest{Query: testQuery()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d", resp.StatusCode)
	}
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.CacheHit {
		t.Error("first plan should be a cache miss")
	}
	plan, err := pipeline.Decode(pr.Plan)
	if err != nil {
		t.Fatalf("returned plan does not decode: %v", err)
	}
	if plan.Hash() != pr.PlanHash {
		t.Error("plan hash mismatch")
	}
	if want := "natural_join"; pr.Steps[len(pr.Steps)-1] != want {
		t.Errorf("steps = %v, want last %q", pr.Steps, want)
	}

	resp2 := postJSON(t, ts.URL+"/v1/plan", QueryRequest{Query: testQuery()})
	var pr2 PlanResponse
	json.NewDecoder(resp2.Body).Decode(&pr2)
	resp2.Body.Close()
	if !pr2.CacheHit {
		t.Error("second plan should be a cache hit")
	}

	// The stored plan reproduces via /v1/execute.
	header, rows, _ := readStream(t, postJSON(t, ts.URL+"/v1/execute", ExecuteRequest{Plan: pr.Plan}))
	if header.PlanHash != pr.PlanHash || len(rows) != 3 {
		t.Errorf("execute: hash %s rows %d", header.PlanHash, len(rows))
	}

	// Domain/value order must not matter to the cache key.
	q := engine.Query{
		Domains: []string{"rack", "job"},
		Values:  []engine.QueryValue{{Dimension: "application"}},
	}
	resp3 := postJSON(t, ts.URL+"/v1/plan", QueryRequest{Query: q})
	var pr3 PlanResponse
	json.NewDecoder(resp3.Body).Decode(&pr3)
	resp3.Body.Close()
	if !pr3.CacheHit {
		t.Error("reordered query should hit the plan cache")
	}

	// One request, one stat: the plan-only miss path re-checks the cache
	// inside resolvePlan but must not double-count. Four requests so far:
	// 1 cold plan (miss), 2 cached plans (hits), 1 execute of a stored
	// plan (no search, no lookup).
	hits, misses, _ := s.plans.stats()
	if hits != 2 || misses != 1 {
		t.Errorf("plan cache stats = %d hits / %d misses, want 2 / 1", hits, misses)
	}
}

func TestNoDerivationPathIs422(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := QueryRequest{Query: engine.Query{
		Domains: []string{"job"},
		Values:  []engine.QueryValue{{Dimension: "temperature"}},
	}}
	for i := 0; i < 2; i++ { // second round answers from the negative cache
		resp := postJSON(t, ts.URL+"/v1/query", q)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("round %d: status = %d, want 422", i, resp.StatusCode)
		}
		if msg := decodeError(t, resp); msg == "" {
			t.Error("empty error message")
		}
	}
	hits, _, _ := s.plans.stats()
	if hits == 0 {
		t.Error("failed search was not served from the negative cache")
	}
}

func TestBadRequests(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/query", QueryRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query: status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/execute", ExecuteRequest{Plan: json.RawMessage(`{"root":{"kind":"wat"}}`)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad plan: status = %d", resp.StatusCode)
	}
}

func TestOverloadReturns429(t *testing.T) {
	s := New(testStore(t), Config{Workers: 1, MaxConcurrent: 1, MaxQueue: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold the only executor slot so the next query finds queue room = 0.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()

	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	decodeError(t, resp)
}

func TestQueuedDeadlineReturns503(t *testing.T) {
	s := New(testStore(t), Config{Workers: 1, MaxConcurrent: 1, MaxQueue: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()

	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery(), TimeoutMillis: 50})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	decodeError(t, resp)
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := New(testStore(t), Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.StartDrain()
	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining query: status = %d", resp.StatusCode)
	}
	decodeError(t, resp)

	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status = %d", hResp.StatusCode)
	}

	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mResp.Body)
	mResp.Body.Close()
	if !strings.Contains(buf.String(), "draining=1") {
		t.Errorf("metrics missing draining=1:\n%s", buf.String())
	}
}

func TestHotReloadInvalidatesPlans(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	header, rows, _ := readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()}))
	racks := map[string]bool{}
	for _, r := range rows {
		racks[r.Get("rack").StrVal()] = true
	}
	if !racks["r18"] {
		t.Fatalf("expected r18 before reload, got %v", racks)
	}

	// Move every node to rack r99 and hot-reload.
	layoutSchema := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
	resp := postJSON(t, ts.URL+"/v1/catalog/datasets", RegisterRequest{
		Name:   "layout",
		Schema: layoutSchema,
		Rows: []value.Row{
			value.NewRow("node", value.Str("n1"), "rack", value.Str("r99")),
			value.NewRow("node", value.Str("n2"), "rack", value.Str("r99")),
			value.NewRow("node", value.Str("n3"), "rack", value.Str("r99")),
		},
		Replace: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status = %d: %s", resp.StatusCode, decodeError(t, resp))
	}
	resp.Body.Close()

	header2, rows2, _ := readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()}))
	if header2.CacheHit {
		t.Error("catalog reload should invalidate the plan cache")
	}
	if header2.CatalogVersion <= header.CatalogVersion {
		t.Error("catalog version did not advance")
	}
	for _, r := range rows2 {
		if got := r.Get("rack").StrVal(); got != "r99" {
			t.Errorf("rack = %q after reload, want r99", got)
		}
	}

	// GET /v1/catalog reflects the reload.
	cResp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat CatalogResponse
	json.NewDecoder(cResp.Body).Decode(&cat)
	cResp.Body.Close()
	if len(cat.Datasets) != 2 || cat.Version != header2.CatalogVersion {
		t.Errorf("catalog = %+v", cat)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := New(testStore(t), Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Missing schema.
	resp := postJSON(t, ts.URL+"/v1/catalog/datasets", RegisterRequest{Name: "x", Rows: []value.Row{value.NewRow("a", value.Str("1"))}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no schema: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Duplicate without replace.
	jobsSchema := semantics.NewSchema("job_id", semantics.IDDomain("job"))
	resp = postJSON(t, ts.URL+"/v1/catalog/datasets", RegisterRequest{Name: "jobs", Schema: jobsSchema})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate: status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestConcurrentClients(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2, MaxConcurrent: 4, MaxQueue: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if (c+i)%2 == 0 {
					resp := postJSON(t, ts.URL+"/v1/plan", QueryRequest{Query: testQuery()})
					var pr PlanResponse
					err := json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d plan: status %d err %v", c, resp.StatusCode, err)
						return
					}
					continue
				}
				_, rows, trailer := readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()}))
				if len(rows) != 3 || trailer.Rows != 3 {
					errs <- fmt.Errorf("client %d query: %d rows, trailer %+v", c, len(rows), trailer)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if q := s.met.queries.Load(); q != clients*4 {
		t.Errorf("queries_total = %d, want %d", q, clients*4)
	}
}

// runFig5 registers the Fig-5 case-study catalog over HTTP on a server with
// the given config, runs the Fig-5 query over HTTP, reruns the same plan
// in-process through the library path selected by columnarLib, and asserts
// the served rows are byte-identical JSON in the same order. It returns the
// served rows so callers can cross-check the two representations.
func runFig5(t *testing.T, srvCfg Config, columnarLib bool) []value.Row {
	t.Helper()
	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks, cfg.NodesPerRack, cfg.AMGRack = 4, 6, 2
	cfg.DAT1DurationSec = 1800
	cfg.Partitions = 4
	build := rdd.NewContext(2)
	srcCat, schemas, _ := bench.DAT1Catalog(build, cfg)
	rowsByName := map[string][]value.Row{}
	partsByName := map[string]int{}
	for name, ds := range srcCat {
		rowsByName[name] = ds.Collect()
		partsByName[name] = ds.Rows().NumPartitions()
	}

	s := New(NewStore(), srvCfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for name, rows := range rowsByName {
		resp := postJSON(t, ts.URL+"/v1/catalog/datasets", RegisterRequest{
			Name:       name,
			Schema:     schemas[name],
			Rows:       rows,
			Partitions: partsByName[name],
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: status %d: %s", name, resp.StatusCode, decodeError(t, resp))
		}
		resp.Body.Close()
	}

	q := bench.Fig5Query()
	header, gotRows, trailer := readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: q}))
	if trailer.Error != "" {
		t.Fatalf("stream error: %s", trailer.Error)
	}
	if len(header.Steps) != len(bench.Fig5ExpectedSteps) {
		t.Fatalf("steps = %v, want %v", header.Steps, bench.Fig5ExpectedSteps)
	}
	for i, want := range bench.Fig5ExpectedSteps {
		if header.Steps[i] != want {
			t.Fatalf("steps[%d] = %q, want %q", i, header.Steps[i], want)
		}
	}

	// Library path over the same materialized rows.
	rc := rdd.NewContext(2)
	libCat := pipeline.Catalog{}
	for name, rows := range rowsByName {
		if columnarLib {
			libCat[name] = dataset.FromRowsColumnar(rc, name, rows, schemas[name], partsByName[name])
		} else {
			libCat[name] = dataset.FromRows(rc, name, rows, schemas[name], partsByName[name])
		}
	}
	dict := semantics.DefaultDictionary()
	eng := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := eng.Solve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Hash() != header.PlanHash {
		t.Errorf("plan hash: server %s, library %s", header.PlanHash, plan.Hash())
	}
	out, err := pipeline.Execute(context.Background(), rc, plan, libCat, dict, pipeline.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if columnarLib && !out.IsColumnar() {
		t.Error("library result left the columnar representation")
	}
	libRows := out.Collect()
	if len(gotRows) != len(libRows) {
		t.Fatalf("server rows = %d, library rows = %d", len(gotRows), len(libRows))
	}
	for i := range libRows {
		want, err1 := json.Marshal(libRows[i])
		got, err2 := json.Marshal(gotRows[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("row %d differs:\nserver:  %s\nlibrary: %s", i, got, want)
		}
	}
	return gotRows
}

// TestFig5BitForBit is the end-to-end reproducibility check on the row
// path: datasets registered over HTTP, queried over HTTP, must produce
// exactly the rows and plan the library path (engine.Solve +
// pipeline.Execute in-process) produces — same worker count, same
// partitioning, byte-identical row JSON in the same order.
func TestFig5BitForBit(t *testing.T) {
	runFig5(t, Config{Workers: 2, RowMode: true}, false)
}

// TestFig5BitForBitColumnar is the same check on the default columnar
// path — frames built at registration, vectorized derivations, NDJSON
// streamed straight from column vectors — and additionally asserts the two
// representations agree on the result as a multiset (row order may differ
// between paths because partition placement differs, but content must not).
func TestFig5BitForBitColumnar(t *testing.T) {
	colRows := runFig5(t, Config{Workers: 2}, true)
	rowRows := runFig5(t, Config{Workers: 2, RowMode: true}, false)
	if len(colRows) != len(rowRows) {
		t.Fatalf("columnar rows = %d, row-path rows = %d", len(colRows), len(rowRows))
	}
	encode := func(rows []value.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(b)
		}
		sort.Strings(out)
		return out
	}
	col, row := encode(colRows), encode(rowRows)
	for i := range col {
		if col[i] != row[i] {
			t.Fatalf("sorted row %d differs:\ncolumnar: %s\nrow path: %s", i, col[i], row[i])
		}
	}
}

func TestMetricsRender(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readStream(t, postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: testQuery()}))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"queries_total=1", "executed_total=1", "rows_streamed_total=3",
		"plan_cache_misses=", "latency_p50_micros=", "latency_p99_micros=",
		"executor_queue_depth=0", "catalog_datasets=2", "draining=0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
