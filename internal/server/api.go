// Package server implements sjserved, ScrubJay's concurrent query-serving
// daemon. It wraps the derivation engine (§5 of the paper) behind a small
// HTTP API so that many analysts share one loaded catalog, one plan cache,
// and one derivation-result cache:
//
//	POST /v1/query             engine search + (optional) execution, rows
//	                           streamed as JSON lines
//	POST /v1/plan              engine search only; returns the serialized
//	                           derivation sequence (§5.4)
//	POST /v1/execute           run a stored plan against the live catalog
//	GET  /v1/catalog           list registered datasets
//	POST /v1/catalog/datasets  register/replace a dataset (hot reload)
//	GET  /v1/trace             retained trace ids, newest first
//	GET  /v1/trace/{id}        the JSON trace artifact for a recent query
//	GET  /healthz              liveness (503 while draining)
//	GET  /metrics              text key=value counters and latency quantiles
//
// Three mechanisms make it safe under heavy traffic: a query-hash-keyed
// plan cache in front of the CSP search, admission control (a bounded
// executor with a bounded wait queue — overload answers 429/503 with
// Retry-After instead of stacking goroutines), and per-request deadlines
// threaded as context.Context through the engine, pipeline execution, and
// the rdd worker pool, so an abandoned query stops burning cores.
package server

import (
	"encoding/json"

	"scrubjay/internal/engine"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
	"scrubjay/internal/wrappers"
)

// QueryRequest is the body of POST /v1/query (and, with execution forced
// off, POST /v1/plan). The embedded engine.Query contributes the domains
// and values fields.
type QueryRequest struct {
	engine.Query
	// WindowSeconds overrides the server's interpolation-join window.
	WindowSeconds float64 `json:"window_seconds,omitempty"`
	// Execute defaults to true on /v1/query; set false to stop after plan
	// search (equivalent to /v1/plan).
	Execute *bool `json:"execute,omitempty"`
	// Limit caps the number of streamed rows (0 = all).
	Limit int `json:"limit,omitempty"`
	// TimeoutMillis bounds the request; 0 uses the server default. The
	// server clamps it to its configured maximum.
	TimeoutMillis int64 `json:"timeout_millis,omitempty"`
}

// ExecuteRequest is the body of POST /v1/execute: a stored derivation
// sequence to reproduce against the live catalog.
type ExecuteRequest struct {
	Plan          json.RawMessage `json:"plan"`
	Limit         int             `json:"limit,omitempty"`
	TimeoutMillis int64           `json:"timeout_millis,omitempty"`
}

// PlanResponse answers /v1/plan (and /v1/query with execute=false).
type PlanResponse struct {
	PlanHash string `json:"plan_hash"`
	// CacheHit reports whether the plan came from the plan cache rather
	// than a fresh CSP search.
	CacheHit bool `json:"cache_hit"`
	// SearchMicros is the cost of the search that produced the plan (the
	// original search when CacheHit).
	SearchMicros   int64 `json:"search_micros"`
	CatalogVersion int64 `json:"catalog_version"`
	// StatsEpoch is the statistics-store epoch the plan was costed
	// against; 0 when the server runs without cost-based planning. Plan
	// step estimates (rows, cpu, shuffle bytes, stats inputs) appear
	// inline in Plan when a statistics store is attached.
	StatsEpoch int64           `json:"stats_epoch,omitempty"`
	Steps      []string        `json:"steps"`
	Plan       json.RawMessage `json:"plan"`
}

// StreamHeader is the first JSON line of a row stream.
type StreamHeader struct {
	PlanHash       string           `json:"plan_hash"`
	CacheHit       bool             `json:"cache_hit"`
	SearchMicros   int64            `json:"search_micros"`
	CatalogVersion int64            `json:"catalog_version"`
	Steps          []string         `json:"steps"`
	Schema         semantics.Schema `json:"schema"`
	// TraceID names the query's trace artifact (GET /v1/trace/{id}); empty
	// when the server runs with tracing disabled.
	TraceID string `json:"trace_id,omitempty"`
}

// StreamTrailer is the last JSON line of a row stream. A stream without a
// trailer was cut off (client judges it dropped).
type StreamTrailer struct {
	Rows          int64  `json:"rows"`
	Truncated     bool   `json:"truncated,omitempty"`
	ElapsedMicros int64  `json:"elapsed_micros"`
	Error         string `json:"error,omitempty"`
}

// StreamLine is the client-side decoding union for one line of a row
// stream: exactly one field is set.
type StreamLine struct {
	Header  *StreamHeader  `json:"header,omitempty"`
	Row     value.Row      `json:"row,omitempty"`
	Trailer *StreamTrailer `json:"trailer,omitempty"`
}

// RegisterRequest is the body of POST /v1/catalog/datasets. Either Rows
// (with Schema) carries the dataset inline, or Source names server-visible
// storage to load it from.
type RegisterRequest struct {
	Name   string           `json:"name"`
	Schema semantics.Schema `json:"schema,omitempty"`
	Rows   []value.Row      `json:"rows,omitempty"`
	Source *wrappers.Source `json:"source,omitempty"`
	// Partitions sets the dataset's partition count (0 = server default).
	Partitions int `json:"partitions,omitempty"`
	// Replace allows overwriting an existing dataset of the same name.
	Replace bool `json:"replace,omitempty"`
}

// DatasetInfo describes one registered dataset in GET /v1/catalog.
type DatasetInfo struct {
	Name       string           `json:"name"`
	Rows       int64            `json:"rows"`
	Partitions int              `json:"partitions"`
	Schema     semantics.Schema `json:"schema"`
}

// CatalogResponse answers GET /v1/catalog.
type CatalogResponse struct {
	Version  int64         `json:"version"`
	Datasets []DatasetInfo `json:"datasets"`
}

// TraceListResponse answers GET /v1/trace.
type TraceListResponse struct {
	TraceIDs []string `json:"trace_ids"`
}

// ErrorResponse is the body of every non-2xx JSON answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
