package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates the daemon's counters plus a latency histogram.
// Counters are atomics; the histogram takes a short lock around integer
// bucket math only.
type metrics struct {
	queries  atomic.Int64 // /v1/query + /v1/plan + /v1/execute accepted for processing
	executed atomic.Int64 // requests that ran a pipeline to completion
	rejected atomic.Int64 // 429 + 503 answers (overload, draining)
	failed   atomic.Int64 // searches/executions that errored
	canceled atomic.Int64 // deadline/cancellation aborts
	rowsOut  atomic.Int64 // rows streamed to clients
	reloads  atomic.Int64 // catalog registrations
	lat      latencyHist
}

// latencyHist is a power-of-two-bucketed latency histogram: observation d
// lands in bucket bits(len(d in µs)), so quantiles resolve to within a
// factor of two — plenty for a load-shedding signal, with no allocation
// and O(1) observe.
type latencyHist struct {
	mu      sync.Mutex
	count   int64
	buckets [40]int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for us > 0 {
		us >>= 1
		b++
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.mu.Lock()
	h.count++
	h.buckets[b]++
	h.mu.Unlock()
}

// quantile returns an upper bound (in microseconds) for the q-quantile,
// q in (0,1]. Zero observations yield zero.
func (h *latencyHist) quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen >= rank {
			return int64(1) << b
		}
	}
	return int64(1) << (len(h.buckets) - 1)
}

// render produces the GET /metrics body: sorted key=value lines.
func (s *Server) renderMetrics() string {
	planHits, planMisses, planSize := s.plans.stats()
	kv := map[string]int64{
		"queries_total":         s.met.queries.Load(),
		"executed_total":        s.met.executed.Load(),
		"rejected_total":        s.met.rejected.Load(),
		"failed_total":          s.met.failed.Load(),
		"canceled_total":        s.met.canceled.Load(),
		"rows_streamed_total":   s.met.rowsOut.Load(),
		"catalog_reloads_total": s.met.reloads.Load(),
		"plan_cache_hits":       planHits,
		"plan_cache_misses":     planMisses,
		"plan_cache_size":       int64(planSize),
		"executor_in_flight":    int64(s.adm.inFlight()),
		"executor_queue_depth":  s.adm.queueDepth(),
		"latency_p50_micros":    s.met.lat.quantile(0.50),
		"latency_p99_micros":    s.met.lat.quantile(0.99),
		"catalog_version":       s.store.Version(),
		"catalog_datasets":      int64(s.store.Len()),
	}
	if s.draining.Load() {
		kv["draining"] = 1
	} else {
		kv["draining"] = 0
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, kv[k])
	}
	return b.String()
}
