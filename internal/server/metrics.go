package server

import "scrubjay/internal/obs"

// metrics holds the daemon's instruments, registered in a process-wide
// obs.Registry: counters for request outcomes, a latency histogram, and
// render-time gauge functions for values other components own (plan-cache
// stats, admitter depths, catalog version). GET /metrics renders the
// registry as sorted key=value lines.
type metrics struct {
	reg      *obs.Registry
	queries  *obs.Counter // /v1/query + /v1/plan + /v1/execute accepted for processing
	executed *obs.Counter // requests that ran a pipeline to completion
	rejected *obs.Counter // 429 + 503 answers (overload, draining)
	failed   *obs.Counter // searches/executions that errored
	canceled *obs.Counter // deadline/cancellation aborts
	rowsOut  *obs.Counter // rows streamed to clients
	reloads  *obs.Counter // catalog registrations
	// statsObserved counts derivation observations fed back into the
	// statistics store by the post-query recorder.
	statsObserved *obs.Counter
	lat           *obs.Histogram
}

func newMetrics() metrics {
	reg := obs.NewRegistry()
	return metrics{
		reg:           reg,
		queries:       reg.Counter("queries_total"),
		executed:      reg.Counter("executed_total"),
		rejected:      reg.Counter("rejected_total"),
		failed:        reg.Counter("failed_total"),
		canceled:      reg.Counter("canceled_total"),
		rowsOut:       reg.Counter("rows_streamed_total"),
		reloads:       reg.Counter("catalog_reloads_total"),
		statsObserved: reg.Counter("stats_observations_total"),
		lat:           reg.Histogram("latency", "micros"),
	}
}

// registerGauges wires the render-time gauges that read live server state.
// Called once from New, after the components the closures capture exist.
func (s *Server) registerGauges() {
	reg := s.met.reg
	reg.GaugeFunc("plan_cache_hits", func() int64 { h, _, _ := s.plans.stats(); return h })
	reg.GaugeFunc("plan_cache_misses", func() int64 { _, m, _ := s.plans.stats(); return m })
	reg.GaugeFunc("plan_cache_size", func() int64 { _, _, n := s.plans.stats(); return int64(n) })
	reg.GaugeFunc("executor_in_flight", func() int64 { return int64(s.adm.inFlight()) })
	reg.GaugeFunc("executor_queue_depth", func() int64 { return s.adm.queueDepth() })
	reg.GaugeFunc("catalog_version", func() int64 { return s.store.Version() })
	reg.GaugeFunc("catalog_datasets", func() int64 { return int64(s.store.Len()) })
	reg.GaugeFunc("draining", func() int64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	if s.cfg.Stats != nil {
		reg.GaugeFunc("stats_epoch", func() int64 { return s.cfg.Stats.Epoch() })
		reg.GaugeFunc("stats_tables", func() int64 { t, _ := s.cfg.Stats.Len(); return int64(t) })
		reg.GaugeFunc("stats_derivations", func() int64 { _, d := s.cfg.Stats.Len(); return int64(d) })
	}
}

// renderMetrics produces the GET /metrics body.
func (s *Server) renderMetrics() string { return s.met.reg.Render() }

// Metrics exposes the daemon's registry so sibling components (the cluster
// scheduler's exchange counters and worker-fleet gauges) can register their
// instruments on the same GET /metrics surface.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }
