package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"scrubjay/internal/engine"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func TestClientRoundTrip(t *testing.T) {
	s := New(testStore(t), Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	pr, err := cl.Plan(QueryRequest{Query: testQuery()})
	if err != nil {
		t.Fatal(err)
	}
	if pr.PlanHash == "" {
		t.Error("empty plan hash")
	}

	header, rows, trailer, err := cl.Query(QueryRequest{Query: testQuery()})
	if err != nil {
		t.Fatal(err)
	}
	if header.PlanHash != pr.PlanHash || len(rows) != 3 || trailer.Rows != 3 {
		t.Errorf("query: header %+v, %d rows", header, len(rows))
	}
	if !header.CacheHit {
		t.Error("query after plan should hit the plan cache")
	}

	_, rows2, _, err := cl.Execute(ExecuteRequest{Plan: pr.Plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 3 {
		t.Errorf("execute rows = %d", len(rows2))
	}

	info, err := cl.Register(RegisterRequest{
		Name:   "extra",
		Schema: semantics.NewSchema("job_id", semantics.IDDomain("job")),
		Rows:   []value.Row{value.NewRow("job_id", value.Str("j9"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 1 {
		t.Errorf("register info = %+v", info)
	}
	cat, err := cl.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Datasets) != 3 {
		t.Errorf("catalog = %+v", cat)
	}
}

func TestClientErrorsClassify(t *testing.T) {
	s := New(testStore(t), Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	// Draining answers are HTTPError with Rejected() true.
	s.StartDrain()
	_, err := cl.Plan(QueryRequest{Query: testQuery()})
	var he *HTTPError
	if !errors.As(err, &he) || !he.Rejected() || he.RetryAfter == "" {
		t.Fatalf("draining err = %v", err)
	}
	s.draining.Store(false)

	// A search failure is an HTTPError that is not a rejection.
	hopeless := engine.Query{
		Domains: []string{"job"},
		Values:  []engine.QueryValue{{Dimension: "temperature"}},
	}
	_, err = cl.Plan(QueryRequest{Query: hopeless})
	if !errors.As(err, &he) || he.Rejected() || he.Status != http.StatusUnprocessableEntity {
		t.Fatalf("422 err = %v", err)
	}

	// A dead server is a transport error, not an HTTPError.
	dead := &Client{BaseURL: "http://127.0.0.1:1"}
	_, err = dead.Plan(QueryRequest{Query: testQuery()})
	if err == nil || errors.As(err, &he) {
		t.Fatalf("dead server err = %v", err)
	}
}

// TestClientDetectsBrokenStream cuts the connection mid-stream and checks
// the client reports StreamBrokenError (sjload's "dropped" signal).
func TestClientDetectsBrokenStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"header":{"plan_hash":"x","steps":["source:a"],"schema":{}}}` + "\n"))
		w.Write([]byte(`{"row":{"a":{"t":"s","v":"1"}}}` + "\n"))
		// No trailer: simulates a connection cut by a non-graceful exit.
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	_, _, _, err := cl.Query(QueryRequest{Query: testQuery()})
	var broken *StreamBrokenError
	if !errors.As(err, &broken) {
		t.Fatalf("err = %v, want StreamBrokenError", err)
	}
}
