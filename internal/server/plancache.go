package server

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"scrubjay/internal/engine"
	"scrubjay/internal/pipeline"
)

// planCache is the LRU in front of the engine's CSP search. Keys combine
// the catalog version, the join window, and the canonical query text, so a
// hot catalog reload or a different window never serves a stale plan.
// Failed searches are cached too (negative caching): a query with no
// derivation path answers instantly instead of re-searching every retry.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits, misses int64
}

type planCacheEntry struct {
	key string
	// plan is nil when err is set (negative entry).
	plan *pipeline.Plan
	err  error
	// searchMicros is the cost of the search that produced this entry.
	searchMicros int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &planCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// planKey canonicalizes a query for cache lookup: domain and value order
// must not matter (the engine treats them as sets). The key carries the
// catalog version and the statistics epoch, so both a hot catalog reload
// and newly learned statistics invalidate cached plans — and nothing else
// does.
func planKey(version, statsEpoch int64, window float64, q engine.Query) string {
	domains := append([]string(nil), q.Domains...)
	sort.Strings(domains)
	values := make([]string, 0, len(q.Values))
	for _, v := range q.Values {
		values = append(values, v.Dimension+":"+v.Units)
	}
	sort.Strings(values)
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%g|%s|%s", version, statsEpoch, window, strings.Join(domains, ","), strings.Join(values, ","))
	return b.String()
}

func (pc *planCache) get(key string) (planCacheEntry, bool) {
	return pc.lookup(key, true)
}

// getQuiet is get without touching the hit/miss counters — for a re-check
// after a lookup the caller already counted, so one request is one stat.
func (pc *planCache) getQuiet(key string) (planCacheEntry, bool) {
	return pc.lookup(key, false)
}

func (pc *planCache) lookup(key string, count bool) (planCacheEntry, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.items[key]
	if !ok {
		if count {
			pc.misses++
		}
		return planCacheEntry{}, false
	}
	if count {
		pc.hits++
	}
	pc.ll.MoveToFront(el)
	return el.Value.(planCacheEntry), true
}

func (pc *planCache) put(e planCacheEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.items[e.key]; ok {
		pc.ll.MoveToFront(el)
		el.Value = e
		return
	}
	pc.items[e.key] = pc.ll.PushFront(e)
	for pc.ll.Len() > pc.cap {
		oldest := pc.ll.Back()
		pc.ll.Remove(oldest)
		delete(pc.items, oldest.Value.(planCacheEntry).key)
	}
}

func (pc *planCache) stats() (hits, misses int64, size int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.ll.Len()
}
