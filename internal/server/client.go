package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"scrubjay/internal/obs"
	"scrubjay/internal/value"
)

// Client speaks the sjserved HTTP API using the same request/response
// structs the server serves. The CLI's client mode (scrubjay query
// -server) and the load driver (sjload) are both built on it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
}

// HTTPError is a fully received non-2xx JSON answer. Status and the
// Retry-After header are preserved so callers can distinguish load
// shedding (429/503, retryable) from request errors.
type HTTPError struct {
	Status     int
	RetryAfter string
	Message    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

// Rejected reports whether the error is the server shedding load
// (overload or draining) rather than refusing the request itself.
func (e *HTTPError) Rejected() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// StreamBrokenError is a row stream that started (HTTP 200, header
// received) but ended without a trailer: the in-flight query was dropped.
type StreamBrokenError struct {
	Cause error
	// RowsRead counts rows received before the break.
	RowsRead int64
}

func (e *StreamBrokenError) Error() string {
	return fmt.Sprintf("server: stream broken after %d rows: %v", e.RowsRead, e.Cause)
}

func (e *StreamBrokenError) Unwrap() error { return e.Cause }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// post sends a JSON body and returns the response, converting any fully
// received non-2xx answer into *HTTPError.
func (c *Client) post(path string, reqBody any) (*http.Response, error) {
	data, err := json.Marshal(reqBody)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Post(c.url(path), "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var msg ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
			return nil, fmt.Errorf("server: %d (unreadable error body: %v)", resp.StatusCode, err)
		}
		return nil, &HTTPError{
			Status:     resp.StatusCode,
			RetryAfter: resp.Header.Get("Retry-After"),
			Message:    msg.Error,
		}
	}
	return resp, nil
}

func (c *Client) postJSON(path string, reqBody, out any) error {
	resp, err := c.post(path, reqBody)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Plan runs the engine search only (POST /v1/plan).
func (c *Client) Plan(req QueryRequest) (PlanResponse, error) {
	var out PlanResponse
	err := c.postJSON("/v1/plan", req, &out)
	return out, err
}

// Query searches and executes (POST /v1/query), returning the full stream.
func (c *Client) Query(req QueryRequest) (StreamHeader, []value.Row, StreamTrailer, error) {
	resp, err := c.post("/v1/query", req)
	if err != nil {
		return StreamHeader{}, nil, StreamTrailer{}, err
	}
	return readRowStream(resp)
}

// Execute reproduces a stored plan (POST /v1/execute).
func (c *Client) Execute(req ExecuteRequest) (StreamHeader, []value.Row, StreamTrailer, error) {
	resp, err := c.post("/v1/execute", req)
	if err != nil {
		return StreamHeader{}, nil, StreamTrailer{}, err
	}
	return readRowStream(resp)
}

// Trace fetches the artifact for a recent query (GET /v1/trace/{id}).
func (c *Client) Trace(id string) (*obs.Artifact, error) {
	resp, err := c.httpClient().Get(c.url("/v1/trace/" + id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
			return nil, fmt.Errorf("server: %d (unreadable error body: %v)", resp.StatusCode, err)
		}
		return nil, &HTTPError{Status: resp.StatusCode, Message: msg.Error}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.DecodeArtifact(data)
}

// Traces lists retained trace ids, newest first (GET /v1/trace).
func (c *Client) Traces() ([]string, error) {
	resp, err := c.httpClient().Get(c.url("/v1/trace"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %d", resp.StatusCode)
	}
	var out TraceListResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.TraceIDs, nil
}

// Register installs a dataset (POST /v1/catalog/datasets).
func (c *Client) Register(req RegisterRequest) (DatasetInfo, error) {
	var out DatasetInfo
	err := c.postJSON("/v1/catalog/datasets", req, &out)
	return out, err
}

// Catalog lists the served datasets (GET /v1/catalog).
func (c *Client) Catalog() (CatalogResponse, error) {
	var out CatalogResponse
	resp, err := c.httpClient().Get(c.url("/v1/catalog"))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("server: %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// readRowStream consumes an NDJSON row stream. A stream that breaks after
// the 200 began returns *StreamBrokenError — the signal sjload uses to
// count dropped in-flight queries.
func readRowStream(resp *http.Response) (StreamHeader, []value.Row, StreamTrailer, error) {
	defer resp.Body.Close()
	var header *StreamHeader
	var trailer *StreamTrailer
	var rows []value.Row
	broken := func(cause error) (StreamHeader, []value.Row, StreamTrailer, error) {
		h := StreamHeader{}
		if header != nil {
			h = *header
		}
		return h, rows, StreamTrailer{}, &StreamBrokenError{Cause: cause, RowsRead: int64(len(rows))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return broken(fmt.Errorf("undecodable line: %w", err))
		}
		switch {
		case line.Header != nil:
			header = line.Header
		case line.Trailer != nil:
			trailer = line.Trailer
		case line.Row != nil:
			rows = append(rows, line.Row)
		}
	}
	if err := sc.Err(); err != nil {
		return broken(err)
	}
	if header == nil || trailer == nil {
		return broken(fmt.Errorf("stream ended without %s", map[bool]string{true: "header", false: "trailer"}[header == nil]))
	}
	if trailer.Error != "" {
		return *header, rows, *trailer, fmt.Errorf("server: %s", trailer.Error)
	}
	return *header, rows, *trailer, nil
}
