package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded reports that the executor and its wait queue are both full;
// the HTTP layer answers 429 with Retry-After.
var ErrOverloaded = errors.New("server: overloaded: executor queue full")

// admitter is the admission controller: a semaphore bounding concurrent
// plan searches/executions, fronted by a bounded wait queue. Work beyond
// both bounds is rejected immediately — under overload the daemon sheds
// load instead of stacking goroutines until memory or latency collapses.
// It is built from a channel and atomics only, so no lock is ever held
// across a channel operation.
type admitter struct {
	slots      chan struct{}
	queueLimit int64
	waiting    atomic.Int64
}

func newAdmitter(maxConcurrent, maxQueue int) *admitter {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admitter{slots: make(chan struct{}, maxConcurrent), queueLimit: int64(maxQueue)}
}

// acquire takes an executor slot, waiting in the bounded queue if all are
// busy. It returns ErrOverloaded when the queue is full, or ctx.Err() if
// the request's deadline expires while queued.
func (a *admitter) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queueLimit {
		a.waiting.Add(-1)
		return ErrOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admitter) release() { <-a.slots }

// inFlight reports the number of held executor slots.
func (a *admitter) inFlight() int { return len(a.slots) }

// queueDepth reports the number of requests waiting for a slot.
func (a *admitter) queueDepth() int64 { return a.waiting.Load() }
