package server

import (
	"fmt"
	"sort"
	"sync"

	"scrubjay/internal/catalog"
	"scrubjay/internal/dataset"
	"scrubjay/internal/frame"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
	"scrubjay/internal/value"
)

// Store holds the served catalog as materialized rows plus schemas. Rows
// are stored rather than datasets because an RDD is pinned to the
// rdd.Context that built it: every request gets its own Context bound to
// the request's Go context (for cancellation), and Snapshot rebuilds cheap
// lazy datasets on it. Stored row slices and schemas are immutable once
// registered — registration swaps whole entries, never mutates — so
// snapshots share them safely across requests.
type Store struct {
	mu       sync.Mutex
	datasets map[string]*storedDataset
	// version counts catalog mutations; it prefixes every plan-cache key,
	// so a hot reload naturally invalidates cached plans.
	version int64
	// stats, when attached, receives table statistics for every
	// registered dataset — the ingest half of cost-based planning.
	stats *stats.Store
}

type storedDataset struct {
	rows   []value.Row
	schema semantics.Schema
	parts  int
	// frames is the columnar form of rows, built once at registration and
	// shared by every columnar snapshot — frames are immutable, so serving
	// them concurrently is safe and each query skips the row→column pivot.
	frames []*frame.Frame
}

// NewStore returns an empty catalog store.
func NewStore() *Store {
	return &Store{datasets: map[string]*storedDataset{}}
}

// LoadDir loads every dataset in a catalog directory (see
// internal/catalog), materializing rows with a throwaway rdd context.
func (s *Store) LoadDir(dir string, workers int) error {
	rc := rdd.NewContext(workers)
	cat, schemas, err := catalog.Load(rc, dir)
	if err != nil {
		return err
	}
	for name, ds := range cat {
		rows := ds.Collect()
		if err := s.Register(name, rows, schemas[name], ds.Rows().NumPartitions(), true); err != nil {
			return err
		}
	}
	return nil
}

// Register installs (or, with replace, overwrites) a named dataset. The
// caller must not mutate rows or schema afterwards.
func (s *Store) Register(name string, rows []value.Row, schema semantics.Schema, parts int, replace bool) error {
	if name == "" {
		return fmt.Errorf("store: dataset name is required")
	}
	if len(schema) == 0 {
		return fmt.Errorf("store: dataset %q needs a schema", name)
	}
	if parts <= 0 {
		parts = 1
	}
	// Build the columnar form outside the lock: same partitioning as the
	// row form, so the two execution paths see identical data placement.
	rc := rdd.NewContext(1)
	frames := dataset.FromRowsColumnar(rc, name, rows, schema, parts).Frames().Collect()
	s.mu.Lock()
	if _, ok := s.datasets[name]; ok && !replace {
		s.mu.Unlock()
		return fmt.Errorf("store: dataset %q already registered (set replace)", name)
	}
	s.datasets[name] = &storedDataset{rows: rows, schema: schema, parts: parts, frames: frames}
	s.version++
	st := s.stats
	s.mu.Unlock()
	// Profile outside the lock: ingest scans every row, and the stats store
	// has its own synchronization.
	st.IngestRows(name, rows, schema)
	return nil
}

// AttachStats connects a statistics store: every already-registered dataset
// is profiled immediately and future registrations profile on the way in.
// A nil store detaches (and is the default — serving without statistics
// skips ingest entirely).
func (s *Store) AttachStats(st *stats.Store) {
	s.mu.Lock()
	s.stats = st
	entries := make(map[string]*storedDataset, len(s.datasets))
	for name, d := range s.datasets {
		entries[name] = d
	}
	s.mu.Unlock()
	if st == nil {
		return
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.IngestRows(name, entries[name].rows, entries[name].schema)
	}
}

// Version reports the catalog mutation counter.
func (s *Store) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Len reports the number of registered datasets.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.datasets)
}

// Schemas snapshots the dataset schemas plus the version they belong to —
// all the engine needs for its semantics-only plan search.
func (s *Store) Schemas() (map[string]semantics.Schema, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]semantics.Schema, len(s.datasets))
	for name, d := range s.datasets {
		out[name] = d.schema
	}
	return out, s.version
}

// Snapshot builds an execution catalog on the given (request-bound) rdd
// context. Dataset construction is lazy — no partition work runs here —
// and the row slices and frames are shared, so a snapshot is cheap. The
// entry refs are copied under the lock; datasets are built after it is
// released. With columnar set, datasets expose the pre-built frame form
// so derivations run on the vectorized path.
func (s *Store) Snapshot(rc *rdd.Context, columnar bool) (pipeline.Catalog, map[string]semantics.Schema, int64) {
	s.mu.Lock()
	entries := make(map[string]*storedDataset, len(s.datasets))
	for name, d := range s.datasets {
		entries[name] = d
	}
	version := s.version
	s.mu.Unlock()
	cat := make(pipeline.Catalog, len(entries))
	schemas := make(map[string]semantics.Schema, len(entries))
	for name, d := range entries {
		if columnar && d.frames != nil {
			cat[name] = dataset.FromFrames(rc, name, d.frames, d.schema)
		} else {
			cat[name] = dataset.FromRows(rc, name, d.rows, d.schema, d.parts)
		}
		schemas[name] = d.schema
	}
	return cat, schemas, version
}

// Info lists the registered datasets, sorted by name.
func (s *Store) Info() []DatasetInfo {
	s.mu.Lock()
	out := make([]DatasetInfo, 0, len(s.datasets))
	for name, d := range s.datasets {
		out = append(out, DatasetInfo{
			Name:       name,
			Rows:       int64(len(d.rows)),
			Partitions: d.parts,
			Schema:     d.schema,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
