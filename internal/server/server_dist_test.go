package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scrubjay/internal/cluster"
	"scrubjay/internal/obs"
	"scrubjay/internal/shuffle"
)

// distCluster builds a live 2-worker shuffle cluster for a server test.
func distCluster(t *testing.T, opts cluster.Options) (*cluster.Scheduler, []*shuffle.Server) {
	t.Helper()
	reg := cluster.NewRegistry("server-test", 2*time.Second, 2)
	t.Cleanup(reg.Close)
	servers := make([]*shuffle.Server, 2)
	for i := range servers {
		srv, err := shuffle.Serve("127.0.0.1:0", fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
		if _, err := reg.Register(t.Context(), srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	return cluster.NewScheduler(reg, opts), servers
}

// TestFig5BitForBitDistributed extends the TestFig5BitForBit family to a
// live 2-worker cluster: the served query's shuffles cross real TCP through
// sjworker-equivalent shuffle servers, and every row must still be
// byte-identical JSON, in the same order, as the in-process library run —
// on both the columnar and the row execution path.
func TestFig5BitForBitDistributed(t *testing.T) {
	met := obs.NewRegistry()
	sched, _ := distCluster(t, cluster.Options{Metrics: met})
	runFig5(t, Config{Workers: 2, Placement: sched}, true)
	runFig5(t, Config{Workers: 2, RowMode: true, Placement: sched}, false)
	if n := met.Counter("cluster_exchanges_total").Load(); n == 0 {
		t.Fatal("no exchange crossed the cluster: the distributed path never ran")
	} else {
		t.Logf("exchanges=%d bytes=%d", n, met.Counter("cluster_shuffle_bytes_total").Load())
	}
}

// TestFig5BitForBitDistributedWorkerFailure injects a worker death at the
// first exchange's push/fetch barrier — after map outputs land, before any
// fetch — and requires the scheduler's retry (re-push to the survivor,
// re-fetch) to complete the query with the identical bit-for-bit result.
func TestFig5BitForBitDistributedWorkerFailure(t *testing.T) {
	var mu sync.Mutex
	killed := false
	var servers []*shuffle.Server
	sched, srvs := distCluster(t, cluster.Options{
		StragglerAfter: -1, // exercise the retry path, not the backup race
		PhaseHook: func(phase, stage string) {
			mu.Lock()
			defer mu.Unlock()
			if phase == "barrier" && !killed {
				killed = true
				servers[1].Close() // unannounced death: the fetch must discover it
			}
		},
	})
	servers = srvs
	runFig5(t, Config{Workers: 2, Placement: sched}, true)
	mu.Lock()
	defer mu.Unlock()
	if !killed {
		t.Fatal("fault injection never fired: no exchange reached the barrier")
	}
	if live := sched.Registry().Live(); len(live) != 1 {
		t.Fatalf("expected 1 surviving worker, have %d", len(live))
	}
}
