package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scrubjay/internal/bench"
	"scrubjay/internal/cluster"
	"scrubjay/internal/obs"
	"scrubjay/internal/rdd"
	"scrubjay/internal/shuffle"
)

// distCluster builds a live 2-worker shuffle cluster for a server test.
func distCluster(t *testing.T, opts cluster.Options) (*cluster.Scheduler, []*shuffle.Server) {
	t.Helper()
	reg := cluster.NewRegistry("server-test", 2*time.Second, 2)
	t.Cleanup(reg.Close)
	servers := make([]*shuffle.Server, 2)
	for i := range servers {
		srv, err := shuffle.Serve("127.0.0.1:0", fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
		if _, err := reg.Register(t.Context(), srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	return cluster.NewScheduler(reg, opts), servers
}

// TestFig5BitForBitDistributed extends the TestFig5BitForBit family to a
// live 2-worker cluster: the served query's shuffles cross real TCP through
// sjworker-equivalent shuffle servers, and every row must still be
// byte-identical JSON, in the same order, as the in-process library run —
// on both the columnar and the row execution path.
func TestFig5BitForBitDistributed(t *testing.T) {
	met := obs.NewRegistry()
	sched, _ := distCluster(t, cluster.Options{Metrics: met})
	runFig5(t, Config{Workers: 2, Placement: sched}, true)
	runFig5(t, Config{Workers: 2, RowMode: true, Placement: sched}, false)
	if n := met.Counter("cluster_exchanges_total").Load(); n == 0 {
		t.Fatal("no exchange crossed the cluster: the distributed path never ran")
	} else {
		t.Logf("exchanges=%d bytes=%d", n, met.Counter("cluster_shuffle_bytes_total").Load())
	}
}

// TestFig5BitForBitDistributedWorkerFailure injects a worker death at the
// first exchange's push/fetch barrier — after map outputs land, before any
// fetch — and requires the scheduler's retry (re-push to the survivor,
// re-fetch) to complete the query with the identical bit-for-bit result.
func TestFig5BitForBitDistributedWorkerFailure(t *testing.T) {
	var mu sync.Mutex
	killed := false
	var servers []*shuffle.Server
	sched, srvs := distCluster(t, cluster.Options{
		StragglerAfter: -1, // exercise the retry path, not the backup race
		PhaseHook: func(phase, stage string) {
			mu.Lock()
			defer mu.Unlock()
			if phase == "barrier" && !killed {
				killed = true
				servers[1].Close() // unannounced death: the fetch must discover it
			}
		},
	})
	servers = srvs
	runFig5(t, Config{Workers: 2, Placement: sched}, true)
	mu.Lock()
	defer mu.Unlock()
	if !killed {
		t.Fatal("fault injection never fired: no exchange reached the barrier")
	}
	if live := sched.Registry().Live(); len(live) != 1 {
		t.Fatalf("expected 1 surviving worker, have %d", len(live))
	}
}

// TestFig5DistributedTrace is the cross-process tracing e2e: a Fig-5 query
// over 2 live TCP workers must yield ONE trace in which every exchange
// span carries at least one worker-origin child, grafted with correct
// parentage, served by GET /v1/trace/{id} and rendered by the timeline
// with per-worker rollups.
func TestFig5DistributedTrace(t *testing.T) {
	sched, _ := distCluster(t, cluster.Options{})
	cfg := bench.DefaultCaseStudyConfig()
	cfg.Racks, cfg.NodesPerRack, cfg.AMGRack = 4, 6, 2
	cfg.DAT1DurationSec = 1800
	cfg.Partitions = 4
	build := rdd.NewContext(2)
	srcCat, schemas, _ := bench.DAT1Catalog(build, cfg)

	s := New(NewStore(), Config{Workers: 2, Placement: sched})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for name, ds := range srcCat {
		resp := postJSON(t, ts.URL+"/v1/catalog/datasets", RegisterRequest{
			Name:       name,
			Schema:     schemas[name],
			Rows:       ds.Collect(),
			Partitions: ds.Rows().NumPartitions(),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: status %d: %s", name, resp.StatusCode, decodeError(t, resp))
		}
		resp.Body.Close()
	}

	resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Query: bench.Fig5Query()})
	traceID := resp.Header.Get(TraceHeader)
	_, rows, trailer := readStream(t, resp)
	if trailer.Error != "" {
		t.Fatalf("stream error: %s", trailer.Error)
	}
	if len(rows) == 0 {
		t.Fatal("query returned no rows")
	}
	if traceID == "" {
		t.Fatal("no trace id on the query response")
	}

	tresp, err := http.Get(ts.URL + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s: status %d", traceID, tresp.StatusCode)
	}
	data, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	a, err := obs.DecodeArtifact(data)
	if err != nil {
		t.Fatalf("served trace failed validation: %v", err)
	}
	if a.TraceID != traceID {
		t.Fatalf("artifact trace id %q, want %q", a.TraceID, traceID)
	}

	exchanges := 0
	for _, ex := range a.Root.FindAll(obs.KindStage) {
		if !strings.HasSuffix(ex.Name, "|shuffle-fetch") {
			continue
		}
		exchanges++
		workerKids := 0
		for _, c := range ex.Children {
			origin, _ := c.Attrs[obs.AttrOrigin].(string)
			if !strings.HasPrefix(origin, "worker@") {
				continue
			}
			workerKids++
			if c.Kind != "worker-shuffle" {
				t.Fatalf("worker-origin child of %s has kind %q", ex.Name, c.Kind)
			}
			if got := c.AttrInt(obs.AttrParentSpan); got != int64(ex.ID) {
				t.Fatalf("worker subtree under %s records parent_span=%d, exchange span id is %d",
					ex.Name, got, ex.ID)
			}
		}
		if workerKids == 0 {
			t.Fatalf("exchange span %s has no worker-origin children", ex.Name)
		}
	}
	if exchanges == 0 {
		t.Fatal("trace contains no exchange spans: the distributed path never ran")
	}

	tl := a.Timeline()
	if !strings.Contains(tl, "↳ worker@") {
		t.Fatalf("timeline lacks per-worker rollup lines:\n%s", tl)
	}
	if !strings.Contains(tl, "origin=driver") || !strings.Contains(tl, "origin=worker@") {
		t.Fatalf("timeline lacks origin columns:\n%s", tl)
	}
}
