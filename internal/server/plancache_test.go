package server

import (
	"errors"
	"fmt"
	"testing"

	"scrubjay/internal/engine"
	"scrubjay/internal/pipeline"
)

func TestPlanKeyCanonical(t *testing.T) {
	a := planKey(3, 0, 120, engine.Query{
		Domains: []string{"job", "rack"},
		Values:  []engine.QueryValue{{Dimension: "application"}, {Dimension: "temperature", Units: "degrees_celsius"}},
	})
	b := planKey(3, 0, 120, engine.Query{
		Domains: []string{"rack", "job"},
		Values:  []engine.QueryValue{{Dimension: "temperature", Units: "degrees_celsius"}, {Dimension: "application"}},
	})
	if a != b {
		t.Errorf("order-sensitive keys:\n%s\n%s", a, b)
	}
	if planKey(4, 0, 120, engine.Query{Domains: []string{"job"}}) == planKey(3, 0, 120, engine.Query{Domains: []string{"job"}}) {
		t.Error("catalog version must be part of the key")
	}
	if planKey(3, 0, 60, engine.Query{Domains: []string{"job"}}) == planKey(3, 0, 120, engine.Query{Domains: []string{"job"}}) {
		t.Error("window must be part of the key")
	}
}

func TestPlanCacheLRU(t *testing.T) {
	pc := newPlanCache(2)
	plan := &pipeline.Plan{Root: pipeline.SourceNode("a")}
	pc.put(planCacheEntry{key: "k1", plan: plan})
	pc.put(planCacheEntry{key: "k2", plan: plan})
	if _, ok := pc.get("k1"); !ok { // touch k1 so k2 is LRU
		t.Fatal("k1 missing")
	}
	pc.put(planCacheEntry{key: "k3", plan: plan})
	if _, ok := pc.get("k2"); ok {
		t.Error("k2 should have been evicted")
	}
	if _, ok := pc.get("k1"); !ok {
		t.Error("recently used k1 evicted")
	}
	if _, ok := pc.get("k3"); !ok {
		t.Error("k3 missing")
	}

	// Negative entries round-trip their error.
	wantErr := errors.New("no path")
	pc.put(planCacheEntry{key: "bad", err: wantErr})
	e, ok := pc.get("bad")
	if !ok || !errors.Is(e.err, wantErr) {
		t.Errorf("negative entry = %+v, %v", e, ok)
	}

	hits, misses, size := pc.stats()
	if hits == 0 || misses == 0 || size != 2 {
		t.Errorf("stats = %d hits, %d misses, %d size", hits, misses, size)
	}
}

func TestPlanCacheUpdateInPlace(t *testing.T) {
	pc := newPlanCache(4)
	for i := 0; i < 3; i++ {
		pc.put(planCacheEntry{key: "same", searchMicros: int64(i)})
	}
	e, ok := pc.get("same")
	if !ok || e.searchMicros != 2 {
		t.Errorf("entry = %+v", e)
	}
	if _, _, size := pc.stats(); size != 1 {
		t.Errorf("size = %d, want 1", size)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	pc := newPlanCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				pc.put(planCacheEntry{key: k})
				pc.get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if _, _, size := pc.stats(); size > 8 {
		t.Errorf("size = %d exceeds capacity", size)
	}
}
