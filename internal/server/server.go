package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"scrubjay/internal/cache"
	"scrubjay/internal/dataset"
	"scrubjay/internal/engine"
	"scrubjay/internal/frame"
	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
	"scrubjay/internal/value"
	"scrubjay/internal/wrappers"
)

// statusClientClosed is the non-standard (nginx-convention) status for a
// request whose client went away before the answer was ready.
const statusClientClosed = 499

// Config tunes the daemon. Zero values select the documented defaults.
type Config struct {
	// Workers is the rdd parallelism per request (0 = GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds simultaneously executing searches/executions
	// (default 4); MaxQueue bounds requests waiting for a slot (default
	// 64; negative means no queue at all).
	MaxConcurrent int
	MaxQueue      int
	// DefaultTimeout applies when a request carries no timeout_millis
	// (default 30s); MaxTimeout clamps client-supplied timeouts (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// PlanCacheSize is the plan-cache LRU capacity (default 256).
	PlanCacheSize int
	// WindowSeconds is the default interpolation-join window (default 120).
	WindowSeconds float64
	// Cache, when non-nil, is the shared derivation-result cache.
	Cache *cache.Cache
	// Dict defaults to semantics.DefaultDictionary().
	Dict *semantics.Dictionary
	// RowMode disables the columnar execution path: snapshots expose
	// row-form datasets and results stream through encoding/json. The zero
	// value — columnar on — is the default; row mode exists as an escape
	// hatch and for differential testing against the reference path.
	RowMode bool
	// TraceRing is how many recent query traces GET /v1/trace/{id} retains
	// (default 64; negative disables tracing entirely, leaving queries on
	// the nil-span fast path).
	TraceRing int
	// Placement, when non-nil, routes shuffle exchanges through a live
	// worker cluster (internal/cluster.Scheduler) instead of in-process
	// slice copies. Query results are bit-for-bit identical either way.
	Placement rdd.Placement
	// Stats, when non-nil, turns on cost-based planning: registered
	// datasets are profiled into it, the engine costs candidate plans
	// against it, executed query traces feed observations back through a
	// stats.Recorder, and the plan cache keys on its epoch. Strictly
	// opt-in — a nil store leaves planning byte-identical to the
	// structural heuristic.
	Stats *stats.Store
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 256
	}
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 120
	}
	if c.TraceRing == 0 {
		c.TraceRing = 64
	} else if c.TraceRing < 0 {
		c.TraceRing = 0
	}
	if c.Dict == nil {
		c.Dict = semantics.DefaultDictionary()
	}
	return c
}

// Server is the sjserved core, independent of the listening socket: it
// exposes an http.Handler, and the owning process wires it to an
// http.Server plus signal handling (see cmd/sjserved).
type Server struct {
	cfg      Config
	store    *Store
	plans    *planCache
	adm      *admitter
	met      metrics
	traces   *obs.TraceRing
	traceSeq atomic.Int64
	draining atomic.Bool
}

// New builds a Server over a loaded catalog store.
func New(store *Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		store:  store,
		plans:  newPlanCache(cfg.PlanCacheSize),
		adm:    newAdmitter(cfg.MaxConcurrent, cfg.MaxQueue),
		met:    newMetrics(),
		traces: obs.NewTraceRing(cfg.TraceRing),
	}
	// Profile the catalog into the statistics store (no-op when disabled).
	// Datasets loaded before New and ones registered after both ingest:
	// AttachStats profiles what is already there and Register keeps it
	// current.
	store.AttachStats(cfg.Stats)
	s.registerGauges()
	return s
}

// Store exposes the catalog store (for registration outside HTTP).
func (s *Server) Store() *Store { return s.store }

// StartDrain flips the server into draining mode: every new query answers
// 503 with Retry-After and /healthz fails, while requests already admitted
// run to completion. Call before http.Server.Shutdown so load balancers
// and clients back off during the drain window.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Flush persists the derivation-result cache index (graceful shutdown).
func (s *Server) Flush() error {
	if s.cfg.Cache == nil {
		return nil
	}
	return s.cfg.Cache.Flush()
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, false)
	})
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, true)
	})
	mux.HandleFunc("POST /v1/execute", s.serveExecute)
	mux.HandleFunc("GET /v1/catalog", s.serveCatalog)
	mux.HandleFunc("POST /v1/catalog/datasets", s.serveRegister)
	mux.HandleFunc("GET /v1/trace", s.serveTraceList)
	mux.HandleFunc("GET /v1/trace/{id}", s.serveTrace)
	mux.HandleFunc("GET /healthz", s.serveHealth)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.renderMetrics())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// rejectIfDraining answers 503 + Retry-After for new work during drain.
func (s *Server) rejectIfDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.met.rejected.Add(1)
	w.Header().Set("Retry-After", "2")
	writeError(w, http.StatusServiceUnavailable, "server is draining")
	return true
}

// rejectAdmission maps an admission failure to 429 (queue full) or 503
// (deadline expired while queued), both with Retry-After.
func (s *Server) rejectAdmission(w http.ResponseWriter, err error) {
	s.met.rejected.Add(1)
	w.Header().Set("Retry-After", "1")
	if errors.Is(err, ErrOverloaded) {
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "timed out waiting for an executor slot: %v", err)
}

// errStatus classifies a search/execution error: deadline → 504, client
// cancellation → 499, a distributed-exchange failure → 500, anything else
// (no derivation path, bad plan) → 422.
func (s *Server) errStatus(err error) int {
	var execFail *rdd.ExecFailure
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.canceled.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.met.canceled.Add(1)
		return statusClientClosed
	case errors.As(err, &execFail):
		s.met.failed.Add(1)
		return http.StatusInternalServerError
	default:
		s.met.failed.Add(1)
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) timeout(millis int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if millis > 0 {
		d = time.Duration(millis) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// resolvePlan answers q from the plan cache or runs the engine's CSP
// search and caches the outcome. Callers must hold an executor slot (the
// search is the expensive part the admitter exists for). Cancellation
// errors are returned but never cached; genuine search failures are cached
// negatively so a hopeless query answers instantly on retry. counted says
// the caller already did a counted cache lookup for this request, so the
// internal re-check must not inflate the hit/miss stats. search, when
// non-nil, is the request's plan-search span: a fresh search runs traced
// and mirrors the engine's decisions onto it as events.
func (s *Server) resolvePlan(ctx context.Context, window float64, q engine.Query, counted bool, search *obs.Span) (planCacheEntry, int64, bool, error) {
	schemas, version := s.store.Schemas()
	key := planKey(version, s.cfg.Stats.Epoch(), window, q)
	lookup := s.plans.get
	if counted {
		lookup = s.plans.getQuiet
	}
	if e, ok := lookup(key); ok {
		search.SetBool(obs.AttrCacheHit, true)
		return e, version, true, e.err
	}
	opts := engine.DefaultOptions()
	opts.WindowSeconds = window
	opts.Stats = s.cfg.Stats
	eng := engine.New(s.cfg.Dict, schemas, opts)
	t0 := time.Now()
	var plan *pipeline.Plan
	var err error
	if search != nil {
		var etr *engine.Trace
		plan, etr, err = eng.SolveTraced(ctx, q)
		etr.AttachTo(search)
		search.SetBool(obs.AttrCacheHit, false)
	} else {
		plan, err = eng.Solve(ctx, q)
	}
	e := planCacheEntry{key: key, plan: plan, err: err, searchMicros: time.Since(t0).Microseconds()}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return e, version, false, err
	}
	s.plans.put(e)
	return e, version, false, err
}

func (s *Server) planResponse(e planCacheEntry, version int64, hit bool) (PlanResponse, error) {
	data, err := e.plan.Encode()
	if err != nil {
		return PlanResponse{}, err
	}
	return PlanResponse{
		PlanHash:       e.plan.Hash(),
		CacheHit:       hit,
		SearchMicros:   e.searchMicros,
		CatalogVersion: version,
		StatsEpoch:     s.cfg.Stats.Epoch(),
		Steps:          e.plan.Steps(),
		Plan:           data,
	}, nil
}

// serveQuery handles POST /v1/query (planOnly=false) and POST /v1/plan
// (planOnly=true).
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, planOnly bool) {
	if s.rejectIfDraining(w) {
		return
	}
	var req QueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Domains) == 0 && len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, "query needs domains and/or values")
		return
	}
	window := s.cfg.WindowSeconds
	if req.WindowSeconds > 0 {
		window = req.WindowSeconds
	}
	execute := !planOnly && (req.Execute == nil || *req.Execute)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMillis))
	defer cancel()
	start := time.Now()
	s.met.queries.Add(1)

	if !execute {
		// Plan-only requests hit the cache before the admitter: a cached
		// plan costs no CPU worth queueing for.
		key := planKey(s.store.Version(), s.cfg.Stats.Epoch(), window, req.Query)
		e, hit := s.plans.get(key)
		if !hit {
			if err := s.adm.acquire(ctx); err != nil {
				s.rejectAdmission(w, err)
				return
			}
			var err error
			var version int64
			e, version, hit, err = s.resolvePlan(ctx, window, req.Query, true, nil)
			s.adm.release()
			if err != nil {
				writeError(w, s.errStatus(err), "plan search: %v", err)
				return
			}
			s.respondPlan(w, e, version, hit, start)
			return
		}
		if e.err != nil {
			writeError(w, s.errStatus(e.err), "plan search: %v", e.err)
			return
		}
		s.respondPlan(w, e, s.store.Version(), true, start)
		return
	}

	// Execution path: one slot covers search (on a cache miss) and the
	// pipeline run, so a request never waits in line twice. The trace id is
	// set as a response header up front so even rejections and failures
	// point at their artifact.
	tr := s.newTracer()
	qspan := tr.Start(obs.KindQuery, "query")
	if id := tr.ID(); id != "" {
		w.Header().Set(TraceHeader, id)
	}
	if err := s.adm.acquire(ctx); err != nil {
		s.finishTrace(tr, qspan, err.Error())
		s.rejectAdmission(w, err)
		return
	}
	defer s.adm.release()
	search := qspan.Child(obs.KindSearch, "plan-search")
	e, _, hit, err := s.resolvePlan(ctx, window, req.Query, false, search)
	search.End()
	if err != nil {
		s.finishTrace(tr, qspan, err.Error())
		writeError(w, s.errStatus(err), "plan search: %v", err)
		return
	}
	qspan.SetStr(obs.AttrPlanHash, e.plan.Hash())
	s.execStream(ctx, w, e.plan, hit, e.searchMicros, req.Limit, start, tr, qspan)
}

func (s *Server) respondPlan(w http.ResponseWriter, e planCacheEntry, version int64, hit bool, start time.Time) {
	resp, err := s.planResponse(e, version, hit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding plan: %v", err)
		return
	}
	s.met.lat.ObserveDuration(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// serveExecute handles POST /v1/execute: reproduce a stored derivation
// sequence against the live catalog.
func (s *Server) serveExecute(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var req ExecuteRequest
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	plan, err := pipeline.Decode(req.Plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad plan: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMillis))
	defer cancel()
	start := time.Now()
	s.met.queries.Add(1)
	tr := s.newTracer()
	qspan := tr.Start(obs.KindQuery, "execute")
	if id := tr.ID(); id != "" {
		w.Header().Set(TraceHeader, id)
	}
	if err := s.adm.acquire(ctx); err != nil {
		s.finishTrace(tr, qspan, err.Error())
		s.rejectAdmission(w, err)
		return
	}
	defer s.adm.release()
	qspan.SetStr(obs.AttrPlanHash, plan.Hash())
	s.execStream(ctx, w, plan, false, 0, req.Limit, start, tr, qspan)
}

// execStream runs a plan on a request-bound rdd context and streams the
// result as JSON lines: one header, one line per row, one trailer. Rows
// are fully collected before the header is written, so an error always
// arrives as a proper JSON status — a stream, once started, only ends
// early if the connection itself dies. The rdd context is scoped to the
// trace's execute span, so every derivation step, stage, and task lands in
// the query's artifact.
func (s *Server) execStream(ctx context.Context, w http.ResponseWriter, plan *pipeline.Plan, hit bool, searchMicros int64, limit int, start time.Time, tr *obs.Tracer, qspan *obs.Span) {
	exec := qspan.Child(obs.KindExec, "execute")
	rc := rdd.NewContext(s.cfg.Workers).WithGoContext(ctx)
	if s.cfg.Placement != nil {
		rc = rc.WithPlacement(s.cfg.Placement)
	}
	rc.SetSpan(exec)
	cat, _, version := s.store.Snapshot(rc, !s.cfg.RowMode)
	result, err := pipeline.Execute(ctx, rc, plan, cat, s.cfg.Dict, pipeline.ExecOptions{Cache: s.cfg.Cache})
	if err != nil {
		exec.End()
		s.finishTrace(tr, qspan, err.Error())
		writeError(w, s.errStatus(err), "execute: %v", err)
		return
	}
	columnar := result.IsColumnar()
	var rows []value.Row
	var frames []*frame.Frame
	if columnar {
		frames, err = rdd.Guard(func() []*frame.Frame { return result.Frames().Collect() })
	} else {
		rows, err = rdd.Guard(func() []value.Row { return result.Collect() })
	}
	if err != nil {
		exec.End()
		s.finishTrace(tr, qspan, err.Error())
		writeError(w, s.errStatus(err), "execute: %v", err)
		return
	}
	total := len(rows)
	for _, f := range frames {
		total += f.NumRows()
	}
	emitted := total
	truncated := false
	if limit > 0 && total > limit {
		emitted = limit
		truncated = true
	}
	exec.SetInt(obs.AttrRowsOut, int64(emitted))
	exec.End()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.Encode(StreamLine{Header: &StreamHeader{
		PlanHash:       plan.Hash(),
		CacheHit:       hit,
		SearchMicros:   searchMicros,
		CatalogVersion: version,
		Steps:          plan.Steps(),
		Schema:         result.Schema(),
		TraceID:        tr.ID(),
	}})
	if columnar {
		streamFrameRows(w, frames, emitted)
	} else {
		for _, row := range rows[:emitted] {
			enc.Encode(StreamLine{Row: row})
		}
	}
	enc.Encode(StreamLine{Trailer: &StreamTrailer{
		Rows:          int64(emitted),
		Truncated:     truncated,
		ElapsedMicros: time.Since(start).Microseconds(),
	}})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	s.finishTrace(tr, qspan, "")
	// Close the feedback loop: a successful traced execution feeds its
	// observed per-step rows, time, and shuffle volume back into the
	// statistics store, so the next plan search is better informed.
	if s.cfg.Stats != nil && tr != nil {
		if art := tr.Artifact(); art != nil {
			n := stats.Recorder{Store: s.cfg.Stats}.Record(plan, art.Root, nil)
			s.met.statsObserved.Add(int64(n))
		}
	}
	s.met.executed.Add(1)
	s.met.rowsOut.Add(int64(emitted))
	s.met.lat.ObserveDuration(time.Since(start))
}

// streamFrameRows writes up to limit NDJSON row lines straight out of the
// result's column vectors, bypassing encoding/json and the row boxing it
// would require. The byte output must match the row path exactly:
// AppendRowJSON renders cells in the same sorted-key, same-escaping form as
// Row.MarshalJSON, and a row with no present cells renders as the bare "{}"
// line the row path's omitempty Row field produces.
func streamFrameRows(w http.ResponseWriter, frames []*frame.Frame, limit int) {
	left := limit
	var body []byte
	for _, f := range frames {
		if left == 0 {
			break
		}
		keys := f.EncodedKeys()
		n := f.NumRows()
		for i := 0; i < n && left > 0; i, left = i+1, left-1 {
			body = append(body[:0], `{"row":`...)
			body = f.AppendRowJSON(body, i, keys)
			if len(body) == len(`{"row":{}`) { // empty row: mirror omitempty
				body = append(body[:0], "{}\n"...)
			} else {
				body = append(body, "}\n"...)
			}
			w.Write(body)
		}
	}
}

func (s *Server) serveCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CatalogResponse{Version: s.store.Version(), Datasets: s.store.Info()})
}

// serveRegister handles POST /v1/catalog/datasets: hot-reload a dataset,
// either inline (rows + schema) or from server-visible storage (source).
// The catalog version bump invalidates every cached plan.
func (s *Server) serveRegister(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var req RegisterRequest
	r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rows, schema, parts := req.Rows, req.Schema, req.Partitions
	name := req.Name
	if req.Source != nil {
		rc := rdd.NewContext(s.cfg.Workers)
		src := *req.Source
		if name == "" {
			name = src.Name
		}
		ds, err := wrappers.Read(rc, src)
		if err != nil {
			writeError(w, http.StatusBadRequest, "loading source: %v", err)
			return
		}
		rows, schema = ds.Collect(), ds.Schema()
		if parts <= 0 {
			parts = ds.Rows().NumPartitions()
		}
	} else if len(schema) == 0 {
		writeError(w, http.StatusBadRequest, "inline registration needs a schema")
		return
	} else {
		// Validate the inline dataset against the dictionary before it can
		// poison searches.
		rc := rdd.NewContext(s.cfg.Workers)
		probe := dataset.FromRows(rc, name, rows, schema, parts)
		if err := probe.Validate(s.cfg.Dict); err != nil {
			writeError(w, http.StatusBadRequest, "invalid dataset: %v", err)
			return
		}
	}
	if err := s.store.Register(name, rows, schema, parts, req.Replace); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.met.reloads.Add(1)
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name:       name,
		Rows:       int64(len(rows)),
		Partitions: parts,
		Schema:     schema,
	})
}

func (s *Server) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
