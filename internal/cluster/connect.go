package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Connect is the one-call setup the binaries use: parse a comma-separated
// worker address list, register every worker, start the heartbeat, and
// return a ready Scheduler. Close the returned scheduler's Registry when
// done.
func Connect(ctx context.Context, driverName, addrList string, opts Options) (*Scheduler, error) {
	addrs := strings.Split(addrList, ",")
	reg := NewRegistry(driverName, 5*time.Second, 4)
	n := 0
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if _, err := reg.Register(ctx, a); err != nil {
			reg.Close()
			return nil, err
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses in %q", addrList)
	}
	reg.StartHeartbeat(500*time.Millisecond, 3)
	return NewScheduler(reg, opts), nil
}
