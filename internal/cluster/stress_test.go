package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"scrubjay/internal/shuffle"
)

// TestConcurrentStress hammers one registry + scheduler from many
// goroutines mixing exchanges, heartbeat probes, registrations, and fault
// injection (worker kill + MarkFailed) over a small fleet. Run under -race
// (ci.sh does), this is the proof obligation for the driver sharing one
// scheduler across all in-flight queries. Every successful exchange's
// payload is verified against the deterministic (src, seq) merge, so a
// torn buffer or cross-shuffle mixup surfaces as wrong bytes, not just a
// race report.
func TestConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 30
		srcs       = 3
		dsts       = 4
	)
	reg := NewRegistry("stress-driver", 2*time.Second, 2)
	defer reg.Close()

	var srvMu sync.Mutex
	var servers []*shuffle.Server
	var srvSeq int
	addWorker := func() error {
		srvMu.Lock()
		srvSeq++
		id := fmt.Sprintf("sw%d", srvSeq)
		srvMu.Unlock()
		srv, err := shuffle.Serve("127.0.0.1:0", id)
		if err != nil {
			return err
		}
		if _, err := reg.Register(context.Background(), srv.Addr()); err != nil {
			srv.Close()
			return err
		}
		srvMu.Lock()
		servers = append(servers, srv)
		srvMu.Unlock()
		return nil
	}
	for i := 0; i < 3; i++ {
		if err := addWorker(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		srvMu.Lock()
		defer srvMu.Unlock()
		for _, s := range servers {
			s.Close()
		}
	}()

	sched := NewScheduler(reg, Options{StragglerAfter: -1, FetchConcurrency: 4})
	reg.StartHeartbeat(15*time.Millisecond, 3)
	defer reg.StopHeartbeat()

	enc := testEnc(srcs, dsts)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for op := 0; op < opsPerG; op++ {
				switch rng.Intn(10) {
				case 0:
					// Fault injection: kill a random worker's server. The
					// fleet only shrinks to a floor of one live worker
					// because new workers keep arriving below.
					srvMu.Lock()
					if len(servers) > 0 && len(reg.Live()) > 1 {
						servers[rng.Intn(len(servers))].Close()
					}
					srvMu.Unlock()
				case 1:
					if err := addWorker(); err != nil {
						errs <- fmt.Errorf("g%d: addWorker: %w", g, err)
						return
					}
				default:
					stage := fmt.Sprintf("g%d-op%d", g, op)
					out, err := sched.Exchange(context.Background(), stage, dsts, enc)
					if err != nil {
						// An exchange may legitimately fail when fault
						// injection outpaces registration; only silent
						// corruption is a test failure.
						continue
					}
					for d := 0; d < dsts; d++ {
						if got, want := string(out[d]), wantMerged(srcs, d); got != want {
							errs <- fmt.Errorf("g%d %s dst %d: %q != %q", g, stage, d, got, want)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
