package cluster

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"scrubjay/internal/obs"
	"scrubjay/internal/shuffle"
)

// testCluster spins up n in-process shuffle servers and a registry over
// them, returning the scheduler and the servers (indexed by registration
// order) for fault injection.
func testCluster(t *testing.T, n int, opts Options) (*Scheduler, []*shuffle.Server) {
	t.Helper()
	servers := make([]*shuffle.Server, n)
	reg := NewRegistry("driver-test", 2*time.Second, 2)
	t.Cleanup(reg.Close)
	for i := range servers {
		srv, err := shuffle.Serve("127.0.0.1:0", fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
		if _, err := reg.Register(context.Background(), srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	return NewScheduler(reg, opts), servers
}

// testEnc builds a deterministic enc[src][dst] payload matrix.
func testEnc(srcs, dsts int) [][][]byte {
	enc := make([][][]byte, srcs)
	for s := range enc {
		enc[s] = make([][]byte, dsts)
		for d := range enc[s] {
			enc[s][d] = []byte(fmt.Sprintf("<s%d-d%d>", s, d))
		}
	}
	return enc
}

// wantMerged is the contract: payloads concatenated in ascending src order.
func wantMerged(srcs, d int) string {
	var b strings.Builder
	for s := 0; s < srcs; s++ {
		fmt.Fprintf(&b, "<s%d-d%d>", s, d)
	}
	return b.String()
}

func TestExchangeMergeOrder(t *testing.T) {
	sched, _ := testCluster(t, 2, Options{})
	const srcs, dsts = 5, 7
	out, err := sched.Exchange(context.Background(), "stage-a", dsts, testEnc(srcs, dsts))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dsts; d++ {
		if got, want := string(out[d]), wantMerged(srcs, d); got != want {
			t.Fatalf("dst %d: %q, want %q", d, got, want)
		}
	}
}

// TestExchangeChunking forces multi-chunk puts and checks the (src, seq)
// merge survives chunk boundaries.
func TestExchangeChunking(t *testing.T) {
	sched, _ := testCluster(t, 2, Options{ChunkBytes: 3})
	enc := [][][]byte{
		{[]byte("aaaaaaaaaa")}, // src 0 → dst 0: 4 chunks
		{[]byte("bbbbb")},      // src 1 → dst 0: 2 chunks
	}
	out, err := sched.Exchange(context.Background(), "stage-chunk", 1, enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out[0]); got != "aaaaaaaaaabbbbb" {
		t.Fatalf("merged %q", got)
	}
}

func TestExchangeEmptyBuckets(t *testing.T) {
	sched, _ := testCluster(t, 2, Options{})
	enc := [][][]byte{
		{nil, []byte("x")},
		{nil, nil},
	}
	out, err := sched.Exchange(context.Background(), "stage-empty", 2, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 0 || string(out[1]) != "x" {
		t.Fatalf("got %q / %q", out[0], out[1])
	}
}

// TestWorkerDeathBetweenPhases kills one worker at the push/fetch barrier —
// the deterministic injection point PhaseHook exists for — and requires the
// exchange to retry onto the survivor and still produce the exact merge.
func TestWorkerDeathBetweenPhases(t *testing.T) {
	var sched *Scheduler
	var servers []*shuffle.Server
	killed := false
	metrics := obs.NewRegistry()
	sched, servers = testCluster(t, 2, Options{
		StragglerAfter: -1, // isolate the retry path
		Metrics:        metrics,
		PhaseHook: func(phase, stage string) {
			if phase == "barrier" && !killed {
				killed = true
				servers[0].Close()
				sched.Registry().MarkFailed(sched.Registry().Workers()[0])
			}
		},
	})
	const srcs, dsts = 3, 4
	out, err := sched.Exchange(context.Background(), "stage-kill", dsts, testEnc(srcs, dsts))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dsts; d++ {
		if got, want := string(out[d]), wantMerged(srcs, d); got != want {
			t.Fatalf("dst %d after worker death: %q, want %q", d, got, want)
		}
	}
	if !killed {
		t.Fatal("phase hook never fired")
	}
}

// TestWorkerDeathDetectedByFetch is the harder variant: the worker dies at
// the barrier but is NOT pre-marked — the fetch itself must discover the
// failure, mark the worker, re-push to a survivor, and recover.
func TestWorkerDeathDetectedByFetch(t *testing.T) {
	var servers []*shuffle.Server
	killed := false
	var sched *Scheduler
	sched, servers = testCluster(t, 2, Options{
		StragglerAfter: -1,
		PhaseHook: func(phase, stage string) {
			if phase == "barrier" && !killed {
				killed = true
				servers[1].Close()
			}
		},
	})
	const srcs, dsts = 2, 2
	out, err := sched.Exchange(context.Background(), "stage-kill2", dsts, testEnc(srcs, dsts))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dsts; d++ {
		if got, want := string(out[d]), wantMerged(srcs, d); got != want {
			t.Fatalf("dst %d: %q, want %q", d, got, want)
		}
	}
	live := sched.Registry().Live()
	if len(live) != 1 || live[0].ID() != "w0" {
		t.Fatalf("expected only w0 live, got %d workers", len(live))
	}
}

func TestAllWorkersDead(t *testing.T) {
	sched, servers := testCluster(t, 2, Options{StragglerAfter: -1})
	for _, srv := range servers {
		srv.Close()
	}
	for _, w := range sched.Registry().Workers() {
		sched.Registry().MarkFailed(w)
	}
	_, err := sched.Exchange(context.Background(), "stage-dead", 1, testEnc(1, 1))
	if err == nil {
		t.Fatal("exchange with no live workers succeeded")
	}
}

func TestExchangeCancellation(t *testing.T) {
	sched, _ := testCluster(t, 1, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sched.Exchange(ctx, "stage-cancel", 2, testEnc(2, 2))
	if err == nil {
		t.Fatal("cancelled exchange succeeded")
	}
}

// TestHeartbeatMarksDeadWorker verifies the registry prober notices a dead
// worker and removes it from scheduling without any exchange traffic.
func TestHeartbeatMarksDeadWorker(t *testing.T) {
	sched, servers := testCluster(t, 2, Options{})
	reg := sched.Registry()
	reg.StartHeartbeat(20*time.Millisecond, 2)
	defer reg.StopHeartbeat()
	servers[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(reg.Live()) == 1 {
			if reg.Live()[0].ID() != "w0" {
				t.Fatalf("wrong survivor %s", reg.Live()[0].ID())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("heartbeat never marked the dead worker")
}

// TestLargePayloadRoundTrip pushes a payload spanning many chunks through a
// real exchange and checks byte equality end to end.
func TestLargePayloadRoundTrip(t *testing.T) {
	sched, _ := testCluster(t, 2, Options{ChunkBytes: 64 << 10})
	big := bytes.Repeat([]byte("0123456789abcdef"), 64<<10) // 1 MiB
	enc := [][][]byte{{big}}
	out, err := sched.Exchange(context.Background(), "stage-big", 1, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[0], big) {
		t.Fatalf("large payload corrupted: %d bytes, want %d", len(out[0]), len(big))
	}
}

// TestTracedExchangeGraftsWorkerSpans runs a traced exchange over live TCP
// workers: the exchange span rides the wire, both workers record their
// side, and the scheduler grafts each shipped subtree back under the
// exchange span with correct parentage, worker attrs, and unique ids.
func TestTracedExchangeGraftsWorkerSpans(t *testing.T) {
	sched, _ := testCluster(t, 2, Options{})
	tr := obs.NewTracer("trace-graft", nil)
	root := tr.Start(obs.KindQuery, "q")
	ex := root.Child(obs.KindStage, "stage-g|shuffle-fetch")
	ctx := obs.ContextWithSpan(context.Background(), ex)

	const srcs, dsts = 2, 3
	out, err := sched.Exchange(ctx, "stage-g", dsts, testEnc(srcs, dsts))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < dsts; d++ {
		if got, want := string(out[d]), wantMerged(srcs, d); got != want {
			t.Fatalf("dst %d: %q, want %q", d, got, want)
		}
	}
	ex.End()
	root.End()

	a := tr.Artifact()
	if err := a.Check(); err != nil {
		t.Fatalf("merged artifact failed Check: %v", err)
	}
	// Both workers own destinations (3 dsts over 2 workers), so both
	// shipped a subtree, and every subtree grafts directly under ex.
	exRec := a.Root.Find(obs.KindStage)
	subs := exRec.FindAll("worker-shuffle")
	if len(subs) != 2 {
		t.Fatalf("grafted %d worker subtrees under the exchange span, want 2", len(subs))
	}
	origins := map[string]bool{}
	for _, sub := range subs {
		origin, _ := sub.Attrs[obs.AttrOrigin].(string)
		if !strings.HasPrefix(origin, "worker@") {
			t.Fatalf("subtree origin = %q", origin)
		}
		origins[origin] = true
		if got := sub.AttrInt(obs.AttrParentSpan); got != int64(ex.ID()) {
			t.Fatalf("subtree parent_span = %d, want exchange span %d", got, ex.ID())
		}
		if sub.Find("worker-put") == nil || sub.Find("worker-fetch") == nil {
			t.Fatalf("subtree missing put/fetch spans: %+v", sub)
		}
		for _, p := range sub.FindAll("worker-put") {
			if p.Attrs[obs.AttrOrigin] != sub.Attrs[obs.AttrOrigin] {
				t.Fatal("descendant origin differs from subtree origin")
			}
		}
	}
	if len(origins) != 2 {
		t.Fatalf("expected 2 distinct worker origins, got %v", origins)
	}
}

// TestHeartbeatSnapshotAndGauges: a probe stores each worker's v2 metrics
// snapshot, and the cluster_worker_* gauges aggregate it on render.
func TestHeartbeatSnapshotAndGauges(t *testing.T) {
	met := obs.NewRegistry()
	sched, _ := testCluster(t, 2, Options{Metrics: met})
	if _, err := sched.Exchange(context.Background(), "stage-hb", 2, testEnc(2, 2)); err != nil {
		t.Fatal(err)
	}
	reg := sched.Registry()
	reg.probe(3)
	var fetches int64
	for _, w := range reg.Live() {
		st := w.Stats()
		if st.Goroutines == 0 || st.HeapBytes == 0 {
			t.Fatalf("worker %s snapshot missing runtime stats: %+v", w.ID(), st)
		}
		fetches += st.Fetches
	}
	if fetches == 0 {
		t.Fatal("no worker reported fetches after an exchange")
	}
	out := met.Render()
	if !strings.Contains(out, "cluster_workers_live=2\n") {
		t.Fatalf("metrics missing live-worker gauge:\n%s", out)
	}
	for _, key := range []string{"cluster_worker_goroutines=", "cluster_worker_heap_bytes=", "cluster_worker_fetches="} {
		if !strings.Contains(out, key) || strings.Contains(out, key+"0\n") {
			t.Fatalf("gauge %s absent or zero:\n%s", key, out)
		}
	}
}
