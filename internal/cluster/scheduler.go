package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scrubjay/internal/obs"
	"scrubjay/internal/shuffle"
)

// Options tunes the Scheduler. Zero values select the defaults noted.
type Options struct {
	// FetchConcurrency bounds in-flight destination pushes and fetches —
	// the exchange backpressure (default 8).
	FetchConcurrency int
	// TaskRetries is how many times one destination's push/fetch task is
	// re-executed on a fresh worker after a failure (default 3).
	TaskRetries int
	// StragglerAfter launches a backup re-execution of a fetch task on
	// another worker when the primary has not answered within this window;
	// the first result wins (default 2s, <0 disables).
	StragglerAfter time.Duration
	// ChunkBytes caps one put payload; larger (src, dst) buckets ship as
	// sequenced chunks (default shuffle.DefaultChunkBytes).
	ChunkBytes int
	// Metrics, when set, receives exchange counters and fetch latencies.
	Metrics *obs.Registry
	// PhaseHook, when set, is called at "push", "barrier", and "fetch" of
	// every exchange — the seam fault-injection tests use to kill a worker
	// at a deterministic point mid-query.
	PhaseHook func(phase, stage string)
}

func (o Options) withDefaults() Options {
	if o.FetchConcurrency < 1 {
		o.FetchConcurrency = 8
	}
	if o.TaskRetries < 1 {
		o.TaskRetries = 3
	}
	if o.StragglerAfter == 0 {
		o.StragglerAfter = 2 * time.Second
	}
	if o.ChunkBytes < 1 {
		o.ChunkBytes = shuffle.DefaultChunkBytes
	}
	return o
}

// Scheduler plans shuffle exchanges onto the registry's live workers. It
// implements rdd.Placement.
//
// Invariants the rdd layer relies on:
//
//   - Deterministic merge order: the payload returned for destination d is
//     the concatenation of enc[src][d] in ascending (src, seq) order, no
//     matter which worker served it or how many retries it took. Workers
//     sort stored chunks by (src, seq) at fetch time.
//   - At-most-once task visibility: a destination's payload is committed to
//     the caller exactly once. Retries and straggler backups re-execute the
//     task (re-push + fetch — puts are idempotent on workers), but only the
//     first completed result is visible; the loser is discarded.
//   - Push-before-fetch: all destinations are fully pushed (barrier) before
//     any fetch is issued, so a worker never serves a partial merge.
type Scheduler struct {
	reg  *Registry
	opts Options
	seq  atomic.Int64

	metricsSet atomic.Bool
	exchanges  *obs.Counter
	retries    *obs.Counter
	stragglers *obs.Counter
	bytesOut   *obs.Counter
	fetchUS    *obs.Histogram
}

// NewScheduler builds a scheduler over reg.
func NewScheduler(reg *Registry, opts Options) *Scheduler {
	s := &Scheduler{reg: reg, opts: opts.withDefaults()}
	s.AttachMetrics(s.opts.Metrics)
	return s
}

// AttachMetrics wires the scheduler's counters and the fleet-health gauges
// into m: cluster_workers_live plus cluster_worker_* aggregates of the
// heartbeat snapshots (stored bytes, shuffles, goroutines, heap, fetch
// count summed over live workers; fetch p99 as the fleet max). Idempotent —
// the first non-nil registry wins; sjserved calls this after server
// construction so the scheduler shares the server's /metrics registry.
func (s *Scheduler) AttachMetrics(m *obs.Registry) {
	if m == nil || s.metricsSet.Swap(true) {
		return
	}
	s.exchanges = m.Counter("cluster_exchanges_total")
	s.retries = m.Counter("cluster_task_retries_total")
	s.stragglers = m.Counter("cluster_straggler_backups_total")
	s.bytesOut = m.Counter("cluster_shuffle_bytes_total")
	s.fetchUS = m.Histogram("cluster_fetch_latency", "us")
	reg := s.reg
	sum := func(f func(shuffle.WorkerStats) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, w := range reg.Live() {
				t += f(w.Stats())
			}
			return t
		}
	}
	m.GaugeFunc("cluster_workers_live", func() int64 { return int64(len(reg.Live())) })
	m.GaugeFunc("cluster_worker_stored_bytes", sum(func(st shuffle.WorkerStats) int64 { return st.StoredBytes }))
	m.GaugeFunc("cluster_worker_shuffles", sum(func(st shuffle.WorkerStats) int64 { return int64(st.Shuffles) }))
	m.GaugeFunc("cluster_worker_goroutines", sum(func(st shuffle.WorkerStats) int64 { return int64(st.Goroutines) }))
	m.GaugeFunc("cluster_worker_heap_bytes", sum(func(st shuffle.WorkerStats) int64 { return st.HeapBytes }))
	m.GaugeFunc("cluster_worker_fetches", sum(func(st shuffle.WorkerStats) int64 { return st.Fetches }))
	m.GaugeFunc("cluster_worker_fetch_p99_us", func() int64 {
		var max int64
		for _, w := range reg.Live() {
			if p := w.Stats().FetchP99us; p > max {
				max = p
			}
		}
		return max
	})
}

// Registry returns the scheduler's worker registry.
func (s *Scheduler) Registry() *Registry { return s.reg }

func (s *Scheduler) hook(phase, stage string) {
	if s.opts.PhaseHook != nil {
		s.opts.PhaseHook(phase, stage)
	}
}

// Exchange implements rdd.Placement: push every (src, dst) bucket to the
// destination's owner worker, barrier, then fetch each destination's merged
// payload. Worker failures reassign the destination to the next live worker
// and re-execute its task from the driver-retained encoded buckets.
func (s *Scheduler) Exchange(ctx context.Context, stage string, numOut int, enc [][][]byte) ([][]byte, error) {
	live := s.reg.Live()
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: no live workers")
	}
	if s.exchanges != nil {
		s.exchanges.Inc()
	}
	// The driver-side exchange span (threaded via obs.ContextWithSpan by the
	// rdd layer) becomes the trace context every put/fetch carries across
	// the wire, and the graft point for the worker subtrees collected after
	// the fetch phase. A nil span yields an empty TraceCtx: untraced.
	parent := obs.SpanFrom(ctx)
	tc := shuffle.TraceCtx{TraceID: parent.TraceID(), ParentSpan: parent.ID()}
	id := fmt.Sprintf("%s#%d", stage, s.seq.Add(1))
	owners := make([]*Worker, numOut)
	for d := range owners {
		owners[d] = live[d%len(live)]
	}

	sem := make(chan struct{}, s.opts.FetchConcurrency)
	runBounded := func(f func()) func() {
		return func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			f()
		}
	}

	// Push phase: per destination, serially push that destination's chunks
	// from every source; destinations proceed in parallel under the
	// backpressure semaphore. A failure reassigns the destination and
	// re-pushes it in full (puts are idempotent, re-sent chunks overwrite).
	s.hook("push", stage)
	errs := make([]error, numOut)
	var wg sync.WaitGroup
	for d := 0; d < numOut; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			runBounded(func() {
				w, err := s.pushWithRetry(ctx, id, stage, d, owners[d], enc, tc)
				owners[d], errs[d] = w, err
			})()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.dropAsync(id)
			return nil, err
		}
	}
	s.hook("barrier", stage)

	// Fetch phase: per destination, fetch the merged payload from its
	// owner, with retry-on-new-worker and straggler backup.
	out := make([][]byte, numOut)
	for d := 0; d < numOut; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			runBounded(func() {
				out[d], errs[d] = s.fetchWithRecovery(ctx, id, stage, d, owners[d], enc, tc)
			})()
		}()
	}
	wg.Wait()
	s.hook("fetch", stage)
	for _, err := range errs {
		if err != nil {
			s.dropAsync(id)
			return nil, err
		}
	}
	s.collectSpans(ctx, id, parent)
	s.dropAsync(id)
	return out, nil
}

// collectSpans ships every live worker's recorded span subtrees for this
// exchange back and grafts them under the driver-side exchange span,
// renumbered into the driver's trace and rebased to the exchange start,
// each stamped with its worker origin. Best-effort: a worker that fails
// here loses its spans, never the query.
func (s *Scheduler) collectSpans(ctx context.Context, id string, parent *obs.Span) {
	if parent == nil || parent.TraceID() == "" {
		return
	}
	for _, w := range s.reg.Live() {
		c, err := w.get(ctx)
		if err != nil {
			continue
		}
		recs, err := c.Spans(ctx, id, parent.TraceID())
		if err != nil {
			c.Close()
			continue
		}
		w.put(c)
		for _, rec := range recs {
			g := parent.Graft(rec, parent.Start(), "worker@"+w.addr)
			g.SetStr(obs.AttrWorker, w.addr)
			g.End() // Graft returns the subtree already ended; idempotent
		}
	}
}

// pushWithRetry pushes destination d's buckets to w, reassigning to the
// next live worker on failure. Returns the worker that holds the data.
func (s *Scheduler) pushWithRetry(ctx context.Context, id, stage string, d int, w *Worker, enc [][][]byte, tc shuffle.TraceCtx) (*Worker, error) {
	var lastErr error
	for attempt := 0; attempt <= s.opts.TaskRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return w, err
		}
		if attempt > 0 {
			if s.retries != nil {
				s.retries.Inc()
			}
			next := s.replacement(w)
			if next == nil {
				return w, fmt.Errorf("cluster: push %s dst %d: no live workers left: %w", stage, d, lastErr)
			}
			w = next
		}
		if err := s.pushDstTo(ctx, id, d, w, enc, tc); err != nil {
			lastErr = err
			s.failWorker(w, err)
			continue
		}
		return w, nil
	}
	return w, fmt.Errorf("cluster: push %s dst %d: retries exhausted: %w", stage, d, lastErr)
}

// pushDstTo ships every (src, seq) chunk for destination d to worker w on
// one pooled connection.
func (s *Scheduler) pushDstTo(ctx context.Context, id string, d int, w *Worker, enc [][][]byte, tc shuffle.TraceCtx) error {
	c, err := w.get(ctx)
	if err != nil {
		return err
	}
	for src := range enc {
		payload := enc[src][d]
		if len(payload) == 0 {
			continue
		}
		for seq := 0; len(payload) > 0; seq++ {
			chunk := payload
			if len(chunk) > s.opts.ChunkBytes {
				chunk = chunk[:s.opts.ChunkBytes]
			}
			if err := c.PutTraced(ctx, id, d, src, seq, chunk, tc); err != nil {
				c.Close()
				return err
			}
			if s.bytesOut != nil {
				s.bytesOut.Add(int64(len(chunk)))
			}
			payload = payload[len(chunk):]
		}
	}
	w.put(c)
	return nil
}

// fetchWithRecovery fetches destination d from owner, re-executing the task
// (re-push to a replacement, fetch) on failure, and racing a straggler
// backup when the primary stalls. Only the first completed payload is
// committed (at-most-once visibility).
func (s *Scheduler) fetchWithRecovery(ctx context.Context, id, stage string, d int, owner *Worker, enc [][][]byte, tc shuffle.TraceCtx) ([]byte, error) {
	type result struct {
		payload []byte
		err     error
		worker  *Worker
	}
	results := make(chan result, s.opts.TaskRetries+2)
	attempt := func(w *Worker, repush bool) {
		if repush {
			if err := s.pushDstTo(ctx, id, d, w, enc, tc); err != nil {
				results <- result{nil, err, w}
				return
			}
		}
		start := time.Now()
		payload, err := s.fetchFrom(ctx, id, d, w, tc)
		if err == nil && s.fetchUS != nil {
			s.fetchUS.ObserveDuration(time.Since(start))
		}
		results <- result{payload, err, w}
	}

	outstanding := 1
	launches := 1
	go attempt(owner, false)

	var straggler <-chan time.Time
	if s.opts.StragglerAfter > 0 {
		// A stoppable timer, not time.After: the fetch usually returns long
		// before the straggler deadline, and an unstopped timer would pin
		// its allocation (and this channel) until it fires.
		timer := time.NewTimer(s.opts.StragglerAfter)
		defer timer.Stop()
		straggler = timer.C
	}
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-straggler:
			straggler = nil
			if launches > s.opts.TaskRetries {
				continue
			}
			if next := s.replacement(owner); next != nil {
				if s.stragglers != nil {
					s.stragglers.Inc()
				}
				launches++
				outstanding++
				go attempt(next, true)
			}
		case r := <-results:
			outstanding--
			if r.err == nil {
				return r.payload, nil // first success commits; losers are discarded
			}
			lastErr = r.err
			s.failWorker(r.worker, r.err)
			if launches <= s.opts.TaskRetries {
				if next := s.replacement(r.worker); next != nil {
					if s.retries != nil {
						s.retries.Inc()
					}
					launches++
					outstanding++
					go attempt(next, true)
				}
			}
			if outstanding == 0 {
				return nil, fmt.Errorf("cluster: fetch %s dst %d failed: %w", stage, d, lastErr)
			}
		}
	}
}

func (s *Scheduler) fetchFrom(ctx context.Context, id string, d int, w *Worker, tc shuffle.TraceCtx) ([]byte, error) {
	c, err := w.get(ctx)
	if err != nil {
		return nil, err
	}
	payload, err := c.FetchTraced(ctx, id, d, tc)
	if err != nil {
		c.Close()
		return nil, err
	}
	w.put(c)
	return payload, nil
}

// failWorker marks w failed unless the error is a context cancellation —
// a query deadline is the driver's fault, not the worker's.
func (s *Scheduler) failWorker(w *Worker, err error) {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	s.reg.MarkFailed(w)
}

// replacement picks a live worker other than exclude (or any live worker
// when exclude is the only one left). Nil when the fleet is empty.
func (s *Scheduler) replacement(exclude *Worker) *Worker {
	live := s.reg.Live()
	for _, w := range live {
		if w != exclude {
			return w
		}
	}
	if len(live) > 0 {
		return live[0]
	}
	return nil
}

// dropAsync frees worker-side shuffle state in the background.
func (s *Scheduler) dropAsync(id string) {
	workers := s.reg.Live()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), s.reg.opTimeout)
		defer cancel()
		for _, w := range workers {
			if c, err := w.get(ctx); err == nil {
				if c.Drop(ctx, id) == nil {
					w.put(c)
				} else {
					c.Close()
				}
			}
		}
	}()
}
