// Package cluster is the driver-side scheduler for ScrubJay's distributed
// execution: it tracks live sjworker shard processes (registration +
// heartbeat), owns a small connection pool per worker, and implements
// rdd.Placement by planning each shuffle's destination partitions onto
// workers with per-task retry, straggler re-execution, and deadline/cancel
// propagation. It is the live counterpart of internal/rdd's simsched, which
// stays the deterministic in-process test double — the paper's 10-node
// Spark cluster (§6) maps onto a Registry of sjworkers here.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scrubjay/internal/shuffle"
)

// Worker is one registered shard worker: its exchange address, the identity
// it reported at handshake, and a pooled set of connections. Dead workers
// stay dead — the scheduler reassigns their partitions and never dials them
// again within this registry's lifetime (a restarted worker re-registers as
// a new entry).
type Worker struct {
	addr string
	id   string

	reg  *Registry
	pool chan *shuffle.Conn

	failed atomic.Bool
	misses atomic.Int32
	stats  atomic.Pointer[shuffle.WorkerStats]
}

// Addr returns the worker's exchange address.
func (w *Worker) Addr() string { return w.addr }

// ID returns the identity the worker reported at registration.
func (w *Worker) ID() string { return w.id }

// Live reports whether the worker is still schedulable.
func (w *Worker) Live() bool { return !w.failed.Load() }

// Stats returns the worker's latest heartbeat metrics snapshot (the zero
// snapshot before the first successful probe). The v2 fields stay zero for
// a v1 worker.
func (w *Worker) Stats() shuffle.WorkerStats {
	if st := w.stats.Load(); st != nil {
		return *st
	}
	return shuffle.WorkerStats{}
}

// get returns a pooled connection or dials a fresh one.
func (w *Worker) get(ctx context.Context) (*shuffle.Conn, error) {
	if !w.Live() {
		return nil, fmt.Errorf("cluster: worker %s(%s) is marked failed", w.id, w.addr)
	}
	select {
	case c := <-w.pool:
		return c, nil
	default:
		return shuffle.Dial(ctx, w.addr, w.reg.driverName, w.reg.opTimeout)
	}
}

// put returns a healthy connection to the pool (closing it when full).
func (w *Worker) put(c *shuffle.Conn) {
	if !w.Live() {
		c.Close()
		return
	}
	select {
	case w.pool <- c:
	default:
		c.Close()
	}
}

// drain closes every pooled connection.
func (w *Worker) drain() {
	for {
		select {
		case c := <-w.pool:
			c.Close()
		default:
			return
		}
	}
}

// Registry tracks the worker fleet. Registration order is stable, so
// partition ownership (dst % len(live)) is deterministic for a fixed fleet —
// part of the bit-for-bit story, though correctness never depends on which
// worker owns a partition, only on the (src, seq) merge order.
type Registry struct {
	driverName string
	opTimeout  time.Duration
	poolSize   int

	mu      sync.Mutex
	workers []*Worker

	hbStop chan struct{}
	hbDone chan struct{}
}

// NewRegistry creates an empty registry. driverName identifies this driver
// in worker handshakes; opTimeout bounds each exchange round trip.
func NewRegistry(driverName string, opTimeout time.Duration, poolSize int) *Registry {
	if opTimeout <= 0 {
		opTimeout = 5 * time.Second
	}
	if poolSize < 1 {
		poolSize = 4
	}
	return &Registry{driverName: driverName, opTimeout: opTimeout, poolSize: poolSize}
}

// Register dials addr, performs the exchange handshake, and adds the worker
// to the fleet. Returns the registered Worker.
func (r *Registry) Register(ctx context.Context, addr string) (*Worker, error) {
	w := &Worker{addr: addr, reg: r, pool: make(chan *shuffle.Conn, r.poolSize)}
	c, err := shuffle.Dial(ctx, addr, r.driverName, r.opTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: registering %s: %w", addr, err)
	}
	w.id = c.WorkerID()
	w.pool <- c
	r.mu.Lock()
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	return w, nil
}

// Live returns the schedulable workers in registration order.
func (r *Registry) Live() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := make([]*Worker, 0, len(r.workers))
	for _, w := range r.workers {
		if w.Live() {
			live = append(live, w)
		}
	}
	return live
}

// Workers returns every registered worker, live or dead.
func (r *Registry) Workers() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Worker(nil), r.workers...)
}

// MarkFailed removes a worker from scheduling and closes its connections.
// Idempotent; reports whether this call performed the transition.
func (r *Registry) MarkFailed(w *Worker) bool {
	if w.failed.Swap(true) {
		return false
	}
	w.drain()
	return true
}

// StartHeartbeat launches a background liveness prober: every interval it
// pings each live worker, and misses consecutive failures mark the worker
// failed. Stop with StopHeartbeat.
func (r *Registry) StartHeartbeat(interval time.Duration, misses int) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if misses < 1 {
		misses = 3
	}
	r.mu.Lock()
	if r.hbStop != nil {
		r.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.hbStop, r.hbDone = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.probe(misses)
			}
		}
	}()
}

// StopHeartbeat stops the prober and waits for it to exit. Safe to call
// when no heartbeat is running.
func (r *Registry) StopHeartbeat() {
	r.mu.Lock()
	stop, done := r.hbStop, r.hbDone
	r.hbStop, r.hbDone = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (r *Registry) probe(misses int) {
	for _, w := range r.Live() {
		ctx, cancel := context.WithTimeout(context.Background(), r.opTimeout)
		c, err := w.get(ctx)
		var st shuffle.WorkerStats
		if err == nil {
			st, err = c.Ping(ctx)
		}
		cancel()
		if err != nil {
			if c != nil {
				c.Close()
			}
			if int(w.misses.Add(1)) >= misses {
				r.MarkFailed(w)
			}
			continue
		}
		w.misses.Store(0)
		w.stats.Store(&st)
		w.put(c)
	}
}

// Close stops the heartbeat and closes all pooled connections.
func (r *Registry) Close() {
	r.StopHeartbeat()
	for _, w := range r.Workers() {
		w.drain()
	}
}
