package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegisterValidation(t *testing.T) {
	d := NewDict()
	if err := d.Register(Unit{Name: "", Dimension: "x", Scale: 1}); err == nil {
		t.Error("empty name should fail")
	}
	if err := d.Register(Unit{Name: "u", Dimension: "", Scale: 1}); err == nil {
		t.Error("empty dimension should fail")
	}
	if err := d.Register(Unit{Name: "u", Dimension: "x", Scale: 0}); err == nil {
		t.Error("zero scale should fail")
	}
	if err := d.Register(Unit{Name: "a/b", Dimension: "x", Scale: 1}); err == nil {
		t.Error("composite syntax in name should fail")
	}
	if err := d.Register(Unit{Name: "u", Dimension: "x", Scale: 1}); err != nil {
		t.Fatal(err)
	}
	// Identical re-registration is a no-op.
	if err := d.Register(Unit{Name: "u", Dimension: "x", Scale: 1}); err != nil {
		t.Errorf("identical re-registration should succeed: %v", err)
	}
	// Homonym: same name, different definition.
	if err := d.Register(Unit{Name: "u", Dimension: "y", Scale: 1}); err == nil {
		t.Error("homonym should fail")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister should panic on invalid unit")
		}
	}()
	NewDict().MustRegister(Unit{})
}

func TestParse(t *testing.T) {
	cases := []struct{ in, want string }{
		{"seconds", "seconds"},
		{"instructions/seconds", "instructions/seconds"},
		{"a/b/c", "a/b/c"}, // left associative
		{"list<identifier>", "list<identifier>"},
		{"list<a/b>", "list<a/b>"},
		{" seconds ", "seconds"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if e.String() != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, e.String(), c.want)
		}
	}
	// a/b/c is (a/b)/c.
	e, _ := Parse("a/b/c")
	if e.Kind != "rate" || e.Num.String() != "a/b" || e.Den.String() != "c" {
		t.Errorf("a/b/c should parse left-associative, got %v / %v", e.Num, e.Den)
	}
	for _, bad := range []string{"", "list<a", "a<b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestDimensionResolution(t *testing.T) {
	d := Default()
	cases := []struct{ unit, dim string }{
		{"seconds", "time_duration"},
		{"degrees_celsius", "temperature"},
		{"instructions/seconds", "instructions/time_duration"},
		{"list<identifier>", "list<identity>"},
	}
	for _, c := range cases {
		got, err := d.Dimension(c.unit)
		if err != nil {
			t.Fatalf("Dimension(%q): %v", c.unit, err)
		}
		if got != c.dim {
			t.Errorf("Dimension(%q) = %q, want %q", c.unit, got, c.dim)
		}
	}
	if _, err := d.Dimension("furlongs"); err == nil {
		t.Error("unknown unit should fail")
	}
	if _, err := d.Dimension("furlongs/seconds"); err == nil {
		t.Error("unknown rate numerator should fail")
	}
	if _, err := d.Dimension("list<furlongs>"); err == nil {
		t.Error("unknown list element should fail")
	}
}

func TestConvertSimple(t *testing.T) {
	d := Default()
	cases := []struct {
		v        float64
		from, to string
		want     float64
	}{
		{120, "seconds", "minutes", 2},
		{2, "hours", "minutes", 120},
		{0, "degrees_celsius", "kelvin", 273.15},
		{32, "degrees_fahrenheit", "degrees_celsius", 0},
		{100, "degrees_celsius", "degrees_fahrenheit", 212},
		{1500, "megahertz", "gigahertz", 1.5},
		{5, "seconds", "seconds", 5},
	}
	for _, c := range cases {
		got, err := d.Convert(c.v, c.from, c.to)
		if err != nil {
			t.Fatalf("Convert(%v,%q,%q): %v", c.v, c.from, c.to, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Convert(%v,%q,%q) = %v, want %v", c.v, c.from, c.to, got, c.want)
		}
	}
}

func TestConvertRates(t *testing.T) {
	d := Default()
	// 1000 instructions/second = 1 instruction/millisecond.
	got, err := d.Convert(1000, "instructions/seconds", "instructions/milliseconds")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("rate conversion = %v, want 1", got)
	}
	// 60 counts/minute = 1 count/second.
	got, err = d.Convert(60, "count/minutes", "count/seconds")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("rate conversion = %v, want 1", got)
	}
}

func TestConvertErrors(t *testing.T) {
	d := Default()
	if _, err := d.Convert(1, "seconds", "watts"); err == nil {
		t.Error("cross-dimension conversion should fail")
	}
	if _, err := d.Convert(1, "nope", "watts"); err == nil {
		t.Error("unknown unit should fail")
	}
	if _, err := d.Convert(1, "list<identifier>", "list<identifier>x"); err == nil {
		t.Error("bad list conversion should fail")
	}
	if _, err := d.Convert(1, "seconds/watts", "watts/seconds"); err == nil {
		t.Error("inverted rate dimensions should fail")
	}
}

func TestConvertible(t *testing.T) {
	d := Default()
	if !d.Convertible("seconds", "minutes") {
		t.Error("seconds~minutes")
	}
	if d.Convertible("seconds", "watts") {
		t.Error("seconds!~watts")
	}
	if d.Convertible("bogus", "watts") {
		t.Error("unknown unit is not convertible")
	}
}

func TestHelpers(t *testing.T) {
	if Rate("a", "b") != "a/b" {
		t.Error("Rate")
	}
	if ListOf("x") != "list<x>" {
		t.Error("ListOf")
	}
	if e, ok := IsList("list<identifier>"); !ok || e != "identifier" {
		t.Error("IsList positive")
	}
	if _, ok := IsList("identifier"); ok {
		t.Error("IsList negative")
	}
}

func TestNamesSorted(t *testing.T) {
	d := Default()
	names := d.Names()
	if len(names) == 0 {
		t.Fatal("default dict should not be empty")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	if _, ok := d.Lookup("seconds"); !ok {
		t.Error("seconds should be registered")
	}
}

func TestQuickConversionRoundTrip(t *testing.T) {
	d := Default()
	pairs := [][2]string{
		{"seconds", "minutes"},
		{"degrees_celsius", "degrees_fahrenheit"},
		{"watts", "kilowatts"},
		{"instructions/seconds", "instructions/milliseconds"},
	}
	prop := func(v float64, pick uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
		p := pairs[int(pick)%len(pairs)]
		mid, err := d.Convert(v, p[0], p[1])
		if err != nil {
			return false
		}
		back, err := d.Convert(mid, p[1], p[0])
		if err != nil {
			return false
		}
		return math.Abs(back-v) <= 1e-6*(1+math.Abs(v))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickConversionComposesThroughBase(t *testing.T) {
	d := Default()
	prop := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
		// hours -> seconds -> minutes must equal hours -> minutes.
		s, err := d.Convert(v, "hours", "seconds")
		if err != nil {
			return false
		}
		m1, err := d.Convert(s, "seconds", "minutes")
		if err != nil {
			return false
		}
		m2, err := d.Convert(v, "hours", "minutes")
		if err != nil {
			return false
		}
		return math.Abs(m1-m2) <= 1e-6*(1+math.Abs(m2))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEnergyAndCurrentUnits(t *testing.T) {
	d := Default()
	got, err := d.Convert(1, "kilowatt_hours", "joules")
	if err != nil || math.Abs(got-3.6e6) > 1e-6 {
		t.Errorf("1 kWh = %v J, %v", got, err)
	}
	got, err = d.Convert(2500, "milliamperes", "amperes")
	if err != nil || math.Abs(got-2.5) > 1e-12 {
		t.Errorf("2500 mA = %v A, %v", got, err)
	}
	// Energy = power x time: joules/seconds has the power-family dimension
	// structure (energy/time_duration).
	dim, err := d.Dimension("joules/seconds")
	if err != nil || dim != "energy/time_duration" {
		t.Errorf("joules/seconds dimension = %q, %v", dim, err)
	}
}
