package units

// Default returns the dictionary of units that ship with ScrubJay. It covers
// the sources in the paper's case studies: facility sensors (temperature,
// power, humidity), scheduler logs (times, spans, node identifiers), and
// node/CPU counters (counts, frequencies, bytes). Users extend it with
// Register; entries here follow the paper's "t_seconds vs d_seconds"
// synonym/homonym discipline by using one canonical name per unit.
func Default() *Dict {
	d := NewDict()
	for _, u := range []Unit{
		// Time. Base: seconds.
		{Name: "seconds", Dimension: "time_duration", Scale: 1},
		{Name: "milliseconds", Dimension: "time_duration", Scale: 1e-3},
		{Name: "microseconds", Dimension: "time_duration", Scale: 1e-6},
		{Name: "nanoseconds", Dimension: "time_duration", Scale: 1e-9},
		{Name: "minutes", Dimension: "time_duration", Scale: 60},
		{Name: "hours", Dimension: "time_duration", Scale: 3600},

		// Instants and spans on the time dimension. These are structural:
		// the value kind (time / span) carries the representation, and the
		// unit records it for the derivation engine.
		{Name: "datetime", Dimension: "time", Scale: 1},
		{Name: "timespan", Dimension: "time_interval", Scale: 1},

		// Temperature. Base: kelvin.
		{Name: "kelvin", Dimension: "temperature", Scale: 1},
		{Name: "degrees_celsius", Dimension: "temperature", Scale: 1, Offset: 273.15},
		{Name: "degrees_fahrenheit", Dimension: "temperature", Scale: 5.0 / 9.0, Offset: 255.3722222222222},
		// Temperature differences (heat proxy in §7.2) have no offset.
		{Name: "delta_celsius", Dimension: "temperature_difference", Scale: 1},

		// Power. Base: watts.
		{Name: "watts", Dimension: "power", Scale: 1},
		{Name: "kilowatts", Dimension: "power", Scale: 1e3},
		{Name: "megawatts", Dimension: "power", Scale: 1e6},

		// Energy. Base: joules.
		{Name: "joules", Dimension: "energy", Scale: 1},
		{Name: "kilojoules", Dimension: "energy", Scale: 1e3},
		{Name: "watt_hours", Dimension: "energy", Scale: 3600},
		{Name: "kilowatt_hours", Dimension: "energy", Scale: 3.6e6},

		// Electrical current and cooling (Figure 1: power draw, cooling
		// usage). Base: amperes; fan speed in revolutions per minute.
		{Name: "amperes", Dimension: "current", Scale: 1},
		{Name: "milliamperes", Dimension: "current", Scale: 1e-3},
		{Name: "rpm", Dimension: "fan_speed", Scale: 1},

		// Frequency. Base: hertz.
		{Name: "hertz", Dimension: "frequency", Scale: 1},
		{Name: "kilohertz", Dimension: "frequency", Scale: 1e3},
		{Name: "megahertz", Dimension: "frequency", Scale: 1e6},
		{Name: "gigahertz", Dimension: "frequency", Scale: 1e9},

		// Information. Base: bytes.
		{Name: "bytes", Dimension: "information", Scale: 1},
		{Name: "kilobytes", Dimension: "information", Scale: 1e3},
		{Name: "megabytes", Dimension: "information", Scale: 1e6},
		{Name: "gigabytes", Dimension: "information", Scale: 1e9},

		// Dimensionless counts and fractions.
		{Name: "count", Dimension: "count", Scale: 1},
		{Name: "instructions", Dimension: "instructions", Scale: 1},
		{Name: "cycles", Dimension: "cycles", Scale: 1},
		{Name: "operations", Dimension: "operations", Scale: 1},
		{Name: "percent", Dimension: "fraction", Scale: 0.01},
		{Name: "fraction", Dimension: "fraction", Scale: 1},
		{Name: "relative_humidity_percent", Dimension: "humidity", Scale: 0.01},

		// Identifiers: discrete, unordered labels. One identifier unit per
		// identified resource keeps dimensions distinct (a node id is not a
		// rack id).
		{Name: "identifier", Dimension: "identity", Scale: 1},
	} {
		d.MustRegister(u)
	}
	return d
}
