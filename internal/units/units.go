// Package units implements ScrubJay's unit type system (§4.2 of the paper).
//
// A unit names the scale in which a measurement was recorded ("degrees
// Celsius", "seconds"). Units live on dimensions; only units sharing a
// dimension are interconvertible. Conversions are affine (scale + offset),
// which covers every physical unit in HPC monitoring data. The package also
// recognizes two structural composites: rate units written "num/den"
// (e.g. "instructions/second") and list units written "list<elem>"
// (e.g. "list<node_id>"), matching the paper's derived units.
package units

import (
	"fmt"
	"sort"
	"strings"
)

// Unit is a single entry in the unit dictionary.
type Unit struct {
	// Name is the canonical unit name. Names are unique within a
	// dictionary: the semantic dictionary forbids homonyms.
	Name string
	// Dimension is the physical or conceptual dimension the unit measures
	// (e.g. "time", "temperature"). Units convert only within a dimension.
	Dimension string
	// Scale and Offset define the affine map to the dimension's base unit:
	// base = value*Scale + Offset.
	Scale  float64
	Offset float64
}

// Dict is a dictionary of units. The zero value is empty; use NewDict or
// Default.
type Dict struct {
	units map[string]Unit
}

// NewDict returns an empty unit dictionary.
func NewDict() *Dict {
	return &Dict{units: make(map[string]Unit)}
}

// Register adds a unit. Registering the same name twice with a different
// definition is a homonym and returns an error; re-registering an identical
// definition is a no-op (so shared dictionaries merge cleanly).
func (d *Dict) Register(u Unit) error {
	if u.Name == "" {
		return fmt.Errorf("units: unit name must be non-empty")
	}
	if u.Dimension == "" {
		return fmt.Errorf("units: unit %q must name a dimension", u.Name)
	}
	if u.Scale == 0 {
		return fmt.Errorf("units: unit %q must have a non-zero scale", u.Name)
	}
	if strings.ContainsAny(u.Name, "/<>") {
		return fmt.Errorf("units: unit name %q may not contain composite syntax characters", u.Name)
	}
	if prev, ok := d.units[u.Name]; ok {
		if prev != u {
			return fmt.Errorf("units: homonym: %q already registered with a different definition", u.Name)
		}
		return nil
	}
	d.units[u.Name] = u
	return nil
}

// MustRegister is Register but panics on error; for building dictionaries in
// package initialization.
func (d *Dict) MustRegister(u Unit) {
	if err := d.Register(u); err != nil {
		panic(err)
	}
}

// Lookup returns the unit definition for a simple (non-composite) name.
func (d *Dict) Lookup(name string) (Unit, bool) {
	u, ok := d.units[name]
	return u, ok
}

// Names returns all registered simple unit names, sorted.
func (d *Dict) Names() []string {
	names := make([]string, 0, len(d.units))
	for n := range d.units {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Expr is a parsed unit expression: a simple unit, a rate, or a list.
type Expr struct {
	// Kind is one of "simple", "rate", "list".
	Kind string
	// Name is set for simple units.
	Name string
	// Num and Den are set for rate units.
	Num, Den *Expr
	// Elem is set for list units.
	Elem *Expr
}

// String renders the expression back to its canonical written form.
func (e *Expr) String() string {
	switch e.Kind {
	case "simple":
		return e.Name
	case "rate":
		return e.Num.String() + "/" + e.Den.String()
	case "list":
		return "list<" + e.Elem.String() + ">"
	default:
		return "?"
	}
}

// Parse parses a unit expression: NAME, NUM/DEN, or list<ELEM>.
// Rates associate left: "a/b/c" parses as "(a/b)/c".
func Parse(s string) (*Expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("units: empty unit expression")
	}
	if strings.HasPrefix(s, "list<") {
		if !strings.HasSuffix(s, ">") {
			return nil, fmt.Errorf("units: unterminated list unit %q", s)
		}
		elem, err := Parse(s[len("list<") : len(s)-1])
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: "list", Elem: elem}, nil
	}
	// Split on the last top-level '/' (outside any list<>).
	depth := 0
	slash := -1
	for i, r := range s {
		switch r {
		case '<':
			depth++
		case '>':
			depth--
		case '/':
			if depth == 0 {
				slash = i
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("units: unbalanced angle brackets in %q", s)
	}
	if slash >= 0 {
		num, err := Parse(s[:slash])
		if err != nil {
			return nil, err
		}
		den, err := Parse(s[slash+1:])
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: "rate", Num: num, Den: den}, nil
	}
	return &Expr{Kind: "simple", Name: s}, nil
}

// Dimension resolves the dimension of a unit expression against the
// dictionary. Rates have dimension "num_dim/den_dim"; lists have
// "list<elem_dim>".
func (d *Dict) Dimension(expr string) (string, error) {
	e, err := Parse(expr)
	if err != nil {
		return "", err
	}
	return d.dimensionOf(e)
}

func (d *Dict) dimensionOf(e *Expr) (string, error) {
	switch e.Kind {
	case "simple":
		u, ok := d.units[e.Name]
		if !ok {
			return "", fmt.Errorf("units: unknown unit %q", e.Name)
		}
		return u.Dimension, nil
	case "rate":
		nd, err := d.dimensionOf(e.Num)
		if err != nil {
			return "", err
		}
		dd, err := d.dimensionOf(e.Den)
		if err != nil {
			return "", err
		}
		return nd + "/" + dd, nil
	case "list":
		ed, err := d.dimensionOf(e.Elem)
		if err != nil {
			return "", err
		}
		return "list<" + ed + ">", nil
	default:
		return "", fmt.Errorf("units: bad expression kind %q", e.Kind)
	}
}

// Convert converts a scalar from one unit expression to another. Both must
// resolve to the same dimension. Affine offsets apply only to simple->simple
// conversions; composite conversions are purely linear (a rate like
// celsius/second has no meaningful offset).
func (d *Dict) Convert(v float64, from, to string) (float64, error) {
	if from == to {
		return v, nil
	}
	fe, err := Parse(from)
	if err != nil {
		return 0, err
	}
	te, err := Parse(to)
	if err != nil {
		return 0, err
	}
	fd, err := d.dimensionOf(fe)
	if err != nil {
		return 0, err
	}
	td, err := d.dimensionOf(te)
	if err != nil {
		return 0, err
	}
	if fd != td {
		return 0, fmt.Errorf("units: cannot convert %q (%s) to %q (%s): different dimensions", from, fd, to, td)
	}
	if fe.Kind == "simple" && te.Kind == "simple" {
		fu := d.units[fe.Name]
		tu := d.units[te.Name]
		base := v*fu.Scale + fu.Offset
		return (base - tu.Offset) / tu.Scale, nil
	}
	if fe.Kind == "list" || te.Kind == "list" {
		return 0, fmt.Errorf("units: list units are not scalar-convertible")
	}
	fs, err := d.linearScale(fe)
	if err != nil {
		return 0, err
	}
	ts, err := d.linearScale(te)
	if err != nil {
		return 0, err
	}
	return v * fs / ts, nil
}

// linearScale returns the multiplicative factor from the expression to the
// base units of its dimension, ignoring offsets (valid for rates).
func (d *Dict) linearScale(e *Expr) (float64, error) {
	switch e.Kind {
	case "simple":
		u, ok := d.units[e.Name]
		if !ok {
			return 0, fmt.Errorf("units: unknown unit %q", e.Name)
		}
		return u.Scale, nil
	case "rate":
		n, err := d.linearScale(e.Num)
		if err != nil {
			return 0, err
		}
		de, err := d.linearScale(e.Den)
		if err != nil {
			return 0, err
		}
		return n / de, nil
	default:
		return 0, fmt.Errorf("units: expression %q has no linear scale", e.String())
	}
}

// Convertible reports whether two unit expressions share a dimension (and
// therefore can be converted).
func (d *Dict) Convertible(from, to string) bool {
	fd, err := d.Dimension(from)
	if err != nil {
		return false
	}
	td, err := d.Dimension(to)
	if err != nil {
		return false
	}
	return fd == td
}

// Rate builds the canonical rate unit name num/den.
func Rate(num, den string) string { return num + "/" + den }

// ListOf builds the canonical list unit name list<elem>.
func ListOf(elem string) string { return "list<" + elem + ">" }

// IsList reports whether a unit expression is a list unit, returning the
// element expression text when so.
func IsList(expr string) (string, bool) {
	if strings.HasPrefix(expr, "list<") && strings.HasSuffix(expr, ">") {
		return expr[len("list<") : len(expr)-1], true
	}
	return "", false
}
