package stats

import (
	"sort"
	"strings"

	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
)

// StepActual is the observed cost of one executed plan step, reconstructed
// from a query's span tree. Row counts are -1 when the trace did not
// materialize the corresponding RDD (lazy steps fuse into their consumer).
type StepActual struct {
	// Derivation is the step's derivation name (the step span name).
	Derivation string `json:"derivation"`
	// Key is the DerivationKey the observation files under.
	Key string `json:"key"`
	// RowsIn and RowsOut are observed input/output row counts; -1 = unknown.
	RowsIn  int64 `json:"rows_in"`
	RowsOut int64 `json:"rows_out"`
	// Micros is the step span's wall time. Lazy upstream work that only
	// materialized inside this step is attributed here — observed cost is
	// charged at materialization barriers, matching how it was paid.
	Micros int64 `json:"micros"`
	// ShuffleBytes sums distributed exchange volume under the step.
	ShuffleBytes int64 `json:"shuffle_bytes"`
	// CacheHit marks a step served from the derivation cache: the subtree
	// never ran, so nothing below it was observed.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// infraSegments are RDD lineage segments that carry rows through unchanged
// (1:1 maps, representation changes, shuffle plumbing). Dropping them from a
// stage name leaves the plan-level lineage whose row count the stage
// observed.
var infraSegments = map[string]bool{
	"shuffle-write":     true,
	"shuffle-read":      true,
	"exchange":          true,
	"exchange-write":    true,
	"collect":           true,
	"count":             true,
	"mapPartitions":     true,
	"cogroup-left":      true,
	"cogroup-right":     true,
	"interp-tag":        true,
	"interp-candidates": true,
	"groupByKey":        true,
	"unbox":             true,
	"box":               true,
}

// batchSegments mark columnar hash-join exchange stages: their row counts
// are batch counts, not row counts, so any lineage containing one is
// useless for cardinality observation.
var batchSegments = map[string]bool{
	"left":  true,
	"right": true,
}

// Actuals reconstructs per-step observed costs for an executed plan from
// its trace. root may be the query span or the execute span. sourceRows
// optionally supplies known source cardinalities (e.g. from ingest) for
// inputs the trace itself never counted. Returns nil when the trace does
// not contain a step sequence matching the plan.
func Actuals(plan *pipeline.Plan, root *obs.SpanRecord, sourceRows map[string]int64) []StepActual {
	if plan == nil || plan.Root == nil || root == nil {
		return nil
	}
	exec := root
	if exec.Kind != obs.KindExec {
		if exec = root.Find(obs.KindExec); exec == nil {
			return nil
		}
	}
	m := &matcher{rows: lineageRows(exec), sources: sourceRows, ok: true}
	for _, c := range exec.Children {
		if c.Kind == obs.KindStep {
			m.steps = append(m.steps, c)
		}
	}
	m.node(plan.Root)
	if !m.ok {
		return nil
	}
	return m.out
}

// lineageRows scans every stage span under exec and maps canonical plan
// lineage → observed row count. Stage names are RDD lineage strings; a
// stage's rows_out counts the rows of the lineage left after infrastructure
// segments are dropped.
func lineageRows(exec *obs.SpanRecord) map[string]int64 {
	rows := map[string]int64{}
	for _, st := range exec.FindAll(obs.KindStage) {
		if st.Attrs == nil {
			continue
		}
		if _, ok := st.Attrs[obs.AttrRowsOut]; !ok {
			continue
		}
		if lin := canonicalLineage(st.Name); lin != "" {
			rows[lin] = st.AttrInt(obs.AttrRowsOut)
		}
	}
	return rows
}

// canonicalLineage normalizes an RDD lineage string to the param-free form
// nodeLineage produces for plan nodes: infrastructure segments dropped,
// transform parameters stripped, combine arguments recursively normalized.
// Returns "" for lineages that cannot correspond to a plan node.
func canonicalLineage(name string) string {
	segs := splitTop(name, '|')
	var kept []string
	for i, seg := range segs {
		base, args, hasArgs := splitCall(seg)
		if infraSegments[base] {
			continue
		}
		if batchSegments[base] {
			return ""
		}
		if i == 0 && hasArgs {
			// A parenthesized head is a combine call: its arguments are
			// full lineages of the two sides.
			var inner []string
			for _, a := range splitTop(args, ',') {
				c := canonicalLineage(a)
				if c == "" {
					return ""
				}
				inner = append(inner, c)
			}
			kept = append(kept, base+"("+strings.Join(inner, ",")+")")
			continue
		}
		// Sources and transforms keep only their name.
		kept = append(kept, base)
	}
	return strings.Join(kept, "|")
}

// splitTop splits s on sep at parenthesis depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// splitCall splits "name(args)" into name and args; hasArgs reports whether
// the segment had a parenthesized tail.
func splitCall(seg string) (base, args string, hasArgs bool) {
	i := strings.IndexByte(seg, '(')
	if i < 0 || !strings.HasSuffix(seg, ")") {
		return seg, "", false
	}
	return seg[:i], seg[i+1 : len(seg)-1], true
}

// nodeLineage renders a plan node in the same canonical form
// canonicalLineage produces from stage names.
func nodeLineage(n *pipeline.Node, memo map[*pipeline.Node]string) string {
	if s, ok := memo[n]; ok {
		return s
	}
	var s string
	switch n.Kind {
	case pipeline.KindSource:
		s = n.Dataset
	case pipeline.KindCombine:
		s = n.Derivation + "(" + nodeLineage(n.Inputs[0], memo) + "," + nodeLineage(n.Inputs[1], memo) + ")"
	default:
		s = nodeLineage(n.Inputs[0], memo) + "|" + n.Derivation
	}
	memo[n] = s
	return s
}

// NodeSources returns the sorted set of source dataset names feeding a plan
// subtree — the input identity DerivationKey files observations under.
func NodeSources(n *pipeline.Node) []string {
	set := map[string]bool{}
	var walk func(*pipeline.Node)
	walk = func(n *pipeline.Node) {
		if n == nil {
			return
		}
		if n.Kind == pipeline.KindSource {
			set[n.Dataset] = true
			return
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NodeKey builds the DerivationKey for one plan node: its derivation name
// plus the source set of each input subtree.
func NodeKey(n *pipeline.Node) string {
	inputs := make([][]string, 0, len(n.Inputs))
	for _, in := range n.Inputs {
		inputs = append(inputs, NodeSources(in))
	}
	return DerivationKey(n.Derivation, inputs...)
}

// matcher consumes the exec span's flat, post-ordered step children while
// walking the plan tree, mirroring pipeline.execNode: inputs first, then
// the node's own step span. A cache-hit step span stands in for its whole
// subtree (the subtree never executed).
type matcher struct {
	steps   []*obs.SpanRecord
	i       int
	rows    map[string]int64
	sources map[string]int64
	memo    map[*pipeline.Node]string
	out     []StepActual
	ok      bool
}

func (m *matcher) node(n *pipeline.Node) {
	if !m.ok || n == nil || n.Kind == pipeline.KindSource {
		return
	}
	if m.i < len(m.steps) {
		if sp := m.steps[m.i]; sp.Name == n.Derivation && sp.AttrBool(obs.AttrCacheHit) {
			m.i++
			m.out = append(m.out, StepActual{
				Derivation: n.Derivation, Key: NodeKey(n),
				RowsIn: -1, RowsOut: -1,
				Micros: sp.DurationMicros, CacheHit: true,
			})
			return
		}
	}
	for _, in := range n.Inputs {
		m.node(in)
	}
	if !m.ok {
		return
	}
	if m.i >= len(m.steps) || m.steps[m.i].Name != n.Derivation {
		m.ok = false
		return
	}
	sp := m.steps[m.i]
	m.i++
	a := StepActual{
		Derivation: n.Derivation, Key: NodeKey(n),
		RowsIn: -1, RowsOut: m.nodeRows(n),
		Micros: sp.DurationMicros, ShuffleBytes: shuffleBytesUnder(sp),
	}
	in, known := int64(0), true
	for _, input := range n.Inputs {
		r := m.nodeRows(input)
		if r < 0 {
			known = false
			break
		}
		in += r
	}
	if known {
		a.RowsIn = in
	}
	m.out = append(m.out, a)
}

// nodeRows resolves a plan subtree's observed row count: a stage that
// materialized its lineage, or (for sources) the supplied cardinalities.
func (m *matcher) nodeRows(n *pipeline.Node) int64 {
	if m.memo == nil {
		m.memo = map[*pipeline.Node]string{}
	}
	if r, ok := m.rows[nodeLineage(n, m.memo)]; ok {
		return r
	}
	if n.Kind == pipeline.KindSource {
		if r, ok := m.sources[n.Dataset]; ok {
			return r
		}
	}
	return -1
}

// shuffleBytesUnder sums distributed exchange volume across a step's stage
// descendants.
func shuffleBytesUnder(sp *obs.SpanRecord) int64 {
	var total int64
	for _, st := range sp.FindAll(obs.KindStage) {
		total += st.AttrInt(obs.AttrShuffleBytes)
	}
	return total
}

// Recorder feeds executed-query observations into a Store. The server
// installs one and calls Record after each successful traced query.
type Recorder struct {
	Store *Store
}

// Record extracts per-step actuals from a finished query trace and merges
// every informative one (ran for real, output count observed) into the
// store. When sourceRows is nil the store's own ingested table
// cardinalities stand in for source row counts the trace never
// materialized. Returns how many observations were recorded.
func (r Recorder) Record(plan *pipeline.Plan, root *obs.SpanRecord, sourceRows map[string]int64) int {
	if r.Store == nil || plan == nil || plan.Root == nil {
		return 0
	}
	if sourceRows == nil {
		sourceRows = map[string]int64{}
		for _, src := range NodeSources(plan.Root) {
			if t, ok := r.Store.Table(src); ok {
				sourceRows[src] = t.Rows
			}
		}
	}
	n := 0
	for _, a := range Actuals(plan, root, sourceRows) {
		if a.CacheHit || a.RowsOut < 0 {
			continue
		}
		in := a.RowsIn
		if in < 0 {
			in = 0
		}
		r.Store.Observe(a.Key, DerivationStats{
			Observations: 1,
			RowsIn:       in,
			RowsOut:      a.RowsOut,
			Micros:       a.Micros,
			ShuffleBytes: a.ShuffleBytes,
		})
		n++
	}
	return n
}
