// Package stats is ScrubJay's statistics store: the evidence base for
// cost-based derivation planning. It holds two kinds of facts:
//
//   - Table statistics (row counts, per-column distinct counts and numeric
//     ranges), computed at ingest time from the registered rows.
//   - Derivation statistics (observed row selectivity, per-row CPU time,
//     and shuffle volume), learned from executed queries' internal/obs span
//     trees via the Recorder.
//
// The engine's physical costing reads the store through nil-safe lookups:
// a missing fact yields a conservative default and leaves the estimate
// marked uninformed, so an empty store reproduces the structural heuristic
// exactly. Every mutation that could change a planning decision bumps the
// store's epoch; the serving layer keys its plan cache on the epoch so
// learned statistics invalidate stale plans (and only then).
//
// Serialization is deterministic — keys sort, floats round-trip — so a
// persisted store is diffable and golden-testable.
package stats

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// ColumnStats summarizes one column of an ingested dataset.
type ColumnStats struct {
	// NDV is the number of distinct values observed.
	NDV int64 `json:"ndv"`
	// Min/Max bound the numeric (or time, in seconds) values; meaningful
	// only when HasRange is set.
	Min      float64 `json:"min,omitempty"`
	Max      float64 `json:"max,omitempty"`
	HasRange bool    `json:"has_range,omitempty"`
}

// TableStats summarizes one ingested dataset.
type TableStats struct {
	Rows    int64                  `json:"rows"`
	Columns map[string]ColumnStats `json:"columns,omitempty"`
}

// DerivationStats accumulates observed executions of one derivation (keyed
// exactly by derivation + input source sets, or aggregated by derivation
// name). Sums, not averages, are stored so observations merge losslessly.
type DerivationStats struct {
	Observations int64 `json:"observations"`
	RowsIn       int64 `json:"rows_in"`
	RowsOut      int64 `json:"rows_out"`
	Micros       int64 `json:"micros"`
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
}

// Selectivity reports observed rows-out per row-in, when the evidence
// includes input rows.
func (d DerivationStats) Selectivity() (float64, bool) {
	if d.RowsIn <= 0 {
		return 0, false
	}
	return float64(d.RowsOut) / float64(d.RowsIn), true
}

// MicrosPerRow reports observed wall microseconds per input row.
func (d DerivationStats) MicrosPerRow() (float64, bool) {
	if d.RowsIn <= 0 {
		return 0, false
	}
	return float64(d.Micros) / float64(d.RowsIn), true
}

// BytesPerRow reports observed shuffle bytes per input row.
func (d DerivationStats) BytesPerRow() (float64, bool) {
	if d.RowsIn <= 0 || d.ShuffleBytes <= 0 {
		return 0, false
	}
	return float64(d.ShuffleBytes) / float64(d.RowsIn), true
}

func (d DerivationStats) add(o DerivationStats) DerivationStats {
	d.Observations += o.Observations
	d.RowsIn += o.RowsIn
	d.RowsOut += o.RowsOut
	d.Micros += o.Micros
	d.ShuffleBytes += o.ShuffleBytes
	return d
}

// DerivationKey canonicalizes a derivation observation key: the derivation
// name plus each input's sorted source-dataset set. A key with no inputs is
// the name-aggregated fallback bucket.
func DerivationKey(name string, inputs ...[]string) string {
	parts := []string{name}
	for _, in := range inputs {
		s := append([]string(nil), in...)
		sort.Strings(s)
		parts = append(parts, strings.Join(s, "+"))
	}
	return strings.Join(parts, "|")
}

// Store is a concurrency-safe statistics store. The zero value is not
// usable; construct with NewStore or LoadFile.
type Store struct {
	mu     sync.Mutex
	epoch  int64
	tables map[string]TableStats
	derivs map[string]DerivationStats
}

// NewStore returns an empty store at epoch 0.
func NewStore() *Store {
	return &Store{tables: map[string]TableStats{}, derivs: map[string]DerivationStats{}}
}

// Epoch counts planning-relevant mutations. The serving layer keys its plan
// cache on it: a bump invalidates every cached plan. Observation updates
// that merely refine already-known facts (same keys, drifting averages) do
// not bump it, so a steady-state workload keeps its cache hits.
func (s *Store) Epoch() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Table looks up ingest statistics for a dataset.
func (s *Store) Table(name string) (TableStats, bool) {
	if s == nil {
		return TableStats{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	return t, ok
}

// Derivation looks up observed statistics by exact key (see DerivationKey),
// falling back to the name-aggregated bucket when the exact input sets were
// never executed.
func (s *Store) Derivation(key string) (DerivationStats, bool) {
	if s == nil {
		return DerivationStats{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.derivs[key]; ok {
		return d, true
	}
	if i := strings.IndexByte(key, '|'); i > 0 {
		if d, ok := s.derivs[key[:i]]; ok {
			return d, true
		}
	}
	return DerivationStats{}, false
}

// SetTable installs ingest statistics for a dataset, bumping the epoch when
// the facts changed.
func (s *Store) SetTable(name string, t TableStats) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.tables[name]; !ok || !tableEqual(old, t) {
		s.epoch++
	}
	s.tables[name] = t
}

func tableEqual(a, b TableStats) bool {
	if a.Rows != b.Rows || len(a.Columns) != len(b.Columns) {
		return false
	}
	for k, v := range a.Columns {
		if b.Columns[k] != v {
			return false
		}
	}
	return true
}

// Observe merges one derivation observation under both its exact key and
// its name-aggregated bucket. The epoch bumps only when the key is new or
// the observed selectivity moved by more than 25% since the last bump —
// hysteresis that keeps a steady-state serving workload from invalidating
// its own plan cache on every query.
func (s *Store) Observe(key string, obs DerivationStats) {
	if s == nil || obs.Observations <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, existed := s.derivs[key]
	merged := old.add(obs)
	s.derivs[key] = merged
	if name := key; strings.IndexByte(key, '|') > 0 {
		name = key[:strings.IndexByte(key, '|')]
		s.derivs[name] = s.derivs[name].add(obs)
	}
	if !existed {
		s.epoch++
		return
	}
	oldSel, okOld := old.Selectivity()
	newSel, okNew := merged.Selectivity()
	if okOld != okNew || (okOld && drifted(oldSel, newSel, 0.25)) {
		s.epoch++
	}
}

func drifted(a, b, frac float64) bool {
	if a == b {
		return false
	}
	base := a
	if base < 0 {
		base = -base
	}
	if base == 0 {
		return true
	}
	d := b - a
	if d < 0 {
		d = -d
	}
	return d/base > frac
}

// IngestRows computes and installs table statistics for a dataset's rows:
// row count, per-column distinct counts, and numeric ranges. Domain and
// value columns both count — domain NDVs size join outputs, value ranges
// feed future zone-map work.
func (s *Store) IngestRows(name string, rows []value.Row, schema semantics.Schema) {
	if s == nil {
		return
	}
	cols := schema.Columns()
	distinct := make(map[string]map[string]bool, len(cols))
	type numRange struct {
		min, max float64
		seen     bool
	}
	ranges := make(map[string]*numRange, len(cols))
	for _, c := range cols {
		distinct[c] = map[string]bool{}
		ranges[c] = &numRange{}
	}
	for _, r := range rows {
		for _, c := range cols {
			if !r.Has(c) {
				continue
			}
			v := r.Get(c)
			distinct[c][v.String()] = true
			if f, ok := v.AsFloat(); ok {
				nr := ranges[c]
				if !nr.seen || f < nr.min {
					nr.min = f
				}
				if !nr.seen || f > nr.max {
					nr.max = f
				}
				nr.seen = true
			}
		}
	}
	t := TableStats{Rows: int64(len(rows)), Columns: make(map[string]ColumnStats, len(cols))}
	for _, c := range cols {
		cs := ColumnStats{NDV: int64(len(distinct[c]))}
		if nr := ranges[c]; nr.seen {
			cs.Min, cs.Max, cs.HasRange = nr.min, nr.max, true
		}
		t.Columns[c] = cs
	}
	s.SetTable(name, t)
}

// snapshot is the deterministic serialized form: sorted key/value lists,
// never maps, so encoded bytes are stable across runs and Go versions.
type snapshot struct {
	Epoch  int64          `json:"epoch"`
	Tables []tableEntry   `json:"tables,omitempty"`
	Derivs []derivedEntry `json:"derivations,omitempty"`
}

type tableEntry struct {
	Name    string        `json:"name"`
	Rows    int64         `json:"rows"`
	Columns []columnEntry `json:"columns,omitempty"`
}

type columnEntry struct {
	Name string `json:"name"`
	ColumnStats
}

type derivedEntry struct {
	Key string `json:"key"`
	DerivationStats
}

// Encode renders the store as deterministic, indented JSON.
func (s *Store) Encode() ([]byte, error) {
	s.mu.Lock()
	snap := snapshot{Epoch: s.epoch}
	tnames := make([]string, 0, len(s.tables))
	for n := range s.tables {
		tnames = append(tnames, n)
	}
	sort.Strings(tnames)
	for _, n := range tnames {
		t := s.tables[n]
		te := tableEntry{Name: n, Rows: t.Rows}
		cnames := make([]string, 0, len(t.Columns))
		for c := range t.Columns {
			cnames = append(cnames, c)
		}
		sort.Strings(cnames)
		for _, c := range cnames {
			te.Columns = append(te.Columns, columnEntry{Name: c, ColumnStats: t.Columns[c]})
		}
		snap.Tables = append(snap.Tables, te)
	}
	dkeys := make([]string, 0, len(s.derivs))
	for k := range s.derivs {
		dkeys = append(dkeys, k)
	}
	sort.Strings(dkeys)
	for _, k := range dkeys {
		snap.Derivs = append(snap.Derivs, derivedEntry{Key: k, DerivationStats: s.derivs[k]})
	}
	s.mu.Unlock()
	return json.MarshalIndent(snap, "", "  ")
}

// Decode replaces the store's contents with a previously encoded snapshot.
func (s *Store) Decode(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	tables := make(map[string]TableStats, len(snap.Tables))
	for _, te := range snap.Tables {
		t := TableStats{Rows: te.Rows}
		if len(te.Columns) > 0 {
			t.Columns = make(map[string]ColumnStats, len(te.Columns))
			for _, ce := range te.Columns {
				t.Columns[ce.Name] = ce.ColumnStats
			}
		}
		tables[te.Name] = t
	}
	derivs := make(map[string]DerivationStats, len(snap.Derivs))
	for _, de := range snap.Derivs {
		derivs[de.Key] = de.DerivationStats
	}
	s.mu.Lock()
	s.epoch, s.tables, s.derivs = snap.Epoch, tables, derivs
	s.mu.Unlock()
	return nil
}

// Save persists the store via temp file + rename, so readers never observe
// a partial snapshot.
func (s *Store) Save(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a persisted store. A missing file yields an empty store,
// so first boots need no special casing.
func LoadFile(path string) (*Store, error) {
	s := NewStore()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	if err := s.Decode(data); err != nil {
		return nil, fmt.Errorf("stats: %s: %w", path, err)
	}
	return s, nil
}

// Len reports how many table and derivation entries the store holds.
func (s *Store) Len() (tables, derivations int) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables), len(s.derivs)
}
