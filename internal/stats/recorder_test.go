package stats_test

import (
	"context"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/engine"
	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
	"scrubjay/internal/value"
)

// execFig5Mini solves and executes the miniature Figure-5 pipeline under a
// tracer and returns the plan plus the finished trace root.
func execFig5Mini(t *testing.T) (*pipeline.Plan, *obs.SpanRecord, map[string]int64) {
	t.Helper()
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	schemas := map[string]semantics.Schema{
		"job_queue_log": semantics.NewSchema(
			"job_id", semantics.IDDomain("job"),
			"job_name", semantics.ValueEntry("application", "identifier"),
			"elapsed", semantics.ValueEntry("time_duration", "seconds"),
			"nodelist", semantics.IDListDomain("compute_node"),
			"timespan", semantics.SpanDomain(),
		),
		"node_layout": semantics.NewSchema(
			"node", semantics.IDDomain("compute_node"),
			"rack", semantics.IDDomain("rack"),
		),
		"rack_temperatures": semantics.NewSchema(
			"rack", semantics.IDDomain("rack"),
			"location", semantics.IDDomain("rack_location"),
			"aisle", semantics.IDDomain("rack_aisle"),
			"time", semantics.TimeDomain().WithCadence(120),
			"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
		),
	}
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), engine.Query{
		Domains: []string{"job", "rack"},
		Values:  []engine.QueryValue{{Dimension: "application"}, {Dimension: "temperature_difference"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []value.Row{value.NewRow(
		"job_id", value.Str("j1"), "job_name", value.Str("AMG"),
		"elapsed", value.Float(600), "nodelist", value.StrList("n1", "n2"),
		"timespan", value.Span(0, 600e9),
	)}
	layout := []value.Row{
		value.NewRow("node", value.Str("n1"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n2"), "rack", value.Str("r17")),
	}
	var temps []value.Row
	for ts := int64(0); ts <= 600; ts += 120 {
		for _, loc := range []string{"top", "mid"} {
			temps = append(temps,
				value.NewRow("rack", value.Str("r17"), "location", value.Str(loc),
					"aisle", value.Str("hot"), "time", value.TimeNanos(ts*1e9), "temp", value.Float(31)),
				value.NewRow("rack", value.Str("r17"), "location", value.Str(loc),
					"aisle", value.Str("cold"), "time", value.TimeNanos(ts*1e9), "temp", value.Float(18)),
			)
		}
	}
	cat := pipeline.Catalog{
		"job_queue_log":     dataset.FromRows(ctx, "job_queue_log", jobs, schemas["job_queue_log"], 2),
		"node_layout":       dataset.FromRows(ctx, "node_layout", layout, schemas["node_layout"], 1),
		"rack_temperatures": dataset.FromRows(ctx, "rack_temperatures", temps, schemas["rack_temperatures"], 2),
	}
	tr := obs.NewTracer("recorder-test", nil)
	qspan := tr.Start(obs.KindQuery, "query")
	exec := qspan.Child(obs.KindExec, "execute")
	ctx.SetSpan(exec)
	out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out.Collect()
	exec.End()
	qspan.End()
	sourceRows := map[string]int64{
		"job_queue_log":     int64(len(jobs)),
		"node_layout":       int64(len(layout)),
		"rack_temperatures": int64(len(temps)),
	}
	return plan, tr.Artifact().Root, sourceRows
}

func TestActualsFromExecutedTrace(t *testing.T) {
	plan, root, sourceRows := execFig5Mini(t)
	actuals := stats.Actuals(plan, root, sourceRows)
	if actuals == nil {
		t.Fatal("Actuals did not match the trace against the plan")
	}
	byName := map[string]stats.StepActual{}
	for _, a := range actuals {
		byName[a.Derivation] = a
	}
	// The trace materializes the natural join's output while preparing the
	// interpolation join, so its row counts are fully observed.
	nj, ok := byName["natural_join"]
	if !ok {
		t.Fatal("no natural_join actual")
	}
	if nj.RowsOut <= 0 {
		t.Errorf("natural_join RowsOut = %d, want observed > 0", nj.RowsOut)
	}
	if nj.RowsIn <= 0 || nj.RowsIn >= nj.RowsOut*10 {
		t.Errorf("natural_join RowsIn = %d (out %d), want plausible observed count", nj.RowsIn, nj.RowsOut)
	}
	// The final interpolation join's output is the collect stage.
	ij, ok := byName["interpolation_join"]
	if !ok {
		t.Fatal("no interpolation_join actual")
	}
	if ij.RowsOut <= 0 || ij.RowsIn <= 0 {
		t.Errorf("interpolation_join rows in/out = %d/%d, want observed", ij.RowsIn, ij.RowsOut)
	}
	// derive_heat is row-level observed too: temps in, grouped heat out.
	dh, ok := byName["derive_heat"]
	if !ok {
		t.Fatal("no derive_heat actual")
	}
	if dh.RowsIn != sourceRows["rack_temperatures"] {
		t.Errorf("derive_heat RowsIn = %d, want %d", dh.RowsIn, sourceRows["rack_temperatures"])
	}
	// Keys carry the input source sets.
	if ij.Key != "interpolation_join|job_queue_log+node_layout|rack_temperatures" {
		t.Errorf("interpolation_join key = %q", ij.Key)
	}
}

func TestRecorderFeedsStore(t *testing.T) {
	plan, root, sourceRows := execFig5Mini(t)
	store := stats.NewStore()
	n := stats.Recorder{Store: store}.Record(plan, root, sourceRows)
	if n == 0 {
		t.Fatal("recorder recorded nothing")
	}
	d, ok := store.Derivation("natural_join")
	if !ok || d.Observations == 0 {
		t.Fatalf("store has no natural_join observations: %+v ok=%v", d, ok)
	}
	if sel, ok := d.Selectivity(); !ok || sel <= 0 {
		t.Errorf("natural_join selectivity = %v ok=%v", sel, ok)
	}
	if store.Epoch() == 0 {
		t.Error("recording new derivations should move the epoch")
	}
}

// TestActualsCacheHit builds a synthetic trace where the whole subtree was
// served from the derivation cache: the cache-hit step stands in for its
// inputs, and the recorder must not observe it.
func TestActualsCacheHit(t *testing.T) {
	src := pipeline.SourceNode("a")
	plan := &pipeline.Plan{Root: &pipeline.Node{
		Kind: pipeline.KindTransform, Derivation: "derive_heat",
		Inputs: []*pipeline.Node{{
			Kind: pipeline.KindTransform, Derivation: "explode_discrete",
			Inputs: []*pipeline.Node{src},
		}},
	}}
	root := &obs.SpanRecord{
		Kind: obs.KindExec, Name: "execute",
		Children: []*obs.SpanRecord{{
			Kind: obs.KindStep, Name: "derive_heat",
			Attrs: map[string]any{obs.AttrCacheHit: true},
		}},
	}
	actuals := stats.Actuals(plan, root, nil)
	if len(actuals) != 1 || !actuals[0].CacheHit {
		t.Fatalf("actuals = %+v, want one cache-hit entry", actuals)
	}
	store := stats.NewStore()
	if n := (stats.Recorder{Store: store}).Record(plan, root, nil); n != 0 {
		t.Errorf("cache hits must not be observed, recorded %d", n)
	}
}

// TestActualsMismatchedTrace: a trace whose steps do not line up with the
// plan yields nothing rather than misattributed observations.
func TestActualsMismatchedTrace(t *testing.T) {
	plan := &pipeline.Plan{Root: &pipeline.Node{
		Kind: pipeline.KindTransform, Derivation: "derive_heat",
		Inputs: []*pipeline.Node{pipeline.SourceNode("a")},
	}}
	root := &obs.SpanRecord{
		Kind: obs.KindExec, Name: "execute",
		Children: []*obs.SpanRecord{{Kind: obs.KindStep, Name: "derive_rate"}},
	}
	if got := stats.Actuals(plan, root, nil); got != nil {
		t.Errorf("mismatched trace produced actuals: %+v", got)
	}
}
