package stats

import (
	"testing"

	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func TestDerivationKey(t *testing.T) {
	got := DerivationKey("natural_join", []string{"b", "a"}, []string{"c"})
	if got != "natural_join|a+b|c" {
		t.Errorf("DerivationKey = %q", got)
	}
	if DerivationKey("derive_heat") != "derive_heat" {
		t.Errorf("no-input key should be the bare name")
	}
}

func TestStoreNilSafe(t *testing.T) {
	var s *Store
	if s.Epoch() != 0 {
		t.Error("nil store epoch")
	}
	if _, ok := s.Table("x"); ok {
		t.Error("nil store table lookup")
	}
	if _, ok := s.Derivation("x"); ok {
		t.Error("nil store derivation lookup")
	}
	s.SetTable("x", TableStats{Rows: 1})
	s.Observe("x", DerivationStats{Observations: 1})
	s.IngestRows("x", nil, semantics.Schema{})
}

func TestSetTableEpoch(t *testing.T) {
	s := NewStore()
	s.SetTable("a", TableStats{Rows: 10})
	if s.Epoch() != 1 {
		t.Fatalf("epoch after first table = %d", s.Epoch())
	}
	// Same facts: no bump.
	s.SetTable("a", TableStats{Rows: 10})
	if s.Epoch() != 1 {
		t.Errorf("unchanged facts bumped epoch to %d", s.Epoch())
	}
	s.SetTable("a", TableStats{Rows: 20})
	if s.Epoch() != 2 {
		t.Errorf("changed facts should bump epoch, got %d", s.Epoch())
	}
}

func TestObserveEpochHysteresis(t *testing.T) {
	s := NewStore()
	key := DerivationKey("natural_join", []string{"a"}, []string{"b"})
	s.Observe(key, DerivationStats{Observations: 1, RowsIn: 100, RowsOut: 100})
	e1 := s.Epoch()
	if e1 == 0 {
		t.Fatal("new key should bump epoch")
	}
	// Steady-state: same selectivity, no bump.
	for i := 0; i < 10; i++ {
		s.Observe(key, DerivationStats{Observations: 1, RowsIn: 100, RowsOut: 100})
	}
	if s.Epoch() != e1 {
		t.Errorf("steady selectivity bumped epoch %d -> %d", e1, s.Epoch())
	}
	// Big drift: selectivity collapses, epoch must move.
	for i := 0; i < 50; i++ {
		s.Observe(key, DerivationStats{Observations: 1, RowsIn: 1000, RowsOut: 10})
	}
	if s.Epoch() == e1 {
		t.Error("large selectivity drift should bump epoch")
	}
	// Exact key recorded under the name bucket too.
	if d, ok := s.Derivation("natural_join"); !ok || d.Observations == 0 {
		t.Error("name-aggregated bucket missing")
	}
	// Fallback: unseen input sets resolve through the name bucket.
	if _, ok := s.Derivation(DerivationKey("natural_join", []string{"x"}, []string{"y"})); !ok {
		t.Error("name-bucket fallback failed")
	}
}

func TestIngestRows(t *testing.T) {
	schema := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
	rows := []value.Row{
		value.NewRow("node", value.Str("n1"), "temp", value.Float(20)),
		value.NewRow("node", value.Str("n1"), "temp", value.Float(30)),
		value.NewRow("node", value.Str("n2"), "temp", value.Float(25)),
	}
	s := NewStore()
	s.IngestRows("layout", rows, schema)
	ts, ok := s.Table("layout")
	if !ok || ts.Rows != 3 {
		t.Fatalf("table stats = %+v ok=%v", ts, ok)
	}
	if ts.Columns["node"].NDV != 2 {
		t.Errorf("node NDV = %d, want 2", ts.Columns["node"].NDV)
	}
	tc := ts.Columns["temp"]
	if tc.NDV != 3 || !tc.HasRange || tc.Min != 20 || tc.Max != 30 {
		t.Errorf("temp stats = %+v", tc)
	}
}

func TestEncodeDeterministicRoundTrip(t *testing.T) {
	build := func() *Store {
		s := NewStore()
		s.SetTable("zeta", TableStats{Rows: 5, Columns: map[string]ColumnStats{
			"b": {NDV: 2}, "a": {NDV: 1, Min: 0, Max: 9, HasRange: true},
		}})
		s.SetTable("alpha", TableStats{Rows: 7})
		s.Observe("natural_join|a+b|c", DerivationStats{Observations: 2, RowsIn: 10, RowsOut: 4, Micros: 100})
		s.Observe("derive_heat|t", DerivationStats{Observations: 1, RowsIn: 3, RowsOut: 3, ShuffleBytes: 64})
		return s
	}
	a, err := build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("Encode not deterministic:\n%s\nvs\n%s", a, b)
	}
	// Round trip preserves everything, including the epoch.
	s2 := NewStore()
	if err := s2.Decode(a); err != nil {
		t.Fatal(err)
	}
	c, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Errorf("round trip changed bytes:\n%s\nvs\n%s", a, c)
	}
	if s2.Epoch() != build().Epoch() {
		t.Errorf("epoch lost in round trip")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/stats.json"
	s := NewStore()
	s.SetTable("a", TableStats{Rows: 3})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ts, ok := loaded.Table("a"); !ok || ts.Rows != 3 {
		t.Errorf("loaded table = %+v ok=%v", ts, ok)
	}
	// Missing file: empty store, no error.
	empty, err := LoadFile(dir + "/missing.json")
	if err != nil {
		t.Fatal(err)
	}
	if tables, derivs := empty.Len(); tables != 0 || derivs != 0 {
		t.Errorf("missing file should load empty, got %d/%d", tables, derivs)
	}
}
