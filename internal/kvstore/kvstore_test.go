package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTestTable(t *testing.T) (*Store, *Table) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table("test")
	if err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

func TestPutGetDelete(t *testing.T) {
	_, tbl := openTestTable(t)
	if err := tbl.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := tbl.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := tbl.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key error = %v", err)
	}
	if err := tbl.Put("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, _ = tbl.Get("a")
	if string(v) != "2" {
		t.Errorf("overwrite = %q", v)
	}
	if err := tbl.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key should be missing")
	}
	if err := tbl.Delete("never-existed"); err != nil {
		t.Errorf("deleting absent key: %v", err)
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	_, tbl := openTestTable(t)
	tbl.Put("k", []byte("abc"))
	v, _ := tbl.Get("k")
	v[0] = 'X'
	v2, _ := tbl.Get("k")
	if string(v2) != "abc" {
		t.Error("Get must return an independent copy")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := s.Table("jobs")
	for i := 0; i < 50; i++ {
		tbl.Put(fmt.Sprintf("job%03d", i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	tbl.Delete("job007")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2, _ := s2.Table("jobs")
	if tbl2.Len() != 49 {
		t.Errorf("reopened Len = %d, want 49", tbl2.Len())
	}
	v, err := tbl2.Get("job042")
	if err != nil || string(v) != "payload-42" {
		t.Errorf("reopened Get = %q, %v", v, err)
	}
	if _, err := tbl2.Get("job007"); !errors.Is(err, ErrNotFound) {
		t.Error("delete should persist")
	}
}

func TestScanAndKeysSortedWithPrefix(t *testing.T) {
	_, tbl := openTestTable(t)
	tbl.Put("b:2", []byte("x"))
	tbl.Put("a:1", []byte("x"))
	tbl.Put("a:0", []byte("x"))
	tbl.Put("c:9", []byte("x"))
	keys := tbl.Keys("a:")
	if len(keys) != 2 || keys[0] != "a:0" || keys[1] != "a:1" {
		t.Errorf("Keys = %v", keys)
	}
	var visited []string
	tbl.Scan("", func(k string, v []byte) bool {
		visited = append(visited, k)
		return true
	})
	if len(visited) != 4 || visited[0] != "a:0" || visited[3] != "c:9" {
		t.Errorf("Scan order = %v", visited)
	}
	// Early stop.
	n := 0
	tbl.Scan("", func(k string, v []byte) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Scan early stop visited %d", n)
	}
}

func TestCompactShrinksAndPreserves(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tbl, _ := s.Table("t")
	for i := 0; i < 100; i++ {
		tbl.Put("key", []byte(fmt.Sprintf("version-%d", i)))
		tbl.Put(fmt.Sprintf("stable-%02d", i), []byte("v"))
	}
	for i := 0; i < 50; i++ {
		tbl.Delete(fmt.Sprintf("stable-%02d", i))
	}
	tbl.Flush()
	before, _ := os.Stat(filepath.Join(dir, "t.log"))
	if err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, "t.log"))
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	v, err := tbl.Get("key")
	if err != nil || string(v) != "version-99" {
		t.Errorf("post-compact Get = %q, %v", v, err)
	}
	if tbl.Len() != 51 {
		t.Errorf("post-compact Len = %d, want 51", tbl.Len())
	}
	// Writes after compaction still work and persist.
	tbl.Put("post", []byte("compact"))
	s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	tbl2, _ := s2.Table("t")
	if v, err := tbl2.Get("post"); err != nil || string(v) != "compact" {
		t.Errorf("post-compact write lost: %q, %v", v, err)
	}
	if tbl2.Len() != 52 {
		t.Errorf("reopened post-compact Len = %d", tbl2.Len())
	}
}

func TestTableNameValidation(t *testing.T) {
	s, _ := Open(t.TempDir())
	for _, bad := range []string{"", "a/b", "a\\b"} {
		if _, err := s.Table(bad); err == nil {
			t.Errorf("Table(%q) should fail", bad)
		}
	}
}

func TestTableNames(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Table("zeta")
	s.Table("alpha")
	names, err := s.TableNames()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestTableReuseSameHandle(t *testing.T) {
	s, _ := Open(t.TempDir())
	a, _ := s.Table("x")
	b, _ := s.Table("x")
	if a != b {
		t.Error("same table should return same handle")
	}
}

func TestClosedTableRejectsWrites(t *testing.T) {
	s, _ := Open(t.TempDir())
	tbl, _ := s.Table("x")
	tbl.Close()
	if err := tbl.Put("k", nil); err == nil {
		t.Error("Put after Close should fail")
	}
	if err := tbl.Delete("k"); err == nil {
		t.Error("Delete after Close should fail")
	}
	if err := tbl.Compact(); err == nil {
		t.Error("Compact after Close should fail")
	}
	if err := tbl.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestCorruptLogDetected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.log"), []byte{99, 1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := Open(dir)
	if _, err := s.Table("bad"); err == nil {
		t.Error("corrupt log should fail to open")
	}
	// Truncated record.
	if err := os.WriteFile(filepath.Join(dir, "trunc.log"), []byte{1, 10, 0, 0, 0, 'a'}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Table("trunc"); err == nil {
		t.Error("truncated log should fail to open")
	}
}

func TestQuickStoreBehavesLikeMap(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint16
	}
	prop := func(ops []op) bool {
		dir, err := os.MkdirTemp("", "kvq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		s, err := Open(dir)
		if err != nil {
			return false
		}
		tbl, err := s.Table("t")
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%16)
			if o.Del {
				tbl.Delete(k)
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", o.Val)
				tbl.Put(k, []byte(v))
				model[k] = v
			}
		}
		// Check against model, then reopen and check again.
		check := func(tb *Table) bool {
			if tb.Len() != len(model) {
				return false
			}
			for k, want := range model {
				got, err := tb.Get(k)
				if err != nil || string(got) != want {
					return false
				}
			}
			return true
		}
		if !check(tbl) {
			return false
		}
		s.Close()
		s2, err := Open(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		tbl2, err := s2.Table("t")
		if err != nil {
			return false
		}
		return check(tbl2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
