// Package kvstore is a small embedded key-value store: the stand-in for the
// NoSQL database (Cassandra) behind the paper's deployment. Each table is an
// append-only log of put/delete records with an in-memory index rebuilt on
// open; Compact rewrites the log without superseded records. It provides
// exactly what ScrubJay's wrappers need — durable tables of byte values with
// ordered scans — without external dependencies.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

const (
	opPut    byte = 1
	opDelete byte = 2
)

// Store is a directory of tables.
type Store struct {
	dir string

	mu     sync.Mutex
	tables map[string]*Table
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	return &Store{dir: dir, tables: make(map[string]*Table)}, nil
}

// Table opens (creating if needed) a named table. Table names must be
// filesystem-safe.
func (s *Store) Table(name string) (*Table, error) {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("kvstore: bad table name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[name]; ok {
		return t, nil
	}
	t := &Table{path: filepath.Join(s.dir, name+".log"), index: make(map[string][]byte)}
	if err := t.load(); err != nil {
		return nil, err
	}
	s.tables[name] = t
	return t, nil
}

// TableNames lists the tables present on disk, sorted.
func (s *Store) TableNames() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".log"); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Close closes all open tables.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, t := range s.tables {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.tables = make(map[string]*Table)
	return first
}

// Table is one append-only keyed log with an in-memory index.
type Table struct {
	path string

	mu    sync.RWMutex
	file  *os.File
	w     *bufio.Writer
	index map[string][]byte
}

// load replays the log into the index and opens the file for appends.
func (t *Table) load() error {
	f, err := os.OpenFile(t.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	r := bufio.NewReader(f)
	for {
		op, key, val, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("kvstore: corrupt log %s: %w", t.path, err)
		}
		switch op {
		case opPut:
			t.index[key] = val
		case opDelete:
			delete(t.index, key)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	t.file = f
	t.w = bufio.NewWriter(f)
	return nil
}

func readRecord(r *bufio.Reader) (op byte, key string, val []byte, err error) {
	op, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, err
	}
	if op != opPut && op != opDelete {
		return 0, "", nil, fmt.Errorf("bad op %d", op)
	}
	var klen, vlen uint32
	if err = binary.Read(r, binary.LittleEndian, &klen); err != nil {
		return 0, "", nil, unexpectedEOF(err)
	}
	kbuf := make([]byte, klen)
	if _, err = io.ReadFull(r, kbuf); err != nil {
		return 0, "", nil, unexpectedEOF(err)
	}
	if op == opDelete {
		return op, string(kbuf), nil, nil
	}
	if err = binary.Read(r, binary.LittleEndian, &vlen); err != nil {
		return 0, "", nil, unexpectedEOF(err)
	}
	vbuf := make([]byte, vlen)
	if _, err = io.ReadFull(r, vbuf); err != nil {
		return 0, "", nil, unexpectedEOF(err)
	}
	return op, string(kbuf), vbuf, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func writeRecord(w io.Writer, op byte, key string, val []byte) error {
	if _, err := w.Write([]byte{op}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(key))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, key); err != nil {
		return err
	}
	if op == opDelete {
		return nil
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(val))); err != nil {
		return err
	}
	_, err := w.Write(val)
	return err
}

// Put stores val under key.
func (t *Table) Put(key string, val []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.file == nil {
		return errors.New("kvstore: table closed")
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	if err := writeRecord(t.w, opPut, key, cp); err != nil {
		return err
	}
	t.index[key] = cp
	return nil
}

// Get fetches the value stored under key.
func (t *Table) Get(key string) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (t *Table) Delete(key string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.file == nil {
		return errors.New("kvstore: table closed")
	}
	if _, ok := t.index[key]; !ok {
		return nil
	}
	if err := writeRecord(t.w, opDelete, key, nil); err != nil {
		return err
	}
	delete(t.index, key)
	return nil
}

// Len reports the number of live keys.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.index)
}

// Keys returns all live keys with the given prefix, sorted.
func (t *Table) Keys(prefix string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var keys []string
	for k := range t.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Scan calls fn for each live key with the given prefix in sorted order,
// stopping early if fn returns false.
func (t *Table) Scan(prefix string, fn func(key string, val []byte) bool) {
	for _, k := range t.Keys(prefix) {
		v, err := t.Get(k)
		if err != nil {
			continue // deleted concurrently
		}
		if !fn(k, v) {
			return
		}
	}
}

// Flush forces buffered appends to the OS.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return nil
	}
	return t.w.Flush()
}

// Compact rewrites the log with only live records, shrinking space used by
// superseded puts and deletes.
func (t *Table) Compact() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.file == nil {
		return errors.New("kvstore: table closed")
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	tmp := t.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	keys := make([]string, 0, len(t.index))
	for k := range t.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := writeRecord(w, opPut, k, t.index[k]); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	old := t.file
	if err := os.Rename(tmp, t.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old.Close()
	nf, err := os.OpenFile(t.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	t.file = nf
	t.w = bufio.NewWriter(nf)
	return nil
}

// Close flushes and closes the table file.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.file == nil {
		return nil
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	err := t.file.Close()
	t.file = nil
	t.w = nil
	return err
}
