package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"scrubjay/internal/dataset"
	"scrubjay/internal/engine"
	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
	"scrubjay/internal/value"
)

// The plan experiment measures what the cost-based planner buys: each
// workload is solved cold (no statistics — the structural heuristic) and
// warm (a store fed by profiling the catalog and recording the cold run's
// executed spans), then both plans execute over the same data. The chain
// workload is constructed so the heuristic's tie-break picks the expensive
// join order and real cardinalities flip it; Fig-5 shows the same loop on
// the paper's query. Both warm plans must cost no more than the cold plan
// under the same statistics, produce the identical row multiset, and (the
// chain gate) run no slower on the wall clock.

// PlanLeg is one measured solve+execute of a workload.
type PlanLeg struct {
	PlanHash   string   `json:"plan_hash"`
	Steps      []string `json:"steps"`
	WallMillis float64  `json:"wall_ms"`
	// EstRows / EstCPU are the root estimate when this plan is costed
	// against the warm statistics store (the cold plan is costed post hoc
	// under the same store, so the two are comparable).
	EstRows int64 `json:"est_rows"`
	EstCPU  int64 `json:"est_cpu"`
}

// PlanCompare is one workload's cold-vs-warm outcome.
type PlanCompare struct {
	Name string  `json:"name"`
	Cold PlanLeg `json:"cold"`
	Warm PlanLeg `json:"warm"`
	// Switched reports whether statistics changed the chosen plan.
	Switched bool `json:"switched"`
	// Identical is the correctness gate: both plans produced the same row
	// multiset.
	Identical bool `json:"identical"`
	// WarmCostNotHigher gates the planner's model: under the warm store the
	// chosen plan's estimated CPU must not exceed the heuristic plan's.
	WarmCostNotHigher bool `json:"warm_cost_not_higher"`
	// WarmNotSlower is the wall-clock outcome (warm_ms <= cold_ms).
	WarmNotSlower bool `json:"warm_not_slower"`
	// StatsObservations counts span-derived observations recorded from the
	// cold run into the warm store.
	StatsObservations int `json:"stats_observations"`
}

// PlanReport is the BENCH_plan.json document.
type PlanReport struct {
	Reps      int           `json:"reps"`
	ChainRows int           `json:"chain_rows"`
	Workloads []PlanCompare `json:"workloads"`
}

// joinOrderCatalog builds the join-order workload: a wide fact table
// chain_jobs (job, node) with its value column, a mid mapping chain_layout
// (node, rack), and a tiny mapping chain_racks (rack, location). Answering
// {job, rack_location} requires both joins; joining the two mappings first
// touches ~2 orders of magnitude fewer rows than starting from the fact
// table, but the structural heuristic has no way to see that.
func joinOrderCatalog(ctx *rdd.Context, rows, partitions int) (pipeline.Catalog, map[string]semantics.Schema) {
	const nodes, racks = 300, 30
	jobsSchema := semantics.NewSchema(
		"job_id", semantics.IDDomain("job"),
		"node", semantics.IDDomain("compute_node"),
		"job_name", semantics.ValueEntry("application", "identifier"),
	)
	layoutSchema := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
	racksSchema := semantics.NewSchema(
		"rack", semantics.IDDomain("rack"),
		"location", semantics.IDDomain("rack_location"),
	)
	jobs := make([]value.Row, 0, rows)
	for i := 0; i < rows; i++ {
		jobs = append(jobs, value.NewRow(
			"job_id", value.Str(fmt.Sprintf("job%06d", i)),
			"node", value.Str(fmt.Sprintf("n%03d", i%nodes)),
			"job_name", value.Str(fmt.Sprintf("app%d", i%7)),
		))
	}
	layout := make([]value.Row, 0, nodes)
	for i := 0; i < nodes; i++ {
		layout = append(layout, value.NewRow(
			"node", value.Str(fmt.Sprintf("n%03d", i)),
			"rack", value.Str(fmt.Sprintf("r%02d", i%racks)),
		))
	}
	rackRows := make([]value.Row, 0, racks)
	for i := 0; i < racks; i++ {
		rackRows = append(rackRows, value.NewRow(
			"rack", value.Str(fmt.Sprintf("r%02d", i)),
			"location", value.Str(fmt.Sprintf("row%d", i%4)),
		))
	}
	cat := pipeline.Catalog{
		"chain_jobs":   dataset.FromRows(ctx, "chain_jobs", jobs, jobsSchema, partitions),
		"chain_layout": dataset.FromRows(ctx, "chain_layout", layout, layoutSchema, 1),
		"chain_racks":  dataset.FromRows(ctx, "chain_racks", rackRows, racksSchema, 1),
	}
	schemas := map[string]semantics.Schema{
		"chain_jobs":   jobsSchema,
		"chain_layout": layoutSchema,
		"chain_racks":  racksSchema,
	}
	return cat, schemas
}

func chainQuery() engine.Query {
	return engine.Query{
		Domains: []string{"job", "rack_location"},
		Values:  []engine.QueryValue{{Dimension: "application"}},
	}
}

// timedExecute runs the plan reps times and keeps the fastest wall; a final
// traced run (outside the timings) captures the span tree for the recorder.
func timedExecute(ctx *rdd.Context, plan *pipeline.Plan, cat pipeline.Catalog, dict *semantics.Dictionary, reps int) ([]value.Row, float64, *obs.SpanRecord, error) {
	var rows []value.Row
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
		if err != nil {
			return nil, 0, nil, err
		}
		got := out.Collect()
		wall := float64(time.Since(start).Nanoseconds()) / 1e6
		if r == 0 || wall < best {
			best = wall
		}
		rows = got
	}
	tr := obs.NewTracer("bench-plan", nil)
	qspan := tr.Start(obs.KindQuery, "query")
	exec := qspan.Child(obs.KindExec, "execute")
	ctx.SetSpan(exec)
	out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		return nil, 0, nil, err
	}
	out.Collect()
	ctx.SetSpan(nil)
	exec.End()
	qspan.End()
	return rows, best, tr.Artifact().Root, nil
}

// rowMultisetEqual compares two result sets order-insensitively by their
// JSON encodings.
func rowMultisetEqual(a, b []value.Row) (bool, error) {
	if len(a) != len(b) {
		return false, nil
	}
	enc := func(rows []value.Row) ([]string, error) {
		out := make([]string, len(rows))
		for i, r := range rows {
			j, err := json.Marshal(r)
			if err != nil {
				return nil, err
			}
			out[i] = string(j)
		}
		sort.Strings(out)
		return out, nil
	}
	ea, err := enc(a)
	if err != nil {
		return false, err
	}
	eb, err := enc(b)
	if err != nil {
		return false, err
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false, nil
		}
	}
	return true, nil
}

// comparePlans runs one workload cold and warm and assembles the outcome.
func comparePlans(name string, ctx *rdd.Context, cat pipeline.Catalog, schemas map[string]semantics.Schema, q engine.Query, reps int) (PlanCompare, error) {
	dict := semantics.DefaultDictionary()
	cold := engine.New(dict, schemas, engine.DefaultOptions())
	coldPlan, err := cold.Solve(context.Background(), q)
	if err != nil {
		return PlanCompare{}, fmt.Errorf("%s cold solve: %w", name, err)
	}
	coldRows, coldWall, coldRoot, err := timedExecute(ctx, coldPlan, cat, dict, reps)
	if err != nil {
		return PlanCompare{}, fmt.Errorf("%s cold execute: %w", name, err)
	}

	// Warm the store the way a served deployment would: profile the catalog
	// tables, then feed the cold run's executed spans through the recorder.
	st := stats.NewStore()
	for dsName, ds := range cat {
		st.SetTable(dsName, stats.TableStats{Rows: ds.Count()})
	}
	observed := stats.Recorder{Store: st}.Record(coldPlan, coldRoot, nil)

	warmOpts := engine.DefaultOptions()
	warmOpts.Stats = st
	warm := engine.New(dict, schemas, warmOpts)
	warmPlan, err := warm.Solve(context.Background(), q)
	if err != nil {
		return PlanCompare{}, fmt.Errorf("%s warm solve: %w", name, err)
	}
	warmRows, warmWall, _, err := timedExecute(ctx, warmPlan, cat, dict, reps)
	if err != nil {
		return PlanCompare{}, fmt.Errorf("%s warm execute: %w", name, err)
	}

	same, err := rowMultisetEqual(coldRows, warmRows)
	if err != nil {
		return PlanCompare{}, err
	}
	// Cost the heuristic's plan under the same statistics the warm search
	// used, so the estimated-cost comparison is apples to apples.
	coldEst := engine.CostPlan(coldPlan, st)
	warmEst := warmPlan.Root.Estimate
	cmp := PlanCompare{
		Name:              name,
		Cold:              PlanLeg{PlanHash: coldPlan.Hash(), Steps: coldPlan.Steps(), WallMillis: coldWall},
		Warm:              PlanLeg{PlanHash: warmPlan.Hash(), Steps: warmPlan.Steps(), WallMillis: warmWall},
		Switched:          coldPlan.Hash() != warmPlan.Hash(),
		Identical:         same,
		WarmNotSlower:     warmWall <= coldWall,
		StatsObservations: observed,
	}
	if coldEst != nil {
		cmp.Cold.EstRows, cmp.Cold.EstCPU = coldEst.Rows, coldEst.CPU
	}
	if warmEst != nil {
		cmp.Warm.EstRows, cmp.Warm.EstCPU = warmEst.Rows, warmEst.CPU
	}
	cmp.WarmCostNotHigher = coldEst != nil && warmEst != nil && warmEst.CPU <= coldEst.CPU
	return cmp, nil
}

// RunPlanCompare runs the chain and Fig-5 workloads cold vs warm.
func RunPlanCompare(cfg CaseStudyConfig, chainRows, reps int) (PlanReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := PlanReport{Reps: reps, ChainRows: chainRows}

	ctx := rdd.NewContext(cfg.Workers)
	cat, schemas := joinOrderCatalog(ctx, chainRows, cfg.Partitions)
	chain, err := comparePlans("chain", ctx, cat, schemas, chainQuery(), reps)
	if err != nil {
		return rep, err
	}
	rep.Workloads = append(rep.Workloads, chain)

	fctx := rdd.NewContext(cfg.Workers)
	fcat, fschemas, _ := DAT1Catalog(fctx, cfg)
	for name, ds := range fcat {
		fcat[name] = materializeRows(fctx, ds)
	}
	fig5, err := comparePlans("fig5", fctx, fcat, fschemas, Fig5Query(), reps)
	if err != nil {
		return rep, err
	}
	rep.Workloads = append(rep.Workloads, fig5)
	return rep, nil
}

// Print renders the comparison for the console.
func (r PlanReport) Print(w io.Writer) {
	fmt.Fprintf(w, "cost-based planning, best of %d (chain fact table: %d rows)\n", r.Reps, r.ChainRows)
	for _, c := range r.Workloads {
		fmt.Fprintf(w, "%s:\n", c.Name)
		fmt.Fprintf(w, "  %-28s %10.1f ms  est_cpu=%-10d %s\n", "cold (structural heuristic)", c.Cold.WallMillis, c.Cold.EstCPU, c.Cold.PlanHash[:12])
		fmt.Fprintf(w, "  %-28s %10.1f ms  est_cpu=%-10d %s\n", "warm (cost-based)", c.Warm.WallMillis, c.Warm.EstCPU, c.Warm.PlanHash[:12])
		fmt.Fprintf(w, "  switched=%v identical=%v warm_cost_not_higher=%v warm_not_slower=%v (%d span observations)\n",
			c.Switched, c.Identical, c.WarmCostNotHigher, c.WarmNotSlower, c.StatsObservations)
	}
}

// WriteFile lands the report as indented JSON via temp + rename.
func (r PlanReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
