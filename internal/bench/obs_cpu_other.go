//go:build !unix

package bench

import "time"

// cpuTime falls back to wall time where getrusage is unavailable; the
// overhead gate loses its noise immunity but stays functional.
func cpuTime() time.Duration {
	return time.Duration(nanotimeFallback())
}
