package bench

import (
	"time"

	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// RunNaiveInterpJoin is the ablation baseline for the paper's dual-binning
// interpolation join (§5.3): it computes the same windowed correspondence
// by grouping on the exact-match key only and comparing all left/right
// pairs within each group — the "computing all pairwise distances ... is
// unscalable" strawman the paper argues against. Output semantics match
// the real interpolation join's nearest-neighbour aggregation closely
// enough for cost comparison; correctness of the real algorithm is covered
// by the property tests in internal/derive.
func RunNaiveInterpJoin(w JoinWorkload) (JoinRunResult, error) {
	ctx := rdd.NewContext(w.Workers)
	_ = semantics.DefaultDictionary()
	left, right := interpJoinInputs(ctx, w.Rows, w.Partitions)
	wNanos := int64(w.WindowSeconds * 1e9)

	ctx.ResetMetrics()
	start := time.Now()
	cog := rdd.CoGroup(left.Rows(), right.Rows(),
		func(r value.Row) string { return r.Get("node_id").StrVal() },
		func(r value.Row) string { return r.Get("node").StrVal() },
	)
	joined := rdd.FlatMap(cog, func(g rdd.CoGrouped[value.Row, value.Row]) []value.Row {
		var out []value.Row
		for _, l := range g.Left {
			lt := l.Get("t").TimeNanosVal()
			var nearest value.Row
			var nearestDT int64
			for _, r := range g.Right {
				dt := lt - r.Get("ts").TimeNanosVal()
				if dt < 0 {
					dt = -dt
				}
				if dt > wNanos {
					continue
				}
				if nearest == nil || dt < nearestDT {
					nearest, nearestDT = r, dt
				}
			}
			if nearest != nil {
				m := l.Merge(nearest.Without("node").Without("ts"))
				out = append(out, m)
			}
		}
		return out
	})
	n := joined.Count()
	wall := time.Since(start)
	return JoinRunResult{Rows: w.Rows, OutputRows: n, Wall: wall, Metrics: ctx.SnapshotMetrics()}, nil
}
