// Package bench is ScrubJay's experiment harness: for every figure in the
// paper's evaluation (§6 Figure 3, §7 Figures 4-7) it provides a function
// that generates the workload, runs the system, and returns the series or
// plan the paper reports. cmd/sjbench prints them; bench_test.go wraps them
// in testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Series is one plotted line: x/y pairs with axis labels.
type Series struct {
	Label  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Print renders the series as an aligned two-column table.
func (s *Series) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", s.Label)
	fmt.Fprintf(w, "%-16s %-16s\n", s.XLabel, s.YLabel)
	for i := range s.X {
		fmt.Fprintf(w, "%-16.6g %-16.6g\n", s.X[i], s.Y[i])
	}
}

// PrintAll renders several series separated by blank lines.
func PrintAll(w io.Writer, series []Series) {
	for i := range series {
		if i > 0 {
			fmt.Fprintln(w)
		}
		series[i].Print(w)
	}
}

// Monotone checks the y values are non-increasing (within slack fraction),
// used to assert strong-scaling shape.
func (s *Series) Monotone(slack float64) bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1]*(1+slack) {
			return false
		}
	}
	return true
}

// RoughlyLinear checks y grows close to proportionally with x: the ratio
// y/x at the last point is within factor of the ratio at the first point.
func (s *Series) RoughlyLinear(factor float64) bool {
	if len(s.X) < 2 || s.X[0] == 0 || s.Y[0] == 0 {
		return false
	}
	first := s.Y[0] / s.X[0]
	last := s.Y[len(s.Y)-1] / s.X[len(s.X)-1]
	r := last / first
	return r <= factor && r >= 1/factor
}

// Sparkline renders a coarse ASCII sparkline of the series for terminal
// inspection of signal shapes.
func (s *Series) Sparkline(width int) string {
	if len(s.Y) == 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	min, max := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if width <= 0 || width > len(s.Y) {
		width = len(s.Y)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		y := s.Y[i*len(s.Y)/width]
		level := 0
		if max > min {
			level = int((y - min) / (max - min) * float64(len(marks)-1))
		}
		b.WriteRune(marks[level])
	}
	return b.String()
}
