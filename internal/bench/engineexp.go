package bench

import (
	"context"
	"fmt"
	"time"

	"scrubjay/internal/engine"
	"scrubjay/internal/semantics"
	"scrubjay/internal/units"
)

// chainCatalog builds a synthetic catalog of k datasets that must all be
// combined to answer the end-to-end query: dataset i carries domain
// dimensions chain_i and chain_{i+1} plus one value column, so relating
// chain_0 to chain_k requires k natural joins. This stresses the derivation
// engine's search exactly where the paper's §5.2 optimizations (semantics-
// only derivation, memoization, short-sequence preference) matter.
func chainCatalog(k int) (*semantics.Dictionary, map[string]semantics.Schema, engine.Query) {
	dict := semantics.NewDictionary(units.Default())
	for i := 0; i <= k; i++ {
		dict.MustRegisterDimension(semantics.Dimension{Name: fmt.Sprintf("chain_%d", i)})
	}
	dict.MustRegisterDimension(semantics.Dimension{Name: "payload", Ordered: true, Continuous: true})
	schemas := map[string]semantics.Schema{}
	for i := 0; i < k; i++ {
		schemas[fmt.Sprintf("ds_%02d", i)] = semantics.NewSchema(
			fmt.Sprintf("a_%d", i), semantics.IDDomain(fmt.Sprintf("chain_%d", i)),
			fmt.Sprintf("b_%d", i), semantics.IDDomain(fmt.Sprintf("chain_%d", i+1)),
			fmt.Sprintf("v_%d", i), semantics.ValueEntry("payload", "fraction"),
		)
	}
	q := engine.Query{
		Domains: []string{"chain_0", fmt.Sprintf("chain_%d", k)},
		Values:  []engine.QueryValue{{Dimension: "payload"}},
	}
	return dict, schemas, q
}

// EngineLatency measures derivation-engine solve latency over growing
// catalog sizes — the §5.2 "interactive rates" claim. The returned series
// reports milliseconds per solve.
func EngineLatency(sizes []int) (Series, error) {
	s := Series{Label: "engine query latency", XLabel: "datasets", YLabel: "milliseconds"}
	for _, k := range sizes {
		dict, schemas, q := chainCatalog(k)
		e := engine.New(dict, schemas, engine.DefaultOptions())
		start := time.Now()
		plan, err := e.Solve(context.Background(), q)
		if err != nil {
			return Series{}, fmt.Errorf("chain size %d: %w", k, err)
		}
		d := time.Since(start)
		if got := len(plan.Steps()); got < k {
			return Series{}, fmt.Errorf("chain size %d: plan too short (%d steps)", k, got)
		}
		s.Add(float64(k), float64(d.Microseconds())/1000)
	}
	return s, nil
}

// MemoAblationResult compares the engine with and without pairwise
// memoization (§5.2), on repeated solves of the same query.
type MemoAblationResult struct {
	CatalogSize int
	Solves      int
	WithMemo    time.Duration
	WithoutMemo time.Duration
	MemoHits    int
}

// RunMemoAblation solves the chain query `solves` times under both engine
// configurations.
func RunMemoAblation(catalogSize, solves int) (MemoAblationResult, error) {
	dict, schemas, q := chainCatalog(catalogSize)

	withOpts := engine.DefaultOptions()
	eWith := engine.New(dict, schemas, withOpts)
	hits := 0
	start := time.Now()
	for i := 0; i < solves; i++ {
		if _, err := eWith.Solve(context.Background(), q); err != nil {
			return MemoAblationResult{}, err
		}
		// MemoHits is per-solve; accumulate across the run.
		hits += eWith.MemoHits()
	}
	withDur := time.Since(start)

	withoutOpts := engine.DefaultOptions()
	withoutOpts.DisableMemo = true
	eWithout := engine.New(dict, schemas, withoutOpts)
	start = time.Now()
	for i := 0; i < solves; i++ {
		if _, err := eWithout.Solve(context.Background(), q); err != nil {
			return MemoAblationResult{}, err
		}
	}
	withoutDur := time.Since(start)

	return MemoAblationResult{
		CatalogSize: catalogSize,
		Solves:      solves,
		WithMemo:    withDur,
		WithoutMemo: withoutDur,
		MemoHits:    hits,
	}, nil
}
