package bench

import (
	"strings"
	"testing"
)

func smallWorkload(rows int) JoinWorkload {
	w := DefaultJoinWorkload()
	w.Rows = rows
	w.Partitions = 8
	w.Workers = 2
	return w
}

func TestRunNaturalJoin(t *testing.T) {
	res, err := RunNaturalJoin(smallWorkload(5000))
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRows != 5000 {
		t.Errorf("output rows = %d, want 5000 (1:1 keys)", res.OutputRows)
	}
	if res.Simulated(10) <= 0 || res.Wall <= 0 {
		t.Error("non-positive timings")
	}
	if res.Simulated(1) < res.Simulated(10) {
		t.Error("1-node simulation should not beat 10-node")
	}
}

func TestRunInterpJoin(t *testing.T) {
	res, err := RunInterpJoin(smallWorkload(4096))
	if err != nil {
		t.Fatal(err)
	}
	// Every left row has right samples within the 2s window (offset 0.5s),
	// so the output has at least one row per left row.
	if res.OutputRows < int64(res.Rows)*9/10 {
		t.Errorf("output rows = %d, want close to %d", res.OutputRows, res.Rows)
	}
}

func TestNaiveInterpJoinAgreesOnOutputScale(t *testing.T) {
	w := smallWorkload(2048)
	fast, err := RunInterpJoin(w)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunNaiveInterpJoin(w)
	if err != nil {
		t.Fatal(err)
	}
	// The naive baseline emits one row per matched left row; the real join
	// may split by residual groups (none here), so counts should be close.
	diff := fast.OutputRows - naive.OutputRows
	if diff < 0 {
		diff = -diff
	}
	if diff > fast.OutputRows/5 {
		t.Errorf("naive=%d vs binned=%d outputs diverge", naive.OutputRows, fast.OutputRows)
	}
}

func TestRowSweep(t *testing.T) {
	s := RowSweep(1000, 10000)
	if len(s) != 10 || s[0] != 1000 || s[9] != 10000 {
		t.Errorf("sweep = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Errorf("sweep not increasing: %v", s)
		}
	}
	if RowSweep(-5, -10)[0] != 1 {
		t.Error("degenerate sweep should clamp")
	}
}

func TestFig3RowsLinearShape(t *testing.T) {
	w := smallWorkload(0)
	s, err := Fig3Rows("fig3a", RunNaturalJoin, w, RowSweep(4000, 40000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 10 {
		t.Fatalf("points = %d", len(s.X))
	}
	// Time grows with rows; the per-row cost at 40k stays within a loose
	// factor of the cost at 4k (linear shape with fixed overheads allowed).
	if s.Y[9] <= s.Y[0] {
		t.Errorf("time should grow with rows: %v", s.Y)
	}
	if !s.RoughlyLinear(8) {
		t.Errorf("natural join should be roughly linear in rows: %v", s.Y)
	}
}

func TestFig3ScalingShape(t *testing.T) {
	s, err := Fig3Scaling("fig3b", RunNaturalJoin, smallWorkload(40000))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 10 {
		t.Fatalf("points = %d", len(s.X))
	}
	if !s.Monotone(0.01) {
		t.Errorf("strong scaling should be non-increasing: %v", s.Y)
	}
	if s.Y[9] >= s.Y[0] {
		t.Errorf("10 nodes should beat 1 node: %v", s.Y)
	}
}

func TestInterpJoinCostlierThanNatural(t *testing.T) {
	// Figure 3: at equal rows the interpolation join is roughly an order
	// of magnitude more expensive than the natural join.
	w := smallWorkload(30000)
	nj, err := RunNaturalJoin(w)
	if err != nil {
		t.Fatal(err)
	}
	ij, err := RunInterpJoin(w)
	if err != nil {
		t.Fatal(err)
	}
	if ij.Metrics.TotalTaskTime() <= nj.Metrics.TotalTaskTime() {
		t.Errorf("interp join should cost more: %v vs %v",
			ij.Metrics.TotalTaskTime(), nj.Metrics.TotalTaskTime())
	}
}

func TestRunFig5Plan(t *testing.T) {
	res, err := RunFig5Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !res.MatchesPaper {
		t.Errorf("Figure 5 plan mismatch:\n%s", res.Plan)
	}
	if res.SolveDuration <= 0 {
		t.Error("solve duration missing")
	}
}

func TestRunFig7Plan(t *testing.T) {
	res, err := RunFig7Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !res.MatchesPaper {
		t.Errorf("Figure 7 plan mismatch:\n%s", res.Plan)
	}
}

func smallCaseStudy() CaseStudyConfig {
	cfg := DefaultCaseStudyConfig()
	cfg.Racks = 6
	cfg.NodesPerRack = 12
	cfg.AMGRack = 3
	cfg.DAT1DurationSec = 3600
	cfg.DAT2RunSec = 120
	cfg.DAT2GapSec = 30
	cfg.Workers = 2
	cfg.Partitions = 8
	return cfg
}

func TestRunFig4FindsAMGOutlier(t *testing.T) {
	cfg := smallCaseStudy()
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinedRows == 0 {
		t.Fatal("no joined rows")
	}
	if res.HottestApp != "AMG" {
		t.Errorf("hottest app = %q, want AMG (heat by rack/app: %v)", res.HottestApp, res.HeatByRackApp)
	}
	if res.HottestRack != "rack03" {
		t.Errorf("hottest rack = %q, want rack03", res.HottestRack)
	}
	if len(res.Profiles) != 3 {
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	for _, p := range res.Profiles {
		if len(p.X) < 5 {
			t.Errorf("profile %s too short: %d points", p.Label, len(p.X))
		}
		// AMG ramps: the late heat exceeds the early heat.
		early := p.Y[1]
		late := p.Y[len(p.Y)-2]
		if late <= early {
			t.Errorf("profile %s should ramp: early=%v late=%v", p.Label, early, late)
		}
	}
}

func TestRunFig6ThrottlingContrast(t *testing.T) {
	cfg := smallCaseStudy()
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinedRows == 0 {
		t.Fatal("no joined rows")
	}
	if len(res.Runs) != 6 {
		t.Fatalf("runs = %v", res.Runs)
	}
	mean := func(run, metric string) float64 { return res.PerRunMeans[run][metric] }
	mg := res.Runs[0]  // 1:mg.C
	p95 := res.Runs[3] // 4:prime95
	// mg.C runs at (near) base frequency; prime95 throttles aggressively.
	if mean(mg, "active_frequency") <= mean(p95, "active_frequency") {
		t.Errorf("mg.C frequency %v should exceed prime95 %v",
			mean(mg, "active_frequency"), mean(p95, "active_frequency"))
	}
	// prime95 issues instructions faster.
	if mean(p95, "instructions_rate") <= mean(mg, "instructions_rate") {
		t.Errorf("prime95 instruction rate %v should exceed mg.C %v",
			mean(p95, "instructions_rate"), mean(mg, "instructions_rate"))
	}
	// mg.C moves far more memory.
	if mean(mg, "mem_reads_rate") <= 2*mean(p95, "mem_reads_rate") {
		t.Errorf("mg.C memory rate %v should dominate prime95 %v",
			mean(mg, "mem_reads_rate"), mean(p95, "mem_reads_rate"))
	}
	// prime95 runs hotter: smaller thermal margin.
	if mean(p95, "thermal_margin") >= mean(mg, "thermal_margin") {
		t.Errorf("prime95 margin %v should be below mg.C %v",
			mean(p95, "thermal_margin"), mean(mg, "thermal_margin"))
	}
	for _, m := range Fig6MetricColumns() {
		if len(res.Series[seriesNameFor(m)].X) == 0 && len(res.Series[m].X) == 0 {
			t.Errorf("series %s empty", m)
		}
	}
}

// seriesNameFor maps a result column back to its series key (identity in
// the current metric set).
func seriesNameFor(col string) string { return col }

func TestEngineLatencyInteractive(t *testing.T) {
	s, err := EngineLatency([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.X {
		if s.Y[i] > 2000 {
			t.Errorf("solve at %v datasets took %vms; not interactive", s.X[i], s.Y[i])
		}
	}
}

func TestMemoAblation(t *testing.T) {
	res, err := RunMemoAblation(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHits == 0 {
		t.Error("memoized engine should record hits")
	}
	if res.WithMemo <= 0 || res.WithoutMemo <= 0 {
		t.Error("durations missing")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Label: "l", XLabel: "x", YLabel: "y"}
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 41)
	var b strings.Builder
	s.Print(&b)
	if !strings.Contains(b.String(), "# l") || !strings.Contains(b.String(), "41") {
		t.Errorf("Print output: %s", b.String())
	}
	if !s.RoughlyLinear(1.5) {
		t.Error("series is roughly linear")
	}
	if s.Monotone(0) {
		t.Error("increasing series is not monotone-decreasing")
	}
	down := Series{X: []float64{1, 2, 3}, Y: []float64{9, 5, 5.01}}
	if !down.Monotone(0.01) {
		t.Error("slack should allow tiny increases")
	}
	if sp := s.Sparkline(3); len([]rune(sp)) != 3 {
		t.Errorf("sparkline = %q", sp)
	}
	if (&Series{}).Sparkline(5) != "" {
		t.Error("empty sparkline")
	}
}
