package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"scrubjay/internal/dataset"
	"scrubjay/internal/derive"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
)

// The columnar experiment measures the tentpole claim directly: the same
// join, same inputs, same worker pool, once over boxed rows and once over
// frame batches. Inputs are materialized (and, for the columnar leg,
// pivoted to frames) before the timer starts, so the measurement is the
// join itself, not ingestion. Alloc counts come from runtime.MemStats
// deltas around the timed region — a process-wide proxy, which is why each
// leg runs in isolation with a GC barrier in between.

// ColumnarRun is one measured leg (row or columnar) of the comparison.
type ColumnarRun struct {
	RowsPerSec  float64 `json:"rows_per_sec"`
	WallSeconds float64 `json:"wall_seconds"`
	AllocsPerOp float64 `json:"allocs_per_op"` // heap allocations per input row
	OutputRows  int64   `json:"output_rows"`
}

// ColumnarComparison is one join benchmarked both ways.
type ColumnarComparison struct {
	Name     string      `json:"name"`
	Rows     int         `json:"rows"`
	Row      ColumnarRun `json:"row"`
	Columnar ColumnarRun `json:"columnar"`
	// Speedup is columnar rows/sec over row rows/sec (>1 means faster).
	Speedup float64 `json:"speedup"`
	// AllocRatio is columnar allocs/op over row allocs/op (<1 means leaner).
	AllocRatio float64 `json:"alloc_ratio"`
}

// ColumnarReport is the BENCH_columnar.json document.
type ColumnarReport struct {
	Workers     int                  `json:"workers"`
	Reps        int                  `json:"reps"`
	Comparisons []ColumnarComparison `json:"comparisons"`
}

// materializeRows rebuilds a dataset over its collected rows, so timed
// reruns start from in-memory slices instead of regenerating inputs.
func materializeRows(ctx *rdd.Context, d *dataset.Dataset) *dataset.Dataset {
	return dataset.FromRows(ctx, d.Name(), d.Collect(), d.Schema(), d.Rows().NumPartitions())
}

// materializeFrames rebuilds a dataset over its pivoted frames, so the
// columnar leg never pays the row→column pivot inside the timer.
func materializeFrames(ctx *rdd.Context, d *dataset.Dataset) *dataset.Dataset {
	return dataset.FromFrames(ctx, d.Name(), d.Columnar().Frames().Collect(), d.Schema())
}

// timedJoin runs one prepared join thunk and measures wall time plus the
// process allocation delta across it.
func timedJoin(inputRows int, join func() (int64, error)) (ColumnarRun, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	n, err := join()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return ColumnarRun{}, err
	}
	allocs := float64(after.Mallocs - before.Mallocs)
	return ColumnarRun{
		RowsPerSec:  float64(inputRows) / wall.Seconds(),
		WallSeconds: wall.Seconds(),
		AllocsPerOp: allocs / float64(inputRows),
		OutputRows:  n,
	}, nil
}

// bestOf keeps the leg with the highest throughput over reps runs,
// suppressing single-host GC and scheduler noise.
func bestOf(reps, inputRows int, join func() (int64, error)) (ColumnarRun, error) {
	if reps < 1 {
		reps = 1
	}
	var best ColumnarRun
	for r := 0; r < reps; r++ {
		run, err := timedJoin(inputRows, join)
		if err != nil {
			return ColumnarRun{}, err
		}
		if r == 0 || run.RowsPerSec > best.RowsPerSec {
			best = run
		}
	}
	return best, nil
}

// compareNaturalJoin benchmarks the natural join in both representations.
func compareNaturalJoin(w JoinWorkload, reps int) (ColumnarComparison, error) {
	dict := semantics.DefaultDictionary()
	ctx := rdd.NewContext(w.Workers)
	left, right := naturalJoinInputs(ctx, w.Rows, w.Partitions)
	left, right = materializeRows(ctx, left), materializeRows(ctx, right)
	cleft, cright := materializeFrames(ctx, left), materializeFrames(ctx, right)

	rowRun, err := bestOf(reps, w.Rows, func() (int64, error) {
		out, err := (&derive.NaturalJoin{}).Apply(left, right, dict)
		if err != nil {
			return 0, err
		}
		return out.Count(), nil
	})
	if err != nil {
		return ColumnarComparison{}, err
	}
	colRun, err := bestOf(reps, w.Rows, func() (int64, error) {
		out, err := (&derive.NaturalJoin{}).Apply(cleft, cright, dict)
		if err != nil {
			return 0, err
		}
		if !out.IsColumnar() {
			return 0, fmt.Errorf("natural join left the columnar representation")
		}
		return out.Count(), nil
	})
	if err != nil {
		return ColumnarComparison{}, err
	}
	return finishComparison("natural_join", w.Rows, rowRun, colRun), nil
}

// compareInterpJoin benchmarks the interpolation join in both
// representations.
func compareInterpJoin(w JoinWorkload, reps int) (ColumnarComparison, error) {
	dict := semantics.DefaultDictionary()
	ctx := rdd.NewContext(w.Workers)
	left, right := interpJoinInputs(ctx, w.Rows, w.Partitions)
	left, right = materializeRows(ctx, left), materializeRows(ctx, right)
	cleft, cright := materializeFrames(ctx, left), materializeFrames(ctx, right)

	join := &derive.InterpolationJoin{WindowSeconds: w.WindowSeconds}
	rowRun, err := bestOf(reps, w.Rows, func() (int64, error) {
		out, err := join.Apply(left, right, dict)
		if err != nil {
			return 0, err
		}
		return out.Count(), nil
	})
	if err != nil {
		return ColumnarComparison{}, err
	}
	colRun, err := bestOf(reps, w.Rows, func() (int64, error) {
		out, err := join.Apply(cleft, cright, dict)
		if err != nil {
			return 0, err
		}
		if !out.IsColumnar() {
			return 0, fmt.Errorf("interpolation join left the columnar representation")
		}
		return out.Count(), nil
	})
	if err != nil {
		return ColumnarComparison{}, err
	}
	return finishComparison("interpolation_join", w.Rows, rowRun, colRun), nil
}

func finishComparison(name string, rows int, rowRun, colRun ColumnarRun) ColumnarComparison {
	c := ColumnarComparison{Name: name, Rows: rows, Row: rowRun, Columnar: colRun}
	if rowRun.RowsPerSec > 0 {
		c.Speedup = colRun.RowsPerSec / rowRun.RowsPerSec
	}
	if rowRun.AllocsPerOp > 0 {
		c.AllocRatio = colRun.AllocsPerOp / rowRun.AllocsPerOp
	}
	return c
}

// RunColumnarCompare benchmarks the hot joins in both representations and
// returns the report. Output-row counts must agree between legs — a
// mismatch means the representations diverged and fails the run.
func RunColumnarCompare(w JoinWorkload, reps int) (ColumnarReport, error) {
	report := ColumnarReport{Workers: w.Workers, Reps: reps}
	for _, cmp := range []func(JoinWorkload, int) (ColumnarComparison, error){compareNaturalJoin, compareInterpJoin} {
		c, err := cmp(w, reps)
		if err != nil {
			return ColumnarReport{}, err
		}
		if c.Row.OutputRows != c.Columnar.OutputRows {
			return ColumnarReport{}, fmt.Errorf("%s: row path produced %d rows, columnar %d",
				c.Name, c.Row.OutputRows, c.Columnar.OutputRows)
		}
		report.Comparisons = append(report.Comparisons, c)
	}
	return report, nil
}

// Print renders the report as an aligned table.
func (r ColumnarReport) Print(w io.Writer) {
	fmt.Fprintf(w, "%-20s %14s %14s %8s %12s %12s %8s\n",
		"join", "row rows/s", "col rows/s", "speedup", "row allocs", "col allocs", "ratio")
	for _, c := range r.Comparisons {
		fmt.Fprintf(w, "%-20s %14.0f %14.0f %7.2fx %12.1f %12.1f %8.2f\n",
			c.Name, c.Row.RowsPerSec, c.Columnar.RowsPerSec, c.Speedup,
			c.Row.AllocsPerOp, c.Columnar.AllocsPerOp, c.AllocRatio)
	}
}

// WriteFile lands the report as indented JSON via temp + rename.
func (r ColumnarReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
