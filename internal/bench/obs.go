package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"scrubjay/internal/derive"
	"scrubjay/internal/obs"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
)

// ObsOverheadReport compares the natural-join hot path under the three
// observability states the rdd layer supports:
//
//	untraced   nil scope span — the disabled fast path (nil checks only)
//	collected  metrics collection on (ResetMetrics), as every sjbench
//	           figure runs — task timings recorded as spans
//	traced     a wall-clock tracer span installed, as a served query with
//	           tracing enabled runs
//
// The gate is the nil-span invariant's performance half: with tracing
// disabled the hot path must stay within Budget of the always-collecting
// baseline (it should in fact be faster — the untraced path skips task
// timing entirely), so instrumenting the executor cost the disabled case
// nothing. Runs are measured in process CPU time, serially, with GC
// pinned off during the measured region: a 3% budget is far below the
// wall-time noise floor of a shared CI host (±40% observed), while CPU
// time of a serial run with no GC inside it is repeatable to a few
// percent on the same hardware.
type ObsOverheadReport struct {
	Rows       int   `json:"rows"`
	Partitions int   `json:"partitions"`
	Reps       int   `json:"reps"`
	OutputRows int64 `json:"output_rows"`
	// Best-of-reps process CPU times per variant (user+system; see cpuTime).
	UntracedMicros  int64 `json:"untraced_cpu_micros"`
	CollectedMicros int64 `json:"collected_cpu_micros"`
	TracedMicros    int64 `json:"traced_cpu_micros"`
	// Overheads are relative to the untraced fast path.
	CollectedOverhead float64 `json:"collected_overhead"`
	TracedOverhead    float64 `json:"traced_overhead"`
	// Budget is the allowed untraced-vs-collected regression (0.03 = 3%).
	Budget float64 `json:"budget"`
	// GateRatio is the median over reps of the per-rep paired ratio
	// untraced/collected. Pairing within a rep cancels machine-wide drift
	// (GC, CPU contention) that hits back-to-back runs equally, and the
	// median discards spike reps, so the gate is stable on noisy hosts
	// where best-of comparisons across variants are not.
	GateRatio float64 `json:"gate_ratio"`
	// WithinBudget: GateRatio <= 1 + Budget.
	WithinBudget bool `json:"within_budget"`
	// TracedSpans counts the spans one traced run records, proving the
	// traced variant actually exercised the instrumentation.
	TracedSpans int `json:"traced_spans"`
	// Dist is the distributed leg (RunObsDistOverhead): the same budget
	// applied to cross-process tracing over a live 2-worker cluster.
	Dist *ObsDistReport `json:"dist,omitempty"`
}

// obsOverheadBudget is the regression budget CI enforces on the disabled
// fast path.
const obsOverheadBudget = 0.03

// nanotimeFallback provides a monotonic fallback reading for hosts where
// process CPU time is unavailable.
var processStart = time.Now()

func nanotimeFallback() int64 { return time.Since(processStart).Nanoseconds() }

// runObsVariant executes one natural join with the given observability
// setup applied to a fresh context, returning the measured CPU time and
// output rows. The join runs on one worker (the gate measures per-task
// instrumentation cost, not parallel throughput, and a serial run keeps
// cross-core interference out of the measurement) with GC forced before
// and disabled during the measured region, so no collection cycle lands
// inside one variant's measurement and not another's.
func runObsVariant(w JoinWorkload, setup func(*rdd.Context)) (time.Duration, int64, error) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	left, right := naturalJoinInputs(ctx, w.Rows, w.Partitions)
	if setup != nil {
		setup(ctx)
	}
	runtime.GC()
	gcPrev := debug.SetGCPercent(-1)
	start := cpuTime()
	out, err := (&derive.NaturalJoin{}).Apply(left, right, dict)
	if err != nil {
		debug.SetGCPercent(gcPrev)
		return 0, 0, err
	}
	n := out.Count()
	d := cpuTime() - start
	debug.SetGCPercent(gcPrev)
	return d, n, nil
}

// RunObsOverhead measures the three variants interleaved (so drift hits
// them equally), keeping the best of reps runs each for the report table.
// One discarded warm-up triple runs first — the process's very first runs
// pay one-time costs (page faults, lazy initialisation) that measure ~2x.
// The gate itself uses the median per-rep untraced/collected ratio: the
// two runs of a pair execute back-to-back, so residual drift cancels
// within each ratio and spike reps fall out of the median; the variant
// order rotates each rep so position-in-triple bias does not land on one
// variant systematically. If the first pass still fails the budget, one
// extension round doubles the sample before the verdict.
func RunObsOverhead(w JoinWorkload, reps int) (ObsOverheadReport, error) {
	if reps < 5 {
		reps = 5 // median-of-5 minimum: fewer reps lets one spike decide
	}
	rep := ObsOverheadReport{
		Rows:       w.Rows,
		Partitions: w.Partitions,
		Budget:     obsOverheadBudget,
	}
	var spanCount int
	variants := []struct {
		best  *int64
		setup func(*rdd.Context) func()
	}{
		{&rep.UntracedMicros, func(*rdd.Context) func() { return nil }},
		{&rep.CollectedMicros, func(ctx *rdd.Context) func() {
			ctx.ResetMetrics()
			return nil
		}},
		{&rep.TracedMicros, func(ctx *rdd.Context) func() {
			tr := obs.NewTracer("bench", nil)
			root := tr.Start(obs.KindExec, "natural-join")
			ctx.SetSpan(root)
			return func() {
				root.End()
				spanCount = tr.Artifact().SpanCount()
			}
		}},
	}
	for _, v := range variants {
		// Discarded warm-up triple; the done closures are dropped along
		// with the runs they would have finalised.
		if _, _, err := runObsVariant(w, func(ctx *rdd.Context) { _ = v.setup(ctx) }); err != nil {
			return ObsOverheadReport{}, err
		}
	}
	var ratios []float64
	rot := 0 // rotates variant order so no variant always runs first
	round := func(n int) error {
		for r := 0; r < n; r++ {
			var walls [3]int64
			for i := range variants {
				k := (i + rot) % len(variants)
				v := variants[k]
				var done func()
				wall, rows, err := runObsVariant(w, func(ctx *rdd.Context) { done = v.setup(ctx) })
				if err != nil {
					return err
				}
				if done != nil {
					done()
				}
				rep.OutputRows = rows
				walls[k] = wall.Microseconds()
				if us := walls[k]; *v.best == 0 || us < *v.best {
					*v.best = us
				}
			}
			rot++
			if walls[1] > 0 {
				ratios = append(ratios, float64(walls[0])/float64(walls[1]))
			}
		}
		return nil
	}
	if err := round(reps); err != nil {
		return ObsOverheadReport{}, err
	}
	rep.GateRatio = medianFloat(ratios)
	if rep.GateRatio > 1+rep.Budget {
		if err := round(reps); err != nil {
			return ObsOverheadReport{}, err
		}
		rep.GateRatio = medianFloat(ratios)
	}
	rep.Reps = len(ratios)
	rep.TracedSpans = spanCount
	if rep.UntracedMicros > 0 {
		rep.CollectedOverhead = float64(rep.CollectedMicros)/float64(rep.UntracedMicros) - 1
		rep.TracedOverhead = float64(rep.TracedMicros)/float64(rep.UntracedMicros) - 1
	}
	rep.WithinBudget = rep.GateRatio <= 1+rep.Budget
	return rep, nil
}

// medianFloat returns the median of vs without mutating it.
func medianFloat(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Print renders the comparison as a table plus the gate verdict.
func (r ObsOverheadReport) Print(w io.Writer) {
	fmt.Fprintf(w, "natural join, %d rows x %d partitions, serial, %d paired reps (output %d rows)\n",
		r.Rows, r.Partitions, r.Reps, r.OutputRows)
	fmt.Fprintf(w, "%-22s %12s %10s\n", "variant", "cpu (best)", "vs off")
	line := func(name string, us int64, over float64) {
		fmt.Fprintf(w, "%-22s %12v %+9.1f%%\n", name, time.Duration(us)*time.Microsecond, over*100)
	}
	line("tracing off (nil span)", r.UntracedMicros, 0)
	line("metrics collected", r.CollectedMicros, r.CollectedOverhead)
	line("fully traced", r.TracedMicros, r.TracedOverhead)
	fmt.Fprintf(w, "traced run recorded %d spans\n", r.TracedSpans)
	fmt.Fprintf(w, "gate: median paired off/collected ratio %.3f <= %.2f = %v\n",
		r.GateRatio, 1+r.Budget, r.WithinBudget)
	if r.Dist != nil {
		fmt.Fprintln(w)
		r.Dist.Print(w)
	}
}

// WriteFile lands the report as indented JSON via temp + rename.
func (r ObsOverheadReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
