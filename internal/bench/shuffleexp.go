package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"scrubjay/internal/cluster"
	"scrubjay/internal/engine"
	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/shuffle"
	"scrubjay/internal/value"
)

// The shuffle experiment runs the §7.2 Figure-5 query twice over the same
// simulated DAT-1 inputs: once with in-process exchanges (the library
// default) and once through a live 2-worker shuffle cluster, where every
// exchange's column batches cross real TCP loopback via the sjworker
// protocol. It doubles as a correctness gate: the two runs must produce
// byte-identical JSON row sequences — the bit-for-bit contract the
// distributed path promises — or the experiment fails.

// ShuffleRun is one measured leg (local or distributed).
type ShuffleRun struct {
	WallMillis float64 `json:"wall_ms"`
	OutputRows int64   `json:"output_rows"`
}

// ShuffleReport is the BENCH_shuffle.json document.
type ShuffleReport struct {
	Rows    int64      `json:"rows"`
	Workers int        `json:"workers"`
	Reps    int        `json:"reps"`
	Local   ShuffleRun `json:"local"`
	Dist    ShuffleRun `json:"dist"`
	// LocalMillis / DistMillis duplicate the per-leg walls at the top level
	// for one-glance CI logs.
	LocalMillis float64 `json:"local_ms"`
	DistMillis  float64 `json:"dist_ms"`
	// Ratio is dist wall over local wall (>1 means the TCP hop costs time;
	// on one host it always should, since the cluster adds serialization
	// and loopback round-trips without adding machines).
	Ratio float64 `json:"ratio"`
	// Exchanges and ShuffleBytes count what actually crossed the cluster —
	// if Exchanges is 0 the distributed path silently never ran.
	Exchanges    int64 `json:"exchanges"`
	ShuffleBytes int64 `json:"shuffle_bytes"`
	// Identical is the gate: every output row byte-identical, in order.
	Identical bool `json:"identical"`
}

// shuffleLeg executes the Fig-5 pipeline reps times on a fresh context
// (with the placement attached when non-nil) and keeps the fastest wall.
// The catalog is materialized to in-memory rows before the timer so the
// measurement is derivation + exchange, not facility simulation.
func shuffleLeg(cfg CaseStudyConfig, reps int, p rdd.Placement) ([]value.Row, ShuffleRun, error) {
	ctx := rdd.NewContext(cfg.Workers)
	if p != nil {
		ctx = ctx.WithPlacement(p)
	}
	dict := semantics.DefaultDictionary()
	cat, schemas, _ := DAT1Catalog(ctx, cfg)
	for name, ds := range cat {
		cat[name] = materializeRows(ctx, ds)
	}
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), Fig5Query())
	if err != nil {
		return nil, ShuffleRun{}, err
	}
	var rows []value.Row
	var best ShuffleRun
	for r := 0; r < reps; r++ {
		start := time.Now()
		out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
		if err != nil {
			return nil, ShuffleRun{}, err
		}
		got := out.Collect()
		wall := float64(time.Since(start).Nanoseconds()) / 1e6
		if r == 0 || wall < best.WallMillis {
			best = ShuffleRun{WallMillis: wall, OutputRows: int64(len(got))}
		}
		rows = got
	}
	return rows, best, nil
}

// rowsIdentical checks the bit-for-bit contract the way the served API
// exposes rows: each row's JSON encoding must match byte for byte, in the
// same order.
func rowsIdentical(a, b []value.Row) (bool, error) {
	if len(a) != len(b) {
		return false, nil
	}
	for i := range a {
		ja, err := json.Marshal(a[i])
		if err != nil {
			return false, err
		}
		jb, err := json.Marshal(b[i])
		if err != nil {
			return false, err
		}
		if !bytes.Equal(ja, jb) {
			return false, nil
		}
	}
	return true, nil
}

// RunShuffleCompare runs the local and 2-worker legs and builds the report.
func RunShuffleCompare(cfg CaseStudyConfig, reps int) (ShuffleReport, error) {
	if reps < 1 {
		reps = 1
	}
	const workers = 2

	met := obs.NewRegistry()
	reg := cluster.NewRegistry("sjbench", 10*time.Second, 2)
	defer reg.Close()
	servers := make([]*shuffle.Server, 0, workers)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < workers; i++ {
		srv, err := shuffle.Serve("127.0.0.1:0", fmt.Sprintf("bench-w%d", i))
		if err != nil {
			return ShuffleReport{}, err
		}
		servers = append(servers, srv)
		if _, err := reg.Register(context.Background(), srv.Addr()); err != nil {
			return ShuffleReport{}, err
		}
	}
	sched := cluster.NewScheduler(reg, cluster.Options{Metrics: met})

	localRows, local, err := shuffleLeg(cfg, reps, nil)
	if err != nil {
		return ShuffleReport{}, fmt.Errorf("local leg: %w", err)
	}
	distRows, dist, err := shuffleLeg(cfg, reps, sched)
	if err != nil {
		return ShuffleReport{}, fmt.Errorf("distributed leg: %w", err)
	}
	same, err := rowsIdentical(localRows, distRows)
	if err != nil {
		return ShuffleReport{}, err
	}

	rep := ShuffleReport{
		Rows:         local.OutputRows,
		Workers:      workers,
		Reps:         reps,
		Local:        local,
		Dist:         dist,
		LocalMillis:  local.WallMillis,
		DistMillis:   dist.WallMillis,
		Exchanges:    met.Counter("cluster_exchanges_total").Load(),
		ShuffleBytes: met.Counter("cluster_shuffle_bytes_total").Load(),
		Identical:    same,
	}
	if local.WallMillis > 0 {
		rep.Ratio = dist.WallMillis / local.WallMillis
	}
	if rep.Exchanges == 0 {
		return rep, fmt.Errorf("no exchange crossed the cluster: the distributed path never ran")
	}
	return rep, nil
}

// Print renders the comparison for the console.
func (r ShuffleReport) Print(w io.Writer) {
	fmt.Fprintf(w, "fig-5 query, %d output rows, best of %d\n", r.Rows, r.Reps)
	fmt.Fprintf(w, "  %-22s %10.1f ms\n", "local (in-process)", r.LocalMillis)
	fmt.Fprintf(w, "  %-22s %10.1f ms  (%d exchanges, %d bytes over TCP)\n",
		fmt.Sprintf("distributed (%dw)", r.Workers), r.DistMillis, r.Exchanges, r.ShuffleBytes)
	fmt.Fprintf(w, "  dist/local ratio = %.2fx; byte-identical output = %v\n", r.Ratio, r.Identical)
}

// WriteFile lands the report as indented JSON via temp + rename.
func (r ShuffleReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
