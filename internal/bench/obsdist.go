package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"

	"scrubjay/internal/cluster"
	"scrubjay/internal/engine"
	"scrubjay/internal/obs"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/provenance"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/shuffle"
)

// ObsDistReport is the distributed leg of the obs experiment: the Fig-5
// query over a live 2-worker shuffle cluster, tracing on vs tracing off.
// Tracing on means the full cross-process path — trace context on every
// put/fetch, worker-side span recording, span shipment at the barrier, and
// driver-side grafting — so the gate bounds what fleet-wide tracing costs a
// real distributed query, under the same budget as the local fast-path
// gate. Both variants run in one process (workers are in-process TCP
// servers), so process CPU time captures driver and worker cost together.
type ObsDistReport struct {
	Workers int `json:"workers"`
	Reps    int `json:"reps"`
	// Best-of-reps process CPU times per variant.
	UntracedMicros int64 `json:"untraced_cpu_micros"`
	TracedMicros   int64 `json:"traced_cpu_micros"`
	// Budget bounds the median paired traced/untraced ratio (0.03 = 3%).
	Budget       float64 `json:"budget"`
	GateRatio    float64 `json:"gate_ratio"`
	WithinBudget bool    `json:"within_budget"`
	// WorkerSpans counts worker-origin spans in one traced run's artifact —
	// zero means the distributed tracing path silently never ran.
	WorkerSpans int `json:"worker_spans"`
}

// RunObsDistOverhead measures the distributed tracing overhead: reps
// back-to-back pairs of (untraced, traced) Fig-5 runs over a live
// 2-worker cluster, order alternating per rep, gated on the median paired
// ratio with one extension round — the same discipline as RunObsOverhead.
func RunObsDistOverhead(cfg CaseStudyConfig, reps int) (*ObsDistReport, error) {
	if reps < 5 {
		reps = 5
	}
	const workers = 2
	reg := cluster.NewRegistry("sjbench-obs", 10*time.Second, 2)
	defer reg.Close()
	servers := make([]*shuffle.Server, 0, workers)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < workers; i++ {
		srv, err := shuffle.Serve("127.0.0.1:0", fmt.Sprintf("obs-w%d", i))
		if err != nil {
			return nil, err
		}
		servers = append(servers, srv)
		if _, err := reg.Register(context.Background(), srv.Addr()); err != nil {
			return nil, err
		}
	}
	sched := cluster.NewScheduler(reg, cluster.Options{})

	rep := &ObsDistReport{Workers: workers, Budget: obsOverheadBudget}

	// One distributed Fig-5 execution; setup (catalog, plan search) stays
	// outside the measured region, GC is forced before and pinned off
	// during it.
	run := func(traced bool) (time.Duration, error) {
		ctx := rdd.NewContext(cfg.Workers).WithPlacement(sched)
		dict := semantics.DefaultDictionary()
		cat, schemas, _ := DAT1Catalog(ctx, cfg)
		for name, ds := range cat {
			cat[name] = materializeRows(ctx, ds)
		}
		e := engine.New(dict, schemas, engine.DefaultOptions())
		plan, err := e.Solve(context.Background(), Fig5Query())
		if err != nil {
			return 0, err
		}
		var tr *obs.Tracer
		var root *obs.Span
		if traced {
			tr = obs.NewTracer("bench-dist", nil)
			root = tr.Start(obs.KindExec, "fig5-dist")
			ctx.SetSpan(root)
		}
		runtime.GC()
		gcPrev := debug.SetGCPercent(-1)
		start := cpuTime()
		out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
		if err != nil {
			debug.SetGCPercent(gcPrev)
			return 0, err
		}
		out.Collect()
		d := cpuTime() - start
		debug.SetGCPercent(gcPrev)
		if traced {
			root.End()
			if s := provenance.Summarize(tr.Artifact()); s != nil {
				rep.WorkerSpans = s.WorkerSpans
			}
		}
		return d, nil
	}

	// Discarded warm-up pair.
	for _, traced := range []bool{false, true} {
		if _, err := run(traced); err != nil {
			return nil, err
		}
	}
	var ratios []float64
	round := func(n int) error {
		for r := 0; r < n; r++ {
			var untraced, traced time.Duration
			order := []bool{false, true}
			if r%2 == 1 {
				order[0], order[1] = order[1], order[0]
			}
			for _, isTraced := range order {
				d, err := run(isTraced)
				if err != nil {
					return err
				}
				us := d.Microseconds()
				if isTraced {
					traced = d
					if rep.TracedMicros == 0 || us < rep.TracedMicros {
						rep.TracedMicros = us
					}
				} else {
					untraced = d
					if rep.UntracedMicros == 0 || us < rep.UntracedMicros {
						rep.UntracedMicros = us
					}
				}
			}
			if untraced > 0 {
				ratios = append(ratios, float64(traced)/float64(untraced))
			}
		}
		return nil
	}
	if err := round(reps); err != nil {
		return nil, err
	}
	rep.GateRatio = medianFloat(ratios)
	if rep.GateRatio > 1+rep.Budget {
		if err := round(reps); err != nil {
			return nil, err
		}
		rep.GateRatio = medianFloat(ratios)
	}
	rep.Reps = len(ratios)
	rep.WithinBudget = rep.GateRatio <= 1+rep.Budget
	if rep.WorkerSpans == 0 {
		return rep, fmt.Errorf("traced distributed run recorded no worker-origin spans")
	}
	return rep, nil
}

// Print renders the distributed leg under the local obs table.
func (r *ObsDistReport) Print(w io.Writer) {
	fmt.Fprintf(w, "distributed leg: fig-5 over %d workers, %d paired reps\n", r.Workers, r.Reps)
	fmt.Fprintf(w, "%-22s %12v\n", "tracing off", time.Duration(r.UntracedMicros)*time.Microsecond)
	fmt.Fprintf(w, "%-22s %12v\n", "tracing on", time.Duration(r.TracedMicros)*time.Microsecond)
	fmt.Fprintf(w, "traced run grafted %d worker-origin spans\n", r.WorkerSpans)
	fmt.Fprintf(w, "gate: median paired on/off ratio %.3f <= %.2f = %v\n",
		r.GateRatio, 1+r.Budget, r.WithinBudget)
}
