package bench

import (
	"fmt"
	"time"

	"scrubjay/internal/dataset"
	"scrubjay/internal/derive"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// JoinWorkload sizes the Figure 3 synthetic workloads.
type JoinWorkload struct {
	// Rows is the row count per input dataset.
	Rows int
	// Partitions is the RDD partition count (the paper runs 320 cores; we
	// default to 64 partitions to keep task logs representative).
	Partitions int
	// Workers is the real worker-pool size.
	Workers int
	// WindowSeconds is the interpolation-join window.
	WindowSeconds float64
}

// DefaultJoinWorkload returns laptop-scale defaults (the paper sweeps 2M to
// 40M rows on a 10-node cluster; pass larger Rows to approach that).
func DefaultJoinWorkload() JoinWorkload {
	return JoinWorkload{Rows: 100_000, Partitions: 64, Workers: 0, WindowSeconds: 2}
}

// naturalJoinInputs builds two datasets of n rows each sharing the
// compute_node domain with unique keys, so the join output is n rows: the
// shuffle (the paper's bottleneck) dominates, as in §6.
func naturalJoinInputs(ctx *rdd.Context, n, parts int) (*dataset.Dataset, *dataset.Dataset) {
	ls := semantics.NewSchema(
		"node_id", semantics.IDDomain("compute_node"),
		"load", semantics.ValueEntry("fraction", "fraction"),
	)
	rs := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"power", semantics.ValueEntry("power", "watts"),
	)
	left := dataset.New("nj-left", rdd.Generate(ctx, n, parts, func(i int) value.Row {
		return value.Row{
			"node_id": value.Str(fmt.Sprintf("node%08d", i)),
			"load":    value.Float(float64(i%100) / 100),
		}
	}).WithName("nj-left"), ls)
	right := dataset.New("nj-right", rdd.Generate(ctx, n, parts, func(i int) value.Row {
		return value.Row{
			"node":  value.Str(fmt.Sprintf("node%08d", i)),
			"power": value.Float(float64(100 + i%200)),
		}
	}).WithName("nj-right"), rs)
	return left, right
}

// interpJoinInputs builds two timestamped streams over a shared node domain
// whose instants do not align: 64 nodes, one sample per second per node on
// the left, right samples offset by half a second. With a small window the
// match count per row is constant, so output size stays linear in input
// size, matching the paper's Figure 3 setup.
func interpJoinInputs(ctx *rdd.Context, n, parts int) (*dataset.Dataset, *dataset.Dataset) {
	const nodes = 64
	ls := semantics.NewSchema(
		"node_id", semantics.IDDomain("compute_node"),
		"t", semantics.TimeDomain(),
		"load", semantics.ValueEntry("fraction", "fraction"),
	)
	rs := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"ts", semantics.TimeDomain(),
		"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
	)
	left := dataset.New("ij-left", rdd.Generate(ctx, n, parts, func(i int) value.Row {
		node := i % nodes
		sample := int64(i / nodes)
		return value.Row{
			"node_id": value.Str(fmt.Sprintf("node%03d", node)),
			"t":       value.TimeNanos(sample * 1e9),
			"load":    value.Float(float64(i%100) / 100),
		}
	}).WithName("ij-left"), ls)
	right := dataset.New("ij-right", rdd.Generate(ctx, n, parts, func(i int) value.Row {
		node := i % nodes
		sample := int64(i / nodes)
		return value.Row{
			"node": value.Str(fmt.Sprintf("node%03d", node)),
			"ts":   value.TimeNanos(sample*1e9 + 5e8),
			"temp": value.Float(20 + float64(i%40)),
		}
	}).WithName("ij-right"), rs)
	return left, right
}

// JoinRunResult captures one measured join execution.
type JoinRunResult struct {
	Rows       int
	OutputRows int64
	// Wall is the real single-process wall-clock time.
	Wall time.Duration
	// Metrics is the recorded task log, replayable onto simulated clusters.
	Metrics rdd.Metrics
}

// Simulated returns the makespan of the run on a simulated cluster of the
// given node count (32 cores/node, the paper's configuration).
func (r JoinRunResult) Simulated(nodes int) time.Duration {
	return rdd.SimulateMakespan(r.Metrics, rdd.PaperCluster(nodes))
}

// RunNaturalJoin executes one natural join of the synthetic workload and
// returns its measurements.
func RunNaturalJoin(w JoinWorkload) (JoinRunResult, error) {
	ctx := rdd.NewContext(w.Workers)
	dict := semantics.DefaultDictionary()
	left, right := naturalJoinInputs(ctx, w.Rows, w.Partitions)
	ctx.ResetMetrics()
	start := time.Now()
	out, err := (&derive.NaturalJoin{}).Apply(left, right, dict)
	if err != nil {
		return JoinRunResult{}, err
	}
	n := out.Count()
	wall := time.Since(start)
	return JoinRunResult{Rows: w.Rows, OutputRows: n, Wall: wall, Metrics: ctx.SnapshotMetrics()}, nil
}

// RunInterpJoin executes one interpolation join of the synthetic workload.
func RunInterpJoin(w JoinWorkload) (JoinRunResult, error) {
	ctx := rdd.NewContext(w.Workers)
	dict := semantics.DefaultDictionary()
	left, right := interpJoinInputs(ctx, w.Rows, w.Partitions)
	ctx.ResetMetrics()
	start := time.Now()
	out, err := (&derive.InterpolationJoin{WindowSeconds: w.WindowSeconds}).Apply(left, right, dict)
	if err != nil {
		return JoinRunResult{}, err
	}
	n := out.Count()
	wall := time.Since(start)
	return JoinRunResult{Rows: w.Rows, OutputRows: n, Wall: wall, Metrics: ctx.SnapshotMetrics()}, nil
}

// RowSweep returns the row counts for a Figure 3 left-panel sweep from
// lo to hi in the paper's 10-step pattern.
func RowSweep(lo, hi int) []int {
	if lo <= 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	steps := 10
	out := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		out = append(out, lo+(hi-lo)*i/(steps-1))
	}
	return out
}

// Fig3Rows runs the rows sweep (Figure 3 left panels) for the given join
// runner, reporting simulated seconds on the paper's 10-node cluster.
// Each point runs reps times (min 1) and keeps the fastest, suppressing
// single-host GC noise the way benchmark best-of-N runs do.
func Fig3Rows(label string, run func(JoinWorkload) (JoinRunResult, error), w JoinWorkload, rowCounts []int, reps int) (Series, error) {
	if reps < 1 {
		reps = 1
	}
	s := Series{Label: label, XLabel: "rows", YLabel: "seconds(sim,10nodes)"}
	for _, n := range rowCounts {
		best := 0.0
		for r := 0; r < reps; r++ {
			wn := w
			wn.Rows = n
			res, err := run(wn)
			if err != nil {
				return Series{}, err
			}
			sim := res.Simulated(10).Seconds()
			if r == 0 || sim < best {
				best = sim
			}
		}
		s.Add(float64(n), best)
	}
	return s, nil
}

// Fig3Scaling runs one join at fixed rows and replays its task log onto
// simulated clusters of 1..10 nodes (Figure 3 right panels).
func Fig3Scaling(label string, run func(JoinWorkload) (JoinRunResult, error), w JoinWorkload) (Series, error) {
	res, err := run(w)
	if err != nil {
		return Series{}, err
	}
	s := Series{Label: label, XLabel: "nodes", YLabel: "seconds(sim)"}
	for nodes := 1; nodes <= 10; nodes++ {
		s.Add(float64(nodes), res.Simulated(nodes).Seconds())
	}
	return s, nil
}
