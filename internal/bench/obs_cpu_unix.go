//go:build unix

package bench

import (
	"syscall"
	"time"
)

// cpuTime reads this process's cumulative CPU time (user + system).
// Unlike wall time it excludes run-queue waits and CPU steal, which on a
// shared host dwarf the few-percent effect the obs overhead gate measures.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return time.Duration(nanotimeFallback())
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
