package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"scrubjay/internal/engine"
	"scrubjay/internal/facility"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/workload"
)

// CaseStudyConfig sizes the §7 case-study reproductions.
type CaseStudyConfig struct {
	// Racks / NodesPerRack size the facility (the Cab stand-in).
	Racks        int
	NodesPerRack int
	// AMGRack is the rack hosting the AMG job in DAT-1 (the paper's rack 17).
	AMGRack int
	// DAT1DurationSec is the first session's length.
	DAT1DurationSec int64
	// DAT2 parameters: nodes instrumented, per-run length, gap.
	DAT2Nodes  int
	DAT2RunSec int64
	DAT2GapSec int64
	// Workers and Partitions configure execution.
	Workers    int
	Partitions int
	Seed       int64
}

// DefaultCaseStudyConfig reproduces the paper's shapes at laptop scale:
// 20 racks x 64 nodes, AMG on 60 nodes of rack 17, two-hour DAT-1, and a
// six-run DAT-2 on two instrumented nodes.
func DefaultCaseStudyConfig() CaseStudyConfig {
	return CaseStudyConfig{
		Racks:           20,
		NodesPerRack:    64,
		AMGRack:         17,
		DAT1DurationSec: 7200,
		DAT2Nodes:       2,
		DAT2RunSec:      300,
		DAT2GapSec:      60,
		Workers:         0,
		Partitions:      16,
		Seed:            1,
	}
}

// FigPlanExpect holds the expected derivation-step sequences for Figures 5
// and 7, checked by the experiments.
var (
	Fig5ExpectedSteps = []string{
		"source:job_queue_log",
		"explode_discrete",
		"explode_continuous",
		"source:node_layout",
		"natural_join",
		"source:rack_temperatures",
		"derive_heat",
		"interpolation_join",
	}
	Fig7ExpectedSteps = []string{
		"source:ipmi",
		"derive_rate",
		"source:cpu_specs",
		"source:papi",
		"derive_rate",
		"natural_join",
		"derive_active_frequency",
		"interpolation_join",
	}
)

// Fig5Query is the §7.2 query: application names for jobs, heat for racks.
func Fig5Query() engine.Query {
	return engine.Query{
		Domains: []string{"job", "rack"},
		Values: []engine.QueryValue{
			{Dimension: "application"},
			{Dimension: "temperature_difference"},
		},
	}
}

// Fig7Query is the §7.3 query: active CPU frequency and counter rates.
func Fig7Query() engine.Query {
	return engine.Query{
		Domains: []string{"cpu"},
		Values: []engine.QueryValue{
			{Dimension: "active_frequency"},
			{Dimension: "instructions/time_duration"},
			{Dimension: "memory_reads/time_duration"},
		},
	}
}

// DAT1Catalog builds the first session's datasets: job queue log, node
// layout, rack temperatures.
func DAT1Catalog(ctx *rdd.Context, cfg CaseStudyConfig) (pipeline.Catalog, map[string]semantics.Schema, *workload.Schedule) {
	f := facility.New(facility.Config{Racks: cfg.Racks, NodesPerRack: cfg.NodesPerRack, Seed: cfg.Seed})
	sched := workload.DAT1(f, cfg.AMGRack, cfg.DAT1DurationSec)
	temps := f.SimulateTemperatures(ctx, sched.PowerFunc(), 0, cfg.DAT1DurationSec,
		facility.DefaultThermalConfig(), cfg.Partitions)
	cat := pipeline.Catalog{
		"job_queue_log":     sched.JobQueueLog(ctx, cfg.Partitions),
		"node_layout":       f.LayoutDataset(ctx, cfg.Partitions),
		"rack_temperatures": temps,
	}
	schemas := map[string]semantics.Schema{
		"job_queue_log":     workload.JobQueueSchema(),
		"node_layout":       facility.LayoutSchema(),
		"rack_temperatures": facility.TemperatureSchema(),
	}
	return cat, schemas, sched
}

// DAT2Catalog builds the second session's datasets: PAPI counters, IPMI
// counters, CPU specs.
func DAT2Catalog(ctx *rdd.Context, cfg CaseStudyConfig) (pipeline.Catalog, map[string]semantics.Schema, *workload.Schedule) {
	f := facility.New(facility.Config{Racks: cfg.Racks, NodesPerRack: cfg.NodesPerRack, Seed: cfg.Seed})
	nodes := f.RackNodes(0)[:cfg.DAT2Nodes]
	sched := workload.DAT2(f, nodes, cfg.DAT2RunSec, cfg.DAT2GapSec)
	_, end := sched.Span()
	cc := workload.DefaultCounterConfig()
	cc.Seed = cfg.Seed + 7
	cat := pipeline.Catalog{
		"papi":      workload.SimulatePAPI(ctx, sched, nodes, 0, end+cfg.DAT2GapSec, cc, cfg.Partitions),
		"ipmi":      workload.SimulateIPMI(ctx, sched, nodes, 0, end+cfg.DAT2GapSec, cc, cfg.Partitions),
		"cpu_specs": workload.CPUSpecs(ctx, nodes, cc, cfg.Partitions),
	}
	schemas := map[string]semantics.Schema{
		"papi":      workload.PAPISchema(),
		"ipmi":      workload.IPMISchema(),
		"cpu_specs": workload.CPUSpecsSchema(),
	}
	return cat, schemas, sched
}

// PlanResult reports a derivation-engine solve for the plan-shape figures.
type PlanResult struct {
	Plan          *pipeline.Plan
	Steps         []string
	MatchesPaper  bool
	SolveDuration time.Duration
}

func stepsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunFig5Plan solves the §7.2 query and checks the derivation sequence
// against the paper's Figure 5.
func RunFig5Plan() (PlanResult, error) {
	return runPlan(map[string]semantics.Schema{
		"job_queue_log":     workload.JobQueueSchema(),
		"node_layout":       facility.LayoutSchema(),
		"rack_temperatures": facility.TemperatureSchema(),
	}, Fig5Query(), Fig5ExpectedSteps)
}

// RunFig7Plan solves the §7.3 query and checks the derivation sequence
// against the paper's Figure 7 (with the final combine as an interpolation
// join; see DESIGN.md).
func RunFig7Plan() (PlanResult, error) {
	return runPlan(map[string]semantics.Schema{
		"papi":      workload.PAPISchema(),
		"ipmi":      workload.IPMISchema(),
		"cpu_specs": workload.CPUSpecsSchema(),
	}, Fig7Query(), Fig7ExpectedSteps)
}

func runPlan(schemas map[string]semantics.Schema, q engine.Query, want []string) (PlanResult, error) {
	e := engine.New(semantics.DefaultDictionary(), schemas, engine.DefaultOptions())
	start := time.Now()
	plan, err := e.Solve(context.Background(), q)
	if err != nil {
		return PlanResult{}, err
	}
	d := time.Since(start)
	steps := plan.Steps()
	return PlanResult{Plan: plan, Steps: steps, MatchesPaper: stepsEqual(steps, want), SolveDuration: d}, nil
}

// Fig4Result is the §7.2 rack-heat case study outcome.
type Fig4Result struct {
	Plan *pipeline.Plan
	// HeatByRackApp maps "rack|app" to mean heat across the joined rows.
	HeatByRackApp map[string]float64
	// HottestRack and HottestApp identify the outlier (the paper finds
	// rack 17 running AMG).
	HottestRack string
	HottestApp  string
	// Profiles are heat-over-time series for the hottest rack at the top,
	// middle, and bottom locations (the paper's Figure 4 plot).
	Profiles []Series
	// JoinedRows is the size of the derived dataset.
	JoinedRows int64
}

// RunFig4 executes the full §7.2 pipeline: simulate the facility and DAT-1,
// solve the query, execute the derivation sequence, and analyze the result.
func RunFig4(cfg CaseStudyConfig) (Fig4Result, error) {
	ctx := rdd.NewContext(cfg.Workers)
	dict := semantics.DefaultDictionary()
	cat, schemas, _ := DAT1Catalog(ctx, cfg)
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), Fig5Query())
	if err != nil {
		return Fig4Result{}, err
	}
	out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		return Fig4Result{}, err
	}
	rows := out.Collect()

	res := Fig4Result{Plan: plan, HeatByRackApp: map[string]float64{}, JoinedRows: int64(len(rows))}
	counts := map[string]int{}
	for _, r := range rows {
		key := r.Get("rack").StrVal() + "|" + r.Get("job_name").StrVal()
		res.HeatByRackApp[key] += r.Get("heat").FloatVal()
		counts[key]++
	}
	best := ""
	bestHeat := 0.0
	for k := range res.HeatByRackApp {
		res.HeatByRackApp[k] /= float64(counts[k])
		if best == "" || res.HeatByRackApp[k] > bestHeat {
			best, bestHeat = k, res.HeatByRackApp[k]
		}
	}
	if best != "" {
		for i := 0; i < len(best); i++ {
			if best[i] == '|' {
				res.HottestRack, res.HottestApp = best[:i], best[i+1:]
				break
			}
		}
	}

	// Heat profiles over time for the hottest rack, per location.
	timeCol := "timespan_exploded"
	byLoc := map[string]map[int64][]float64{}
	for _, r := range rows {
		if r.Get("rack").StrVal() != res.HottestRack {
			continue
		}
		loc := r.Get("location").StrVal()
		if byLoc[loc] == nil {
			byLoc[loc] = map[int64][]float64{}
		}
		ts := r.Get(timeCol).TimeNanosVal() / 1e9
		byLoc[loc][ts] = append(byLoc[loc][ts], r.Get("heat").FloatVal())
	}
	for _, loc := range facility.Locations {
		s := Series{Label: "heat " + res.HottestRack + " " + loc, XLabel: "seconds", YLabel: "heat(deltaC)"}
		samples := byLoc[loc]
		times := make([]int64, 0, len(samples))
		for ts := range samples {
			times = append(times, ts)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, ts := range times {
			var sum float64
			for _, h := range samples[ts] {
				sum += h
			}
			s.Add(float64(ts), sum/float64(len(samples[ts])))
		}
		res.Profiles = append(res.Profiles, s)
	}
	return res, nil
}

// Fig6Result is the §7.3 throttling case study outcome.
type Fig6Result struct {
	Plan *pipeline.Plan
	// Series holds one time series per derived metric, averaged across
	// CPUs/sockets per instant: active_frequency, instructions_rate,
	// mem_reads_rate, mem_writes_rate, thermal_margin, socket_power.
	Series map[string]Series
	// PerRunMeans maps each run (e.g. "1:mg.C") to metric means within it.
	PerRunMeans map[string]map[string]float64
	// Runs lists the run labels in order.
	Runs       []string
	JoinedRows int64
}

// fig6Metrics maps output metric names to result columns.
var fig6Metrics = map[string]string{
	"active_frequency":  "active_frequency",
	"instructions_rate": "instructions_rate",
	"mem_reads_rate":    "mem_reads_rate",
	"mem_writes_rate":   "mem_writes_rate",
	"thermal_margin":    "thermal_margin",
	"socket_power":      "socket_power",
}

// RunFig6 executes the full §7.3 pipeline and derives the Figure 6 series.
func RunFig6(cfg CaseStudyConfig) (Fig6Result, error) {
	ctx := rdd.NewContext(cfg.Workers)
	dict := semantics.DefaultDictionary()
	cat, schemas, sched := DAT2Catalog(ctx, cfg)
	e := engine.New(dict, schemas, engine.DefaultOptions())
	plan, err := e.Solve(context.Background(), Fig7Query())
	if err != nil {
		return Fig6Result{}, err
	}
	out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		return Fig6Result{}, err
	}
	rows := out.Collect()
	res := Fig6Result{
		Plan:        plan,
		Series:      map[string]Series{},
		PerRunMeans: map[string]map[string]float64{},
		JoinedRows:  int64(len(rows)),
	}

	// Average each metric per instant.
	type agg struct {
		sum float64
		n   int
	}
	perMetric := map[string]map[int64]*agg{}
	for m := range fig6Metrics {
		perMetric[m] = map[int64]*agg{}
	}
	for _, r := range rows {
		ts := r.Get("time").TimeNanosVal() / 1e9
		for m, col := range fig6Metrics {
			v := r.Get(col)
			if f, ok := v.AsFloat(); ok {
				a := perMetric[m][ts]
				if a == nil {
					a = &agg{}
					perMetric[m][ts] = a
				}
				a.sum += f
				a.n++
			}
		}
	}
	for m, samples := range perMetric {
		s := Series{Label: m, XLabel: "seconds", YLabel: m}
		times := make([]int64, 0, len(samples))
		for ts := range samples {
			times = append(times, ts)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, ts := range times {
			s.Add(float64(ts), samples[ts].sum/float64(samples[ts].n))
		}
		res.Series[m] = s
	}

	// Per-run means.
	for i, j := range sched.Jobs {
		label := fmt.Sprintf("%d:%s", i+1, j.App.Name)
		res.Runs = append(res.Runs, label)
		means := map[string]float64{}
		for m := range fig6Metrics {
			s := res.Series[m]
			var sum float64
			var n int
			for k := range s.X {
				ts := int64(s.X[k])
				if ts >= j.StartSec+10 && ts < j.EndSec {
					sum += s.Y[k]
					n++
				}
			}
			if n > 0 {
				means[m] = sum / float64(n)
			}
		}
		res.PerRunMeans[label] = means
	}
	return res, nil
}

// Fig6MetricColumns lists the derived result columns Figure 6 plots.
func Fig6MetricColumns() []string {
	cols := make([]string, 0, len(fig6Metrics))
	for _, c := range fig6Metrics {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}
