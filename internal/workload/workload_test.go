package workload

import (
	"math"
	"testing"

	"scrubjay/internal/facility"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func smallFacility() *facility.Facility {
	return facility.New(facility.Config{Racks: 4, NodesPerRack: 8, Seed: 3})
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"AMG", "mg.C", "prime95", "LULESH", "idle"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Errorf("ProfileByName(%q) = %v %v", name, p, ok)
		}
	}
	if _, ok := ProfileByName("hpl"); ok {
		t.Error("unknown profile should miss")
	}
}

func TestScheduleIndexAndSpan(t *testing.T) {
	f := smallFacility()
	jobs := []Job{
		{ID: "a", App: MgC, Nodes: []string{"cab00-00"}, StartSec: 100, EndSec: 200},
		{ID: "b", App: Prime95, Nodes: []string{"cab00-00", "cab00-01"}, StartSec: 300, EndSec: 400},
	}
	s := NewSchedule(f, jobs)
	if st, en := s.Span(); st != 100 || en != 400 {
		t.Errorf("Span = %d,%d", st, en)
	}
	if j := s.jobAt("cab00-00", 150); j == nil || j.ID != "a" {
		t.Errorf("jobAt(150) = %v", j)
	}
	if j := s.jobAt("cab00-00", 250); j != nil {
		t.Errorf("gap should be idle, got %v", j)
	}
	if j := s.jobAt("cab00-01", 350); j == nil || j.ID != "b" {
		t.Errorf("jobAt(350) = %v", j)
	}
	if j := s.jobAt("cab99-99", 350); j != nil {
		t.Error("unknown node should be idle")
	}
	// Empty schedule span.
	if st, en := NewSchedule(f, nil).Span(); st != 0 || en != 0 {
		t.Error("empty span")
	}
}

func TestPowerFuncRampAndIdle(t *testing.T) {
	f := smallFacility()
	amg := Job{ID: "amg", App: AMG, Nodes: []string{"cab00-00"}, StartSec: 0, EndSec: 3600}
	s := NewSchedule(f, []Job{amg})
	p := s.PowerFunc()
	idle := p("cab00-00", -10)
	early := p("cab00-00", 60)
	late := p("cab00-00", 1800)
	if idle != AMG.IdlePowerW {
		t.Errorf("pre-job power = %v", idle)
	}
	if !(early > idle && late > early) {
		t.Errorf("AMG power should ramp: idle=%v early=%v late=%v", idle, early, late)
	}
	if p("cab00-01", 60) != idleProfile.IdlePowerW {
		t.Error("unallocated node should idle")
	}
}

func TestJobQueueLog(t *testing.T) {
	ctx := rdd.NewContext(2)
	f := smallFacility()
	s := DAT1(f, 2, 7200)
	ds := s.JobQueueLog(ctx, 2)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("job log invalid: %v", err)
	}
	if ds.Count() != int64(len(s.Jobs)) {
		t.Errorf("rows = %d, want %d", ds.Count(), len(s.Jobs))
	}
	// The AMG job exists, runs on rack 2 nodes, lasts most of the DAT.
	var amg value.Row
	for _, r := range ds.Collect() {
		if r.Get("job_name").StrVal() == "AMG" {
			amg = r
		}
	}
	if amg == nil {
		t.Fatal("no AMG job in DAT1")
	}
	nodes := amg.Get("nodelist").ListVal()
	if len(nodes) == 0 || len(nodes) > 60 {
		t.Errorf("AMG nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if n.StrVal()[:5] != "cab02" {
			t.Errorf("AMG node %s not on rack 2", n.StrVal())
		}
	}
}

func TestDAT1JobsWithinBounds(t *testing.T) {
	f := smallFacility()
	s := DAT1(f, 1, 7200)
	for _, j := range s.Jobs {
		if j.StartSec < 0 || j.EndSec > 7200 || j.StartSec >= j.EndSec {
			t.Errorf("job %s has bad span [%d,%d)", j.ID, j.StartSec, j.EndSec)
		}
		if len(j.Nodes) == 0 {
			t.Errorf("job %s has no nodes", j.ID)
		}
	}
	// AMG rack index beyond the facility is clamped.
	s2 := DAT1(f, 99, 7200)
	if len(s2.Jobs) == 0 {
		t.Error("clamped DAT1 should still schedule")
	}
}

func TestDAT2Sequence(t *testing.T) {
	f := smallFacility()
	nodes := f.RackNodes(0)[:2]
	s := DAT2(f, nodes, 600, 60)
	if len(s.Jobs) != 6 {
		t.Fatalf("jobs = %d", len(s.Jobs))
	}
	for i, j := range s.Jobs {
		wantApp := "mg.C"
		if i >= 3 {
			wantApp = "prime95"
		}
		if j.App.Name != wantApp {
			t.Errorf("job %d app = %s, want %s", i, j.App.Name, wantApp)
		}
		if i > 0 && j.StartSec < s.Jobs[i-1].EndSec {
			t.Error("jobs should not overlap")
		}
	}
}

func TestCPUSpecs(t *testing.T) {
	ctx := rdd.NewContext(1)
	cc := DefaultCounterConfig()
	ds := CPUSpecs(ctx, []string{"n1", "n2"}, cc, 1)
	if ds.Count() != int64(2*cc.CPUsPerNode) {
		t.Errorf("rows = %d", ds.Count())
	}
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Errorf("specs invalid: %v", err)
	}
}

func TestSimulatePAPICountersCumulativeWithResets(t *testing.T) {
	ctx := rdd.NewContext(2)
	f := smallFacility()
	nodes := f.RackNodes(0)[:1]
	s := DAT2(f, nodes, 120, 30)
	cc := DefaultCounterConfig()
	cc.CPUsPerNode = 2
	ds := SimulatePAPI(ctx, s, nodes, 0, 300, cc, 2)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("papi invalid: %v", err)
	}
	rows := ds.SortedBy("cpu_id", "time")
	if len(rows) != 2*300 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Counters are mostly non-decreasing with occasional resets.
	increases, resets := 0, 0
	for i := 1; i < 300; i++ { // first CPU's series
		prev := rows[i-1].Get("mperf").FloatVal()
		cur := rows[i].Get("mperf").FloatVal()
		if cur >= prev {
			increases++
		} else {
			resets++
		}
	}
	if increases < 250 {
		t.Errorf("counters should be mostly cumulative: %d increases", increases)
	}
	if cc.ResetEvery > 0 && resets == 0 {
		t.Error("expected at least one counter reset")
	}
}

func TestSimulatePAPIThrottlingBehaviour(t *testing.T) {
	// During mg.C the APERF/MPERF ratio stays near 1; during prime95 it
	// drops toward the throttle floor — the §7.3 signature.
	ctx := rdd.NewContext(2)
	f := smallFacility()
	nodes := f.RackNodes(0)[:1]
	s := DAT2(f, nodes, 300, 60)
	cc := DefaultCounterConfig()
	cc.CPUsPerNode = 1
	cc.ResetEvery = 0 // keep differencing simple here
	ds := SimulatePAPI(ctx, s, nodes, 0, s.Jobs[5].EndSec+60, cc, 2)
	rows := ds.SortedBy("time")

	ratioAt := func(lo, hi int64) float64 {
		var sum float64
		var n int
		for i := 1; i < len(rows); i++ {
			ts := rows[i].Get("time").TimeNanosVal() / 1e9
			if ts < lo || ts >= hi {
				continue
			}
			da := rows[i].Get("aperf").FloatVal() - rows[i-1].Get("aperf").FloatVal()
			dm := rows[i].Get("mperf").FloatVal() - rows[i-1].Get("mperf").FloatVal()
			if dm > 0 {
				sum += da / dm
				n++
			}
		}
		return sum / float64(n)
	}
	mg := s.Jobs[0]
	p95 := s.Jobs[3]
	mgRatio := ratioAt(mg.StartSec+10, mg.EndSec)
	p95Ratio := ratioAt(p95.StartSec+10, p95.EndSec)
	if mgRatio < 0.95 {
		t.Errorf("mg.C should run near base frequency, ratio=%v", mgRatio)
	}
	if p95Ratio > 0.8 {
		t.Errorf("prime95 should throttle aggressively, ratio=%v", p95Ratio)
	}
	if math.Abs(mgRatio-p95Ratio) < 0.15 {
		t.Errorf("throttling contrast too weak: %v vs %v", mgRatio, p95Ratio)
	}
}

func TestSimulateIPMI(t *testing.T) {
	ctx := rdd.NewContext(2)
	f := smallFacility()
	nodes := f.RackNodes(0)[:1]
	s := DAT2(f, nodes, 300, 60)
	cc := DefaultCounterConfig()
	ds := SimulateIPMI(ctx, s, nodes, 0, 600, cc, 2)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("ipmi invalid: %v", err)
	}
	rows := ds.SortedBy("socket", "time")
	perSocket := 600 / cc.IPMIPeriodSec
	if int64(len(rows)) != int64(cc.SocketsPerNode)*perSocket {
		t.Fatalf("rows = %d", len(rows))
	}
	// During the first mg.C run memory traffic accumulates fast; thermal
	// margin remains positive.
	var sawTraffic bool
	for _, r := range rows {
		if r.Get("mem_reads").FloatVal() > 1e8 {
			sawTraffic = true
		}
		if r.Get("thermal_margin").FloatVal() < 0 {
			t.Errorf("negative thermal margin: %v", r)
		}
		if r.Get("socket_power").FloatVal() <= 0 {
			t.Errorf("non-positive socket power: %v", r)
		}
	}
	if !sawTraffic {
		t.Error("mg.C should generate heavy memory traffic")
	}
}

func TestMemoryContrastBetweenApps(t *testing.T) {
	// mg.C moves far more memory than prime95 (§7.3).
	ctx := rdd.NewContext(1)
	f := smallFacility()
	nodes := f.RackNodes(0)[:1]
	s := DAT2(f, nodes, 300, 60)
	cc := DefaultCounterConfig()
	cc.ResetEvery = 0
	cc.SocketsPerNode = 1
	ds := SimulateIPMI(ctx, s, nodes, 0, s.Jobs[5].EndSec, cc, 1)
	rows := ds.SortedBy("time")
	rate := func(lo, hi int64) float64 {
		var total float64
		var n int
		for i := 1; i < len(rows); i++ {
			ts := rows[i].Get("time").TimeNanosVal() / 1e9
			if ts < lo || ts >= hi {
				continue
			}
			d := rows[i].Get("mem_reads").FloatVal() - rows[i-1].Get("mem_reads").FloatVal()
			if d >= 0 {
				total += d
				n++
			}
		}
		return total / float64(n)
	}
	mgRate := rate(s.Jobs[0].StartSec+10, s.Jobs[0].EndSec)
	p95Rate := rate(s.Jobs[3].StartSec+10, s.Jobs[3].EndSec)
	if mgRate < 3*p95Rate {
		t.Errorf("mg.C memory rate should dominate prime95: %v vs %v", mgRate, p95Rate)
	}
}

func TestSchedulerState(t *testing.T) {
	ctx := rdd.NewContext(1)
	f := smallFacility()
	jobs := []Job{
		{ID: "a", App: MgC, Nodes: f.RackNodes(0)[:4], StartSec: 0, EndSec: 300},
		{ID: "b", App: Prime95, Nodes: f.RackNodes(1)[:8], StartSec: 150, EndSec: 450},
	}
	s := NewSchedule(f, jobs)
	ds := s.SchedulerState(ctx, "cab", 0, 600, 30, 1)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("scheduler state invalid: %v", err)
	}
	rows := ds.SortedBy("time")
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	at := func(sec int64) value.Row {
		for _, r := range rows {
			if r.Get("time").TimeNanosVal() == sec*1e9 {
				return r
			}
		}
		t.Fatalf("no sample at %d", sec)
		return nil
	}
	// t=0: only job a (4 nodes). t=180: both (12 nodes). t=480: none.
	if at(0).Get("running_jobs").IntVal() != 1 || at(0).Get("busy_nodes").IntVal() != 4 {
		t.Errorf("t=0 state = %v", at(0))
	}
	if at(180).Get("running_jobs").IntVal() != 2 || at(180).Get("busy_nodes").IntVal() != 12 {
		t.Errorf("t=180 state = %v", at(180))
	}
	if at(480).Get("running_jobs").IntVal() != 0 || at(480).Get("utilization").FloatVal() != 0 {
		t.Errorf("t=480 state = %v", at(480))
	}
	util := at(180).Get("utilization").FloatVal()
	want := 12.0 / float64(len(f.Nodes()))
	if util < want-1e-9 || util > want+1e-9 {
		t.Errorf("utilization = %v, want %v", util, want)
	}
}
