package workload

import (
	"fmt"
	"math"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// hashNoise is a deterministic hash-noise in [-1, 1).
func hashNoise(seed int64, a, b int64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(a)*0xBF58476D1CE4E5B9 ^ uint64(b)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 27
	return float64(x%2000000)/1000000 - 1
}

// CounterConfig tunes the counter simulations of the second DAT (§7.3).
type CounterConfig struct {
	// CPUsPerNode and SocketsPerNode size the hardware.
	CPUsPerNode    int
	SocketsPerNode int
	// BaseGHz is the base (MPERF) frequency of every CPU.
	BaseGHz float64
	// PAPIPeriodSec and IPMIPeriodSec are the sampling cadences; the paper
	// collected node data on one- to three-second intervals.
	PAPIPeriodSec int64
	IPMIPeriodSec int64
	// ResetEvery forces each cumulative counter to wrap after roughly this
	// many samples (the "arbitrary interval" resets of §7.3); 0 disables.
	ResetEvery int64
	// Seed drives deterministic noise.
	Seed int64
}

// DefaultCounterConfig matches the paper's cadences.
func DefaultCounterConfig() CounterConfig {
	return CounterConfig{
		CPUsPerNode:    8,
		SocketsPerNode: 2,
		BaseGHz:        3.2,
		PAPIPeriodSec:  1,
		IPMIPeriodSec:  3,
		ResetEvery:     97,
		Seed:           7,
	}
}

// CPUName renders the canonical per-node CPU identifier.
func CPUName(cpu int) string { return fmt.Sprintf("cpu%02d", cpu) }

// SocketName renders the canonical per-node socket identifier.
func SocketName(s int) string { return fmt.Sprintf("socket%d", s) }

// PAPISchema is the semantics of the PAPI CPU counter dataset.
func PAPISchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain().WithCadence(1),
		"node", semantics.IDDomain("compute_node"),
		"cpu_id", semantics.IDDomain("cpu"),
		"aperf", semantics.ValueEntry("aperf_cycles", "count"),
		"mperf", semantics.ValueEntry("mperf_cycles", "count"),
		"instructions", semantics.ValueEntry("instructions", "count"),
	)
}

// IPMISchema is the semantics of the IPMI motherboard dataset.
func IPMISchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain().WithCadence(3),
		"node", semantics.IDDomain("compute_node"),
		"socket", semantics.IDDomain("cpu_socket"),
		"mem_reads", semantics.ValueEntry("memory_reads", "count"),
		"mem_writes", semantics.ValueEntry("memory_writes", "count"),
		"socket_power", semantics.ValueEntry("power", "watts"),
		"thermal_margin", semantics.ValueEntry("temperature_difference", "delta_celsius"),
	)
}

// CPUSpecsSchema is the semantics of the static CPU specification table
// (from /proc/cpuinfo in the paper).
func CPUSpecsSchema() semantics.Schema {
	return semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"cpu_id", semantics.IDDomain("cpu"),
		"base_frequency", semantics.ValueEntry("frequency", "gigahertz"),
		"model", semantics.ValueEntry("identity", "identifier"),
	)
}

// CPUSpecs materializes the static CPU specification dataset.
func CPUSpecs(ctx *rdd.Context, nodes []string, cc CounterConfig, parts int) *dataset.Dataset {
	var rows []value.Row
	for _, n := range nodes {
		for c := 0; c < cc.CPUsPerNode; c++ {
			rows = append(rows, value.NewRow(
				"node", value.Str(n),
				"cpu_id", value.Str(CPUName(c)),
				"base_frequency", value.Float(cc.BaseGHz),
				"model", value.Str("Intel Xeon E5-2667 v3"),
			))
		}
	}
	return dataset.FromRows(ctx, "cpu_specs", rows, CPUSpecsSchema(), parts)
}

// throttleAt returns the instantaneous active/base frequency ratio for a
// profile: prime95 oscillates around its aggressive throttle floor, others
// hold near their fraction.
func throttleAt(p Profile, level float64, seed, key, t int64) float64 {
	if level <= 0 {
		return 1 // idle CPUs are unthrottled (and barely counting)
	}
	f := p.ThrottleFraction
	if f < 1 {
		// Throttling oscillates as the CPU bounces off its thermal limit.
		f += 0.08*math.Sin(float64(t)/7) + 0.02*hashNoise(seed, key, t)
	}
	if f > 1 {
		f = 1
	}
	if f < 0.1 {
		f = 0.1
	}
	return f
}

// SimulatePAPI produces the cumulative PAPI counter dataset over
// [startSec, endSec) for the given nodes under the schedule.
func SimulatePAPI(ctx *rdd.Context, s *Schedule, nodes []string, startSec, endSec int64, cc CounterConfig, parts int) *dataset.Dataset {
	var rows []value.Row
	for ni, n := range nodes {
		for c := 0; c < cc.CPUsPerNode; c++ {
			key := int64(ni*1024 + c)
			var aperf, mperf, instr float64
			sample := int64(0)
			for t := startSec; t < endSec; t += cc.PAPIPeriodSec {
				p, level := s.activity(n, t)
				util := 0.05 + 0.95*level
				baseHz := cc.BaseGHz * 1e9
				ratio := throttleAt(p, level, cc.Seed, key, t)
				dm := baseHz * util * float64(cc.PAPIPeriodSec)
				da := dm * ratio
				di := da * p.InstructionsPerCycle * (1 + 0.05*hashNoise(cc.Seed+2, key, t))
				mperf += dm
				aperf += da
				instr += di
				sample++
				// Arbitrary-interval counter resets (§7.3): stagger the
				// reset phase per CPU.
				if cc.ResetEvery > 0 && (sample+key)%cc.ResetEvery == 0 {
					aperf, mperf, instr = 0, 0, 0
				}
				rows = append(rows, value.NewRow(
					"time", value.TimeNanos(t*1e9),
					"node", value.Str(n),
					"cpu_id", value.Str(CPUName(c)),
					"aperf", value.Float(math.Floor(aperf)),
					"mperf", value.Float(math.Floor(mperf)),
					"instructions", value.Float(math.Floor(instr)),
				))
			}
		}
	}
	return dataset.FromRows(ctx, "papi", rows, PAPISchema(), parts)
}

// SimulateIPMI produces the IPMI motherboard dataset: cumulative memory
// read/write counters plus instantaneous socket power and thermal margin.
func SimulateIPMI(ctx *rdd.Context, s *Schedule, nodes []string, startSec, endSec int64, cc CounterConfig, parts int) *dataset.Dataset {
	var rows []value.Row
	for ni, n := range nodes {
		for so := 0; so < cc.SocketsPerNode; so++ {
			key := int64(ni*64 + so)
			var reads, writes float64
			sample := int64(0)
			for t := startSec; t < endSec; t += cc.IPMIPeriodSec {
				p, level := s.activity(n, t)
				memRate := p.MemOpsPerSecond * (0.05 + 0.95*level) * (1 + 0.05*hashNoise(cc.Seed+3, key, t))
				reads += memRate * float64(cc.IPMIPeriodSec)
				writes += 0.6 * memRate * float64(cc.IPMIPeriodSec)
				sample++
				if cc.ResetEvery > 0 && (sample+key)%cc.ResetEvery == 0 {
					reads, writes = 0, 0
				}
				powerW := (p.IdlePowerW + (p.ActivePowerW-p.IdlePowerW)*level) / float64(cc.SocketsPerNode)
				// Thermal margin shrinks as power rises; prime95 pushes
				// sockets near their limit.
				margin := 45 - 0.18*powerW + 0.8*hashNoise(cc.Seed+4, key, t)
				if margin < 0 {
					margin = 0
				}
				rows = append(rows, value.NewRow(
					"time", value.TimeNanos(t*1e9),
					"node", value.Str(n),
					"socket", value.Str(SocketName(so)),
					"mem_reads", value.Float(math.Floor(reads)),
					"mem_writes", value.Float(math.Floor(writes)),
					"socket_power", value.Float(powerW),
					"thermal_margin", value.Float(margin),
				))
			}
		}
	}
	return dataset.FromRows(ctx, "ipmi", rows, IPMISchema(), parts)
}
