package workload

import (
	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// Scheduler state data: Figure 1's resource-scheduler *state* column
// ("job/node status, active queue, job throughput"). Where the job queue
// log records events (submissions, completions), this dataset samples the
// scheduler's instantaneous state: how many jobs run, how many nodes are
// busy — state data in the paper's event/state taxonomy (§2.1).

// SchedulerStateSchema is the semantics of the periodic scheduler snapshot.
func SchedulerStateSchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain().WithCadence(30),
		"cluster", semantics.IDDomain("cluster"),
		"running_jobs", semantics.ValueEntry("count", "count"),
		"busy_nodes", semantics.ValueEntry("count", "count"),
		"utilization", semantics.ValueEntry("fraction", "fraction"),
	)
}

// SchedulerState samples the schedule every periodSec over
// [startSec, endSec): running job count, busy node count, and node
// utilization of the whole cluster.
func (s *Schedule) SchedulerState(ctx *rdd.Context, clusterName string, startSec, endSec, periodSec int64, parts int) *dataset.Dataset {
	if periodSec <= 0 {
		periodSec = 30
	}
	total := len(s.Facility.Nodes())
	var rows []value.Row
	for t := startSec; t < endSec; t += periodSec {
		running := 0
		busy := 0
		for _, j := range s.Jobs {
			if t >= j.StartSec && t < j.EndSec {
				running++
				busy += len(j.Nodes)
			}
		}
		util := 0.0
		if total > 0 {
			util = float64(busy) / float64(total)
		}
		rows = append(rows, value.NewRow(
			"time", value.TimeNanos(t*1e9),
			"cluster", value.Str(clusterName),
			"running_jobs", value.Int(int64(running)),
			"busy_nodes", value.Int(int64(busy)),
			"utilization", value.Float(util),
		))
	}
	return dataset.FromRows(ctx, "scheduler_state", rows, SchedulerStateSchema(), parts)
}
