// Package workload simulates the jobs and the monitoring byproducts of the
// paper's two dedicated-access-time sessions (§7): a SLURM-style job queue
// log, and the high-fidelity PAPI / IPMI counter streams of the second DAT.
//
// Application profiles reproduce the qualitative behaviours the paper
// observed: AMG generates steadily ramping power (and therefore rack heat);
// mg.C is memory-intensive — it runs at full CPU frequency with a low
// instruction rate and heavy memory traffic; prime95 is compute-intensive —
// it issues instructions at a high rate and triggers aggressive CPU
// frequency throttling. Counters are emitted cumulatively and reset at
// arbitrary intervals, exactly the property that makes the paper's
// derive-rate transformation necessary.
package workload

import (
	"fmt"
	"math"
	"sort"

	"scrubjay/internal/dataset"
	"scrubjay/internal/facility"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// Profile describes the simulated behaviour of one application.
type Profile struct {
	// Name is the application name as it appears in the job log.
	Name string
	// IdlePowerW and ActivePowerW bound a node's power draw.
	IdlePowerW, ActivePowerW float64
	// RampSeconds > 0 ramps power linearly from idle to active over the
	// job's first RampSeconds (AMG's signature); 0 means full power
	// immediately.
	RampSeconds float64
	// PhasePeriodSeconds > 0 modulates power sinusoidally (applications
	// with alternating phases); 0 disables.
	PhasePeriodSeconds float64
	// ThrottleFraction in (0,1] is the active/base frequency ratio the CPU
	// settles at under this workload (1 = no throttling).
	ThrottleFraction float64
	// InstructionsPerCycle is the IPC at active frequency.
	InstructionsPerCycle float64
	// MemOpsPerSecond is the per-CPU memory read rate; writes run at 60%.
	MemOpsPerSecond float64
	// NetBytesPerSecond is the per-node network transmit rate at full
	// activity (communication-heavy codes stress the interconnect).
	NetBytesPerSecond float64
}

// The applications used in the paper's case studies.
var (
	// AMG: adaptive mesh refinement; steadily increasing heat (§7.2).
	AMG = Profile{
		Name: "AMG", IdlePowerW: 80, ActivePowerW: 340, RampSeconds: 1800,
		ThrottleFraction: 0.95, InstructionsPerCycle: 1.1, MemOpsPerSecond: 4e8,
		NetBytesPerSecond: 4e8,
	}
	// MgC: NAS MG class C; memory-intensive arithmetic (§7.3).
	MgC = Profile{
		Name: "mg.C", IdlePowerW: 80, ActivePowerW: 260, PhasePeriodSeconds: 120,
		ThrottleFraction: 1.0, InstructionsPerCycle: 0.6, MemOpsPerSecond: 9e8,
		NetBytesPerSecond: 6e7,
	}
	// Prime95: compute-intensive torture test; aggressive throttling (§7.3).
	Prime95 = Profile{
		Name: "prime95", IdlePowerW: 80, ActivePowerW: 380,
		ThrottleFraction: 0.62, InstructionsPerCycle: 2.4, MemOpsPerSecond: 8e7,
		NetBytesPerSecond: 1e6,
	}
	// LULESH: a phased hydrodynamics proxy app for background workload.
	LULESH = Profile{
		Name: "LULESH", IdlePowerW: 80, ActivePowerW: 300, PhasePeriodSeconds: 300,
		ThrottleFraction: 0.9, InstructionsPerCycle: 1.4, MemOpsPerSecond: 5e8,
		NetBytesPerSecond: 1.2e8,
	}
	// Idle pseudo-profile for unallocated nodes.
	idleProfile = Profile{Name: "idle", IdlePowerW: 80, ActivePowerW: 80,
		ThrottleFraction: 1.0, InstructionsPerCycle: 0.05, MemOpsPerSecond: 1e6,
		NetBytesPerSecond: 1e4}
)

// ProfileByName resolves a profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range []Profile{AMG, MgC, Prime95, LULESH, idleProfile} {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Job is one scheduled execution.
type Job struct {
	ID       string
	App      Profile
	Nodes    []string
	StartSec int64
	EndSec   int64
}

// Schedule is a set of jobs over a facility.
type Schedule struct {
	Facility *facility.Facility
	Jobs     []Job
	// index: node -> jobs sorted by start.
	byNode map[string][]*Job
}

// NewSchedule builds a schedule and its node index.
func NewSchedule(f *facility.Facility, jobs []Job) *Schedule {
	s := &Schedule{Facility: f, Jobs: jobs, byNode: map[string][]*Job{}}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		for _, n := range j.Nodes {
			s.byNode[n] = append(s.byNode[n], j)
		}
	}
	for _, js := range s.byNode {
		sort.Slice(js, func(a, b int) bool { return js[a].StartSec < js[b].StartSec })
	}
	return s
}

// Span returns the [min start, max end) of the schedule.
func (s *Schedule) Span() (startSec, endSec int64) {
	if len(s.Jobs) == 0 {
		return 0, 0
	}
	startSec, endSec = s.Jobs[0].StartSec, s.Jobs[0].EndSec
	for _, j := range s.Jobs[1:] {
		if j.StartSec < startSec {
			startSec = j.StartSec
		}
		if j.EndSec > endSec {
			endSec = j.EndSec
		}
	}
	return
}

// jobAt returns the job running on a node at an instant, or nil.
func (s *Schedule) jobAt(node string, t int64) *Job {
	for _, j := range s.byNode[node] {
		if t >= j.StartSec && t < j.EndSec {
			return j
		}
	}
	return nil
}

// activity returns the profile and job-relative activity level in [0,1]
// for a node at an instant.
func (s *Schedule) activity(node string, t int64) (Profile, float64) {
	j := s.jobAt(node, t)
	if j == nil {
		return idleProfile, 0
	}
	level := 1.0
	if j.App.RampSeconds > 0 {
		into := float64(t - j.StartSec)
		if into < j.App.RampSeconds {
			level = into / j.App.RampSeconds
		}
	}
	if j.App.PhasePeriodSeconds > 0 {
		phase := float64(t-j.StartSec) * 2 * math.Pi / j.App.PhasePeriodSeconds
		level *= 0.75 + 0.25*math.Sin(phase)
	}
	return j.App, level
}

// PowerFunc adapts the schedule to the facility thermal simulation.
func (s *Schedule) PowerFunc() facility.PowerFunc {
	return func(node string, t int64) float64 {
		p, level := s.activity(node, t)
		return p.IdlePowerW + (p.ActivePowerW-p.IdlePowerW)*level
	}
}

// JobQueueSchema is the semantics of the SLURM-style job queue log (§7.1).
func JobQueueSchema() semantics.Schema {
	return semantics.NewSchema(
		"job_id", semantics.IDDomain("job"),
		"job_name", semantics.ValueEntry("application", "identifier"),
		"elapsed", semantics.ValueEntry("time_duration", "seconds"),
		"nodelist", semantics.IDListDomain("compute_node"),
		"timespan", semantics.SpanDomain(),
	)
}

// JobQueueLog materializes the job queue log dataset.
func (s *Schedule) JobQueueLog(ctx *rdd.Context, parts int) *dataset.Dataset {
	rows := make([]value.Row, len(s.Jobs))
	for i, j := range s.Jobs {
		rows[i] = value.NewRow(
			"job_id", value.Str(j.ID),
			"job_name", value.Str(j.App.Name),
			"elapsed", value.Float(float64(j.EndSec-j.StartSec)),
			"nodelist", value.StrList(j.Nodes...),
			"timespan", value.Span(j.StartSec*1e9, j.EndSec*1e9),
		)
	}
	return dataset.FromRows(ctx, "job_queue_log", rows, JobQueueSchema(), parts)
}

// DAT1 builds the first dedicated-access-time schedule (§7.2): a
// heterogeneous mix of applications across the facility, with AMG placed on
// 60 nodes of rack `amgRack` — the configuration whose heat signature the
// paper's Figure 4 plots.
func DAT1(f *facility.Facility, amgRack int, durationSec int64) *Schedule {
	cfg := f.Config()
	if amgRack >= cfg.Racks {
		amgRack = cfg.Racks - 1
	}
	var jobs []Job
	id := 0
	nextID := func() string { id++; return fmt.Sprintf("job%04d", id) }

	// AMG on up to 60 nodes of the target rack, running most of the DAT.
	amgNodes := f.RackNodes(amgRack)
	if len(amgNodes) > 60 {
		amgNodes = amgNodes[:60]
	}
	jobs = append(jobs, Job{ID: nextID(), App: AMG, Nodes: append([]string(nil), amgNodes...),
		StartSec: 600, EndSec: durationSec - 600})

	// Background workloads on other racks: alternating mg.C / LULESH /
	// prime95 slots of varying sizes.
	profiles := []Profile{MgC, LULESH, Prime95}
	for r := 0; r < cfg.Racks; r++ {
		if r == amgRack {
			continue
		}
		p := profiles[r%len(profiles)]
		nodes := f.RackNodes(r)
		half := len(nodes) / 2
		if half == 0 {
			half = 1
		}
		slot := durationSec / 3
		for k := int64(0); k < 3; k++ {
			jobs = append(jobs, Job{
				ID:       nextID(),
				App:      p,
				Nodes:    append([]string(nil), nodes[:half]...),
				StartSec: k*slot + int64(r)*30%slot,
				EndSec:   (k+1)*slot - 120,
			})
		}
	}
	return NewSchedule(f, jobs)
}

// DAT2 builds the second dedicated-access-time schedule (§7.3): three runs
// of mg.C followed by three runs of prime95 on the given nodes, with gaps
// between runs, CPU throttling enabled throughout.
func DAT2(f *facility.Facility, nodes []string, runSec, gapSec int64) *Schedule {
	var jobs []Job
	t := int64(gapSec)
	id := 0
	for _, p := range []Profile{MgC, MgC, MgC, Prime95, Prime95, Prime95} {
		id++
		jobs = append(jobs, Job{
			ID:       fmt.Sprintf("dat2-%02d", id),
			App:      p,
			Nodes:    append([]string(nil), nodes...),
			StartSec: t,
			EndSec:   t + runSec,
		})
		t += runSec + gapSec
	}
	return NewSchedule(f, jobs)
}
