package workload

import (
	"math"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// Network simulation: the paper's conclusion names relating application
// behaviour to network utilization as the next ScrubJay target ("an area of
// increased nondeterministic behavior due to interference"). This file
// implements that extension's substrate: a static link-layout table mapping
// each node's uplink into the interconnect, and a cumulative per-link
// byte/packet counter stream shaped by the running applications'
// communication intensity.

// LinkName renders the canonical uplink identifier for a node.
func LinkName(node string) string { return "link-" + node }

// LinkLayoutSchema is the semantics of the static link-layout table: which
// network link serves which compute node. Like the node/rack layout, it is
// a bridging dataset — it carries no measurements, only relations.
func LinkLayoutSchema() semantics.Schema {
	return semantics.NewSchema(
		"link", semantics.IDDomain("network_link"),
		"node", semantics.IDDomain("compute_node"),
	)
}

// LinkLayout materializes the link-layout table for the given nodes.
func LinkLayout(ctx *rdd.Context, nodes []string, parts int) *dataset.Dataset {
	rows := make([]value.Row, len(nodes))
	for i, n := range nodes {
		rows[i] = value.NewRow(
			"link", value.Str(LinkName(n)),
			"node", value.Str(n),
		)
	}
	return dataset.FromRows(ctx, "link_layout", rows, LinkLayoutSchema(), parts)
}

// NetworkSchema is the semantics of the per-link counter dataset: cumulative
// transmitted bytes and packets, sampled periodically, with the resets that
// make derive_rate necessary.
func NetworkSchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain().WithCadence(5),
		"link", semantics.IDDomain("network_link"),
		"tx_bytes", semantics.ValueEntry("information", "bytes"),
		"tx_packets", semantics.ValueEntry("count", "count"),
	)
}

// NetworkConfig tunes the link-counter simulation.
type NetworkConfig struct {
	// PeriodSec is the counter sampling cadence.
	PeriodSec int64
	// PacketBytes is the mean packet size used to derive packet counts.
	PacketBytes float64
	// ResetEvery wraps each counter after roughly this many samples; 0
	// disables.
	ResetEvery int64
	// Seed drives deterministic noise.
	Seed int64
}

// DefaultNetworkConfig matches typical switch-counter polling.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{PeriodSec: 5, PacketBytes: 4096, ResetEvery: 211, Seed: 13}
}

// SimulateNetwork produces the cumulative link-counter dataset over
// [startSec, endSec) for the given nodes' uplinks under the schedule.
func SimulateNetwork(ctx *rdd.Context, s *Schedule, nodes []string, startSec, endSec int64, nc NetworkConfig, parts int) *dataset.Dataset {
	if nc.PeriodSec <= 0 {
		nc.PeriodSec = 5
	}
	if nc.PacketBytes <= 0 {
		nc.PacketBytes = 4096
	}
	var rows []value.Row
	for ni, n := range nodes {
		key := int64(ni)
		var txBytes, txPkts float64
		sample := int64(0)
		for t := startSec; t < endSec; t += nc.PeriodSec {
			p, level := s.activity(n, t)
			rate := p.NetBytesPerSecond * (0.02 + 0.98*level) * (1 + 0.1*hashNoise(nc.Seed, key, t))
			if rate < 0 {
				rate = 0
			}
			txBytes += rate * float64(nc.PeriodSec)
			txPkts += rate * float64(nc.PeriodSec) / nc.PacketBytes
			sample++
			if nc.ResetEvery > 0 && (sample+key)%nc.ResetEvery == 0 {
				txBytes, txPkts = 0, 0
			}
			rows = append(rows, value.NewRow(
				"time", value.TimeNanos(t*1e9),
				"link", value.Str(LinkName(n)),
				"tx_bytes", value.Float(math.Floor(txBytes)),
				"tx_packets", value.Float(math.Floor(txPkts)),
			))
		}
	}
	return dataset.FromRows(ctx, "network_counters", rows, NetworkSchema(), parts)
}
