package workload

import (
	"testing"

	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
)

func TestLinkLayout(t *testing.T) {
	ctx := rdd.NewContext(1)
	ds := LinkLayout(ctx, []string{"n1", "n2"}, 1)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
	rows := ds.SortedBy("node")
	if len(rows) != 2 || rows[0].Get("link").StrVal() != "link-n1" {
		t.Errorf("layout rows = %v", rows)
	}
}

func TestSimulateNetworkShapes(t *testing.T) {
	ctx := rdd.NewContext(2)
	f := smallFacility()
	nodes := f.RackNodes(0)[:2]
	// One communication-heavy job (AMG) on n0, idle n1.
	s := NewSchedule(f, []Job{{
		ID: "j1", App: AMG, Nodes: nodes[:1], StartSec: 0, EndSec: 600,
	}})
	nc := DefaultNetworkConfig()
	nc.ResetEvery = 50 // force several resets within the window
	ds := SimulateNetwork(ctx, s, nodes, 0, 600, nc, 2)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("network invalid: %v", err)
	}
	wantRows := int64(2) * (600 / nc.PeriodSec)
	if ds.Count() != wantRows {
		t.Fatalf("rows = %d, want %d", ds.Count(), wantRows)
	}
	// The busy node's link accumulates far more traffic than the idle one.
	rows := ds.SortedBy("link", "time")
	maxFor := func(link string) float64 {
		var max float64
		for _, r := range rows {
			if r.Get("link").StrVal() == link {
				if v := r.Get("tx_bytes").FloatVal(); v > max {
					max = v
				}
			}
		}
		return max
	}
	busy := maxFor("link-" + nodes[0])
	idle := maxFor("link-" + nodes[1])
	if busy < 100*idle {
		t.Errorf("busy link %v should dwarf idle link %v", busy, idle)
	}
	// Counters are cumulative with occasional resets.
	increases, resets := 0, 0
	for i := 1; i < len(rows); i++ {
		if rows[i].Get("link").StrVal() != rows[i-1].Get("link").StrVal() {
			continue
		}
		if rows[i].Get("tx_bytes").FloatVal() >= rows[i-1].Get("tx_bytes").FloatVal() {
			increases++
		} else {
			resets++
		}
	}
	if increases == 0 || resets == 0 {
		t.Errorf("expected cumulative counters with resets: %d incr, %d resets", increases, resets)
	}
}

func TestSimulateNetworkDefaultsClamped(t *testing.T) {
	ctx := rdd.NewContext(1)
	f := smallFacility()
	s := NewSchedule(f, nil)
	ds := SimulateNetwork(ctx, s, f.RackNodes(0)[:1], 0, 50, NetworkConfig{}, 1)
	if ds.Count() != 10 { // default 5s period
		t.Errorf("rows = %d, want 10", ds.Count())
	}
}
