package workload

import (
	"testing"

	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
)

func TestFSMap(t *testing.T) {
	ctx := rdd.NewContext(1)
	fc := DefaultFSConfig()
	ds := FSMap(ctx, []string{"n0", "n1", "n2"}, fc, 1)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("fs map invalid: %v", err)
	}
	rows := ds.SortedBy("node")
	if rows[0].Get("fs_server").StrVal() != FSServerName(0) ||
		rows[1].Get("fs_server").StrVal() != FSServerName(1) ||
		rows[2].Get("fs_server").StrVal() != FSServerName(0) {
		t.Errorf("attachment wrong: %v", rows)
	}
	// Zero servers clamps to one.
	fc.Servers = 0
	ds0 := FSMap(ctx, []string{"a"}, fc, 1)
	if ds0.Collect()[0].Get("fs_server").StrVal() != FSServerName(0) {
		t.Error("zero servers should clamp")
	}
}

func TestSimulateFSCountersCheckpointSpikes(t *testing.T) {
	ctx := rdd.NewContext(2)
	fc := DefaultFSConfig()
	ds := SimulateFSCounters(ctx, fc, 0, 600, 2)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("fs counters invalid: %v", err)
	}
	rows := ds.SortedBy("fs_server", "time")
	// Op rate during checkpoints dwarfs the quiet rate.
	var ckSum, quietSum float64
	var ckN, quietN int
	for i := 1; i < len(rows); i++ {
		if rows[i].Get("fs_server").StrVal() != rows[i-1].Get("fs_server").StrVal() {
			continue
		}
		d := rows[i].Get("write_ops").FloatVal() - rows[i-1].Get("write_ops").FloatVal()
		ts := rows[i].Get("time").TimeNanosVal() / 1e9
		if fc.inCheckpoint(ts) && fc.inCheckpoint(ts-fc.FSPeriodSec) {
			ckSum += d
			ckN++
		} else if !fc.inCheckpoint(ts) && !fc.inCheckpoint(ts-fc.FSPeriodSec) {
			quietSum += d
			quietN++
		}
	}
	if ckN == 0 || quietN == 0 {
		t.Fatal("both phases should be sampled")
	}
	if ckSum/float64(ckN) < 10*quietSum/float64(quietN) {
		t.Errorf("checkpoint write rate %v should dwarf quiet %v",
			ckSum/float64(ckN), quietSum/float64(quietN))
	}
}

func TestSimulateInstructionSamplesLatencyContention(t *testing.T) {
	ctx := rdd.NewContext(2)
	fc := DefaultFSConfig()
	ds := SimulateInstructionSamples(ctx, fc, []string{"n0"}, 2, 0, 600, 2)
	if err := ds.Validate(semantics.DefaultDictionary()); err != nil {
		t.Fatalf("samples invalid: %v", err)
	}
	var ckSum, quietSum float64
	var ckN, quietN int
	for _, r := range ds.Collect() {
		ts := r.Get("time").TimeNanosVal() / 1e9
		lat := r.Get("latency").FloatVal()
		if fc.inCheckpoint(ts) {
			ckSum += lat
			ckN++
		} else {
			quietSum += lat
			quietN++
		}
	}
	ckMean := ckSum / float64(ckN)
	quietMean := quietSum / float64(quietN)
	if ckMean < 2*quietMean {
		t.Errorf("checkpoint latency %v should far exceed quiet latency %v", ckMean, quietMean)
	}
}

func TestInCheckpointDisabled(t *testing.T) {
	fc := DefaultFSConfig()
	fc.CheckpointPeriodSec = 0
	if fc.inCheckpoint(0) || fc.inCheckpoint(100) {
		t.Error("disabled checkpoints should never trigger")
	}
}
