package workload

import (
	"fmt"
	"math"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// Filesystem simulation: the paper's opening example (§1) — CPU instruction
// samples annotated with latency, periodic read/write counts on the
// parallel filesystem servers, and the question of whether instruction
// performance is affected by filesystem utilization. The simulator produces
// the three datasets that question needs: instruction samples, per-server
// filesystem counters, and the static node→server attachment table; during
// periodic checkpoint windows the attached servers saturate and instruction
// latency on their client nodes rises.

// FSConfig tunes the filesystem-contention simulation.
type FSConfig struct {
	// Servers is the number of parallel-filesystem servers.
	Servers int
	// CheckpointPeriodSec and CheckpointLenSec shape the periodic
	// checkpoint phases that saturate the filesystem.
	CheckpointPeriodSec int64
	CheckpointLenSec    int64
	// SamplePeriodSec is the instruction-sample cadence per CPU.
	SamplePeriodSec int64
	// FSPeriodSec is the filesystem-counter cadence.
	FSPeriodSec int64
	// BaseLatencyUs is the uncontended mean instruction-sample latency.
	BaseLatencyUs float64
	// ContendedFactor multiplies latency during checkpoints (>1).
	ContendedFactor float64
	// BaseOpsPerSec and CheckpointOpsPerSec are per-server op rates.
	BaseOpsPerSec       float64
	CheckpointOpsPerSec float64
	// Seed drives deterministic noise.
	Seed int64
}

// DefaultFSConfig checkpoints for 60 s out of every 300 s.
func DefaultFSConfig() FSConfig {
	return FSConfig{
		Servers:             2,
		CheckpointPeriodSec: 300,
		CheckpointLenSec:    60,
		SamplePeriodSec:     2,
		FSPeriodSec:         5,
		BaseLatencyUs:       1.2,
		ContendedFactor:     4,
		BaseOpsPerSec:       2e3,
		CheckpointOpsPerSec: 9e4,
		Seed:                21,
	}
}

// FSServerName renders the canonical filesystem-server identifier.
func FSServerName(i int) string { return fmt.Sprintf("lustre-oss%02d", i) }

// inCheckpoint reports whether instant t falls in a checkpoint window for
// the given server (servers checkpoint in phase: all clients hit them at
// once — the paper's "multiple applications entering their checkpoint
// phases simultaneously").
func (fc FSConfig) inCheckpoint(t int64) bool {
	if fc.CheckpointPeriodSec <= 0 {
		return false
	}
	return t%fc.CheckpointPeriodSec < fc.CheckpointLenSec
}

// FSMapSchema is the semantics of the static node→filesystem-server
// attachment table.
func FSMapSchema() semantics.Schema {
	return semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"fs_server", semantics.IDDomain("filesystem"),
	)
}

// FSMap materializes the attachment table: node i attaches to server
// i mod Servers.
func FSMap(ctx *rdd.Context, nodes []string, fc FSConfig, parts int) *dataset.Dataset {
	rows := make([]value.Row, len(nodes))
	for i, n := range nodes {
		rows[i] = value.NewRow(
			"node", value.Str(n),
			"fs_server", value.Str(FSServerName(i%max(1, fc.Servers))),
		)
	}
	return dataset.FromRows(ctx, "fs_map", rows, FSMapSchema(), parts)
}

// FSCountersSchema is the semantics of the per-server filesystem counters:
// cumulative read/write operation counts plus an instantaneous pending-ops
// gauge.
func FSCountersSchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain().WithCadence(5),
		"fs_server", semantics.IDDomain("filesystem"),
		"read_ops", semantics.ValueEntry("operations", "count"),
		"write_ops", semantics.ValueEntry("operations", "count"),
		"pending_ops", semantics.ValueEntry("count", "count"),
	)
}

// SimulateFSCounters produces the filesystem-counter dataset over
// [startSec, endSec).
func SimulateFSCounters(ctx *rdd.Context, fc FSConfig, startSec, endSec int64, parts int) *dataset.Dataset {
	var rows []value.Row
	for s := 0; s < max(1, fc.Servers); s++ {
		var reads, writes float64
		for t := startSec; t < endSec; t += fc.FSPeriodSec {
			rate := fc.BaseOpsPerSec
			if fc.inCheckpoint(t) {
				rate = fc.CheckpointOpsPerSec
			}
			rate *= 1 + 0.1*hashNoise(fc.Seed, int64(s), t)
			reads += 0.3 * rate * float64(fc.FSPeriodSec)
			writes += 0.7 * rate * float64(fc.FSPeriodSec)
			pending := rate / 100 * (1 + 0.2*hashNoise(fc.Seed+1, int64(s), t))
			rows = append(rows, value.NewRow(
				"time", value.TimeNanos(t*1e9),
				"fs_server", value.Str(FSServerName(s)),
				"read_ops", value.Float(math.Floor(reads)),
				"write_ops", value.Float(math.Floor(writes)),
				"pending_ops", value.Float(math.Floor(pending)),
			))
		}
	}
	return dataset.FromRows(ctx, "fs_counters", rows, FSCountersSchema(), parts)
}

// InstructionSamplesSchema is the semantics of the per-CPU instruction
// samples: each sample carries the instruction's observed latency — the
// §1 "set of CPU instruction samples, each annotated with latency and CPU
// id".
func InstructionSamplesSchema() semantics.Schema {
	return semantics.NewSchema(
		"time", semantics.TimeDomain().WithCadence(2),
		"node", semantics.IDDomain("compute_node"),
		"cpu_id", semantics.IDDomain("cpu"),
		"latency", semantics.ValueEntry("time_duration", "microseconds"),
	)
}

// SimulateInstructionSamples produces instruction samples for the given
// nodes over [startSec, endSec): latency rises by ContendedFactor whenever
// the node's filesystem server is in a checkpoint window.
func SimulateInstructionSamples(ctx *rdd.Context, fc FSConfig, nodes []string, cpusPerNode int, startSec, endSec int64, parts int) *dataset.Dataset {
	var rows []value.Row
	for ni, n := range nodes {
		for c := 0; c < cpusPerNode; c++ {
			key := int64(ni*256 + c)
			for t := startSec; t < endSec; t += fc.SamplePeriodSec {
				lat := fc.BaseLatencyUs
				if fc.inCheckpoint(t) {
					lat *= fc.ContendedFactor
				}
				lat *= 1 + 0.15*hashNoise(fc.Seed+2, key, t)
				rows = append(rows, value.NewRow(
					"time", value.TimeNanos(t*1e9),
					"node", value.Str(n),
					"cpu_id", value.Str(CPUName(c)),
					"latency", value.Float(lat),
				))
			}
		}
	}
	return dataset.FromRows(ctx, "instruction_samples", rows, InstructionSamplesSchema(), parts)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
