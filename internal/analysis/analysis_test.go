package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func xySchema() semantics.Schema {
	return semantics.NewSchema(
		"k", semantics.IDDomain("compute_node"),
		"x", semantics.ValueEntry("power", "watts"),
		"y", semantics.ValueEntry("temperature", "kelvin"),
	)
}

func xyDataset(t *testing.T, xs, ys []float64, keys []string) *dataset.Dataset {
	t.Helper()
	ctx := rdd.NewContext(3)
	rows := make([]value.Row, len(xs))
	for i := range xs {
		k := "n"
		if keys != nil {
			k = keys[i]
		}
		rows[i] = value.NewRow("k", value.Str(k), "x", value.Float(xs[i]), "y", value.Float(ys[i]))
	}
	return dataset.FromRows(ctx, "xy", rows, xySchema(), 3)
}

func TestDescribe(t *testing.T) {
	ds := xyDataset(t, []float64{1, 2, 3, 4}, []float64{0, 0, 0, 0}, nil)
	s, err := Describe(ds, "x")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 4 || math.Abs(s.Mean-2.5) > 1e-12 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Describe = %+v", s)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	if _, err := Describe(ds, "nope"); err == nil {
		t.Error("unknown column should fail")
	}
	// Null/missing values skipped; empty column fails.
	ctx := rdd.NewContext(1)
	empty := dataset.FromRows(ctx, "e", []value.Row{value.NewRow("k", value.Str("a"))}, xySchema(), 1)
	if _, err := Describe(empty, "x"); err == nil {
		t.Error("no numeric values should fail")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x+1
	r, err := Pearson(xyDataset(t, xs, ys, nil), "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	// Perfect anticorrelation.
	for i := range ys {
		ys[i] = -ys[i]
	}
	r, err = Pearson(xyDataset(t, xs, ys, nil), "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	ds := xyDataset(t, []float64{1}, []float64{2}, nil)
	if _, err := Pearson(ds, "x", "y"); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := Pearson(ds, "x", "nope"); err == nil {
		t.Error("unknown column should fail")
	}
	flat := xyDataset(t, []float64{5, 5, 5}, []float64{1, 2, 3}, nil)
	if _, err := Pearson(flat, "x", "y"); err == nil {
		t.Error("zero variance should fail")
	}
}

func TestLinearFitRecoversLine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = 3*xs[i] - 7 + rng.NormFloat64()*0.01
	}
	fit, err := LinearFit(xyDataset(t, xs, ys, nil), "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.01 || math.Abs(fit.Intercept+7) > 0.1 {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v", fit.R2)
	}
	if fit.String() == "" {
		t.Error("String empty")
	}
	if _, err := LinearFit(xyDataset(t, []float64{1, 1}, []float64{2, 3}, nil), "x", "y"); err == nil {
		t.Error("zero x variance should fail")
	}
	if _, err := LinearFit(xyDataset(t, nil, nil, nil), "x", "y"); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := LinearFit(xyDataset(t, nil, nil, nil), "x", "zz"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestGroupedMeans(t *testing.T) {
	ds := xyDataset(t,
		[]float64{10, 20, 30, 100},
		[]float64{0, 0, 0, 0},
		[]string{"a", "a", "b", "b"})
	means, err := GroupedMeans(ds, "k", "x")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(means["a"]-15) > 1e-12 || math.Abs(means["b"]-65) > 1e-12 {
		t.Errorf("means = %v", means)
	}
	if _, err := GroupedMeans(ds, "zz", "x"); err == nil {
		t.Error("unknown key column should fail")
	}
	if _, err := GroupedMeans(ds, "k", "zz"); err == nil {
		t.Error("unknown value column should fail")
	}
}

// TestQuickMomentsPartitionInvariance: statistics must not depend on how
// rows are partitioned across the substrate.
func TestQuickMomentsPartitionInvariance(t *testing.T) {
	prop := func(raw []int16, parts uint8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v)*0.5 + float64(i%7)
		}
		build := func(p int) *dataset.Dataset {
			ctx := rdd.NewContext(2)
			rows := make([]value.Row, len(xs))
			for i := range xs {
				rows[i] = value.NewRow("k", value.Str("n"), "x", value.Float(xs[i]), "y", value.Float(ys[i]))
			}
			return dataset.FromRows(ctx, "xy", rows, xySchema(), p)
		}
		p1 := int(parts%7) + 1
		a, errA := Describe(build(1), "x")
		b, errB := Describe(build(p1), "x")
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		close := func(u, v float64) bool {
			return math.Abs(u-v) <= 1e-9*(1+math.Abs(u)+math.Abs(v))
		}
		return a.Count == b.Count && close(a.Mean, b.Mean) && close(a.Std, b.Std) &&
			a.Min == b.Min && a.Max == b.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
