// Package analysis implements the "distributed modeling/analysis" stage of
// the paper's system overview (Figure 2): once the derivation engine has
// produced a dataset relating the queried dimensions, analysts compute
// statistics over it — summaries, correlations, least-squares fits — as
// data-parallel aggregations on the same substrate, without collecting rows
// to one place first.
package analysis

import (
	"fmt"
	"math"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/value"
)

// Summary holds the distribution statistics of one column.
type Summary struct {
	Count int64
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.Count, s.Mean, s.Std, s.Min, s.Max)
}

// moments is the mergeable accumulator behind every statistic here:
// count, sums of x, y, x², y², and xy, plus running min/max of x.
type moments struct {
	n                     int64
	sx, sy, sxx, syy, sxy float64
	min, max              float64
}

func zeroMoments() moments {
	return moments{min: math.Inf(1), max: math.Inf(-1)}
}

func (m moments) addXY(x, y float64) moments {
	m.n++
	m.sx += x
	m.sy += y
	m.sxx += x * x
	m.syy += y * y
	m.sxy += x * y
	if x < m.min {
		m.min = x
	}
	if x > m.max {
		m.max = x
	}
	return m
}

func (a moments) merge(b moments) moments {
	a.n += b.n
	a.sx += b.sx
	a.sy += b.sy
	a.sxx += b.sxx
	a.syy += b.syy
	a.sxy += b.sxy
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	return a
}

// columnMoments aggregates the joint moments of two columns (y may equal x
// for single-column statistics). Rows missing either value are skipped.
func columnMoments(ds *dataset.Dataset, colX, colY string) moments {
	return rdd.Aggregate(ds.Rows(), zeroMoments,
		func(m moments, r value.Row) moments {
			x, okX := r.Get(colX).AsFloat()
			y, okY := r.Get(colY).AsFloat()
			if !okX || !okY {
				return m
			}
			return m.addXY(x, y)
		},
		func(a, b moments) moments { return a.merge(b) },
	)
}

// Describe computes the summary statistics of a numeric column.
func Describe(ds *dataset.Dataset, col string) (Summary, error) {
	if _, ok := ds.Schema()[col]; !ok {
		return Summary{}, fmt.Errorf("analysis: dataset %q has no column %q", ds.Name(), col)
	}
	m := columnMoments(ds, col, col)
	if m.n == 0 {
		return Summary{}, fmt.Errorf("analysis: column %q has no numeric values", col)
	}
	mean := m.sx / float64(m.n)
	variance := m.sxx/float64(m.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count: m.n,
		Mean:  mean,
		Std:   math.Sqrt(variance),
		Min:   m.min,
		Max:   m.max,
	}, nil
}

// Pearson computes the Pearson correlation coefficient between two numeric
// columns over rows where both are present.
func Pearson(ds *dataset.Dataset, colX, colY string) (float64, error) {
	for _, c := range []string{colX, colY} {
		if _, ok := ds.Schema()[c]; !ok {
			return 0, fmt.Errorf("analysis: dataset %q has no column %q", ds.Name(), c)
		}
	}
	m := columnMoments(ds, colX, colY)
	if m.n < 2 {
		return 0, fmt.Errorf("analysis: need at least 2 paired observations, have %d", m.n)
	}
	n := float64(m.n)
	cov := m.sxy/n - (m.sx/n)*(m.sy/n)
	varX := m.sxx/n - (m.sx/n)*(m.sx/n)
	varY := m.syy/n - (m.sy/n)*(m.sy/n)
	if varX <= 0 || varY <= 0 {
		return 0, fmt.Errorf("analysis: zero variance in %s", map[bool]string{true: colX, false: colY}[varX <= 0])
	}
	return cov / math.Sqrt(varX*varY), nil
}

// Fit is a least-squares line y = Slope*x + Intercept with its coefficient
// of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int64
}

// String renders the fit compactly.
func (f Fit) String() string {
	return fmt.Sprintf("y = %.4g*x + %.4g (R²=%.3f, n=%d)", f.Slope, f.Intercept, f.R2, f.N)
}

// LinearFit computes the ordinary-least-squares fit of colY against colX.
func LinearFit(ds *dataset.Dataset, colX, colY string) (Fit, error) {
	for _, c := range []string{colX, colY} {
		if _, ok := ds.Schema()[c]; !ok {
			return Fit{}, fmt.Errorf("analysis: dataset %q has no column %q", ds.Name(), c)
		}
	}
	m := columnMoments(ds, colX, colY)
	if m.n < 2 {
		return Fit{}, fmt.Errorf("analysis: need at least 2 paired observations, have %d", m.n)
	}
	n := float64(m.n)
	varX := m.sxx/n - (m.sx/n)*(m.sx/n)
	if varX <= 0 {
		return Fit{}, fmt.Errorf("analysis: zero variance in %s", colX)
	}
	cov := m.sxy/n - (m.sx/n)*(m.sy/n)
	slope := cov / varX
	intercept := m.sy/n - slope*(m.sx/n)
	varY := m.syy/n - (m.sy/n)*(m.sy/n)
	r2 := 0.0
	if varY > 0 {
		r := cov / math.Sqrt(varX*varY)
		r2 = r * r
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2, N: m.n}, nil
}

// GroupedMeans computes the mean of a value column per distinct value of a
// key column, data-parallel. The result maps the key's rendered string to
// the mean.
func GroupedMeans(ds *dataset.Dataset, keyCol, valCol string) (map[string]float64, error) {
	for _, c := range []string{keyCol, valCol} {
		if _, ok := ds.Schema()[c]; !ok {
			return nil, fmt.Errorf("analysis: dataset %q has no column %q", ds.Name(), c)
		}
	}
	type acc struct {
		sum float64
		n   int64
	}
	partials := rdd.Aggregate(ds.Rows(),
		func() map[string]acc { return map[string]acc{} },
		func(m map[string]acc, r value.Row) map[string]acc {
			v, ok := r.Get(valCol).AsFloat()
			if !ok {
				return m
			}
			k := r.Get(keyCol).String()
			a := m[k]
			a.sum += v
			a.n++
			m[k] = a
			return m
		},
		func(a, b map[string]acc) map[string]acc {
			for k, v := range b {
				cur := a[k]
				cur.sum += v.sum
				cur.n += v.n
				a[k] = cur
			}
			return a
		},
	)
	out := make(map[string]float64, len(partials))
	for k, a := range partials {
		if a.n > 0 {
			out[k] = a.sum / float64(a.n)
		}
	}
	return out, nil
}
