package shuffle

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"scrubjay/internal/obs"
)

// sampleSubtrees builds representative span subtrees: nested children,
// attrs of every supported JSON-stable type, and events.
func sampleSubtrees() []*obs.SpanRecord {
	return []*obs.SpanRecord{
		{ID: 0, Kind: "worker-shuffle", Name: "heat#1",
			StartMicros: 10, DurationMicros: 500,
			Attrs: map[string]any{"worker": "w1", "put_bytes": int64(4096), "ok": true},
			Children: []*obs.SpanRecord{
				{ID: 1, Kind: "worker-put", Name: "dst0", StartMicros: 20, DurationMicros: 5},
				{ID: 2, Kind: "worker-fetch", Name: "dst0", StartMicros: 100, DurationMicros: 50,
					Events: []obs.SpanEvent{{Kind: "merge", AtMicros: 120, Text: "3 chunks"}},
					Children: []*obs.SpanRecord{
						{ID: 3, Kind: "worker-merge", Name: "dst0", StartMicros: 110, DurationMicros: 30},
					}},
			}},
		{ID: 0, Kind: "worker-shuffle", Name: "empty#2"},
	}
}

// TestSpanSubtreeCodecRoundTrip is the property test for the spans-payload
// wire codec: encode/decode is the identity on valid subtree sets of any
// size, and the decoder consumes exactly the encoded bytes.
func TestSpanSubtreeCodecRoundTrip(t *testing.T) {
	samples := sampleSubtrees()
	for count := 0; count <= len(samples); count++ {
		recs := samples[:count]
		buf, err := AppendSpanSubtrees([]byte("prefix"), recs)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeSpanSubtrees(buf[len("prefix"):])
		if err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		if n != len(buf)-len("prefix") {
			t.Fatalf("count %d: consumed %d of %d bytes", count, n, len(buf)-len("prefix"))
		}
		if len(got) != count {
			t.Fatalf("count %d: decoded %d subtrees", count, len(got))
		}
		for i, rec := range got {
			if rec.Kind != recs[i].Kind || rec.Name != recs[i].Name ||
				rec.DurationMicros != recs[i].DurationMicros ||
				len(rec.Children) != len(recs[i].Children) ||
				len(rec.Events) != len(recs[i].Events) {
				t.Fatalf("subtree %d did not round-trip: %+v vs %+v", i, rec, recs[i])
			}
		}
	}
}

func TestSpanSubtreeCodecRejectsMalformed(t *testing.T) {
	valid, _ := AppendSpanSubtrees(nil, sampleSubtrees())
	cases := map[string][]byte{
		"empty":           {},
		"wrong marker":    {0x00, 0x01},
		"truncated count": {spanMarker},
		"huge count":      {spanMarker, 0xff, 0xff, 0xff, 0x7f},
		"truncated body":  valid[:len(valid)-3],
		"bad json":        {spanMarker, 0x01, 0x02, '{', 'x'},
		// Schema-invalid subtree: duplicate ids within one record.
		"dup ids": func() []byte {
			b, _ := AppendSpanSubtrees(nil, []*obs.SpanRecord{{
				ID: 1, Kind: "a",
				Children: []*obs.SpanRecord{{ID: 1, Kind: "b"}},
			}})
			return b
		}(),
		"no kind": func() []byte {
			b, _ := AppendSpanSubtrees(nil, []*obs.SpanRecord{{ID: 0}})
			return b
		}(),
	}
	for name, b := range cases {
		if _, _, err := DecodeSpanSubtrees(b); err == nil {
			t.Errorf("%s: decoder accepted %v", name, b)
		}
	}
}

// TestWorkerRecordsAndShipsSpans drives a traced exchange against a live
// server: traced puts and a traced fetch, then the spans op, asserting the
// shipped subtree's shape — and that shipping clears the worker state.
func TestWorkerRecordsAndShipsSpans(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()
	tc := TraceCtx{TraceID: "t42", ParentSpan: 7}

	for src := 0; src < 3; src++ {
		if err := c.PutTraced(ctx, "sh#9", 0, src, 0, []byte("abcd"), tc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.FetchTraced(ctx, "sh#9", 0, tc); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Spans(ctx, "sh#9", "t42")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("shipped %d subtrees, want 1", len(recs))
	}
	root := recs[0]
	if root.Kind != "worker-shuffle" || root.Name != "sh#9" {
		t.Fatalf("root = %s %q", root.Kind, root.Name)
	}
	if got, _ := root.Attrs[obs.AttrWorker].(string); got != "w-test" {
		t.Fatalf("worker attr = %q", got)
	}
	if root.AttrInt(obs.AttrParentSpan) != 7 {
		t.Fatalf("parent_span = %d, want 7", root.AttrInt(obs.AttrParentSpan))
	}
	if root.AttrInt("put_chunks") != 3 || root.AttrInt("put_bytes") != 12 {
		t.Fatalf("put totals = %d chunks / %d bytes, want 3/12",
			root.AttrInt("put_chunks"), root.AttrInt("put_bytes"))
	}
	if puts := root.FindAll("worker-put"); len(puts) != 3 {
		t.Fatalf("recorded %d put spans, want 3", len(puts))
	}
	fetch := root.Find("worker-fetch")
	if fetch == nil {
		t.Fatal("no worker-fetch span")
	}
	if fetch.AttrInt("chunks") != 3 || fetch.AttrInt("bytes") != 12 {
		t.Fatalf("fetch attrs: chunks=%d bytes=%d, want 3/12",
			fetch.AttrInt("chunks"), fetch.AttrInt("bytes"))
	}
	if fetch.Find("worker-merge") == nil {
		t.Fatal("fetch span has no merge child")
	}

	// Shipping cleared the state: a second collection is empty.
	recs, err = c.Spans(ctx, "sh#9", "t42")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("second collection returned %d subtrees, want 0", len(recs))
	}
}

func TestDropClearsRecordedSpans(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()
	tc := TraceCtx{TraceID: "t43", ParentSpan: 1}
	if err := c.PutTraced(ctx, "sh#10", 0, 0, 0, []byte("x"), tc); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop(ctx, "sh#10"); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Spans(ctx, "sh#10", "t43")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("drop left %d recorded subtrees", len(recs))
	}
}

// TestUntracedOpsRecordNothing: v2 operations with an empty trace context
// must not create worker-side trace state.
func TestUntracedOpsRecordNothing(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()
	if err := c.Put(ctx, "sh#11", 0, 0, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(ctx, "sh#11", 0); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	n := len(srv.traces)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("untraced ops created %d trace entries", n)
	}
}

// TestLiveTraceCapBoundsState: past liveTraceCap concurrent traced
// shuffles, new ones record nothing instead of growing without bound.
func TestLiveTraceCapBoundsState(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()
	for i := 0; i < liveTraceCap+5; i++ {
		tc := TraceCtx{TraceID: fmt.Sprintf("t%d", i), ParentSpan: 1}
		if err := c.PutTraced(ctx, fmt.Sprintf("sh#%d", i), 0, 0, 0, []byte("x"), tc); err != nil {
			t.Fatal(err)
		}
	}
	srv.mu.Lock()
	n := len(srv.traces)
	srv.mu.Unlock()
	if n != liveTraceCap {
		t.Fatalf("trace state holds %d entries, cap is %d", n, liveTraceCap)
	}
	// An over-cap shuffle shipped nothing.
	recs, err := c.Spans(ctx, fmt.Sprintf("sh#%d", liveTraceCap+1), fmt.Sprintf("t%d", liveTraceCap+1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("over-cap shuffle recorded %d subtrees", len(recs))
	}
}

// TestV1ClientAgainstV2Server simulates an old driver: a hello with no
// trailing version byte must negotiate protocol 1, and v1-form put/fetch
// must work on that connection.
func TestV1ClientAgainstV2Server(t *testing.T) {
	srv := testServer(t)
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rt := func(req []byte) []byte {
		t.Helper()
		if err := writeMessage(nc, req); err != nil {
			t.Fatal(err)
		}
		body, err := readMessage(nc, DefaultMaxMessage)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := parseResponse(body)
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}

	resp := rt(appendString([]byte{opHello}, "old-driver"))
	id, n, err := readString(resp)
	if err != nil || id != "w-test" {
		t.Fatalf("hello response id %q err %v", id, err)
	}
	if len(resp) != n+1 || resp[n] != 1 {
		t.Fatalf("version-less hello negotiated %v, want 1", resp[n:])
	}

	// v1 put: no trace fields; the payload starts right after seq.
	put := appendString([]byte{opPut}, "sh#v1")
	for _, v := range []uint64{0, 0, 0} { // dst, src, seq
		put = appendUvarint(put, v)
	}
	put = append(put, []byte("legacy")...)
	rt(put)

	fetch := appendString([]byte{opFetch}, "sh#v1")
	fetch = appendUvarint(fetch, 0)
	if got := rt(fetch); string(got) != "legacy" {
		t.Fatalf("v1 fetch returned %q", got)
	}

	// v1 ping answer carries exactly the two v1 fields.
	ping := rt([]byte{opPing})
	vals := 0
	for len(ping) > 0 {
		_, sz, err := readUvarint(ping)
		if err != nil {
			t.Fatal(err)
		}
		ping = ping[sz:]
		vals++
	}
	if vals != 2 {
		t.Fatalf("v1 ping returned %d fields, want 2", vals)
	}
}

// TestV2ClientAgainstV1Server runs Dial against a stub that speaks only
// protocol 1 (ignores the trailing hello byte, answers with version 1):
// the client must downgrade, send v1-form puts, and report no spans.
func TestV2ClientAgainstV1Server(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			req, err := readMessage(conn, DefaultMaxMessage)
			if err != nil {
				return
			}
			var resp []byte
			switch req[0] {
			case opHello:
				// A v1 server ignores any trailing hello bytes.
				resp = append(appendString([]byte{statusOK}, "v1-worker"), 1)
			case opPut:
				// Strict v1 parse: shuffleID, 3 uvarints, then payload —
				// a client that wrongly appended trace fields would leave
				// them glued to the payload, which this stub detects.
				body := req[1:]
				_, n, _ := readString(body)
				body = body[n:]
				for i := 0; i < 3; i++ {
					_, n, _ := readUvarint(body)
					body = body[n:]
				}
				if string(body) != "payload" {
					resp = errResponse(fmt.Errorf("v1 put body corrupted: %q", body))
				} else {
					resp = []byte{statusOK}
				}
			case opPing:
				resp = appendUvarint(appendUvarint([]byte{statusOK}, 7), 1)
			default:
				resp = errResponse(fmt.Errorf("v1 server: unknown op %d", req[0]))
			}
			if writeMessage(conn, resp) != nil {
				return
			}
		}
	}()

	c, err := Dial(context.Background(), ln.Addr().String(), "driver", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != 1 {
		t.Fatalf("negotiated version %d, want 1", c.Version())
	}
	ctx := context.Background()
	tc := TraceCtx{TraceID: "t1", ParentSpan: 3}
	if err := c.PutTraced(ctx, "sh", 0, 0, 0, []byte("payload"), tc); err != nil {
		t.Fatalf("traced put on v1 conn: %v", err)
	}
	recs, err := c.Spans(ctx, "sh", "t1")
	if err != nil || recs != nil {
		t.Fatalf("Spans on v1 conn = (%v, %v), want (nil, nil)", recs, err)
	}
	st, err := c.Ping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredBytes != 7 || st.Shuffles != 1 || st.Goroutines != 0 {
		t.Fatalf("v1 ping parsed as %+v", st)
	}
}

// appendUvarint mirrors binary.AppendUvarint for test readability.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
