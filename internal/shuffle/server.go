package shuffle

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scrubjay/internal/obs"
)

// Server is the worker side of the exchange: it stores map-output chunks
// pushed by the driver and serves merged destination partitions back. The
// scheduler guarantees push-before-fetch per destination (it barriers the
// push phase of a shuffle before issuing any fetch), so the server needs no
// completeness tracking of its own — the merge is purely the deterministic
// (src, seq)-ordered concatenation that makes distributed runs bit-for-bit
// identical to in-process ones.
//
// Puts are idempotent: re-pushing a chunk after a retry overwrites the
// identical bytes, so a task observed twice is visible at most once.
//
// On a v2 connection each put/fetch may carry a trace context; the server
// then records its side of the exchange — put, fetch, and merge spans with
// bytes/chunks attrs — under one obs.Tracer per (shuffle, trace), and
// ships the completed subtree back on the spans op (cleared worker-side on
// shipment, on drop, and bounded by liveTraceCap against drivers that
// never collect).
type Server struct {
	id string
	ln net.Listener

	mu       sync.Mutex
	shuffles map[string]map[int]map[uint64][]byte // shuffleID -> dst -> src<<32|seq -> chunk
	traces   map[traceKey]*workerTrace
	conns    map[net.Conn]struct{}
	bytes    int64
	closed   bool

	fetchUS *obs.Histogram // merge latency, reported in the ping snapshot

	wg sync.WaitGroup
}

// traceKey identifies one traced shuffle on one driver trace.
type traceKey struct {
	shuffle string
	trace   string
}

// liveTraceCap bounds concurrently-open worker traces: past it, new traced
// shuffles record nothing (the driver's graft is best-effort), so a driver
// that dies before collecting cannot grow worker memory without bound.
const liveTraceCap = 64

// putSpanCap bounds per-trace put child spans; further puts still count in
// the root's put_chunks/put_bytes totals but add no span, keeping a huge
// exchange's subtree shippable.
const putSpanCap = 128

// workerTrace is the server-side span state of one (shuffle, trace): a
// private tracer whose root span collects put/fetch/merge children.
type workerTrace struct {
	tracer *obs.Tracer
	root   *obs.Span

	puts     atomic.Int64
	putBytes atomic.Int64
}

// Serve starts a worker exchange service listening on addr (e.g.
// "127.0.0.1:0") identifying itself as id in handshakes; an empty id
// defaults to the bound address.
func Serve(addr, id string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if id == "" {
		id = ln.Addr().String()
	}
	s := &Server{
		id:       id,
		ln:       ln,
		shuffles: make(map[string]map[int]map[uint64][]byte),
		traces:   make(map[traceKey]*workerTrace),
		conns:    make(map[net.Conn]struct{}),
		fetchUS:  &obs.Histogram{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ID returns the worker identity used in handshakes.
func (s *Server) ID() string { return s.id }

// Close stops the listener, tears down open connections, and waits for the
// serving goroutines to drain. An in-flight request may be cut mid-stream;
// the driver treats that like any other worker failure.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Stats reports stored payload bytes and live shuffle count.
func (s *Server) Stats() (storedBytes int64, shuffles int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, len(s.shuffles)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers framed requests in order until the peer hangs up or a
// framing error makes the stream unrecoverable. Application-level errors
// are answered with statusErr and the connection stays usable. The
// negotiated protocol version is connection state, set by the hello.
func (s *Server) serveConn(conn net.Conn) {
	ver := byte(1) // until a hello negotiates otherwise
	for {
		req, err := readMessage(conn, DefaultMaxMessage)
		if err != nil {
			return
		}
		resp := s.handle(req, &ver)
		if err := writeMessage(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req []byte, ver *byte) []byte {
	if len(req) == 0 {
		return errResponse(fmt.Errorf("empty request"))
	}
	op, body := req[0], req[1:]
	switch op {
	case opHello:
		_, n, err := readString(body)
		if err != nil {
			return errResponse(err)
		}
		// A v2 client appends its version after the driver name; absence
		// (or an unrecognized 0) means the peer speaks v1. The negotiated
		// version is min(client, server), echoed in the response.
		clientVer := byte(1)
		if len(body) > n && body[n] >= 1 {
			clientVer = body[n]
		}
		*ver = clientVer
		if *ver > ProtoVersion {
			*ver = ProtoVersion
		}
		resp := appendString([]byte{statusOK}, s.id)
		return append(resp, *ver)
	case opPut:
		return s.handlePut(body, *ver)
	case opFetch:
		return s.handleFetch(body, *ver)
	case opSpans:
		return s.handleSpans(body)
	case opDrop:
		id, _, err := readString(body)
		if err != nil {
			return errResponse(err)
		}
		s.mu.Lock()
		if byDst, ok := s.shuffles[id]; ok {
			for _, chunks := range byDst {
				for _, c := range chunks {
					s.bytes -= int64(len(c))
				}
			}
			delete(s.shuffles, id)
		}
		for k := range s.traces {
			if k.shuffle == id {
				delete(s.traces, k)
			}
		}
		s.mu.Unlock()
		return []byte{statusOK}
	case opPing:
		stored, n := s.Stats()
		resp := []byte{statusOK}
		resp = binary.AppendUvarint(resp, uint64(stored))
		resp = binary.AppendUvarint(resp, uint64(n))
		if *ver >= 2 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			resp = binary.AppendUvarint(resp, uint64(runtime.NumGoroutine()))
			resp = binary.AppendUvarint(resp, ms.HeapAlloc)
			resp = binary.AppendUvarint(resp, uint64(s.fetchUS.Count()))
			resp = binary.AppendUvarint(resp, uint64(s.fetchUS.Quantile(0.50)))
			resp = binary.AppendUvarint(resp, uint64(s.fetchUS.Quantile(0.90)))
			resp = binary.AppendUvarint(resp, uint64(s.fetchUS.Quantile(0.99)))
		}
		return resp
	default:
		return errResponse(fmt.Errorf("unknown opcode 0x%02x", op))
	}
}

// readTraceCtx consumes the v2 trace-context fields (traceID, parentSpan).
func readTraceCtx(body []byte) (traceID string, parent int, n int, err error) {
	traceID, n, err = readString(body)
	if err != nil {
		return "", 0, 0, err
	}
	p, m, err := readUvarint(body[n:])
	if err != nil {
		return "", 0, 0, err
	}
	return traceID, int(p), n + m, nil
}

// traceFor returns the live trace state for key, creating it (bounded by
// liveTraceCap) on first use. parent is the driver-side owning span id.
// Nil means "do not record" — untraced, or the cap is reached.
func (s *Server) traceFor(key traceKey, parent int) *workerTrace {
	if key.trace == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	wt, ok := s.traces[key]
	if !ok {
		if len(s.traces) >= liveTraceCap {
			return nil
		}
		tracer := obs.NewTracer(key.trace, nil)
		root := tracer.Start("worker-shuffle", key.shuffle)
		root.SetStr(obs.AttrWorker, s.id)
		root.SetInt(obs.AttrParentSpan, int64(parent))
		wt = &workerTrace{tracer: tracer, root: root}
		s.traces[key] = wt
	}
	return wt
}

// takeTrace removes and returns the trace state for key (nil when absent).
func (s *Server) takeTrace(key traceKey) *workerTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	wt := s.traces[key]
	delete(s.traces, key)
	return wt
}

func (s *Server) handlePut(body []byte, ver byte) []byte {
	id, n, err := readString(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	dst, n, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	src, n, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	seq, n, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	var wt *workerTrace
	if ver >= 2 {
		traceID, parent, n, err := readTraceCtx(body)
		if err != nil {
			return errResponse(err)
		}
		body = body[n:]
		wt = s.traceFor(traceKey{shuffle: id, trace: traceID}, parent)
	}
	chunk := body
	if src > 1<<31 || seq > 1<<31 || dst > 1<<31 {
		return errResponse(fmt.Errorf("put indices out of range (dst=%d src=%d seq=%d)", dst, src, seq))
	}
	var start time.Duration
	if wt != nil {
		start = wt.root.Clock()()
	}
	key := src<<32 | seq
	// Copy: chunk aliases the request buffer owned by this read loop.
	stored := append([]byte(nil), chunk...)

	s.mu.Lock()
	byDst, ok := s.shuffles[id]
	if !ok {
		byDst = make(map[int]map[uint64][]byte)
		s.shuffles[id] = byDst
	}
	chunks, ok := byDst[int(dst)]
	if !ok {
		chunks = make(map[uint64][]byte)
		byDst[int(dst)] = chunks
	}
	if old, dup := chunks[key]; dup {
		s.bytes -= int64(len(old))
	}
	chunks[key] = stored
	s.bytes += int64(len(stored))
	s.mu.Unlock()
	if wt != nil {
		wt.recordPut(int(dst), int(src), int(seq), len(stored), start)
	}
	return []byte{statusOK}
}

// recordPut attaches one put span (up to putSpanCap) and bumps the root
// totals.
func (w *workerTrace) recordPut(dst, src, seq, bytes int, start time.Duration) {
	n := w.puts.Add(1)
	w.putBytes.Add(int64(bytes))
	if n > putSpanCap {
		return
	}
	sp := w.root.ChildAt("worker-put", fmt.Sprintf("dst%d", dst), start)
	sp.SetInt(obs.AttrPartition, int64(dst))
	sp.SetInt("src", int64(src))
	sp.SetInt("seq", int64(seq))
	sp.SetInt("bytes", int64(bytes))
	sp.EndAt(w.root.Clock()())
}

func (s *Server) handleFetch(body []byte, ver byte) []byte {
	id, n, err := readString(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	dst, n, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}
	var wt *workerTrace
	if ver >= 2 {
		traceID, parent, _, terr := readTraceCtx(body[n:])
		if terr != nil {
			return errResponse(terr)
		}
		wt = s.traceFor(traceKey{shuffle: id, trace: traceID}, parent)
	}
	var fetchSpan *obs.Span // nil-safe: nil when untraced
	if wt != nil {
		fetchSpan = wt.root.Child("worker-fetch", fmt.Sprintf("dst%d", dst))
		fetchSpan.SetInt(obs.AttrPartition, int64(dst))
	}
	mergeStart := time.Now()

	s.mu.Lock()
	var chunks map[uint64][]byte
	if byDst, ok := s.shuffles[id]; ok {
		chunks = byDst[int(dst)]
	}
	keys := make([]uint64, 0, len(chunks))
	total := 0
	for k, c := range chunks {
		keys = append(keys, k)
		total += len(c)
	}
	var mergeSpan *obs.Span
	if fetchSpan != nil {
		mergeSpan = fetchSpan.Child("worker-merge", fmt.Sprintf("dst%d", dst))
		mergeSpan.SetInt("chunks", int64(len(keys)))
		mergeSpan.SetInt("bytes", int64(total))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	resp := make([]byte, 1, 1+total)
	resp[0] = statusOK
	for _, k := range keys {
		resp = append(resp, chunks[k]...)
	}
	s.mu.Unlock()
	s.fetchUS.ObserveDuration(time.Since(mergeStart))
	mergeSpan.End()
	if fetchSpan != nil {
		fetchSpan.SetInt("chunks", int64(len(keys)))
		fetchSpan.SetInt("bytes", int64(total))
		fetchSpan.End()
	}
	return resp
}

// handleSpans ships the recorded span subtree for (shuffleID, traceID) and
// clears it: the driver collects at the exchange barrier, exactly once.
func (s *Server) handleSpans(body []byte) []byte {
	id, n, err := readString(body)
	if err != nil {
		return errResponse(err)
	}
	traceID, _, err := readString(body[n:])
	if err != nil {
		return errResponse(err)
	}
	var recs []*obs.SpanRecord
	if wt := s.takeTrace(traceKey{shuffle: id, trace: traceID}); wt != nil {
		wt.root.SetInt("put_chunks", wt.puts.Load())
		wt.root.SetInt("put_bytes", wt.putBytes.Load())
		wt.root.End()
		recs = append(recs, wt.tracer.Artifact().Root)
	}
	resp, err := AppendSpanSubtrees([]byte{statusOK}, recs)
	if err != nil {
		return errResponse(err)
	}
	return resp
}
