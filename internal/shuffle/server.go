package shuffle

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
)

// Server is the worker side of the exchange: it stores map-output chunks
// pushed by the driver and serves merged destination partitions back. The
// scheduler guarantees push-before-fetch per destination (it barriers the
// push phase of a shuffle before issuing any fetch), so the server needs no
// completeness tracking of its own — the merge is purely the deterministic
// (src, seq)-ordered concatenation that makes distributed runs bit-for-bit
// identical to in-process ones.
//
// Puts are idempotent: re-pushing a chunk after a retry overwrites the
// identical bytes, so a task observed twice is visible at most once.
type Server struct {
	id string
	ln net.Listener

	mu       sync.Mutex
	shuffles map[string]map[int]map[uint64][]byte // shuffleID -> dst -> src<<32|seq -> chunk
	conns    map[net.Conn]struct{}
	bytes    int64
	closed   bool

	wg sync.WaitGroup
}

// Serve starts a worker exchange service listening on addr (e.g.
// "127.0.0.1:0") identifying itself as id in handshakes; an empty id
// defaults to the bound address.
func Serve(addr, id string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if id == "" {
		id = ln.Addr().String()
	}
	s := &Server{id: id, ln: ln, shuffles: make(map[string]map[int]map[uint64][]byte), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ID returns the worker identity used in handshakes.
func (s *Server) ID() string { return s.id }

// Close stops the listener, tears down open connections, and waits for the
// serving goroutines to drain. An in-flight request may be cut mid-stream;
// the driver treats that like any other worker failure.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Stats reports stored payload bytes and live shuffle count.
func (s *Server) Stats() (storedBytes int64, shuffles int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, len(s.shuffles)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers framed requests in order until the peer hangs up or a
// framing error makes the stream unrecoverable. Application-level errors
// are answered with statusErr and the connection stays usable.
func (s *Server) serveConn(conn net.Conn) {
	for {
		req, err := readMessage(conn, DefaultMaxMessage)
		if err != nil {
			return
		}
		resp := s.handle(req)
		if err := writeMessage(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req []byte) []byte {
	if len(req) == 0 {
		return errResponse(fmt.Errorf("empty request"))
	}
	op, body := req[0], req[1:]
	switch op {
	case opHello:
		if _, _, err := readString(body); err != nil {
			return errResponse(err)
		}
		resp := appendString([]byte{statusOK}, s.id)
		return append(resp, ProtoVersion)
	case opPut:
		return s.handlePut(body)
	case opFetch:
		return s.handleFetch(body)
	case opDrop:
		id, _, err := readString(body)
		if err != nil {
			return errResponse(err)
		}
		s.mu.Lock()
		if byDst, ok := s.shuffles[id]; ok {
			for _, chunks := range byDst {
				for _, c := range chunks {
					s.bytes -= int64(len(c))
				}
			}
			delete(s.shuffles, id)
		}
		s.mu.Unlock()
		return []byte{statusOK}
	case opPing:
		stored, n := s.Stats()
		resp := []byte{statusOK}
		resp = binary.AppendUvarint(resp, uint64(stored))
		return binary.AppendUvarint(resp, uint64(n))
	default:
		return errResponse(fmt.Errorf("unknown opcode 0x%02x", op))
	}
}

func (s *Server) handlePut(body []byte) []byte {
	id, n, err := readString(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	dst, n, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	src, n, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	seq, n, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}
	chunk := body[n:]
	if src > 1<<31 || seq > 1<<31 || dst > 1<<31 {
		return errResponse(fmt.Errorf("put indices out of range (dst=%d src=%d seq=%d)", dst, src, seq))
	}
	key := src<<32 | seq
	// Copy: chunk aliases the request buffer owned by this read loop.
	stored := append([]byte(nil), chunk...)

	s.mu.Lock()
	byDst, ok := s.shuffles[id]
	if !ok {
		byDst = make(map[int]map[uint64][]byte)
		s.shuffles[id] = byDst
	}
	chunks, ok := byDst[int(dst)]
	if !ok {
		chunks = make(map[uint64][]byte)
		byDst[int(dst)] = chunks
	}
	if old, dup := chunks[key]; dup {
		s.bytes -= int64(len(old))
	}
	chunks[key] = stored
	s.bytes += int64(len(stored))
	s.mu.Unlock()
	return []byte{statusOK}
}

func (s *Server) handleFetch(body []byte) []byte {
	id, n, err := readString(body)
	if err != nil {
		return errResponse(err)
	}
	body = body[n:]
	dst, _, err := readUvarint(body)
	if err != nil {
		return errResponse(err)
	}

	s.mu.Lock()
	var chunks map[uint64][]byte
	if byDst, ok := s.shuffles[id]; ok {
		chunks = byDst[int(dst)]
	}
	keys := make([]uint64, 0, len(chunks))
	total := 0
	for k, c := range chunks {
		keys = append(keys, k)
		total += len(c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	resp := make([]byte, 1, 1+total)
	resp[0] = statusOK
	for _, k := range keys {
		resp = append(resp, chunks[k]...)
	}
	s.mu.Unlock()
	return resp
}
