package shuffle

import (
	"testing"
	"time"

	"scrubjay/internal/frame"
	"scrubjay/internal/value"
)

// Fuzz targets for the wire decoders: whatever the bytes, decoding must
// return an error or a frame — never panic, never over-read. Seeds cover
// every column kind plus the degenerate shapes; `go test` runs the corpus
// as regular tests, `go test -fuzz=FuzzDecodeFrame ./internal/shuffle`
// explores from there.

func fuzzSeeds() [][]byte {
	seedFrames := []*frame.Frame{
		frame.FromRows(nil),
		frame.FromRows([]value.Row{{}, {}}),
		frame.FromRows([]value.Row{
			{"b": value.Bool(true), "i": value.Int(-3), "f": value.Float(1.5), "s": value.Str("x"), "t": value.Time(time.Unix(1, 0)), "sp": value.Span(1, 2)},
		}),
		frame.FromRows([]value.Row{
			{"m": value.Int(1), "l": value.StrList("a")},
			{"m": value.Str("s")},
		}),
	}
	var seeds [][]byte
	for _, f := range seedFrames {
		seeds = append(seeds, AppendFrame(nil, f))
	}
	return seeds
}

func FuzzDecodeFrame(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Add([]byte{frameMarker, 0x05, 0x05})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// A successful decode must re-encode and decode to the same shape:
		// the codec's own output is always canonical.
		buf := AppendFrame(nil, fr)
		fr2, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if fr2.NumRows() != fr.NumRows() || fr2.NumCols() != fr.NumCols() {
			t.Fatalf("re-encode changed shape: (%d,%d) vs (%d,%d)", fr.NumRows(), fr.NumCols(), fr2.NumRows(), fr2.NumCols())
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(append([]byte{batchMarker, 0x00}, s...))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, hashes, n, err := DecodeBatch(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if len(hashes) != 0 && len(hashes) != fr.NumRows() {
			t.Fatalf("hash vector %d entries for %d rows", len(hashes), fr.NumRows())
		}
	})
}

func FuzzDecodeSpanSubtrees(f *testing.F) {
	if seed, err := AppendSpanSubtrees(nil, sampleSubtrees()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{spanMarker, 0x00})
	f.Add([]byte{spanMarker, 0x01, 0x02, '{', '}'})
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, n, err := DecodeSpanSubtrees(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Every accepted record passed schema validation; re-encoding the
		// decoded set must itself decode cleanly (canonical output).
		buf, err := AppendSpanSubtrees(nil, recs)
		if err != nil {
			t.Fatalf("re-encoding decoded subtrees: %v", err)
		}
		recs2, n2, err := DecodeSpanSubtrees(buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded subtrees failed: %v", err)
		}
		if n2 != len(buf) || len(recs2) != len(recs) {
			t.Fatalf("re-encode changed shape: %d subtrees in %d bytes vs %d in %d",
				len(recs2), n2, len(recs), len(buf))
		}
	})
}
