package shuffle

import (
	"encoding/binary"
	"fmt"
	"io"
)

// TCP exchange protocol. Every message is a 4-byte big-endian length
// followed by that many body bytes; the first body byte of a request is the
// opcode, of a response the status. Payloads inside messages reuse the
// uvarint/length-prefix conventions of the batch codec.
//
// Version 1 requests:
//
//	hello  driverName                    -> ok workerID negotiatedVersion
//	put    shuffleID dst src seq bytes   -> ok
//	fetch  shuffleID dst                 -> ok payload   (chunks merged in
//	                                        (src, seq) order — the worker's
//	                                        shuffle-read merge task)
//	drop   shuffleID                     -> ok           (frees the state,
//	                                        including recorded spans)
//	ping                                 -> ok storedBytes shuffleCount
//
// Version 2 extends the wire per negotiated connection, backward
// compatibly in both directions:
//
//	hello  driverName clientVersion      — a v2 client appends one version
//	       byte; a v1 server ignores trailing hello bytes, a v2 server
//	       reads it (absent = client speaks v1). The response's version
//	       byte is the negotiated min(client, server), so a v1 client
//	       still sees 1 from a v2 server.
//	put    shuffleID dst src seq traceID parentSpan bytes
//	fetch  shuffleID dst traceID parentSpan
//	       — the distributed-tracing context: traceID ("" = untraced) and
//	       the driver-side span id owning this exchange. A traced worker
//	       records put/merge/fetch spans under a per-(shuffle, trace)
//	       tracer.
//	spans  shuffleID traceID             -> ok spanSubtrees
//	       — ships the completed span subtrees for that (shuffle, trace)
//	       back to the driver (see AppendSpanSubtrees for the payload
//	       codec) and clears them worker-side.
//	ping                                 -> ok storedBytes shuffleCount
//	                                        goroutines heapBytes fetches
//	                                        fetchP50us fetchP90us fetchP99us
//	       — the heartbeat metrics snapshot the registry aggregates into
//	       cluster_worker_* gauges.
//
// A worker answers requests on one connection strictly in order; the
// driver keeps a small pool of connections per worker for parallelism.
const (
	ProtoVersion = 2

	opHello byte = 1
	opPut   byte = 2
	opFetch byte = 3
	opDrop  byte = 4
	opPing  byte = 5
	opSpans byte = 6

	statusOK  byte = 0
	statusErr byte = 1
)

// DefaultMaxMessage bounds one framed message (a put chunk plus headers, or
// a whole fetched partition). Exchanges chunk their puts well below this;
// the cap exists so a corrupt length prefix cannot ask for gigabytes.
const DefaultMaxMessage = 64 << 20

// DefaultChunkBytes is the put chunking threshold: one (src, dst) payload
// is shipped as ceil(len/chunk) sequenced puts.
const DefaultChunkBytes = 4 << 20

// writeMessage frames and writes one message body.
func writeMessage(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readMessage reads one framed message body, enforcing the size cap.
func readMessage(r io.Reader, maxLen int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxLen) {
		return nil, fmt.Errorf("shuffle: message of %d bytes exceeds cap %d", n, maxLen)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString consumes a length-prefixed string.
func readString(b []byte) (string, int, error) {
	l, sz := binary.Uvarint(b)
	if sz <= 0 || l > uint64(len(b)-sz) {
		return "", 0, fmt.Errorf("shuffle: truncated string field")
	}
	return string(b[sz : sz+int(l)]), sz + int(l), nil
}

// readUvarint consumes one uvarint.
func readUvarint(b []byte) (uint64, int, error) {
	v, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("shuffle: truncated varint field")
	}
	return v, sz, nil
}

// errResponse renders an error response body.
func errResponse(err error) []byte {
	return appendString([]byte{statusErr}, err.Error())
}

// parseResponse splits a response body into its payload, surfacing a
// statusErr body as an error.
func parseResponse(body []byte) ([]byte, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("shuffle: empty response")
	}
	switch body[0] {
	case statusOK:
		return body[1:], nil
	case statusErr:
		msg, _, err := readString(body[1:])
		if err != nil {
			return nil, fmt.Errorf("shuffle: undecodable error response")
		}
		return nil, fmt.Errorf("shuffle: worker error: %s", msg)
	default:
		return nil, fmt.Errorf("shuffle: bad response status 0x%02x", body[0])
	}
}
