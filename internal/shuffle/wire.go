package shuffle

import (
	"encoding/binary"
	"fmt"
	"io"
)

// TCP exchange protocol. Every message is a 4-byte big-endian length
// followed by that many body bytes; the first body byte of a request is the
// opcode, of a response the status. Payloads inside messages reuse the
// uvarint/length-prefix conventions of the batch codec.
//
// Requests:
//
//	hello  driverName                    -> ok workerID protoVersion
//	put    shuffleID dst src seq bytes   -> ok
//	fetch  shuffleID dst                 -> ok payload   (chunks merged in
//	                                        (src, seq) order — the worker's
//	                                        shuffle-read merge task)
//	drop   shuffleID                     -> ok           (frees the state)
//	ping                                 -> ok storedBytes shuffleCount
//
// A worker answers requests on one connection strictly in order; the
// driver keeps a small pool of connections per worker for parallelism.
const (
	ProtoVersion = 1

	opHello byte = 1
	opPut   byte = 2
	opFetch byte = 3
	opDrop  byte = 4
	opPing  byte = 5

	statusOK  byte = 0
	statusErr byte = 1
)

// DefaultMaxMessage bounds one framed message (a put chunk plus headers, or
// a whole fetched partition). Exchanges chunk their puts well below this;
// the cap exists so a corrupt length prefix cannot ask for gigabytes.
const DefaultMaxMessage = 64 << 20

// DefaultChunkBytes is the put chunking threshold: one (src, dst) payload
// is shipped as ceil(len/chunk) sequenced puts.
const DefaultChunkBytes = 4 << 20

// writeMessage frames and writes one message body.
func writeMessage(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readMessage reads one framed message body, enforcing the size cap.
func readMessage(r io.Reader, maxLen int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxLen) {
		return nil, fmt.Errorf("shuffle: message of %d bytes exceeds cap %d", n, maxLen)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString consumes a length-prefixed string.
func readString(b []byte) (string, int, error) {
	l, sz := binary.Uvarint(b)
	if sz <= 0 || l > uint64(len(b)-sz) {
		return "", 0, fmt.Errorf("shuffle: truncated string field")
	}
	return string(b[sz : sz+int(l)]), sz + int(l), nil
}

// readUvarint consumes one uvarint.
func readUvarint(b []byte) (uint64, int, error) {
	v, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("shuffle: truncated varint field")
	}
	return v, sz, nil
}

// errResponse renders an error response body.
func errResponse(err error) []byte {
	return appendString([]byte{statusErr}, err.Error())
}

// parseResponse splits a response body into its payload, surfacing a
// statusErr body as an error.
func parseResponse(body []byte) ([]byte, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("shuffle: empty response")
	}
	switch body[0] {
	case statusOK:
		return body[1:], nil
	case statusErr:
		msg, _, err := readString(body[1:])
		if err != nil {
			return nil, fmt.Errorf("shuffle: undecodable error response")
		}
		return nil, fmt.Errorf("shuffle: worker error: %s", msg)
	default:
		return nil, fmt.Errorf("shuffle: bad response status 0x%02x", body[0])
	}
}
