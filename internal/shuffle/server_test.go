package shuffle

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", "w-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func testDial(t *testing.T, srv *Server) *Conn {
	t.Helper()
	c, err := Dial(context.Background(), srv.Addr(), "driver-test", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerHello(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	if c.WorkerID() != "w-test" {
		t.Fatalf("worker id %q, want w-test", c.WorkerID())
	}
}

// TestPutFetchMergeOrder pins the deterministic merge: chunks arrive out of
// order across sources and sequences, and fetch returns them concatenated
// in ascending (src, seq) order.
func TestPutFetchMergeOrder(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()

	puts := []struct {
		src, seq int
		payload  string
	}{
		{src: 1, seq: 1, payload: "D"},
		{src: 0, seq: 0, payload: "A"},
		{src: 1, seq: 0, payload: "C"},
		{src: 0, seq: 1, payload: "B"},
		{src: 2, seq: 0, payload: "E"},
	}
	for _, p := range puts {
		if err := c.Put(ctx, "sh#1", 3, p.src, p.seq, []byte(p.payload)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Fetch(ctx, "sh#1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ABCDE" {
		t.Fatalf("merged payload %q, want ABCDE", got)
	}

	// Re-pushing a chunk (a retry) is idempotent: same merge, no growth.
	if err := c.Put(ctx, "sh#1", 3, 0, 0, []byte("A")); err != nil {
		t.Fatal(err)
	}
	got, err = c.Fetch(ctx, "sh#1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ABCDE" {
		t.Fatalf("after idempotent re-put: %q, want ABCDE", got)
	}
}

func TestFetchUnknownIsEmpty(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	got, err := c.Fetch(context.Background(), "nope", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unknown shuffle returned %d bytes", len(got))
	}
}

func TestDropFreesState(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()
	if err := c.Put(ctx, "sh#2", 0, 0, 0, bytes.Repeat([]byte("x"), 1024)); err != nil {
		t.Fatal(err)
	}
	if stored, n := srv.Stats(); stored != 1024 || n != 1 {
		t.Fatalf("stats before drop: %d bytes, %d shuffles", stored, n)
	}
	if err := c.Drop(ctx, "sh#2"); err != nil {
		t.Fatal(err)
	}
	if stored, n := srv.Stats(); stored != 0 || n != 0 {
		t.Fatalf("stats after drop: %d bytes, %d shuffles", stored, n)
	}
}

func TestPing(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()
	if err := c.Put(ctx, "sh#3", 1, 0, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Ping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredBytes != 5 || st.Shuffles != 1 {
		t.Fatalf("ping reported %d bytes, %d shuffles", st.StoredBytes, st.Shuffles)
	}
	// A v2 connection's ping carries the metrics snapshot extension.
	if st.Goroutines == 0 || st.HeapBytes == 0 {
		t.Fatalf("v2 ping snapshot missing runtime stats: %+v", st)
	}
	if _, err := c.Fetch(ctx, "sh#3", 1); err != nil {
		t.Fatal(err)
	}
	st, err = c.Ping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fetches != 1 {
		t.Fatalf("ping reported %d fetches after one fetch", st.Fetches)
	}
}

// TestOpTimeout verifies a dead peer surfaces as an error instead of a
// wedged connection: the deadline covers the whole round trip.
func TestOpTimeout(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	srv.Close() // worker dies after handshake
	err := c.Put(context.Background(), "sh#4", 0, 0, 0, []byte("x"))
	if err == nil {
		t.Fatal("put to a dead worker succeeded")
	}
}

func TestServeAfterBadRequest(t *testing.T) {
	srv := testServer(t)
	c := testDial(t, srv)
	ctx := context.Background()
	// An unknown opcode errors but keeps the connection serviceable.
	if _, err := c.roundTrip(ctx, []byte{0x7f}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	if _, err := c.Ping(ctx); err != nil {
		t.Fatalf("connection unusable after app-level error: %v", err)
	}
}
