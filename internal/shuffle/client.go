package shuffle

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// Conn is one driver-side connection to a worker's exchange service. A Conn
// is not safe for concurrent use — internal/cluster pools several per worker
// and hands each goroutine its own. Every operation applies a deadline of
// min(ctx deadline, opTimeout) to the whole request/response round trip, so
// a hung worker surfaces as an error instead of wedging a fetch slot.
type Conn struct {
	nc        net.Conn
	workerID  string
	opTimeout time.Duration
}

// Dial connects to a worker exchange service and performs the hello
// handshake, verifying the protocol version.
func Dial(ctx context.Context, addr, driverName string, opTimeout time.Duration) (*Conn, error) {
	d := net.Dialer{}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, opTimeout: opTimeout}
	req := appendString([]byte{opHello}, driverName)
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("shuffle: hello to %s: %w", addr, err)
	}
	id, n, err := readString(resp)
	if err != nil || len(resp) != n+1 {
		nc.Close()
		return nil, fmt.Errorf("shuffle: malformed hello response from %s", addr)
	}
	if v := resp[n]; v != ProtoVersion {
		nc.Close()
		return nil, fmt.Errorf("shuffle: worker %s speaks protocol %d, driver %d", addr, v, ProtoVersion)
	}
	c.workerID = id
	return c, nil
}

// WorkerID returns the identity the worker reported in the handshake.
func (c *Conn) WorkerID() string { return c.workerID }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Put pushes one map-output chunk: payload bytes for (shuffleID, dst),
// sequenced (src, seq). Idempotent on the worker.
func (c *Conn) Put(ctx context.Context, shuffleID string, dst, src, seq int, payload []byte) error {
	req := appendString([]byte{opPut}, shuffleID)
	req = binary.AppendUvarint(req, uint64(dst))
	req = binary.AppendUvarint(req, uint64(src))
	req = binary.AppendUvarint(req, uint64(seq))
	req = append(req, payload...)
	_, err := c.roundTrip(ctx, req)
	return err
}

// Fetch returns the merged payload for destination partition dst of
// shuffleID: all stored chunks concatenated in (src, seq) order.
func (c *Conn) Fetch(ctx context.Context, shuffleID string, dst int) ([]byte, error) {
	req := appendString([]byte{opFetch}, shuffleID)
	req = binary.AppendUvarint(req, uint64(dst))
	return c.roundTrip(ctx, req)
}

// Drop frees all worker-side state for shuffleID. Best-effort cleanup.
func (c *Conn) Drop(ctx context.Context, shuffleID string) error {
	_, err := c.roundTrip(ctx, appendString([]byte{opDrop}, shuffleID))
	return err
}

// Ping checks liveness and returns the worker's stored bytes and live
// shuffle count. Used by the registry heartbeat.
func (c *Conn) Ping(ctx context.Context) (storedBytes int64, shuffles int, err error) {
	resp, err := c.roundTrip(ctx, []byte{opPing})
	if err != nil {
		return 0, 0, err
	}
	stored, n, err := readUvarint(resp)
	if err != nil {
		return 0, 0, err
	}
	count, _, err := readUvarint(resp[n:])
	if err != nil {
		return 0, 0, err
	}
	return int64(stored), int(count), nil
}

func (c *Conn) roundTrip(ctx context.Context, req []byte) ([]byte, error) {
	deadline := time.Now().Add(c.opTimeout)
	if c.opTimeout <= 0 {
		deadline = time.Now().Add(5 * time.Second)
	}
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.nc.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := writeMessage(c.nc, req); err != nil {
		return nil, err
	}
	body, err := readMessage(c.nc, DefaultMaxMessage)
	if err != nil {
		return nil, err
	}
	return parseResponse(body)
}
