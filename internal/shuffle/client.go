package shuffle

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"scrubjay/internal/obs"
)

// TraceCtx is the distributed-tracing context one exchange operation
// carries across the wire: the driver's trace id (empty = untraced) and
// the id of the driver-side span that owns the exchange, which becomes the
// cross-process parent of the worker's recorded subtree.
type TraceCtx struct {
	TraceID    string
	ParentSpan int
}

// WorkerStats is the metrics snapshot a v2 ping returns — the compact
// worker health summary the registry heartbeat aggregates into
// cluster_worker_* gauges. A v1 worker fills only the first two fields.
type WorkerStats struct {
	StoredBytes int64
	Shuffles    int
	Goroutines  int
	HeapBytes   int64
	Fetches     int64
	FetchP50us  int64
	FetchP90us  int64
	FetchP99us  int64
}

// Conn is one driver-side connection to a worker's exchange service. A Conn
// is not safe for concurrent use — internal/cluster pools several per worker
// and hands each goroutine its own. Every operation applies a deadline of
// min(ctx deadline, opTimeout) to the whole request/response round trip, so
// a hung worker surfaces as an error instead of wedging a fetch slot.
type Conn struct {
	nc        net.Conn
	workerID  string
	version   byte
	opTimeout time.Duration
}

// Dial connects to a worker exchange service and performs the hello
// handshake, negotiating the protocol version: the client advertises
// ProtoVersion and accepts any server answer in [1, ProtoVersion], so a v2
// driver interoperates with a v1 worker (and vice versa — a v1 server
// ignores the trailing version byte and a v2 server answers a version-less
// hello with 1).
func Dial(ctx context.Context, addr, driverName string, opTimeout time.Duration) (*Conn, error) {
	d := net.Dialer{}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, opTimeout: opTimeout}
	req := appendString([]byte{opHello}, driverName)
	req = append(req, ProtoVersion)
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("shuffle: hello to %s: %w", addr, err)
	}
	id, n, err := readString(resp)
	if err != nil || len(resp) != n+1 {
		nc.Close()
		return nil, fmt.Errorf("shuffle: malformed hello response from %s", addr)
	}
	if v := resp[n]; v < 1 || v > ProtoVersion {
		nc.Close()
		return nil, fmt.Errorf("shuffle: worker %s negotiated protocol %d, driver supports 1..%d", addr, v, ProtoVersion)
	} else {
		c.version = v
	}
	c.workerID = id
	return c, nil
}

// WorkerID returns the identity the worker reported in the handshake.
func (c *Conn) WorkerID() string { return c.workerID }

// Version returns the negotiated protocol version.
func (c *Conn) Version() byte { return c.version }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Put pushes one untraced map-output chunk — PutTraced with an empty trace
// context.
func (c *Conn) Put(ctx context.Context, shuffleID string, dst, src, seq int, payload []byte) error {
	return c.PutTraced(ctx, shuffleID, dst, src, seq, payload, TraceCtx{})
}

// PutTraced pushes one map-output chunk: payload bytes for (shuffleID,
// dst), sequenced (src, seq), carrying the trace context on a v2
// connection (a v1 worker receives the v1 wire form and records nothing).
// Idempotent on the worker.
func (c *Conn) PutTraced(ctx context.Context, shuffleID string, dst, src, seq int, payload []byte, tc TraceCtx) error {
	req := appendString([]byte{opPut}, shuffleID)
	req = binary.AppendUvarint(req, uint64(dst))
	req = binary.AppendUvarint(req, uint64(src))
	req = binary.AppendUvarint(req, uint64(seq))
	if c.version >= 2 {
		req = appendTraceCtx(req, tc)
	}
	req = append(req, payload...)
	_, err := c.roundTrip(ctx, req)
	return err
}

// Fetch returns the untraced merged payload for destination dst —
// FetchTraced with an empty trace context.
func (c *Conn) Fetch(ctx context.Context, shuffleID string, dst int) ([]byte, error) {
	return c.FetchTraced(ctx, shuffleID, dst, TraceCtx{})
}

// FetchTraced returns the merged payload for destination partition dst of
// shuffleID — all stored chunks concatenated in (src, seq) order — carrying
// the trace context on a v2 connection.
func (c *Conn) FetchTraced(ctx context.Context, shuffleID string, dst int, tc TraceCtx) ([]byte, error) {
	req := appendString([]byte{opFetch}, shuffleID)
	req = binary.AppendUvarint(req, uint64(dst))
	if c.version >= 2 {
		req = appendTraceCtx(req, tc)
	}
	return c.roundTrip(ctx, req)
}

// Spans ships back and clears the worker's recorded span subtrees for
// (shuffleID, traceID). Nil on a v1 connection (the worker recorded
// nothing) and for an untraced shuffle.
func (c *Conn) Spans(ctx context.Context, shuffleID, traceID string) ([]*obs.SpanRecord, error) {
	if c.version < 2 || traceID == "" {
		return nil, nil
	}
	req := appendString([]byte{opSpans}, shuffleID)
	req = appendString(req, traceID)
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	recs, n, err := DecodeSpanSubtrees(resp)
	if err != nil {
		return nil, err
	}
	if n != len(resp) {
		return nil, fmt.Errorf("shuffle: %d trailing bytes after span payload", len(resp)-n)
	}
	return recs, nil
}

// Drop frees all worker-side state for shuffleID (stored chunks and
// recorded spans). Best-effort cleanup.
func (c *Conn) Drop(ctx context.Context, shuffleID string) error {
	_, err := c.roundTrip(ctx, appendString([]byte{opDrop}, shuffleID))
	return err
}

// Ping checks liveness and returns the worker's metrics snapshot. Used by
// the registry heartbeat. A v1 worker reports stored bytes and shuffle
// count only; the v2 fields stay zero.
func (c *Conn) Ping(ctx context.Context) (WorkerStats, error) {
	resp, err := c.roundTrip(ctx, []byte{opPing})
	if err != nil {
		return WorkerStats{}, err
	}
	var vals []int64
	for len(resp) > 0 && len(vals) < 8 {
		v, n, err := readUvarint(resp)
		if err != nil {
			return WorkerStats{}, err
		}
		vals = append(vals, int64(v))
		resp = resp[n:]
	}
	if len(vals) < 2 {
		return WorkerStats{}, fmt.Errorf("shuffle: truncated ping response")
	}
	st := WorkerStats{StoredBytes: vals[0], Shuffles: int(vals[1])}
	if len(vals) == 8 { // the v2 snapshot extension; absent from a v1 worker
		st.Goroutines, st.HeapBytes = int(vals[2]), vals[3]
		st.Fetches, st.FetchP50us, st.FetchP90us, st.FetchP99us = vals[4], vals[5], vals[6], vals[7]
	}
	return st, nil
}

// appendTraceCtx appends the v2 trace-context fields.
func appendTraceCtx(req []byte, tc TraceCtx) []byte {
	req = appendString(req, tc.TraceID)
	parent := tc.ParentSpan
	if parent < 0 {
		parent = 0
	}
	return binary.AppendUvarint(req, uint64(parent))
}

func (c *Conn) roundTrip(ctx context.Context, req []byte) ([]byte, error) {
	deadline := time.Now().Add(c.opTimeout)
	if c.opTimeout <= 0 {
		deadline = time.Now().Add(5 * time.Second)
	}
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.nc.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := writeMessage(c.nc, req); err != nil {
		return nil, err
	}
	body, err := readMessage(c.nc, DefaultMaxMessage)
	if err != nil {
		return nil, err
	}
	return parseResponse(body)
}
