// Package shuffle is ScrubJay's distributed-exchange data plane: a compact
// binary wire codec for frame.Frame column batches and a TCP exchange
// service that moves them between the driver and sjworker shard processes.
// The paper ran its derivation queries on a 10-node Spark cluster whose
// shuffles serialize column batches across the network (§6); this package
// is that exchange fabric for the reproduction — internal/cluster plans
// stages onto workers, internal/rdd selects the path via its Placement
// interface, and simsched remains the in-process deterministic test
// double.
//
// The codec is exact: DecodeFrame(AppendFrame(f)) observes cell-for-cell
// the same values, kinds, and presence as f, so a distributed run is
// bit-for-bit identical to the in-process one (the Fig-5 e2e pins this).
package shuffle

import (
	"encoding/binary"
	"fmt"
	"math"

	"scrubjay/internal/frame"
	"scrubjay/internal/value"
)

// Wire-format markers. A version bump changes the marker so a mixed-version
// cluster fails loudly at decode instead of mis-reading vectors.
const (
	frameMarker byte = 0xF5 // one encoded frame
	batchMarker byte = 0xB5 // one batch: hash vector + frame
)

// Frame encoding, after the marker byte:
//
//	uvarint nrows, uvarint ncols
//	per column, in the frame's canonical (sorted-name) order:
//	  uvarint len(name), name bytes
//	  byte kind              (value.Kind; KindNull marks boxed storage)
//	  byte presence flag     (0 = all cells present, 1 = bitmap follows)
//	  [bitmap: ceil(nrows/64) x u64 little-endian]
//	  payload by kind:
//	    bool/int/time  nrows x zigzag varint
//	    float          nrows x 8 bytes (raw IEEE-754 bits, little-endian)
//	    string         nrows x (uvarint len + bytes)
//	    span           nrows x (varint start, varint end)
//	    boxed          nrows x value.AppendBinary
//
// Absent cells occupy their slot with the zero payload (typed) or an
// encoded Null (boxed); the bitmap is authoritative for presence.

// AppendFrame appends the wire encoding of f to buf and returns the
// extended slice.
func AppendFrame(buf []byte, f *frame.Frame) []byte {
	buf = append(buf, frameMarker)
	n := f.NumRows()
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(f.NumCols()))
	for ci := 0; ci < f.NumCols(); ci++ {
		c := f.ColAt(ci)
		buf = binary.AppendUvarint(buf, uint64(len(c.Name())))
		buf = append(buf, c.Name()...)
		buf = append(buf, byte(c.Kind()))
		if pres := c.PresenceBits(); pres != nil {
			buf = append(buf, 1)
			for _, w := range pres {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		} else {
			buf = append(buf, 0)
		}
		switch c.Kind() {
		case value.KindBool, value.KindInt, value.KindTime:
			for _, v := range c.Ints() {
				buf = binary.AppendVarint(buf, v)
			}
		case value.KindFloat:
			for _, v := range c.Floats() {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case value.KindString:
			for _, s := range c.Strs() {
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
		case value.KindSpan:
			ints, ends := c.Ints(), c.SpanEnds()
			for i := 0; i < n; i++ {
				buf = binary.AppendVarint(buf, ints[i])
				buf = binary.AppendVarint(buf, ends[i])
			}
		default: // boxed
			for _, v := range c.BoxedValues() {
				buf = v.AppendBinary(buf)
			}
		}
	}
	return buf
}

// DecodeFrame decodes one frame from b, returning the frame and the bytes
// consumed. Truncated or corrupt input returns an error, never panics —
// the decoder trusts nothing about lengths it has not yet verified.
func DecodeFrame(b []byte) (*frame.Frame, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("shuffle: empty frame input")
	}
	if b[0] != frameMarker {
		return nil, 0, fmt.Errorf("shuffle: bad frame marker 0x%02x", b[0])
	}
	pos := 1
	nrows, ncols, pos, err := decodeHeader(b, pos)
	if err != nil {
		return nil, 0, err
	}
	cols := make([]frame.Column, 0, ncols)
	for ci := 0; ci < ncols; ci++ {
		var col frame.Column
		col, pos, err = decodeColumn(b, pos, nrows)
		if err != nil {
			return nil, 0, fmt.Errorf("shuffle: column %d: %w", ci, err)
		}
		cols = append(cols, col)
	}
	f, err := frame.RawFrame(nrows, cols)
	if err != nil {
		return nil, 0, fmt.Errorf("shuffle: %w", err)
	}
	return f, pos, nil
}

// AppendBatch appends one exchange batch: the rows' key-hash vector (may be
// nil for hash-free exchanges) followed by the frame. len(hashes) must be 0
// or f.NumRows().
func AppendBatch(buf []byte, f *frame.Frame, hashes []uint64) []byte {
	if len(hashes) != 0 && len(hashes) != f.NumRows() {
		panic("shuffle: AppendBatch hash vector length mismatch")
	}
	buf = append(buf, batchMarker)
	buf = binary.AppendUvarint(buf, uint64(len(hashes)))
	for _, h := range hashes {
		buf = binary.LittleEndian.AppendUint64(buf, h)
	}
	return AppendFrame(buf, f)
}

// DecodeBatch decodes one batch produced by AppendBatch.
func DecodeBatch(b []byte) (*frame.Frame, []uint64, int, error) {
	if len(b) == 0 {
		return nil, nil, 0, fmt.Errorf("shuffle: empty batch input")
	}
	if b[0] != batchMarker {
		return nil, nil, 0, fmt.Errorf("shuffle: bad batch marker 0x%02x", b[0])
	}
	pos := 1
	nh, sz := binary.Uvarint(b[pos:])
	if sz <= 0 {
		return nil, nil, 0, fmt.Errorf("shuffle: truncated batch hash count")
	}
	pos += sz
	if nh > uint64(len(b)-pos)/8 {
		return nil, nil, 0, fmt.Errorf("shuffle: implausible batch hash count %d", nh)
	}
	var hashes []uint64
	if nh > 0 {
		hashes = make([]uint64, nh)
		for i := range hashes {
			hashes[i] = binary.LittleEndian.Uint64(b[pos : pos+8])
			pos += 8
		}
	}
	f, n, err := DecodeFrame(b[pos:])
	if err != nil {
		return nil, nil, 0, err
	}
	if nh > 0 && int(nh) != f.NumRows() {
		return nil, nil, 0, fmt.Errorf("shuffle: batch hash vector has %d entries for %d rows", nh, f.NumRows())
	}
	return f, hashes, pos + n, nil
}

func decodeHeader(b []byte, pos int) (nrows, ncols, newPos int, err error) {
	nr, sz := binary.Uvarint(b[pos:])
	if sz <= 0 {
		return 0, 0, 0, fmt.Errorf("shuffle: truncated row count")
	}
	pos += sz
	nc, sz := binary.Uvarint(b[pos:])
	if sz <= 0 {
		return 0, 0, 0, fmt.Errorf("shuffle: truncated column count")
	}
	pos += sz
	// Sanity caps: every row of every column costs at least one payload
	// byte, so counts beyond the remaining input are corruption, not data.
	if nc > uint64(len(b)-pos) {
		return 0, 0, 0, fmt.Errorf("shuffle: implausible column count %d", nc)
	}
	if nc > 0 && nr > uint64(len(b)-pos) {
		return 0, 0, 0, fmt.Errorf("shuffle: implausible row count %d", nr)
	}
	if nr > math.MaxInt32 || nc > math.MaxInt32 {
		return 0, 0, 0, fmt.Errorf("shuffle: oversized frame header (%d rows, %d cols)", nr, nc)
	}
	return int(nr), int(nc), pos, nil
}

func decodeColumn(b []byte, pos, nrows int) (frame.Column, int, error) {
	var zero frame.Column
	nameLen, sz := binary.Uvarint(b[pos:])
	if sz <= 0 || nameLen > uint64(len(b)-pos-sz) {
		return zero, 0, fmt.Errorf("truncated name")
	}
	pos += sz
	name := string(b[pos : pos+int(nameLen)])
	pos += int(nameLen)
	if len(b)-pos < 2 {
		return zero, 0, fmt.Errorf("truncated kind/presence header")
	}
	kind := value.Kind(b[pos])
	presFlag := b[pos+1]
	pos += 2
	var pres []uint64
	if presFlag == 1 {
		words := (nrows + 63) / 64
		if len(b)-pos < words*8 {
			return zero, 0, fmt.Errorf("truncated presence bitmap")
		}
		pres = make([]uint64, words)
		for i := range pres {
			pres[i] = binary.LittleEndian.Uint64(b[pos : pos+8])
			pos += 8
		}
	} else if presFlag != 0 {
		return zero, 0, fmt.Errorf("bad presence flag 0x%02x", presFlag)
	}

	var (
		ints []int64
		flts []float64
		strs []string
		ends []int64
		boxd []value.Value
	)
	// Every payload costs at least one byte per row, so an nrows beyond the
	// remaining input can never complete — reject before allocating.
	if kind != value.KindFloat && nrows > len(b)-pos {
		return zero, 0, fmt.Errorf("truncated payload (%d rows, %d bytes left)", nrows, len(b)-pos)
	}
	switch kind {
	case value.KindBool, value.KindInt, value.KindTime:
		ints = make([]int64, nrows)
		for i := range ints {
			v, sz := binary.Varint(b[pos:])
			if sz <= 0 {
				return zero, 0, fmt.Errorf("truncated int payload")
			}
			ints[i] = v
			pos += sz
		}
	case value.KindFloat:
		if len(b)-pos < nrows*8 {
			return zero, 0, fmt.Errorf("truncated float payload")
		}
		flts = make([]float64, nrows)
		for i := range flts {
			flts[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[pos : pos+8]))
			pos += 8
		}
	case value.KindString:
		strs = make([]string, nrows)
		for i := range strs {
			l, sz := binary.Uvarint(b[pos:])
			if sz <= 0 || l > uint64(len(b)-pos-sz) {
				return zero, 0, fmt.Errorf("truncated string payload")
			}
			pos += sz
			strs[i] = string(b[pos : pos+int(l)])
			pos += int(l)
		}
	case value.KindSpan:
		ints = make([]int64, nrows)
		ends = make([]int64, nrows)
		for i := 0; i < nrows; i++ {
			s, sz := binary.Varint(b[pos:])
			if sz <= 0 {
				return zero, 0, fmt.Errorf("truncated span start")
			}
			pos += sz
			e, sz := binary.Varint(b[pos:])
			if sz <= 0 {
				return zero, 0, fmt.Errorf("truncated span end")
			}
			pos += sz
			ints[i], ends[i] = s, e
		}
	case value.KindNull:
		boxd = make([]value.Value, nrows)
		for i := range boxd {
			v, sz, err := value.DecodeValue(b[pos:])
			if err != nil {
				return zero, 0, fmt.Errorf("boxed cell %d: %w", i, err)
			}
			boxd[i] = v
			pos += sz
		}
	default:
		return zero, 0, fmt.Errorf("unknown column kind %d", kind)
	}
	col, err := frame.RawColumn(name, kind, nrows, ints, flts, strs, ends, boxd, pres)
	if err != nil {
		return zero, 0, err
	}
	return col, pos, nil
}
