package shuffle

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"scrubjay/internal/obs"
)

// Span-subtree wire codec: the payload of a spans response. Worker-side
// span subtrees ship back to the driver serialized with the existing
// deterministic artifact codec (obs.SpanRecord's fixed-field-order JSON
// with sorted attr maps), one length-prefixed document per subtree, so the
// bytes are deterministic for a deterministic trace and the schema is the
// one Artifact.Check already validates.
//
// Encoding, after the marker byte:
//
//	uvarint count
//	count x (uvarint len, len bytes of SpanRecord JSON)
const spanMarker byte = 0x5A

// maxSpanSubtrees caps one spans payload: a worker records at most one
// subtree per (shuffle, trace) key and liveTraceCap keys, so anything past
// this is a corrupt length prefix, not data.
const maxSpanSubtrees = 4096

// AppendSpanSubtrees appends the wire encoding of the span subtrees to buf
// and returns the extended slice.
func AppendSpanSubtrees(buf []byte, recs []*obs.SpanRecord) ([]byte, error) {
	buf = append(buf, spanMarker)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("shuffle: encoding span subtree: %w", err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(data)))
		buf = append(buf, data...)
	}
	return buf, nil
}

// DecodeSpanSubtrees decodes one span-subtree payload from the front of b,
// returning the subtrees, the bytes consumed, and an error on any
// malformed, truncated, or schema-invalid input (each decoded record is
// validated against the SpanRecord schema rules before it is accepted).
func DecodeSpanSubtrees(b []byte) ([]*obs.SpanRecord, int, error) {
	if len(b) == 0 || b[0] != spanMarker {
		return nil, 0, fmt.Errorf("shuffle: span payload lacks marker 0x%02x", spanMarker)
	}
	off := 1
	count, n, err := readUvarint(b[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	if count > maxSpanSubtrees {
		return nil, 0, fmt.Errorf("shuffle: span payload claims %d subtrees (cap %d)", count, maxSpanSubtrees)
	}
	recs := make([]*obs.SpanRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n, err := readUvarint(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		if l > uint64(len(b)-off) {
			return nil, 0, fmt.Errorf("shuffle: span subtree %d truncated (%d bytes claimed, %d left)", i, l, len(b)-off)
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(b[off:off+int(l)], &rec); err != nil {
			return nil, 0, fmt.Errorf("shuffle: decoding span subtree %d: %w", i, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, 0, fmt.Errorf("shuffle: span subtree %d: %w", i, err)
		}
		off += int(l)
		recs = append(recs, &rec)
	}
	return recs, off, nil
}
