package shuffle

import (
	"testing"
	"time"

	"scrubjay/internal/frame"
	"scrubjay/internal/value"
)

// testFrames is the round-trip corpus: every column kind, presence bitmaps,
// boxed columns (mixed kinds and lists), empty frames, and the
// rows-without-columns shape FromRows produces for empty maps.
func testFrames(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	frames := map[string]*frame.Frame{
		"empty":   frame.FromRows(nil),
		"no-cols": frame.FromRows([]value.Row{{}, {}, {}}),
		"typed": frame.FromRows([]value.Row{
			{"b": value.Bool(true), "i": value.Int(-42), "f": value.Float(3.5), "s": value.Str("rack"), "t": value.Time(time.Unix(100, 5)), "sp": value.Span(10, 20)},
			{"b": value.Bool(false), "i": value.Int(1 << 40), "f": value.Float(-0.25), "s": value.Str(""), "t": value.TimeNanos(-7), "sp": value.Span(-5, 5)},
		}),
		"presence": frame.FromRows([]value.Row{
			{"x": value.Int(1)},
			{"y": value.Str("only-y")},
			{"x": value.Int(3), "y": value.Str("both")},
		}),
		"boxed": frame.FromRows([]value.Row{
			{"m": value.Int(1), "l": value.StrList("a", "b")},
			{"m": value.Str("mixed"), "l": value.List(value.Int(1), value.Null(), value.Float(2.5))},
			{"m": value.Null(), "l": value.Null()},
		}),
	}
	// A tall frame exercises multi-word presence bitmaps (>64 rows).
	tall := make([]value.Row, 130)
	for i := range tall {
		r := value.Row{"i": value.Int(int64(i))}
		if i%3 == 0 {
			r["sparse"] = value.Float(float64(i) / 2)
		}
		tall[i] = r
	}
	frames["tall-presence"] = frame.FromRows(tall)
	return frames
}

func framesEqual(t *testing.T, name string, a, b *frame.Frame) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shape mismatch: (%d,%d) vs (%d,%d)", name, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for ci := 0; ci < a.NumCols(); ci++ {
		ca, cb := a.ColAt(ci), b.ColAt(ci)
		if ca.Name() != cb.Name() || ca.Kind() != cb.Kind() {
			t.Fatalf("%s: column %d header mismatch: %s/%v vs %s/%v", name, ci, ca.Name(), ca.Kind(), cb.Name(), cb.Kind())
		}
		for i := 0; i < a.NumRows(); i++ {
			if ca.Present(i) != cb.Present(i) {
				t.Fatalf("%s: %s[%d] presence mismatch", name, ca.Name(), i)
			}
			va, vb := ca.Value(i), cb.Value(i)
			if !va.Equal(vb) {
				t.Fatalf("%s: %s[%d] = %v, decoded %v", name, ca.Name(), i, va, vb)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for name, f := range testFrames(t) {
		buf := AppendFrame(nil, f)
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: decoded %d of %d bytes", name, n, len(buf))
		}
		framesEqual(t, name, f, got)
	}
}

// TestFrameRoundTripConcatenated checks the self-delimiting property the
// exchange relies on: concatenated encodings decode back one by one.
func TestFrameRoundTripConcatenated(t *testing.T) {
	all := testFrames(t)
	var buf []byte
	var order []*frame.Frame
	for _, f := range all {
		buf = AppendFrame(buf, f)
		order = append(order, f)
	}
	for i, want := range order {
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		framesEqual(t, "concat", want, got)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestBatchRoundTrip(t *testing.T) {
	f := testFrames(t)["typed"]
	hashes := make([]uint64, f.NumRows())
	for i := range hashes {
		hashes[i] = uint64(i)*0x9e3779b97f4a7c15 + 7
	}
	for _, h := range [][]uint64{hashes, nil} {
		buf := AppendBatch(nil, f, h)
		got, gh, n, err := DecodeBatch(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decoded %d of %d bytes", n, len(buf))
		}
		framesEqual(t, "batch", f, got)
		if len(gh) != len(h) {
			t.Fatalf("hash count %d, want %d", len(gh), len(h))
		}
		for i := range h {
			if gh[i] != h[i] {
				t.Fatalf("hash[%d] = %d, want %d", i, gh[i], h[i])
			}
		}
	}
}

func TestBatchHashLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched hash vector")
		}
	}()
	AppendBatch(nil, testFrames(t)["typed"], []uint64{1})
}

// TestDecodeTruncated feeds every strict prefix of every valid encoding to
// the decoder: all must error, none may panic or succeed.
func TestDecodeTruncated(t *testing.T) {
	for name, f := range testFrames(t) {
		buf := AppendFrame(nil, f)
		for cut := 0; cut < len(buf); cut++ {
			if _, n, err := DecodeFrame(buf[:cut]); err == nil && n != cut {
				t.Fatalf("%s: prefix %d/%d decoded without error", name, cut, len(buf))
			}
		}
		bbuf := AppendBatch(nil, f, nil)
		for cut := 0; cut < len(bbuf); cut++ {
			if _, _, n, err := DecodeBatch(bbuf[:cut]); err == nil && n != cut {
				t.Fatalf("%s: batch prefix %d/%d decoded without error", name, cut, len(bbuf))
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"bad-marker":     {0x00, 0x01},
		"batch-as-frame": AppendBatch(nil, frame.FromRows(nil), nil),
		"huge-rows":      append([]byte{frameMarker}, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x01),
		"huge-cols":      append([]byte{frameMarker}, 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f),
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: DecodeFrame accepted corrupt input", name)
		}
	}
	if _, _, _, err := DecodeBatch(AppendFrame(nil, frame.FromRows(nil))); err == nil {
		t.Error("DecodeBatch accepted a bare frame")
	}
}

// TestDecodeBitFlips flips each byte of a valid encoding; decoding must
// never panic (errors and value changes are fine — this guards crash
// safety, the round-trip tests guard exactness).
func TestDecodeBitFlips(t *testing.T) {
	buf := AppendFrame(nil, testFrames(t)["presence"])
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x5a
		DecodeFrame(mut) // must not panic
	}
}
