// Package cache implements ScrubJay's derivation-result cache (§5.4 of the
// paper): an opt-in, non-volatile store of intermediate derivation results
// keyed by a content hash of the derivation subtree that produced them. Two
// derivation sequences sharing an expensive prefix compute it once; entries
// evict least-recently-used when the cache exceeds its budget.
//
// The cache is safe for concurrent readers and writers (the serving layer
// shares one cache across all in-flight queries). The locking discipline:
// c.mu guards only the in-memory index — all file IO (data files, cold-tier
// compression, index persistence) happens outside the lock, and every file
// write lands via create-temp-then-rename so concurrent operations on the
// same key never expose a torn file.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/wrappers"
)

// Cache is a directory of cached datasets with an LRU index.
type Cache struct {
	dir      string
	maxBytes int64
	// tmpSeq numbers temp files so concurrent writers never collide.
	tmpSeq atomic.Int64

	mu    sync.Mutex
	index map[string]*entry
	// coldDir, when set, is the compressed long-term tier (EnableColdTier).
	coldDir string
	// now is the clock, overridable in tests.
	now func() time.Time
}

type entry struct {
	Key      string    `json:"key"`
	Bytes    int64     `json:"bytes"`
	LastUsed time.Time `json:"last_used"`
}

const indexFile = "index.json"

// Open opens (creating if needed) a cache rooted at dir with a total size
// budget in bytes; maxBytes <= 0 means unlimited.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, index: map[string]*entry{}, now: time.Now}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err == nil {
		var entries []*entry
		if err := json.Unmarshal(data, &entries); err == nil {
			for _, e := range entries {
				c.index[e.Key] = e
			}
		}
	}
	return c, nil
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// TotalBytes reports the recorded size of all entries.
func (c *Cache) TotalBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalLocked()
}

func (c *Cache) totalLocked() int64 {
	var n int64
	for _, e := range c.index {
		n += e.Bytes
	}
	return n
}

func (c *Cache) dataPath(key string) string {
	return filepath.Join(c.dir, key+".bin")
}

// tmpPath returns a unique temp path in dir for staging a write that will
// be renamed into place.
func (c *Cache) tmpPath(dir, key string) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%d.tmp", key, c.tmpSeq.Add(1)))
}

// Get loads the cached dataset for key, marking it recently used. Recency
// updates are persisted lazily (on the next Put, Delete, or Flush), so hits
// never pay an index write.
func (c *Cache) Get(ctx *rdd.Context, key string) (*dataset.Dataset, bool) {
	c.mu.Lock()
	e, ok := c.index[key]
	if ok {
		e.LastUsed = c.now()
	}
	c.mu.Unlock()
	if !ok {
		// A miss in the hot tier may hit the compressed cold tier; a
		// successful promotion restores the entry and we retry.
		if !c.promote(key) {
			return nil, false
		}
	}
	ds, err := wrappers.Read(ctx, wrappers.Source{Format: "bin", Path: c.dataPath(key), Name: "cache:" + key})
	if err != nil {
		// A damaged (or concurrently evicted) entry is dropped rather
		// than surfaced.
		c.Delete(key)
		return nil, false
	}
	return ds, true
}

// Put stores a dataset under key and evicts LRU entries beyond the budget.
// The data file is staged to a temp path and renamed into place, so a
// concurrent Get of the same key sees either the old or the new complete
// file, never a partial write.
func (c *Cache) Put(key string, ds *dataset.Dataset) error {
	path := c.dataPath(key)
	tmp := c.tmpPath(c.dir, key)
	if err := wrappers.Write(ds, wrappers.Source{Format: "bin", Path: tmp}); err != nil {
		return err
	}
	var size int64
	if fi, err := os.Stat(tmp); err == nil {
		size = fi.Size()
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: %w", err)
	}
	c.mu.Lock()
	c.index[key] = &entry{Key: key, Bytes: size, LastUsed: c.now()}
	victims := c.evictVictimsLocked()
	c.mu.Unlock()
	c.dropFiles(victims)
	return c.saveIndex()
}

// Delete removes an entry.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	delete(c.index, key)
	c.mu.Unlock()
	os.Remove(c.dataPath(key))
	c.saveIndex()
}

// Flush persists the LRU index (recency updates from Get are otherwise
// written lazily). The serving layer calls this during graceful shutdown.
func (c *Cache) Flush() error { return c.saveIndex() }

// Contains reports whether key is cached (without touching recency).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[key]
	return ok
}

// evictVictimsLocked removes least-recently-used entries from the index
// until within budget and returns their keys. Callers drop the data files
// (and demote to the cold tier) after releasing c.mu — no IO under the
// lock.
func (c *Cache) evictVictimsLocked() []string {
	if c.maxBytes <= 0 {
		return nil
	}
	var victims []string
	for c.totalLocked() > c.maxBytes && len(c.index) > 1 {
		var oldest *entry
		for _, e := range c.index {
			if oldest == nil || e.LastUsed.Before(oldest.LastUsed) {
				oldest = e
			}
		}
		delete(c.index, oldest.Key)
		victims = append(victims, oldest.Key)
	}
	return victims
}

// dropFiles demotes evicted entries to the cold tier (when enabled) and
// removes their hot data files. Must be called without c.mu held.
func (c *Cache) dropFiles(keys []string) {
	for _, k := range keys {
		c.demote(k)
		os.Remove(c.dataPath(k))
	}
}

// saveIndex persists the LRU index. The entries are snapshotted by value
// under the lock (other goroutines keep mutating LastUsed), marshaled
// outside it, and the file lands via rename so readers never see a torn
// index.
func (c *Cache) saveIndex() error {
	c.mu.Lock()
	entries := make([]entry, 0, len(c.index))
	for _, e := range c.index {
		entries = append(entries, *e)
	}
	c.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	data, err := json.MarshalIndent(entries, "", " ")
	if err != nil {
		return err
	}
	tmp := c.tmpPath(c.dir, "index")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, indexFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SetClock overrides the cache's clock; for tests.
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}
