// Package cache implements ScrubJay's derivation-result cache (§5.4 of the
// paper): an opt-in, non-volatile store of intermediate derivation results
// keyed by a content hash of the derivation subtree that produced them. Two
// derivation sequences sharing an expensive prefix compute it once; entries
// evict least-recently-used when the cache exceeds its budget.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/wrappers"
)

// Cache is a directory of cached datasets with an LRU index.
type Cache struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]*entry
	// coldDir, when set, is the compressed long-term tier (EnableColdTier).
	coldDir string
	// now is the clock, overridable in tests.
	now func() time.Time
}

type entry struct {
	Key      string    `json:"key"`
	Bytes    int64     `json:"bytes"`
	LastUsed time.Time `json:"last_used"`
}

const indexFile = "index.json"

// Open opens (creating if needed) a cache rooted at dir with a total size
// budget in bytes; maxBytes <= 0 means unlimited.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, index: map[string]*entry{}, now: time.Now}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err == nil {
		var entries []*entry
		if err := json.Unmarshal(data, &entries); err == nil {
			for _, e := range entries {
				c.index[e.Key] = e
			}
		}
	}
	return c, nil
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// TotalBytes reports the recorded size of all entries.
func (c *Cache) TotalBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalLocked()
}

func (c *Cache) totalLocked() int64 {
	var n int64
	for _, e := range c.index {
		n += e.Bytes
	}
	return n
}

func (c *Cache) dataPath(key string) string {
	return filepath.Join(c.dir, key+".bin")
}

// Get loads the cached dataset for key, marking it recently used.
func (c *Cache) Get(ctx *rdd.Context, key string) (*dataset.Dataset, bool) {
	c.mu.Lock()
	e, ok := c.index[key]
	if ok {
		e.LastUsed = c.now()
	}
	c.mu.Unlock()
	if !ok {
		// A miss in the hot tier may hit the compressed cold tier; a
		// successful promotion restores the entry and we retry.
		if !c.promote(key) {
			return nil, false
		}
	}
	ds, err := wrappers.Read(ctx, wrappers.Source{Format: "bin", Path: c.dataPath(key), Name: "cache:" + key})
	if err != nil {
		// A damaged entry is dropped rather than surfaced.
		c.Delete(key)
		return nil, false
	}
	c.saveIndex()
	return ds, true
}

// Put stores a dataset under key and evicts LRU entries beyond the budget.
func (c *Cache) Put(key string, ds *dataset.Dataset) error {
	path := c.dataPath(key)
	if err := wrappers.Write(ds, wrappers.Source{Format: "bin", Path: path}); err != nil {
		return err
	}
	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	c.mu.Lock()
	c.index[key] = &entry{Key: key, Bytes: size, LastUsed: c.now()}
	c.evictLocked()
	c.mu.Unlock()
	return c.saveIndex()
}

// Delete removes an entry.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	delete(c.index, key)
	c.mu.Unlock()
	os.Remove(c.dataPath(key))
	c.saveIndex()
}

// Contains reports whether key is cached (without touching recency).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[key]
	return ok
}

// evictLocked removes least-recently-used entries until within budget.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.totalLocked() > c.maxBytes && len(c.index) > 1 {
		var oldest *entry
		for _, e := range c.index {
			if oldest == nil || e.LastUsed.Before(oldest.LastUsed) {
				oldest = e
			}
		}
		delete(c.index, oldest.Key)
		c.demoteLocked(oldest.Key)
		os.Remove(c.dataPath(oldest.Key))
	}
}

// saveIndex persists the LRU index.
func (c *Cache) saveIndex() error {
	c.mu.Lock()
	entries := make([]*entry, 0, len(c.index))
	for _, e := range c.index {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	data, err := json.MarshalIndent(entries, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(c.dir, indexFile), data, 0o644)
}

// SetClock overrides the cache's clock; for tests.
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}
