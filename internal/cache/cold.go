package cache

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The cold tier implements the paper's envisioned storage-cache hierarchy
// (§9): instead of discarding LRU-evicted derivation results, the cache can
// compress them into a long-term directory. Hits in the cold tier
// decompress and promote the entry back to the hot tier. Like the hot tier,
// all cold-tier IO happens outside c.mu and lands via temp-file + rename,
// so concurrent demotions and promotions of the same key never expose a
// torn file.

// EnableColdTier turns on the compressed long-term tier rooted at dir.
func (c *Cache) EnableColdTier(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: cold tier: %w", err)
	}
	c.mu.Lock()
	c.coldDir = dir
	c.mu.Unlock()
	return nil
}

// coldTierDir reads the configured cold directory ("" when disabled).
func (c *Cache) coldTierDir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coldDir
}

// ColdLen reports the number of entries in the cold tier.
func (c *Cache) ColdLen() int {
	dir := c.coldTierDir()
	if dir == "" {
		return 0
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".gz" {
			n++
		}
	}
	return n
}

func coldPathIn(dir, key string) string {
	return filepath.Join(dir, key+".bin.gz")
}

// demote compresses a hot entry's data file into the cold tier. Called
// without c.mu held; returns silently on failure (eviction proceeds either
// way).
func (c *Cache) demote(key string) {
	dir := c.coldTierDir()
	if dir == "" {
		return
	}
	src, err := os.Open(c.dataPath(key))
	if err != nil {
		return
	}
	defer src.Close()
	tmp := c.tmpPath(dir, key)
	dst, err := os.Create(tmp)
	if err != nil {
		return
	}
	zw := gzip.NewWriter(dst)
	_, copyErr := io.Copy(zw, src)
	closeErr := zw.Close()
	if err := dst.Close(); copyErr != nil || closeErr != nil || err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, coldPathIn(dir, key)); err != nil {
		os.Remove(tmp)
	}
}

// promote decompresses a cold entry back into the hot tier, returning
// whether it succeeded. Concurrent promotions of the same key are safe:
// each stages its own temp file and the rename is atomic.
func (c *Cache) promote(key string) bool {
	dir := c.coldTierDir()
	if dir == "" {
		return false
	}
	src, err := os.Open(coldPathIn(dir, key))
	if err != nil {
		return false
	}
	defer src.Close()
	zr, err := gzip.NewReader(src)
	if err != nil {
		return false
	}
	defer zr.Close()
	tmp := c.tmpPath(c.dir, key)
	dst, err := os.Create(tmp)
	if err != nil {
		return false
	}
	if _, err := io.Copy(dst, zr); err != nil {
		dst.Close()
		os.Remove(tmp)
		return false
	}
	if err := dst.Close(); err != nil {
		os.Remove(tmp)
		return false
	}
	var size int64
	if fi, err := os.Stat(tmp); err == nil {
		size = fi.Size()
	}
	if err := os.Rename(tmp, c.dataPath(key)); err != nil {
		os.Remove(tmp)
		return false
	}
	c.mu.Lock()
	c.index[key] = &entry{Key: key, Bytes: size, LastUsed: c.now()}
	victims := c.evictVictimsLocked()
	c.mu.Unlock()
	c.dropFiles(victims)
	os.Remove(coldPathIn(dir, key))
	c.saveIndex()
	return true
}
