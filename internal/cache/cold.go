package cache

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The cold tier implements the paper's envisioned storage-cache hierarchy
// (§9): instead of discarding LRU-evicted derivation results, the cache can
// compress them into a long-term directory. Hits in the cold tier
// decompress and promote the entry back to the hot tier.

// EnableColdTier turns on the compressed long-term tier rooted at dir.
func (c *Cache) EnableColdTier(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: cold tier: %w", err)
	}
	c.mu.Lock()
	c.coldDir = dir
	c.mu.Unlock()
	return nil
}

// ColdLen reports the number of entries in the cold tier.
func (c *Cache) ColdLen() int {
	c.mu.Lock()
	dir := c.coldDir
	c.mu.Unlock()
	if dir == "" {
		return 0
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".gz" {
			n++
		}
	}
	return n
}

func (c *Cache) coldPath(key string) string {
	return filepath.Join(c.coldDir, key+".bin.gz")
}

// demoteLocked compresses a hot entry's data file into the cold tier.
// Called with c.mu held; returns silently on failure (eviction proceeds
// either way).
func (c *Cache) demoteLocked(key string) {
	if c.coldDir == "" {
		return
	}
	src, err := os.Open(c.dataPath(key))
	if err != nil {
		return
	}
	defer src.Close()
	dst, err := os.Create(c.coldPath(key))
	if err != nil {
		return
	}
	zw := gzip.NewWriter(dst)
	_, copyErr := io.Copy(zw, src)
	closeErr := zw.Close()
	if err := dst.Close(); copyErr != nil || closeErr != nil || err != nil {
		os.Remove(c.coldPath(key))
	}
}

// promote decompresses a cold entry back into the hot tier, returning
// whether it succeeded.
func (c *Cache) promote(key string) bool {
	c.mu.Lock()
	dir := c.coldDir
	c.mu.Unlock()
	if dir == "" {
		return false
	}
	src, err := os.Open(c.coldPath(key))
	if err != nil {
		return false
	}
	defer src.Close()
	zr, err := gzip.NewReader(src)
	if err != nil {
		return false
	}
	defer zr.Close()
	dst, err := os.Create(c.dataPath(key))
	if err != nil {
		return false
	}
	if _, err := io.Copy(dst, zr); err != nil {
		dst.Close()
		os.Remove(c.dataPath(key))
		return false
	}
	if err := dst.Close(); err != nil {
		os.Remove(c.dataPath(key))
		return false
	}
	var size int64
	if fi, err := os.Stat(c.dataPath(key)); err == nil {
		size = fi.Size()
	}
	c.mu.Lock()
	c.index[key] = &entry{Key: key, Bytes: size, LastUsed: c.now()}
	c.evictLocked()
	c.mu.Unlock()
	os.Remove(c.coldPath(key))
	c.saveIndex()
	return true
}
