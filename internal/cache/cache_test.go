package cache

import (
	"os"
	"testing"
	"time"

	"scrubjay/internal/dataset"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

func smallDataset(ctx *rdd.Context, n int) *dataset.Dataset {
	s := semantics.NewSchema("x", semantics.ValueEntry("count", "count"))
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.NewRow("x", value.Int(int64(i)))
	}
	return dataset.FromRows(ctx, "small", rows, s, 1)
}

func TestPutGetRoundTrip(t *testing.T) {
	ctx := rdd.NewContext(1)
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(ctx, 10)
	if err := c.Put("k1", ds); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("k1") || c.Len() != 1 {
		t.Error("entry should exist")
	}
	got, ok := c.Get(ctx, "k1")
	if !ok {
		t.Fatal("Get failed")
	}
	if got.Count() != 10 {
		t.Errorf("count = %d", got.Count())
	}
	if !got.Schema().Equal(ds.Schema()) {
		t.Error("schema lost")
	}
	if _, ok := c.Get(ctx, "missing"); ok {
		t.Error("missing key should miss")
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	ctx := rdd.NewContext(1)
	dir := t.TempDir()
	c, _ := Open(dir, 0)
	c.Put("persist", smallDataset(ctx, 5))

	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(ctx, "persist")
	if !ok || got.Count() != 5 {
		t.Errorf("reopened cache lost entry: %v %v", got, ok)
	}
	if c2.TotalBytes() <= 0 {
		t.Error("sizes should persist")
	}
}

func TestLRUEviction(t *testing.T) {
	ctx := rdd.NewContext(1)
	c, _ := Open(t.TempDir(), 1) // 1-byte budget: force eviction to a single entry
	base := time.Unix(1000, 0)
	tick := 0
	c.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	})
	c.Put("a", smallDataset(ctx, 50))
	c.Put("b", smallDataset(ctx, 50))
	// Budget of 1 byte retains only the most recent entry.
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Contains("a") || !c.Contains("b") {
		t.Error("LRU should evict the older entry")
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	ctx := rdd.NewContext(1)
	// Budget that fits about two small entries; entry sizes are a few
	// hundred bytes each.
	c, _ := Open(t.TempDir(), 2500)
	base := time.Unix(1000, 0)
	tick := 0
	c.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	})
	c.Put("a", smallDataset(ctx, 20))
	c.Put("b", smallDataset(ctx, 20))
	// Touch a, making b the LRU entry.
	if _, ok := c.Get(ctx, "a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Put("c", smallDataset(ctx, 20))
	if !c.Contains("a") {
		t.Error("recently used entry evicted")
	}
	if c.Contains("b") && c.TotalBytes() > 2500 {
		t.Error("cache exceeded budget without evicting LRU")
	}
}

func TestDelete(t *testing.T) {
	ctx := rdd.NewContext(1)
	c, _ := Open(t.TempDir(), 0)
	c.Put("x", smallDataset(ctx, 3))
	c.Delete("x")
	if c.Contains("x") || c.Len() != 0 {
		t.Error("delete failed")
	}
	if _, ok := c.Get(ctx, "x"); ok {
		t.Error("deleted entry should miss")
	}
	// Deleting again is a no-op.
	c.Delete("x")
}

func TestDamagedEntryDropped(t *testing.T) {
	ctx := rdd.NewContext(1)
	dir := t.TempDir()
	c, _ := Open(dir, 0)
	c.Put("hurt", smallDataset(ctx, 3))
	// Corrupt the data file.
	if err := writeFile(c.dataPath("hurt"), "{broken\n"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(ctx, "hurt"); ok {
		t.Error("damaged entry should miss")
	}
	if c.Contains("hurt") {
		t.Error("damaged entry should be dropped from the index")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestColdTierDemoteAndPromote(t *testing.T) {
	ctx := rdd.NewContext(1)
	c, _ := Open(t.TempDir(), 1) // evict everything but the newest entry
	if err := c.EnableColdTier(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	tick := 0
	c.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	})
	c.Put("old", smallDataset(ctx, 40))
	c.Put("new", smallDataset(ctx, 10))
	// "old" was evicted from the hot tier into the cold tier.
	if c.Contains("old") {
		t.Fatal("old should be evicted from hot tier")
	}
	if c.ColdLen() != 1 {
		t.Fatalf("cold entries = %d, want 1", c.ColdLen())
	}
	// A Get promotes it back, decompressed and readable.
	got, ok := c.Get(ctx, "old")
	if !ok {
		t.Fatal("cold-tier Get should hit")
	}
	if got.Count() != 40 {
		t.Errorf("promoted count = %d", got.Count())
	}
	// Promotion put "old" back in the hot tier; the 1-byte budget then
	// demoted "new" into the cold tier in its place.
	if !c.Contains("old") || c.Contains("new") {
		t.Error("promotion should swap the hot entry")
	}
	if c.ColdLen() != 1 {
		t.Errorf("displaced entry should be in the cold tier, have %d", c.ColdLen())
	}
	if got2, ok := c.Get(ctx, "new"); !ok || got2.Count() != 10 {
		t.Error("displaced entry should be recoverable from the cold tier")
	}
	// Truly missing keys still miss.
	if _, ok := c.Get(ctx, "never"); ok {
		t.Error("missing key should miss both tiers")
	}
}

func TestColdTierDisabledMisses(t *testing.T) {
	ctx := rdd.NewContext(1)
	c, _ := Open(t.TempDir(), 1)
	base := time.Unix(1000, 0)
	tick := 0
	c.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	})
	c.Put("old", smallDataset(ctx, 40))
	c.Put("new", smallDataset(ctx, 10))
	if _, ok := c.Get(ctx, "old"); ok {
		t.Error("without a cold tier, evicted entries are gone")
	}
	if c.ColdLen() != 0 {
		t.Error("ColdLen without cold tier should be 0")
	}
}
