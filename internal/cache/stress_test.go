package cache

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"scrubjay/internal/rdd"
)

// TestConcurrentStress hammers one cache from many goroutines mixing Put,
// Get, Contains, and Delete over a small key space, with a budget tight
// enough to force constant LRU eviction and a cold tier so demotions and
// promotions race too. Run under -race (ci.sh does), this is the proof
// obligation for the serving layer sharing one cache across all in-flight
// queries. Content is verified on every hit: key ki always stores 10+i
// rows, so a torn or mixed-up file surfaces as a wrong count.
func TestConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 60
		keys       = 8
	)
	ctx := rdd.NewContext(2)
	dir := t.TempDir()
	// ~8KB budget vs ~1KB per entry keeps eviction active without ever
	// emptying the cache.
	c, err := Open(dir, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableColdTier(filepath.Join(dir, "cold")); err != nil {
		t.Fatal(err)
	}
	wantRows := func(i int) int { return 10 + i }

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for op := 0; op < opsPerG; op++ {
				i := rng.Intn(keys)
				key := fmt.Sprintf("k%d", i)
				switch rng.Intn(4) {
				case 0, 1:
					if err := c.Put(key, smallDataset(ctx, wantRows(i))); err != nil {
						errs <- fmt.Errorf("Put(%s): %w", key, err)
						return
					}
				case 2:
					if ds, ok := c.Get(ctx, key); ok {
						if n := ds.Count(); n != int64(wantRows(i)) {
							errs <- fmt.Errorf("Get(%s) = %d rows, want %d", key, n, wantRows(i))
							return
						}
					}
				case 3:
					if rng.Intn(8) == 0 {
						c.Delete(key)
					} else {
						c.Contains(key)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Quiescent state: every staged temp file was renamed or removed.
	for _, d := range []string{dir, filepath.Join(dir, "cold")} {
		matches, _ := filepath.Glob(filepath.Join(d, "*.tmp"))
		if len(matches) != 0 {
			t.Errorf("leftover temp files in %s: %v", d, matches)
		}
	}
	// The flushed index reopens, and every surviving entry still verifies.
	c2, err := Open(dir, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.EnableColdTier(filepath.Join(dir, "cold")); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		if ds, ok := c2.Get(ctx, key); ok {
			hits++
			if n := ds.Count(); n != int64(wantRows(i)) {
				t.Errorf("reopened Get(%s) = %d rows, want %d", key, n, wantRows(i))
			}
			if !strings.HasPrefix(ds.Name(), "cache:") {
				t.Errorf("cached dataset name = %q", ds.Name())
			}
		}
	}
	if hits == 0 {
		t.Error("no entries survived the stress run")
	}
}
