package value

import (
	"encoding/json"
	"testing"
)

func TestNewRowAndAccess(t *testing.T) {
	r := NewRow("node", Str("cab17"), "temp", Float(67.4))
	if !r.Get("node").Equal(Str("cab17")) {
		t.Error("Get node")
	}
	if !r.Get("missing").IsNull() {
		t.Error("missing column should be null")
	}
	if !r.Has("temp") || r.Has("missing") {
		t.Error("Has")
	}
	r2 := r.With("rack", Int(17))
	if r.Has("rack") {
		t.Error("With must not mutate the receiver")
	}
	if !r2.Get("rack").Equal(Int(17)) {
		t.Error("With set")
	}
	r3 := r2.Without("temp")
	if r3.Has("temp") || !r2.Has("temp") {
		t.Error("Without")
	}
}

func TestNewRowPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd args", func() { NewRow("a") })
	assertPanics("non-string name", func() { NewRow(1, Int(2)) })
	assertPanics("non-value value", func() { NewRow("a", 2) })
}

func TestRowProjectMergeEqual(t *testing.T) {
	r := NewRow("a", Int(1), "b", Int(2), "c", Int(3))
	p := r.Project("a", "c", "zz")
	if len(p) != 2 || !p.Get("a").Equal(Int(1)) || !p.Get("c").Equal(Int(3)) {
		t.Errorf("Project = %v", p)
	}
	m := NewRow("a", Int(1)).Merge(NewRow("b", Int(2)))
	if !m.Equal(NewRow("a", Int(1), "b", Int(2))) {
		t.Errorf("Merge = %v", m)
	}
	if NewRow("a", Int(1)).Equal(NewRow("a", Int(2))) {
		t.Error("unequal rows compare equal")
	}
	if NewRow("a", Int(1)).Equal(NewRow("a", Int(1), "b", Int(2))) {
		t.Error("rows of different size compare equal")
	}
}

func TestRowColumnsSorted(t *testing.T) {
	r := NewRow("z", Int(1), "a", Int(2), "m", Int(3))
	cols := r.Columns()
	want := []string{"a", "m", "z"}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("Columns() = %v", cols)
		}
	}
}

func TestRowString(t *testing.T) {
	r := NewRow("b", Int(2), "a", Int(1))
	if got := r.String(); got != "{a=1, b=2}" {
		t.Errorf("String() = %q", got)
	}
}

func TestRowJSONRoundTrip(t *testing.T) {
	r := NewRow("node", Str("cab17"), "t", TimeNanos(12345), "xs", List(Int(1), Int(2)))
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got Row
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Errorf("round trip: %v != %v", got, r)
	}
}

func TestRowKeyOnDistinguishes(t *testing.T) {
	a := NewRow("x", Int(1), "y", Int(2))
	b := NewRow("x", Int(1), "y", Int(3))
	cols := []string{"x", "y"}
	if a.KeyOn(cols) == b.KeyOn(cols) {
		t.Error("different rows should (almost surely) key differently")
	}
	if a.KeyStringOn(cols) == b.KeyStringOn(cols) {
		t.Error("key strings must differ")
	}
	// Key restricted to shared column is equal.
	if a.KeyOn([]string{"x"}) != b.KeyOn([]string{"x"}) {
		t.Error("restricted keys should match")
	}
}

// BenchmarkRowMarshalJSON measures the cost of encoding one row. The
// MarshalJSON implementation converts the Row to its underlying map type
// instead of copying it into a fresh map first; the copy used to cost one
// map allocation plus a rehash of every column per encoded row.
func BenchmarkRowMarshalJSON(b *testing.B) {
	r := NewRow(
		"node", Str("cab17"),
		"t", TimeNanos(1500000000123456789),
		"flops", Float(3.75e9),
		"rank", Int(12),
		"alive", Bool(true),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}
