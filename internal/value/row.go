package value

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"strings"
)

// Row is a single record in a ScrubJay dataset: a variable-length tuple of
// named, heterogeneously typed elements. Rows are sparse — absent columns
// read as null — matching the paper's in-memory schema (§4.1).
type Row map[string]Value

// NewRow builds a row from alternating column name / Value pairs.
// It panics on an odd number of arguments or a non-string name; it is
// intended for literals in tests and generators.
func NewRow(pairs ...any) Row {
	if len(pairs)%2 != 0 {
		panic("value.NewRow: odd number of arguments")
	}
	r := make(Row, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("value.NewRow: column name must be a string")
		}
		v, ok := pairs[i+1].(Value)
		if !ok {
			panic("value.NewRow: column value must be a value.Value")
		}
		r[name] = v
	}
	return r
}

// Get returns the value of a column, or null when absent.
func (r Row) Get(col string) Value {
	if v, ok := r[col]; ok {
		return v
	}
	return Null()
}

// Has reports whether the row has a non-null value for col.
func (r Row) Has(col string) bool {
	v, ok := r[col]
	return ok && !v.IsNull()
}

// Clone returns a shallow copy of the row (Values are immutable, so a
// shallow copy is a safe independent row).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// With returns a copy of the row with col set to v.
func (r Row) With(col string, v Value) Row {
	c := r.Clone()
	c[col] = v
	return c
}

// Without returns a copy of the row with col removed.
func (r Row) Without(col string) Row {
	c := r.Clone()
	delete(c, col)
	return c
}

// Project returns a copy containing only the named columns (absent columns
// are skipped, not nulled).
func (r Row) Project(cols ...string) Row {
	c := make(Row, len(cols))
	for _, col := range cols {
		if v, ok := r[col]; ok {
			c[col] = v
		}
	}
	return c
}

// Columns returns the sorted column names present in the row.
func (r Row) Columns() []string {
	cols := make([]string, 0, len(r))
	for k := range r {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	return cols
}

// Merge returns a new row combining r and o. Columns present in both must
// hold equal values for the merge to be meaningful; o wins on conflict
// (combination operators check compatibility before merging).
func (r Row) Merge(o Row) Row {
	c := make(Row, len(r)+len(o))
	for k, v := range r {
		c[k] = v
	}
	for k, v := range o {
		c[k] = v
	}
	return c
}

// Equal reports whether two rows have identical columns and values.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// KeyOn computes a deterministic hash of the row restricted to the given
// columns, in the order given. Used as a shuffle/join key.
func (r Row) KeyOn(cols []string) uint64 {
	h := fnv.New64a()
	for _, col := range cols {
		h.Write([]byte(col))
		h.Write([]byte{0})
		r.Get(col).hashInto(h)
		h.Write([]byte{1})
	}
	return h.Sum64()
}

// KeyStringOn renders the key columns as a canonical string, usable as a
// map key where hash collisions must be impossible.
func (r Row) KeyStringOn(cols []string) string {
	var b strings.Builder
	for _, col := range cols {
		b.WriteString(col)
		b.WriteByte(0)
		b.WriteString(r.Get(col).String())
		b.WriteByte(1)
	}
	return b.String()
}

// String renders the row deterministically (sorted columns) for display.
func (r Row) String() string {
	cols := r.Columns()
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c)
		b.WriteString("=")
		b.WriteString(r[c].String())
	}
	b.WriteByte('}')
	return b.String()
}

// MarshalJSON encodes the row as a JSON object of tagged values. The type
// conversion sheds the MarshalJSON method (so encoding/json takes its
// plain-map path instead of recursing) without copying the map.
func (r Row) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]Value(r))
}

// UnmarshalJSON decodes the object form produced by MarshalJSON.
func (r *Row) UnmarshalJSON(data []byte) error {
	var m map[string]Value
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*r = Row(m)
	return nil
}
