package value

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomValue generates an arbitrary Value for property tests, with bounded
// recursion for lists.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(8)
	if depth <= 0 && k == 7 {
		k = r.Intn(7)
	}
	switch k {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		// Avoid NaN here; NaN equality-by-bits is covered by unit tests.
		return Float(r.NormFloat64() * 1e6)
	case 4:
		b := make([]byte, r.Intn(12))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return Str(string(b))
	case 5:
		// Keep times within a range representable in RFC3339.
		return TimeNanos(r.Int63n(4e18))
	case 6:
		a, b := r.Int63n(4e18), r.Int63n(4e18)
		return Span(a, b)
	default:
		n := r.Intn(4)
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = randomValue(r, depth-1)
		}
		return List(vs...)
	}
}

// genValue adapts randomValue to testing/quick.
type genValue struct{ V Value }

func (genValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue{V: randomValue(r, 2)})
}

func TestQuickJSONRoundTrip(t *testing.T) {
	prop := func(g genValue) bool {
		data, err := json.Marshal(g.V)
		if err != nil {
			return false
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		return got.Equal(g.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualImpliesHashEqual(t *testing.T) {
	prop := func(g genValue) bool {
		cp := g.V // Values are immutable; a copy is equal.
		return !cp.Equal(g.V) || cp.Hash() == g.V.Hash()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	prop := func(a, b genValue) bool {
		c1 := a.V.Compare(b.V)
		c2 := b.V.Compare(a.V)
		return (c1 == 0) == (c2 == 0) && (c1 > 0) == (c2 < 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareReflexive(t *testing.T) {
	prop := func(a genValue) bool {
		if f := a.V.FloatVal(); a.V.Kind() == KindFloat && math.IsNaN(f) {
			return true
		}
		return a.V.Compare(a.V) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSpanNormalized(t *testing.T) {
	prop := func(a, b int64) bool {
		s := Span(a, b)
		st, en := s.SpanBounds()
		return st <= en
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLerpEndpoints(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		va, vb := Float(a), Float(b)
		return Lerp(va, vb, 0).Equal(va) && Lerp(va, vb, 1).Equal(vb)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRowCloneIndependent(t *testing.T) {
	prop := func(g genValue, name string) bool {
		if name == "" {
			name = "c"
		}
		r := Row{name: g.V}
		c := r.Clone()
		c[name+"_x"] = Int(1)
		_, leaked := r[name+"_x"]
		return !leaked && c.Get(name).Equal(g.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRowKeyDeterministic(t *testing.T) {
	prop := func(a, b genValue) bool {
		r1 := Row{"x": a.V, "y": b.V}
		r2 := Row{"y": b.V, "x": a.V}
		cols := []string{"x", "y"}
		return r1.KeyOn(cols) == r2.KeyOn(cols) &&
			r1.KeyStringOn(cols) == r2.KeyStringOn(cols)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
