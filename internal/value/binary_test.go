package value

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBinaryValueRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Bool(false), Int(-5), Int(1 << 40), Float(1.5),
		Str(""), Str("rack17"),
		Time(time.Date(2017, 11, 12, 0, 0, 0, 123, time.UTC)),
		Span(-100, 200),
		List(), List(Int(1), Str("a"), List(Bool(true))),
	}
	for _, v := range vals {
		data := v.AppendBinary(nil)
		got, n, err := DecodeValue(data)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(data) {
			t.Errorf("%v: consumed %d of %d bytes", v, n, len(data))
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestBinaryRowRoundTrip(t *testing.T) {
	r := NewRow(
		"node", Str("cab17"),
		"t", TimeNanos(1490000000e9),
		"span", Span(0, 1e9),
		"vals", List(Int(1), Int(2)),
		"temp", Float(67.4),
		"nothing", Null(),
	)
	data := r.AppendBinary(nil)
	got, n, err := DecodeRow(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Errorf("consumed %d of %d", n, len(data))
	}
	if !got.Equal(r) {
		t.Errorf("round trip %v -> %v", r, got)
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	bad := [][]byte{
		{},                      // empty
		{99},                    // unknown kind
		{byte(KindInt)},         // missing varint
		{byte(KindFloat), 1, 2}, // truncated float
		{byte(KindString), 10},  // truncated string
		{byte(KindSpan), 2},     // truncated span
		{byte(KindList), 200},   // implausible list length varint(100)
	}
	for _, b := range bad {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(%v) should fail", b)
		}
	}
	if _, _, err := DecodeRow(nil); err == nil {
		t.Error("DecodeRow(nil) should fail")
	}
	if _, _, err := DecodeRow([]byte{1, 5}); err == nil {
		t.Error("truncated row name should fail")
	}
	if _, _, err := DecodeRow([]byte{1, 1, 'a', 99}); err == nil {
		t.Error("bad row value should fail")
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	prop := func(g genValue) bool {
		data := g.V.AppendBinary(nil)
		got, n, err := DecodeValue(data)
		return err == nil && n == len(data) && got.Equal(g.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickBinaryRowRoundTrip(t *testing.T) {
	prop := func(a, b genValue, n1, n2 string) bool {
		if n1 == "" {
			n1 = "x"
		}
		if n2 == "" || n2 == n1 {
			n2 = n1 + "y"
		}
		r := Row{n1: a.V, n2: b.V}
		data := r.AppendBinary(nil)
		got, n, err := DecodeRow(data)
		return err == nil && n == len(data) && got.Equal(r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
