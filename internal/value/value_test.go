package value

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	kinds := []Kind{KindNull, KindBool, KindInt, KindFloat, KindString, KindTime, KindSpan, KindList}
	for _, k := range kinds {
		name := k.String()
		got, err := KindFromString(name)
		if err != nil {
			t.Fatalf("KindFromString(%q): %v", name, err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, name, got)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("expected error for unknown kind name")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
	if Bool(true).BoolVal() != true || Bool(false).BoolVal() != false {
		t.Error("Bool round trip failed")
	}
	if Int(-42).IntVal() != -42 {
		t.Error("Int round trip failed")
	}
	if Float(3.5).FloatVal() != 3.5 {
		t.Error("Float round trip failed")
	}
	if Str("node17").StrVal() != "node17" {
		t.Error("Str round trip failed")
	}
	now := time.Date(2017, 3, 27, 16, 43, 27, 0, time.UTC)
	if !Time(now).TimeVal().Equal(now) {
		t.Error("Time round trip failed")
	}
	s := Span(100, 50)
	if st, en := s.SpanBounds(); st != 50 || en != 100 {
		t.Errorf("Span should normalize bounds, got [%d,%d)", st, en)
	}
	if s.SpanDurationNanos() != 50 {
		t.Errorf("span duration = %d, want 50", s.SpanDurationNanos())
	}
	l := List(Int(1), Str("a"))
	if l.Len() != 2 || !l.ListVal()[1].Equal(Str("a")) {
		t.Error("List round trip failed")
	}
	sl := StrList("a", "b")
	if sl.Len() != 2 || sl.ListVal()[0].StrVal() != "a" {
		t.Error("StrList failed")
	}
}

func TestWrongKindAccessorsReturnZero(t *testing.T) {
	v := Str("x")
	if v.IntVal() != 0 || v.FloatVal() != 0 || v.BoolVal() || v.TimeNanosVal() != 0 {
		t.Error("wrong-kind accessors should return zero values")
	}
	if st, en := v.SpanBounds(); st != 0 || en != 0 {
		t.Error("SpanBounds on non-span should be zero")
	}
	if v.ListVal() != nil {
		t.Error("ListVal on non-list should be nil")
	}
	if Int(3).StrVal() != "" {
		t.Error("StrVal on non-string should be empty")
	}
}

func TestAsFloatCoercions(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{Int(7), 7, true},
		{Float(2.5), 2.5, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{TimeNanos(3e9), 3, true},
		{Str("x"), 0, false},
		{Null(), 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if got != c.want || ok != c.ok {
			t.Errorf("AsFloat(%v) = %v,%v want %v,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestAsInt(t *testing.T) {
	if n, ok := Float(3.9).AsInt(); !ok || n != 3 {
		t.Errorf("AsInt(3.9) = %d,%v", n, ok)
	}
	if n, ok := Int(5).AsInt(); !ok || n != 5 {
		t.Errorf("AsInt(5) = %d,%v", n, ok)
	}
	if _, ok := Str("z").AsInt(); ok {
		t.Error("AsInt on string should fail")
	}
}

func TestCompareNumericAcrossKinds(t *testing.T) {
	if Int(3).Compare(Float(3.5)) >= 0 {
		t.Error("3 < 3.5 across kinds")
	}
	if Float(4.0).Compare(Int(4)) != 0 {
		t.Error("4.0 == 4 across kinds")
	}
	if Int(10).Compare(Int(2)) <= 0 {
		t.Error("10 > 2")
	}
}

func TestCompareStringsTimesSpansLists(t *testing.T) {
	if Str("a").Compare(Str("b")) >= 0 {
		t.Error("a < b")
	}
	if TimeNanos(5).Compare(TimeNanos(9)) >= 0 {
		t.Error("t5 < t9")
	}
	if Span(0, 10).Compare(Span(0, 20)) >= 0 {
		t.Error("span tie-break on end")
	}
	if List(Int(1), Int(2)).Compare(List(Int(1), Int(3))) >= 0 {
		t.Error("list lexicographic")
	}
	if List(Int(1)).Compare(List(Int(1), Int(0))) >= 0 {
		t.Error("shorter list first")
	}
}

func TestEqual(t *testing.T) {
	if Int(3).Equal(Float(3)) {
		t.Error("int 3 should not Equal float 3 (different kinds)")
	}
	if !Float(math.NaN()).Equal(Float(math.NaN())) {
		t.Error("NaN should Equal NaN by bits")
	}
	if !List(Str("a")).Equal(List(Str("a"))) {
		t.Error("equal lists")
	}
	if List(Str("a")).Equal(List(Str("b"))) {
		t.Error("unequal lists")
	}
	if Span(1, 2).Equal(Span(1, 3)) {
		t.Error("unequal spans")
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(17), Int(17)},
		{Str("rack17"), Str("rack17")},
		{List(Int(1), Str("a")), List(Int(1), Str("a"))},
		{Span(5, 10), Span(5, 10)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values hash differently: %v", p[0])
		}
	}
	if Int(1).Hash() == Str("1").Hash() {
		t.Error("kind should participate in hash")
	}
}

func TestStringRendering(t *testing.T) {
	if Int(42).String() != "42" {
		t.Error("int render")
	}
	if Bool(true).String() != "true" {
		t.Error("bool render")
	}
	if Null().String() != "" {
		t.Error("null renders empty")
	}
	if List(Int(1), Int(2)).String() != "[1,2]" {
		t.Error("list render")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null()},
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.5", Float(3.5)},
		{"true", Bool(true)},
		{"FALSE", Bool(false)},
		{"node42x", Str("node42x")},
		{"[1, 2]", List(Int(1), Int(2))},
		{"[]", List()},
	}
	for _, c := range cases {
		got := Parse(c.in)
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
	ts := Parse("2017-03-27T16:43:27Z")
	if ts.Kind() != KindTime {
		t.Errorf("Parse time kind = %v", ts.Kind())
	}
	sp := Parse("2017-03-27T00:00:00Z/2017-03-28T00:00:00Z")
	if sp.Kind() != KindSpan {
		t.Errorf("Parse span kind = %v", sp.Kind())
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	vals := []Value{
		Int(9), Float(2.25), Bool(true), Str("hello"),
		Time(time.Date(2017, 11, 12, 0, 0, 0, 0, time.UTC)),
		Span(0, 1e9),
	}
	for _, v := range vals {
		got := Parse(v.String())
		if !got.Equal(v) {
			t.Errorf("Parse(String(%v)) = %v (%v)", v, got, got.Kind())
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Int(-5), Float(1.5), Float(math.NaN()),
		Float(math.Inf(1)), Str("x y"),
		Time(time.Date(2017, 3, 27, 16, 43, 27, 123456789, time.UTC)),
		Span(1000, 2000),
		List(Int(1), List(Str("nested"))),
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !got.Equal(v) && !(math.IsInf(v.FloatVal(), 0) && math.IsInf(got.FloatVal(), 0)) {
			t.Errorf("JSON round trip %v -> %s -> %v", v, data, got)
		}
	}
}

func TestJSONRejectsBadPayloads(t *testing.T) {
	bad := []string{
		`{"k":"bogus"}`,
		`{"k":"int"}`,
		`{"k":"bool"}`,
		`{"k":"string"}`,
		`{"k":"time"}`,
		`{"k":"time","t":"notatime"}`,
		`{"k":"span","t":"2017-01-01T00:00:00Z"}`,
		`{"k":"float"}`,
	}
	for _, s := range bad {
		var v Value
		if err := json.Unmarshal([]byte(s), &v); err == nil {
			t.Errorf("expected error for %s", s)
		}
	}
}

func TestArithmetic(t *testing.T) {
	mustVal := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustVal(Add(Int(2), Int(3))); !got.Equal(Int(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustVal(Add(Int(2), Float(0.5))); !got.Equal(Float(2.5)) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustVal(Sub(Int(2), Int(3))); !got.Equal(Int(-1)) {
		t.Errorf("2-3 = %v", got)
	}
	if got := mustVal(Mul(Int(4), Int(3))); !got.Equal(Int(12)) {
		t.Errorf("4*3 = %v", got)
	}
	if got := mustVal(Div(Int(9), Int(2))); !got.Equal(Float(4.5)) {
		t.Errorf("9/2 = %v", got)
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("divide by zero should error")
	}
	if _, err := Add(Str("a"), Int(1)); err == nil {
		t.Error("string add should error")
	}
	// Time arithmetic.
	t0 := TimeNanos(10e9)
	if got := mustVal(Add(t0, Int(5))); got.TimeNanosVal() != 15e9 {
		t.Errorf("time+5s = %v", got)
	}
	if got := mustVal(Sub(t0, Int(4))); got.TimeNanosVal() != 6e9 {
		t.Errorf("time-4s = %v", got)
	}
	if got := mustVal(Sub(TimeNanos(20e9), TimeNanos(15e9))); !got.Equal(Float(5)) {
		t.Errorf("t-t = %v", got)
	}
	if got := mustVal(Add(Int(5), t0)); got.TimeNanosVal() != 15e9 {
		t.Errorf("5+time = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]Value{Int(1), Int(2), Int(3)}); !got.Equal(Float(2)) {
		t.Errorf("mean = %v", got)
	}
	if got := Mean([]Value{Null(), Float(4)}); !got.Equal(Float(4)) {
		t.Errorf("mean skip nulls = %v", got)
	}
	if got := Mean(nil); !got.IsNull() {
		t.Errorf("empty mean = %v", got)
	}
	got := Mean([]Value{TimeNanos(10e9), TimeNanos(20e9)})
	if got.Kind() != KindTime || got.TimeNanosVal() != 15e9 {
		t.Errorf("time mean = %v", got)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(Float(0), Float(10), 0.25); !got.Equal(Float(2.5)) {
		t.Errorf("lerp = %v", got)
	}
	if got := Lerp(TimeNanos(0), TimeNanos(10e9), 0.5); got.TimeNanosVal() != 5e9 {
		t.Errorf("time lerp = %v", got)
	}
	if got := Lerp(Str("a"), Str("b"), 0.3); !got.Equal(Str("a")) {
		t.Errorf("nearest lerp low = %v", got)
	}
	if got := Lerp(Str("a"), Str("b"), 0.9); !got.Equal(Str("b")) {
		t.Errorf("nearest lerp high = %v", got)
	}
	// Clamping.
	if got := Lerp(Float(0), Float(10), -3); !got.Equal(Float(0)) {
		t.Errorf("clamped lerp = %v", got)
	}
	if got := Lerp(Float(0), Float(10), 7); !got.Equal(Float(10)) {
		t.Errorf("clamped lerp = %v", got)
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Int(3), Int(1), Int(2)}
	SortValues(vs)
	for i, want := range []int64{1, 2, 3} {
		if vs[i].IntVal() != want {
			t.Fatalf("sorted[%d] = %v", i, vs[i])
		}
	}
}
