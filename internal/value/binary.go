package value

import (
	"encoding/binary"
	"fmt"
)

// AppendBinary appends a compact binary encoding of the value: a kind byte
// followed by a kind-specific payload (zigzag varints for integral kinds,
// raw bits for floats, length-prefixed bytes for strings). It is the
// high-throughput sibling of the JSON form, used by the "bin" wrapper
// format and the derivation-result cache.
func (v Value) AppendBinary(b []byte) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool, KindInt, KindTime:
		b = binary.AppendVarint(b, v.num)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.num))
		b = append(b, buf[:]...)
	case KindString:
		b = binary.AppendUvarint(b, uint64(len(v.str)))
		b = append(b, v.str...)
	case KindSpan:
		b = binary.AppendVarint(b, v.num)
		b = binary.AppendVarint(b, v.num2)
	case KindList:
		b = binary.AppendUvarint(b, uint64(len(v.list)))
		for _, e := range v.list {
			b = e.AppendBinary(b)
		}
	}
	return b
}

// DecodeValue decodes a value produced by AppendBinary, returning the value
// and the number of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null(), 0, fmt.Errorf("value: empty binary input")
	}
	kind := Kind(b[0])
	n := 1
	switch kind {
	case KindNull:
		return Null(), n, nil
	case KindBool, KindInt, KindTime:
		num, sz := binary.Varint(b[n:])
		if sz <= 0 {
			return Null(), 0, fmt.Errorf("value: truncated varint")
		}
		return Value{kind: kind, num: num}, n + sz, nil
	case KindFloat:
		if len(b) < n+8 {
			return Null(), 0, fmt.Errorf("value: truncated float")
		}
		num := int64(binary.LittleEndian.Uint64(b[n : n+8]))
		return Value{kind: KindFloat, num: num}, n + 8, nil
	case KindString:
		l, sz := binary.Uvarint(b[n:])
		if sz <= 0 || len(b) < n+sz+int(l) {
			return Null(), 0, fmt.Errorf("value: truncated string")
		}
		n += sz
		return Str(string(b[n : n+int(l)])), n + int(l), nil
	case KindSpan:
		a, sz1 := binary.Varint(b[n:])
		if sz1 <= 0 {
			return Null(), 0, fmt.Errorf("value: truncated span start")
		}
		n += sz1
		c, sz2 := binary.Varint(b[n:])
		if sz2 <= 0 {
			return Null(), 0, fmt.Errorf("value: truncated span end")
		}
		return Span(a, c), n + sz2, nil
	case KindList:
		l, sz := binary.Uvarint(b[n:])
		if sz <= 0 {
			return Null(), 0, fmt.Errorf("value: truncated list length")
		}
		if l > uint64(len(b)) {
			return Null(), 0, fmt.Errorf("value: implausible list length %d", l)
		}
		n += sz
		vs := make([]Value, l)
		for i := range vs {
			e, consumed, err := DecodeValue(b[n:])
			if err != nil {
				return Null(), 0, err
			}
			vs[i] = e
			n += consumed
		}
		return Value{kind: KindList, list: vs}, n, nil
	default:
		return Null(), 0, fmt.Errorf("value: unknown binary kind %d", kind)
	}
}

// AppendBinary appends a binary encoding of the row: a field count followed
// by (name, value) pairs.
func (r Row) AppendBinary(b []byte) []byte {
	cols := r.Columns() // sorted: encoding is canonical
	b = binary.AppendUvarint(b, uint64(len(cols)))
	for _, c := range cols {
		b = binary.AppendUvarint(b, uint64(len(c)))
		b = append(b, c...)
		b = r[c].AppendBinary(b)
	}
	return b
}

// DecodeRow decodes a row produced by Row.AppendBinary, returning the row
// and bytes consumed.
func DecodeRow(b []byte) (Row, int, error) {
	nFields, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("value: truncated row header")
	}
	if nFields > uint64(len(b)) {
		return nil, 0, fmt.Errorf("value: implausible field count %d", nFields)
	}
	n := sz
	row := make(Row, nFields)
	for i := uint64(0); i < nFields; i++ {
		l, sz := binary.Uvarint(b[n:])
		if sz <= 0 || len(b) < n+sz+int(l) {
			return nil, 0, fmt.Errorf("value: truncated column name")
		}
		n += sz
		name := string(b[n : n+int(l)])
		n += int(l)
		v, consumed, err := DecodeValue(b[n:])
		if err != nil {
			return nil, 0, err
		}
		row[name] = v
		n += consumed
	}
	return row, n, nil
}
