package value

import (
	"errors"
	"fmt"
)

// Arithmetic errors.
var (
	ErrNotNumeric   = errors.New("value: operand is not numeric")
	ErrDivideByZero = errors.New("value: division by zero")
)

// Add returns v + o for numeric operands. Two ints produce an int;
// any float operand produces a float. Adding an int/float to a time
// shifts the time by that many seconds.
func Add(v, o Value) (Value, error) {
	if v.kind == KindTime && o.IsNumeric() {
		sec, _ := o.AsFloat()
		return TimeNanos(v.num + int64(sec*1e9)), nil
	}
	if o.kind == KindTime && v.IsNumeric() {
		return Add(o, v)
	}
	if v.kind == KindInt && o.kind == KindInt {
		return Int(v.num + o.num), nil
	}
	a, aok := v.AsFloat()
	b, bok := o.AsFloat()
	if !aok || !bok {
		return Null(), fmt.Errorf("%w: %s + %s", ErrNotNumeric, v.kind, o.kind)
	}
	return Float(a + b), nil
}

// Sub returns v - o. Subtracting two times yields a float number of seconds.
func Sub(v, o Value) (Value, error) {
	if v.kind == KindTime && o.kind == KindTime {
		return Float(float64(v.num-o.num) / 1e9), nil
	}
	if v.kind == KindTime && o.IsNumeric() {
		sec, _ := o.AsFloat()
		return TimeNanos(v.num - int64(sec*1e9)), nil
	}
	if v.kind == KindInt && o.kind == KindInt {
		return Int(v.num - o.num), nil
	}
	a, aok := v.AsFloat()
	b, bok := o.AsFloat()
	if !aok || !bok {
		return Null(), fmt.Errorf("%w: %s - %s", ErrNotNumeric, v.kind, o.kind)
	}
	return Float(a - b), nil
}

// Mul returns v * o as a float (int*int stays int).
func Mul(v, o Value) (Value, error) {
	if v.kind == KindInt && o.kind == KindInt {
		return Int(v.num * o.num), nil
	}
	a, aok := v.AsFloat()
	b, bok := o.AsFloat()
	if !aok || !bok {
		return Null(), fmt.Errorf("%w: %s * %s", ErrNotNumeric, v.kind, o.kind)
	}
	return Float(a * b), nil
}

// Div returns v / o as a float.
func Div(v, o Value) (Value, error) {
	a, aok := v.AsFloat()
	b, bok := o.AsFloat()
	if !aok || !bok {
		return Null(), fmt.Errorf("%w: %s / %s", ErrNotNumeric, v.kind, o.kind)
	}
	if b == 0 {
		return Null(), ErrDivideByZero
	}
	return Float(a / b), nil
}

// Mean averages a non-empty set of numeric (or time) values. Times average
// to a time; numerics average to a float. Nulls are skipped; an all-null
// input yields null.
func Mean(vs []Value) Value {
	var sum float64
	n := 0
	times := 0
	for _, v := range vs {
		if v.IsNull() {
			continue
		}
		if v.kind == KindTime {
			times++
		}
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		sum += f
		n++
	}
	if n == 0 {
		return Null()
	}
	m := sum / float64(n)
	if times == n {
		return TimeNanos(int64(m * 1e9))
	}
	return Float(m)
}

// Lerp linearly interpolates between a and b at parameter t in [0,1].
// Times interpolate to times; numerics to floats. Non-interpolable kinds
// return a when t < 0.5 and b otherwise (nearest).
func Lerp(a, b Value, t float64) Value {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	fa, aok := a.AsFloat()
	fb, bok := b.AsFloat()
	if aok && bok {
		var m float64
		switch {
		case t == 0:
			m = fa
		case t == 1:
			m = fb
		default:
			// The two-product form avoids overflow when fb-fa exceeds the
			// float range at the endpoints.
			m = fa*(1-t) + fb*t
		}
		if a.kind == KindTime && b.kind == KindTime {
			return TimeNanos(int64(m * 1e9))
		}
		if a.kind == KindInt && b.kind == KindInt && fa == fb {
			return a
		}
		return Float(m)
	}
	if t < 0.5 {
		return a
	}
	return b
}
