package value

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// jsonValue is the wire form of a Value. Scalars use a compact one-field
// form; the kind tag keeps int/float/time distinctions that raw JSON
// numbers would lose.
type jsonValue struct {
	K  string            `json:"k"`
	N  *int64            `json:"n,omitempty"`  // int payload
	F  *float64          `json:"f,omitempty"`  // float payload
	B  *bool             `json:"b,omitempty"`  // bool payload
	S  *string           `json:"s,omitempty"`  // string payload
	T  *string           `json:"t,omitempty"`  // RFC3339 time payload
	T2 *string           `json:"t2,omitempty"` // RFC3339 span end
	L  []json.RawMessage `json:"l,omitempty"`  // list payload
}

// MarshalJSON encodes the value with an explicit kind tag.
func (v Value) MarshalJSON() ([]byte, error) {
	jv := jsonValue{K: v.kind.String()}
	switch v.kind {
	case KindNull:
	case KindBool:
		b := v.BoolVal()
		jv.B = &b
	case KindInt:
		n := v.num
		jv.N = &n
	case KindFloat:
		f := math.Float64frombits(uint64(v.num))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// JSON cannot carry NaN/Inf as numbers; use the string slot.
			s := fmt.Sprintf("%g", f)
			jv.S = &s
		} else {
			jv.F = &f
		}
	case KindString:
		s := v.str
		jv.S = &s
	case KindTime:
		t := v.TimeVal().Format(time.RFC3339Nano)
		jv.T = &t
	case KindSpan:
		t1 := time.Unix(0, v.num).UTC().Format(time.RFC3339Nano)
		t2 := time.Unix(0, v.num2).UTC().Format(time.RFC3339Nano)
		jv.T = &t1
		jv.T2 = &t2
	case KindList:
		jv.L = make([]json.RawMessage, len(v.list))
		for i, e := range v.list {
			raw, err := json.Marshal(e)
			if err != nil {
				return nil, err
			}
			jv.L[i] = raw
		}
	}
	return json.Marshal(jv)
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	k, err := KindFromString(jv.K)
	if err != nil {
		return err
	}
	switch k {
	case KindNull:
		*v = Null()
	case KindBool:
		if jv.B == nil {
			return fmt.Errorf("value: bool payload missing")
		}
		*v = Bool(*jv.B)
	case KindInt:
		if jv.N == nil {
			return fmt.Errorf("value: int payload missing")
		}
		*v = Int(*jv.N)
	case KindFloat:
		switch {
		case jv.F != nil:
			*v = Float(*jv.F)
		case jv.S != nil:
			var f float64
			if _, err := fmt.Sscanf(*jv.S, "%g", &f); err != nil {
				return fmt.Errorf("value: bad float payload %q", *jv.S)
			}
			*v = Float(f)
		default:
			return fmt.Errorf("value: float payload missing")
		}
	case KindString:
		if jv.S == nil {
			return fmt.Errorf("value: string payload missing")
		}
		*v = Str(*jv.S)
	case KindTime:
		if jv.T == nil {
			return fmt.Errorf("value: time payload missing")
		}
		t, err := time.Parse(time.RFC3339Nano, *jv.T)
		if err != nil {
			return err
		}
		*v = Time(t)
	case KindSpan:
		if jv.T == nil || jv.T2 == nil {
			return fmt.Errorf("value: span payload missing")
		}
		t1, err := time.Parse(time.RFC3339Nano, *jv.T)
		if err != nil {
			return err
		}
		t2, err := time.Parse(time.RFC3339Nano, *jv.T2)
		if err != nil {
			return err
		}
		*v = SpanOf(t1, t2)
	case KindList:
		vs := make([]Value, len(jv.L))
		for i, raw := range jv.L {
			if err := json.Unmarshal(raw, &vs[i]); err != nil {
				return err
			}
		}
		*v = Value{kind: KindList, list: vs}
	}
	return nil
}
