// Package value implements the dynamically typed cell values that populate
// ScrubJay datasets. A Value is a small tagged union covering the types that
// appear in HPC monitoring data: integers, floats, strings, booleans,
// timestamps, time spans, and lists. Values are immutable, comparable along
// ordered kinds, hashable for join keys, and round-trip through JSON.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime // an instant, stored as Unix nanoseconds
	KindSpan // a half-open interval [Start, End) of Unix nanoseconds
	KindList // an ordered list of Values
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	case KindSpan:
		return "span"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromString parses a kind name produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "bool":
		return KindBool, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "time":
		return KindTime, nil
	case "span":
		return KindSpan, nil
	case "list":
		return KindList, nil
	default:
		return KindNull, fmt.Errorf("value: unknown kind %q", s)
	}
}

// Value is an immutable dynamically typed cell. The zero Value is Null.
type Value struct {
	kind Kind
	num  int64 // bool (0/1), int, float bits, time nanos, span start
	num2 int64 // span end
	str  string
	list []Value
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n int64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float returns a floating-point value.
func Float(f float64) Value {
	return Value{kind: KindFloat, num: int64(math.Float64bits(f))}
}

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Time returns a timestamp value from a time.Time.
func Time(t time.Time) Value { return Value{kind: KindTime, num: t.UnixNano()} }

// TimeNanos returns a timestamp value from Unix nanoseconds.
func TimeNanos(ns int64) Value { return Value{kind: KindTime, num: ns} }

// Span returns a half-open time span [start, end) in Unix nanoseconds.
// If end < start the bounds are swapped so spans are always well formed.
func Span(startNanos, endNanos int64) Value {
	if endNanos < startNanos {
		startNanos, endNanos = endNanos, startNanos
	}
	return Value{kind: KindSpan, num: startNanos, num2: endNanos}
}

// SpanOf builds a span from two time.Time endpoints.
func SpanOf(start, end time.Time) Value { return Span(start.UnixNano(), end.UnixNano()) }

// List returns a list value containing vs. The slice is copied.
func List(vs ...Value) Value {
	cp := make([]Value, len(vs))
	copy(cp, vs)
	return Value{kind: KindList, list: cp}
}

// StrList builds a list of string values, a common shape for node lists.
func StrList(ss ...string) Value {
	vs := make([]Value, len(ss))
	for i, s := range ss {
		vs[i] = Str(s)
	}
	return Value{kind: KindList, list: vs}
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// BoolVal returns the boolean payload; false if v is not a bool.
func (v Value) BoolVal() bool { return v.kind == KindBool && v.num != 0 }

// IntVal returns the integer payload; 0 if v is not an int.
func (v Value) IntVal() int64 {
	if v.kind != KindInt {
		return 0
	}
	return v.num
}

// FloatVal returns the float payload; 0 if v is not a float.
func (v Value) FloatVal() float64 {
	if v.kind != KindFloat {
		return 0
	}
	return math.Float64frombits(uint64(v.num))
}

// AsFloat coerces numeric, bool, and time values to float64.
// Times coerce to seconds since the Unix epoch. The second result reports
// whether the coercion was meaningful.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.num), true
	case KindFloat:
		return math.Float64frombits(uint64(v.num)), true
	case KindBool:
		if v.num != 0 {
			return 1, true
		}
		return 0, true
	case KindTime:
		return float64(v.num) / 1e9, true
	default:
		return 0, false
	}
}

// AsInt coerces numeric values to int64, truncating floats.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.num, true
	case KindFloat:
		return int64(math.Float64frombits(uint64(v.num))), true
	case KindBool:
		return v.num, true
	default:
		return 0, false
	}
}

// StrVal returns the string payload; "" if v is not a string.
func (v Value) StrVal() string {
	if v.kind != KindString {
		return ""
	}
	return v.str
}

// TimeNanosVal returns the timestamp payload in Unix nanoseconds.
func (v Value) TimeNanosVal() int64 {
	if v.kind != KindTime {
		return 0
	}
	return v.num
}

// TimeVal returns the timestamp payload as a time.Time in UTC.
func (v Value) TimeVal() time.Time { return time.Unix(0, v.TimeNanosVal()).UTC() }

// SpanBounds returns the [start, end) bounds of a span in Unix nanoseconds.
func (v Value) SpanBounds() (start, end int64) {
	if v.kind != KindSpan {
		return 0, 0
	}
	return v.num, v.num2
}

// SpanDurationNanos returns end-start for a span; 0 otherwise.
func (v Value) SpanDurationNanos() int64 {
	if v.kind != KindSpan {
		return 0
	}
	return v.num2 - v.num
}

// ListVal returns the list payload; nil if v is not a list.
// The returned slice must not be modified.
func (v Value) ListVal() []Value {
	if v.kind != KindList {
		return nil
	}
	return v.list
}

// Len returns the length of a list or string value, 0 otherwise.
func (v Value) Len() int {
	switch v.kind {
	case KindList:
		return len(v.list)
	case KindString:
		return len(v.str)
	default:
		return 0
	}
}

// Equal reports deep equality between two values. Ints and floats of equal
// magnitude are NOT equal (they differ in kind); use Compare for ordering
// across numeric kinds.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.str == o.str
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindSpan:
		return v.num == o.num && v.num2 == o.num2
	case KindFloat:
		// Compare by bits so NaN == NaN for dataset dedup purposes.
		return v.num == o.num
	default:
		return v.num == o.num
	}
}

// Ordered reports whether v belongs to a kind with a total order
// (numbers, strings, times, bools).
func (v Value) Ordered() bool {
	switch v.kind {
	case KindBool, KindInt, KindFloat, KindString, KindTime:
		return true
	default:
		return false
	}
}

// Compare orders two values. Numeric kinds (int, float, bool) compare by
// magnitude across kinds. Strings compare lexically, times chronologically.
// Nulls sort first. Mixed non-numeric kinds order by kind tag so that
// sorting heterogeneous data is deterministic. Spans order by start then
// end; lists lexicographically.
func (v Value) Compare(o Value) int {
	vn, vok := v.AsFloat()
	on, ook := o.AsFloat()
	if vok && ook && v.kind != KindTime && o.kind != KindTime {
		switch {
		case vn < on:
			return -1
		case vn > on:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindTime:
		return cmpInt64(v.num, o.num)
	case KindSpan:
		if c := cmpInt64(v.num, o.num); c != 0 {
			return c
		}
		return cmpInt64(v.num2, o.num2)
	case KindList:
		n := len(v.list)
		if len(o.list) < n {
			n = len(o.list)
		}
		for i := 0; i < n; i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		return len(v.list) - len(o.list)
	default:
		return cmpInt64(v.num, o.num)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Hash returns a 64-bit hash suitable for join keys and partitioning.
// Equal values hash identically.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.hashInto(h)
	return h.Sum64()
}

type hasher interface {
	Write(p []byte) (int, error)
}

func (v Value) hashInto(h hasher) {
	var tag [1]byte
	tag[0] = byte(v.kind)
	h.Write(tag[:])
	switch v.kind {
	case KindString:
		h.Write([]byte(v.str))
	case KindList:
		for _, e := range v.list {
			e.hashInto(h)
		}
	default:
		var buf [16]byte
		putInt64(buf[:8], v.num)
		putInt64(buf[8:], v.num2)
		h.Write(buf[:])
	}
}

func putInt64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// String renders the value for display and CSV unwrapping.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		s := strconv.FormatFloat(math.Float64frombits(uint64(v.num)), 'g', -1, 64)
		// Keep a float marker so text round-trips to the float kind
		// ("61" would re-parse as an int).
		if !strings.ContainsAny(s, ".eEnI") {
			s += ".0"
		}
		return s
	case KindString:
		return v.str
	case KindTime:
		return v.TimeVal().Format(time.RFC3339Nano)
	case KindSpan:
		return fmt.Sprintf("%s/%s",
			time.Unix(0, v.num).UTC().Format(time.RFC3339Nano),
			time.Unix(0, v.num2).UTC().Format(time.RFC3339Nano))
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		return "?"
	}
}

// Parse attempts to interpret a raw text field (e.g. a CSV cell) as the most
// specific kind: int, float, bool, RFC3339 time, span ("t1/t2"), falling back
// to string. Empty text parses as null.
func Parse(text string) Value {
	if text == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return Float(f)
	}
	switch text {
	case "true", "True", "TRUE":
		return Bool(true)
	case "false", "False", "FALSE":
		return Bool(false)
	}
	if t, err := time.Parse(time.RFC3339Nano, text); err == nil {
		return Time(t)
	}
	if i := strings.IndexByte(text, '/'); i > 0 {
		t1, err1 := time.Parse(time.RFC3339Nano, text[:i])
		t2, err2 := time.Parse(time.RFC3339Nano, text[i+1:])
		if err1 == nil && err2 == nil {
			return SpanOf(t1, t2)
		}
	}
	if strings.HasPrefix(text, "[") && strings.HasSuffix(text, "]") {
		inner := text[1 : len(text)-1]
		if inner == "" {
			return List()
		}
		parts := strings.Split(inner, ",")
		vs := make([]Value, len(parts))
		for i, p := range parts {
			vs[i] = Parse(strings.TrimSpace(p))
		}
		return List(vs...)
	}
	return Str(text)
}

// SortValues sorts a slice of values in place using Compare.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
