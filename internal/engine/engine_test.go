package engine

import (
	"context"
	"strings"
	"testing"

	"scrubjay/internal/dataset"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
)

// fig5Schemas is the first DAT catalog (§7.1-7.2): job queue log, node
// layout, rack temperatures.
func fig5Schemas() map[string]semantics.Schema {
	return map[string]semantics.Schema{
		"job_queue_log": semantics.NewSchema(
			"job_id", semantics.IDDomain("job"),
			"job_name", semantics.ValueEntry("application", "identifier"),
			"elapsed", semantics.ValueEntry("time_duration", "seconds"),
			"nodelist", semantics.IDListDomain("compute_node"),
			"timespan", semantics.SpanDomain(),
		),
		"node_layout": semantics.NewSchema(
			"node", semantics.IDDomain("compute_node"),
			"rack", semantics.IDDomain("rack"),
		),
		"rack_temperatures": semantics.NewSchema(
			"rack", semantics.IDDomain("rack"),
			"location", semantics.IDDomain("rack_location"),
			"aisle", semantics.IDDomain("rack_aisle"),
			"time", semantics.TimeDomain().WithCadence(120),
			"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
		),
	}
}

// fig7Schemas is the second DAT catalog (§7.3): PAPI CPU counters, IPMI
// motherboard counters, static CPU specifications.
func fig7Schemas() map[string]semantics.Schema {
	return map[string]semantics.Schema{
		"papi": semantics.NewSchema(
			"time", semantics.TimeDomain(),
			"node", semantics.IDDomain("compute_node"),
			"cpu_id", semantics.IDDomain("cpu"),
			"aperf", semantics.ValueEntry("aperf_cycles", "count"),
			"mperf", semantics.ValueEntry("mperf_cycles", "count"),
			"instructions", semantics.ValueEntry("instructions", "count"),
		),
		"ipmi": semantics.NewSchema(
			"time", semantics.TimeDomain(),
			"node", semantics.IDDomain("compute_node"),
			"socket", semantics.IDDomain("cpu_socket"),
			"mem_reads", semantics.ValueEntry("memory_reads", "count"),
			"mem_writes", semantics.ValueEntry("memory_writes", "count"),
			"socket_power", semantics.ValueEntry("power", "watts"),
		),
		"cpu_specs": semantics.NewSchema(
			"node", semantics.IDDomain("compute_node"),
			"cpu_id", semantics.IDDomain("cpu"),
			"base_frequency", semantics.ValueEntry("frequency", "gigahertz"),
		),
	}
}

func fig5Query() Query {
	return Query{
		Domains: []string{"job", "rack"},
		Values: []QueryValue{
			{Dimension: "application"},
			{Dimension: "temperature_difference"},
		},
	}
}

func fig7Query() Query {
	return Query{
		Domains: []string{"cpu"},
		Values: []QueryValue{
			{Dimension: "active_frequency"},
			{Dimension: "instructions/time_duration"},
			{Dimension: "memory_reads/time_duration"},
		},
	}
}

func assertSteps(t *testing.T, plan *pipeline.Plan, want []string) {
	t.Helper()
	got := plan.Steps()
	if len(got) != len(want) {
		t.Fatalf("plan steps = %v\nwant %v\nplan:\n%s", got, want, plan)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %q, want %q\nplan:\n%s", i, got[i], want[i], plan)
		}
	}
}

func TestSolveFig5PlanShape(t *testing.T) {
	// The query from §7.2: application names for jobs and heat for racks.
	// The expected sequence is the paper's Figure 5: explode the job log
	// (discrete nodelist, continuous timespan), natural-join with the node
	// layout, derive heat from the rack temperatures, and relate the two
	// derived datasets with an interpolation join.
	e := New(semantics.DefaultDictionary(), fig5Schemas(), DefaultOptions())
	plan, err := e.Solve(context.Background(), fig5Query())
	if err != nil {
		t.Fatal(err)
	}
	assertSteps(t, plan, []string{
		"source:job_queue_log",
		"explode_discrete",
		"explode_continuous",
		"source:node_layout",
		"natural_join",
		"source:rack_temperatures",
		"derive_heat",
		"interpolation_join",
	})
}

func TestSolveFig7PlanShape(t *testing.T) {
	// The query from §7.3: active CPU frequency plus CPU and node counter
	// rates. Expected: derive counter rates for PAPI, natural-join with the
	// CPU specs (which carries the base frequency), derive active
	// frequency, derive counter rates for IPMI, and combine. The paper's
	// Figure 7 draws the final combine as a natural join with time elided;
	// with explicit time domains an exact join on a continuous dimension is
	// invalid under the paper's own §4.3 comparison rules, so the engine
	// selects an interpolation join with exact node matching.
	e := New(semantics.DefaultDictionary(), fig7Schemas(), DefaultOptions())
	plan, err := e.Solve(context.Background(), fig7Query())
	if err != nil {
		t.Fatal(err)
	}
	assertSteps(t, plan, []string{
		"source:ipmi",
		"derive_rate",
		"source:cpu_specs",
		"source:papi",
		"derive_rate",
		"natural_join",
		"derive_active_frequency",
		"interpolation_join",
	})
}

func TestSolveSingleDatasetSatisfies(t *testing.T) {
	e := New(semantics.DefaultDictionary(), fig5Schemas(), DefaultOptions())
	plan, err := e.Solve(context.Background(), Query{
		Domains: []string{"rack"},
		Values:  []QueryValue{{Dimension: "temperature"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSteps(t, plan, []string{"source:rack_temperatures"})
}

func TestSolveSingleDatasetWithTransform(t *testing.T) {
	// Heat for racks alone needs only rack_temperatures + derive_heat.
	e := New(semantics.DefaultDictionary(), fig5Schemas(), DefaultOptions())
	plan, err := e.Solve(context.Background(), Query{
		Domains: []string{"rack"},
		Values:  []QueryValue{{Dimension: "temperature_difference"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSteps(t, plan, []string{"source:rack_temperatures", "derive_heat"})
}

func TestSolveUnitConversionAppended(t *testing.T) {
	e := New(semantics.DefaultDictionary(), fig5Schemas(), DefaultOptions())
	plan, err := e.Solve(context.Background(), Query{
		Domains: []string{"rack"},
		Values:  []QueryValue{{Dimension: "temperature", Units: "degrees_fahrenheit"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := plan.Steps()
	if steps[len(steps)-1] != "convert_units" {
		t.Errorf("expected trailing convert_units, got %v", steps)
	}
	// Requesting the units the data already has adds no conversion.
	plan2, err := e.Solve(context.Background(), Query{
		Domains: []string{"rack"},
		Values:  []QueryValue{{Dimension: "temperature", Units: "degrees_celsius"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan2.Steps() {
		if s == "convert_units" {
			t.Error("no conversion should be added for matching units")
		}
	}
}

func TestSolveErrors(t *testing.T) {
	e := New(semantics.DefaultDictionary(), fig5Schemas(), DefaultOptions())
	// Empty query.
	if _, err := e.Solve(context.Background(), Query{}); err == nil {
		t.Error("empty query should fail")
	}
	// Unknown domain dimension: derivations cannot invent domains.
	if _, err := e.Solve(context.Background(), Query{Domains: []string{"filesystem"}}); err == nil {
		t.Error("absent domain dimension should fail")
	}
	// Value dimension that nothing can derive.
	if _, err := e.Solve(context.Background(), Query{
		Domains: []string{"rack"},
		Values:  []QueryValue{{Dimension: "power"}},
	}); err == nil {
		t.Error("underivable value dimension should fail")
	}
	// Units that nothing can convert to.
	if _, err := e.Solve(context.Background(), Query{
		Domains: []string{"rack"},
		Values:  []QueryValue{{Dimension: "temperature", Units: "watts"}},
	}); err == nil {
		t.Error("unconvertible units should fail")
	}
}

func TestSolveUnrelatableDatasets(t *testing.T) {
	schemas := map[string]semantics.Schema{
		"a": semantics.NewSchema(
			"x", semantics.IDDomain("cpu"),
			"v", semantics.ValueEntry("power", "watts")),
		"b": semantics.NewSchema(
			"y", semantics.IDDomain("rack"),
			"w", semantics.ValueEntry("temperature", "kelvin")),
	}
	e := New(semantics.DefaultDictionary(), schemas, DefaultOptions())
	if _, err := e.Solve(context.Background(), Query{
		Domains: []string{"cpu", "rack"},
		Values:  []QueryValue{{Dimension: "power"}, {Dimension: "temperature"}},
	}); err == nil {
		t.Error("datasets with no shared dimensions should not relate")
	}
}

func TestSolveMemoization(t *testing.T) {
	e := New(semantics.DefaultDictionary(), fig5Schemas(), DefaultOptions())
	if _, err := e.Solve(context.Background(), fig5Query()); err != nil {
		t.Fatal(err)
	}
	first := e.MemoHits()
	if _, err := e.Solve(context.Background(), fig5Query()); err != nil {
		t.Fatal(err)
	}
	second := e.MemoHits()
	if second <= first {
		t.Errorf("second solve should hit the memo table: %d -> %d", first, second)
	}
	// MemoHits is per-solve, not cumulative: a third identical solve
	// reports the same fresh count, not first+2*second.
	if _, err := e.Solve(context.Background(), fig5Query()); err != nil {
		t.Fatal(err)
	}
	if e.MemoHits() != second {
		t.Errorf("MemoHits should reset per solve: third solve reported %d, want %d", e.MemoHits(), second)
	}
	// With memoization disabled, no hits accrue.
	opts := DefaultOptions()
	opts.DisableMemo = true
	e2 := New(semantics.DefaultDictionary(), fig5Schemas(), opts)
	e2.Solve(context.Background(), fig5Query())
	e2.Solve(context.Background(), fig5Query())
	if e2.MemoHits() != 0 {
		t.Errorf("disabled memo recorded %d hits", e2.MemoHits())
	}
}

func TestSolvedPlanExecutesEndToEnd(t *testing.T) {
	// Execute the Figure 5 plan on a miniature facility: one AMG job on
	// nodes n1,n2 (rack r17) and hot/cold sensor readings.
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	schemas := fig5Schemas()
	e := New(dict, schemas, DefaultOptions())
	plan, err := e.Solve(context.Background(), fig5Query())
	if err != nil {
		t.Fatal(err)
	}

	jobs := []value.Row{value.NewRow(
		"job_id", value.Str("j1"),
		"job_name", value.Str("AMG"),
		"elapsed", value.Float(600),
		"nodelist", value.StrList("n1", "n2"),
		"timespan", value.Span(0, 600e9),
	)}
	layout := []value.Row{
		value.NewRow("node", value.Str("n1"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n2"), "rack", value.Str("r17")),
	}
	var temps []value.Row
	for ts := int64(0); ts <= 600; ts += 120 {
		for _, loc := range []string{"top", "mid", "bot"} {
			temps = append(temps,
				value.NewRow("rack", value.Str("r17"), "location", value.Str(loc),
					"aisle", value.Str("hot"), "time", value.TimeNanos(ts*1e9),
					"temp", value.Float(30+float64(ts)/100)),
				value.NewRow("rack", value.Str("r17"), "location", value.Str(loc),
					"aisle", value.Str("cold"), "time", value.TimeNanos(ts*1e9),
					"temp", value.Float(18)),
			)
		}
	}
	cat := pipeline.Catalog{
		"job_queue_log":     dataset.FromRows(ctx, "job_queue_log", jobs, schemas["job_queue_log"], 2),
		"node_layout":       dataset.FromRows(ctx, "node_layout", layout, schemas["node_layout"], 1),
		"rack_temperatures": dataset.FromRows(ctx, "rack_temperatures", temps, schemas["rack_temperatures"], 2),
	}
	out, err := pipeline.Execute(context.Background(), ctx, plan, cat, dict, pipeline.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Collect()
	if len(rows) == 0 {
		t.Fatal("plan produced no rows")
	}
	for _, r := range rows {
		if r.Get("job_name").StrVal() != "AMG" {
			t.Errorf("row lost job name: %v", r)
		}
		if r.Get("rack").StrVal() != "r17" {
			t.Errorf("row lost rack: %v", r)
		}
		if !r.Has("heat") {
			t.Errorf("row lost heat: %v", r)
		}
		h := r.Get("heat").FloatVal()
		if h < 11 || h > 19 {
			t.Errorf("heat out of expected range: %v", h)
		}
	}
	// The queried schema holds: job domain, rack domain, application and
	// temperature_difference values.
	s := out.Schema()
	if !s.HasDomainDimension("job") || !s.HasDomainDimension("rack") ||
		!s.HasValueDimension("application") || !s.HasValueDimension("temperature_difference") {
		t.Errorf("result schema incomplete: %v", s)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Domains: []string{"job"}, Values: []QueryValue{{Dimension: "power", Units: "watts"}, {Dimension: "application"}}}
	s := q.String()
	if !strings.Contains(s, "job") || !strings.Contains(s, "power(watts)") || !strings.Contains(s, "application") {
		t.Errorf("String() = %q", s)
	}
}

func TestOptionsDefaults(t *testing.T) {
	e := New(semantics.DefaultDictionary(), nil, Options{})
	if e.opts.MaxVariants <= 0 || e.opts.WindowSeconds <= 0 || e.opts.Candidate.ExplodePeriodSeconds <= 0 {
		t.Errorf("zero options should be defaulted: %+v", e.opts)
	}
}

func TestSolveBridgingDataset(t *testing.T) {
	// The two datasets contributing queried dimensions share no domain;
	// a third dataset that contributes nothing queried bridges them.
	// Algorithm 1 extends DF one dataset at a time from D - DF.
	schemas := map[string]semantics.Schema{
		"cpu_metrics": semantics.NewSchema(
			"cpu", semantics.IDDomain("cpu"),
			"ipc", semantics.ValueEntry("instructions/time_duration", "count/seconds"),
		),
		"rack_power": semantics.NewSchema(
			"rack", semantics.IDDomain("rack"),
			"power", semantics.ValueEntry("power", "watts"),
		),
		"cpu_rack_map": semantics.NewSchema(
			"cpu_id", semantics.IDDomain("cpu"),
			"rack_id", semantics.IDDomain("rack"),
		),
	}
	e := New(semantics.DefaultDictionary(), schemas, DefaultOptions())
	plan, err := e.Solve(context.Background(), Query{
		Domains: []string{"cpu", "rack"},
		Values:  []QueryValue{{Dimension: "instructions/time_duration"}, {Dimension: "power"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := plan.Steps()
	sources := 0
	for _, s := range steps {
		if strings.HasPrefix(s, "source:") {
			sources++
		}
	}
	if sources != 3 {
		t.Errorf("bridged plan should use all 3 datasets, got %v", steps)
	}
	// Without the bridge there is no solution.
	delete(schemas, "cpu_rack_map")
	e2 := New(semantics.DefaultDictionary(), schemas, DefaultOptions())
	if _, err := e2.Solve(context.Background(), Query{
		Domains: []string{"cpu", "rack"},
		Values:  []QueryValue{{Dimension: "instructions/time_duration"}, {Dimension: "power"}},
	}); err == nil {
		t.Error("unbridgeable query should fail")
	}
}

func TestInterpWindowFromCadence(t *testing.T) {
	// PAPI samples at 1 s, IPMI at 3 s: the engine should size the
	// interpolation window to the coarsest cadence (3 s), not the global
	// default (120 s).
	schemas := fig7Schemas()
	schemas["papi"]["time"] = schemas["papi"]["time"].WithCadence(1)
	schemas["ipmi"]["time"] = schemas["ipmi"]["time"].WithCadence(3)
	e := New(semantics.DefaultDictionary(), schemas, DefaultOptions())
	plan, err := e.Solve(context.Background(), fig7Query())
	if err != nil {
		t.Fatal(err)
	}
	// The root combine is the interpolation join; inspect its parameters.
	if plan.Root.Derivation != "interpolation_join" {
		t.Fatalf("root = %v", plan.Root.Derivation)
	}
	if w := plan.Root.Params["window_seconds"]; w != 3.0 {
		t.Errorf("window = %v, want 3 (coarsest cadence)", w)
	}
	// Without cadence annotations the default window applies.
	e2 := New(semantics.DefaultDictionary(), fig7Schemas(), DefaultOptions())
	plan2, err := e2.Solve(context.Background(), fig7Query())
	if err != nil {
		t.Fatal(err)
	}
	if w := plan2.Root.Params["window_seconds"]; w != 120.0 {
		t.Errorf("default window = %v, want 120", w)
	}
	// Exploded spans carry their period as cadence: the Figure 5 plan's
	// interpolation window becomes the sensor cadence (120 s), derived
	// from data, not defaulted.
	s5 := fig5Schemas()
	e3 := New(semantics.DefaultDictionary(), s5, DefaultOptions())
	plan3, err := e3.Solve(context.Background(), fig5Query())
	if err != nil {
		t.Fatal(err)
	}
	if w := plan3.Root.Params["window_seconds"]; w != 120.0 {
		t.Errorf("fig5 window = %v, want 120 (sensor cadence)", w)
	}
}

func TestSolveTraced(t *testing.T) {
	e := New(semantics.DefaultDictionary(), fig5Schemas(), DefaultOptions())
	plan, trace, err := e.SolveTraced(context.Background(), fig5Query())
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || trace == nil {
		t.Fatal("plan and trace expected")
	}
	out := trace.String()
	for _, want := range []string{
		"closure of", "DF (datasets contributing",
		"natural join (exact)", "interpolation join", "satisfies the query",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Failure traces record the reason.
	_, trace2, err := e.SolveTraced(context.Background(), Query{
		Domains: []string{"rack"},
		Values:  []QueryValue{{Dimension: "power"}},
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(trace2.String(), "failed:") {
		t.Errorf("failure trace missing reason:\n%s", trace2)
	}
	// Nil trace is safe.
	var nilTrace *Trace
	if nilTrace.String() != "" {
		t.Error("nil trace should render empty")
	}
	nilTrace.addf("ignored %d", 1)
}

func TestSharedValueDimensionDoesNotJoin(t *testing.T) {
	// §4.2: "if two data recordings describe the same value, such as the
	// same temperature, we cannot infer that the recordings are related."
	// Two datasets sharing only a value dimension (temperature) must not
	// combine.
	schemas := map[string]semantics.Schema{
		"cpu_temps": semantics.NewSchema(
			"cpu", semantics.IDDomain("cpu"),
			"temp", semantics.ValueEntry("temperature", "degrees_celsius"),
		),
		"rack_temps": semantics.NewSchema(
			"rack", semantics.IDDomain("rack"),
			"temp2", semantics.ValueEntry("temperature", "degrees_celsius"),
		),
	}
	e := New(semantics.DefaultDictionary(), schemas, DefaultOptions())
	if _, err := e.Solve(context.Background(), Query{
		Domains: []string{"cpu", "rack"},
		Values:  []QueryValue{{Dimension: "temperature"}},
	}); err == nil {
		t.Error("datasets sharing only a value dimension must not relate")
	}
}
