package engine

import (
	"context"
	"strings"
	"testing"

	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
)

// ndvSchemas is a minimal all-discrete catalog whose only viable plan is a
// natural join of the two datasets on compute_node.
func ndvSchemas() map[string]semantics.Schema {
	return map[string]semantics.Schema{
		"jobs": semantics.NewSchema(
			"job_id", semantics.IDDomain("job"),
			"node", semantics.IDDomain("compute_node"),
			"jname", semantics.ValueEntry("application", "identifier"),
		),
		"layout": semantics.NewSchema(
			"node", semantics.IDDomain("compute_node"),
			"rack", semantics.IDDomain("rack"),
		),
	}
}

func ndvQuery() Query {
	return Query{
		Domains: []string{"job", "rack"},
		Values:  []QueryValue{{Dimension: "application"}},
	}
}

func solveNDV(t *testing.T, store *stats.Store) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Stats = store
	return New(semantics.DefaultDictionary(), ndvSchemas(), opts)
}

// TestCombineCostNDVTightensEstimate: with join-key NDV facts in the store,
// the natural-join output cardinality uses the distinct-value estimate
// |L|·|R|/max(ndv) instead of the row-preserving |L|+|R| guess, and the
// estimate records which ndv facts it consumed.
func TestCombineCostNDVTightensEstimate(t *testing.T) {
	rowsOnly := stats.NewStore()
	rowsOnly.SetTable("jobs", stats.TableStats{Rows: 1000})
	rowsOnly.SetTable("layout", stats.TableStats{Rows: 200})

	withNDV := stats.NewStore()
	withNDV.SetTable("jobs", stats.TableStats{Rows: 1000, Columns: map[string]stats.ColumnStats{
		"node": {NDV: 500},
	}})
	withNDV.SetTable("layout", stats.TableStats{Rows: 200, Columns: map[string]stats.ColumnStats{
		"node": {NDV: 200},
	}})

	rootEstimate := func(store *stats.Store) ([]string, int64) {
		e := solveNDV(t, store)
		plan, err := e.Solve(context.Background(), ndvQuery())
		if err != nil {
			t.Fatal(err)
		}
		if plan.Root.Derivation != "natural_join" {
			t.Fatalf("plan root = %q, want natural_join\n%s", plan.Root.Derivation, plan)
		}
		est := plan.Root.Estimate
		if est == nil || !est.Informed {
			t.Fatalf("root estimate = %+v, want informed", est)
		}
		return est.StatsInputs, est.Rows
	}

	_, before := rootEstimate(rowsOnly)
	if before != 1200 {
		t.Fatalf("rows-only estimate = %d, want 1200 (row-preserving default over 1000+200)", before)
	}

	inputs, after := rootEstimate(withNDV)
	// 1000 * 200 / max(500, 200) = 400: the NDV estimate tightens the
	// uninformed 1200-row guess.
	if after != 400 {
		t.Fatalf("ndv-informed estimate = %d, want 400", after)
	}
	joined := strings.Join(inputs, " ")
	for _, want := range []string{"ndv:jobs.node", "ndv:layout.node"} {
		if !strings.Contains(joined, want) {
			t.Errorf("estimate inputs %v missing fact %q", inputs, want)
		}
	}
}

// TestCombineCostNDVAbsentKeepsPlan: without column NDV facts the new code
// path must be inert — the plan solved against a rows-only store has the
// identical step structure to the plan solved with no store at all. (The
// encoded bytes legitimately differ: a store adds estimate annotations.)
func TestCombineCostNDVAbsentKeepsPlan(t *testing.T) {
	solve := func(store *stats.Store) string {
		e := solveNDV(t, store)
		plan, err := e.Solve(context.Background(), ndvQuery())
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(plan.Steps(), "\n")
	}
	bare := solve(nil)
	rowsOnly := stats.NewStore()
	rowsOnly.SetTable("jobs", stats.TableStats{Rows: 1000})
	rowsOnly.SetTable("layout", stats.TableStats{Rows: 200})
	if got := solve(rowsOnly); got != bare {
		t.Fatalf("rows-only store changed the plan steps:\n%s\nvs no store:\n%s", got, bare)
	}
}

// TestNDVObservedSelectivityWins: an observed selectivity for the exact join
// outranks the NDV estimate — real behavior beats the textbook formula.
func TestNDVObservedSelectivityWins(t *testing.T) {
	store := stats.NewStore()
	store.SetTable("jobs", stats.TableStats{Rows: 1000, Columns: map[string]stats.ColumnStats{
		"node": {NDV: 500},
	}})
	store.SetTable("layout", stats.TableStats{Rows: 200, Columns: map[string]stats.ColumnStats{
		"node": {NDV: 200},
	}})
	// Observed: this join halves its input rows.
	store.Observe("natural_join|jobs|layout",
		stats.DerivationStats{Observations: 4, RowsIn: 2400, RowsOut: 1200, Micros: 100})

	e := solveNDV(t, store)
	plan, err := e.Solve(context.Background(), ndvQuery())
	if err != nil {
		t.Fatal(err)
	}
	est := plan.Root.Estimate
	if est == nil {
		t.Fatal("no root estimate")
	}
	// (1000+200) * 0.5 observed selectivity, not the NDV formula's 400.
	if est.Rows != 600 {
		t.Fatalf("estimate rows = %d, want 600 (observed selectivity)", est.Rows)
	}
	joined := strings.Join(est.StatsInputs, " ")
	if strings.Contains(joined, "ndv:") {
		t.Errorf("estimate inputs %v should not include ndv facts when selectivity was observed", est.StatsInputs)
	}
}
