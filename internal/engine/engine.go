// Package engine implements ScrubJay's derivation engine (§5 of the paper):
// given a catalog of annotated datasets and a query naming domain dimensions
// and value dimensions of interest, it searches for a sequence of
// derivations whose result relates them. The search runs over data semantics
// only — schemas, never rows — so queries resolve at interactive rates, and
// it memoizes pairwise combination results as in the paper's Algorithm 1.
//
// Like the paper, the search prefers high-precision plans: exact (natural)
// joins beat interpolation joins, more exactly matched shared dimensions
// beat fewer, and shorter derivation sequences beat longer ones, since every
// interpolation or aggregation step may lose precision (§5.2).
package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"scrubjay/internal/derive"
	"scrubjay/internal/pipeline"
	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
)

// QueryValue names one value dimension of interest, with optional units the
// result should be expressed in.
type QueryValue struct {
	Dimension string `json:"dimension"`
	Units     string `json:"units,omitempty"`
}

// Query is a ScrubJay query (§5.1): only dimensions, no table names, no
// join conditions. The engine derives everything else.
type Query struct {
	// Domains are the domain dimensions of interest (e.g. "job", "rack").
	Domains []string `json:"domains"`
	// Values are the value dimensions of interest (e.g. "temperature_difference").
	Values []QueryValue `json:"values"`
}

// String renders the query compactly.
func (q Query) String() string {
	var vals []string
	for _, v := range q.Values {
		if v.Units != "" {
			vals = append(vals, v.Dimension+"("+v.Units+")")
		} else {
			vals = append(vals, v.Dimension)
		}
	}
	return fmt.Sprintf("domains[%s] values[%s]",
		strings.Join(q.Domains, ","), strings.Join(vals, ","))
}

// Options tunes the engine's search.
type Options struct {
	// Candidate controls automatic transformation instantiation.
	Candidate derive.CandidateOptions
	// WindowSeconds is the interpolation-join window the engine uses when
	// it must relate inexactly matching ordered domains.
	WindowSeconds float64
	// MaxVariants bounds the transformation-closure size kept per dataset.
	MaxVariants int
	// DisableMemo turns off pairwise memoization (for the ablation bench).
	DisableMemo bool
	// Stats supplies observed statistics for physical costing. When nil the
	// engine runs the pure structural search (zero costing overhead and
	// byte-identical plans to the historical heuristic); when set, candidate
	// costs break structural ties and estimates annotate the final plan.
	Stats *stats.Store
}

// DefaultOptions matches the paper's facility data cadences: two-minute
// sensor sampling makes 120 s a natural correspondence window.
func DefaultOptions() Options {
	return Options{
		Candidate:     derive.DefaultCandidateOptions(),
		WindowSeconds: 120,
		MaxVariants:   32,
	}
}

// Engine solves queries against a catalog of dataset schemas.
type Engine struct {
	dict    *semantics.Dictionary
	schemas map[string]semantics.Schema
	opts    Options

	// pairMemo caches CombinePair results across queries, keyed by the
	// participating dataset-name sets (§5.2 memoization).
	pairMemo map[string]*combineResult
	// memoHits counts cache hits within the current Solve (reset at the top
	// of every solve; surfaced via MemoHits and the search trace).
	memoHits int
	// est is the physical-cost estimator, nil unless Options.Stats is set.
	est *estimator
	// lastEpoch is the stats-store epoch the memo tables were built against;
	// an epoch change invalidates them (learned facts re-cost candidates).
	lastEpoch int64
}

// New builds an engine over a catalog of schemas.
func New(dict *semantics.Dictionary, schemas map[string]semantics.Schema, opts Options) *Engine {
	if opts.MaxVariants <= 0 {
		opts.MaxVariants = 32
	}
	if opts.WindowSeconds <= 0 {
		opts.WindowSeconds = 120
	}
	if opts.Candidate.ExplodePeriodSeconds <= 0 {
		opts.Candidate.ExplodePeriodSeconds = 60
	}
	e := &Engine{
		dict:     dict,
		schemas:  schemas,
		opts:     opts,
		pairMemo: map[string]*combineResult{},
	}
	if opts.Stats != nil {
		e.est = newEstimator(opts.Stats)
		e.lastEpoch = opts.Stats.Epoch()
	}
	return e
}

// MemoHits reports how many pairwise combinations were answered from the
// memo table during the most recent Solve.
func (e *Engine) MemoHits() int { return e.memoHits }

// variant is one reachable (plan, schema) state for a dataset or a combined
// group of datasets.
type variant struct {
	node   *pipeline.Node
	schema semantics.Schema
	steps  int
}

// closure expands a variant by repeatedly applying every applicable
// candidate transformation, returning all reachable variants (including the
// input), deduplicated by schema fingerprint and sorted by step count.
func (e *Engine) closure(v variant) []variant {
	seen := map[string]bool{v.schema.Fingerprint(): true}
	out := []variant{v}
	frontier := []variant{v}
	for len(frontier) > 0 && len(out) < e.opts.MaxVariants {
		var next []variant
		for _, cur := range frontier {
			for _, t := range derive.Candidates(cur.schema, e.dict, e.opts.Candidate) {
				ns, err := t.DeriveSchema(cur.schema, e.dict)
				if err != nil {
					continue
				}
				fp := ns.Fingerprint()
				if seen[fp] {
					continue
				}
				seen[fp] = true
				nv := variant{
					node:   pipeline.TransformNode(t, cur.node),
					schema: ns,
					steps:  cur.steps + 1,
				}
				out = append(out, nv)
				next = append(next, nv)
				if len(out) >= e.opts.MaxVariants {
					break
				}
			}
		}
		frontier = next
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].steps < out[j].steps })
	return out
}

// group is a set of source datasets already related into one plan.
type group struct {
	names    []string // sorted source dataset names
	variants []variant
}

func (g *group) key() string { return strings.Join(g.names, ",") }

// combineResult is a memoized pairwise combination outcome. The search is
// two-phase: the logical phase ranks candidates structurally — bucket (join
// precision class + exactly matched dimensions) across pairs, fine (queried
// value dimensions present, join-ready representation, fewer steps) within
// a pair — and the physical phase breaks remaining ties by estimated cost,
// but only when the estimate is informed by real statistics. class keeps
// the precision class so the physical phase can restrict itself to choices
// that cannot change results (natural joins commute; interpolation probe
// direction does not).
type combineResult struct {
	ok      bool
	variant variant
	bucket  int
	fine    int
	class   int
	cost    Cost
}

// Precision classes (§5.2: prefer the highest-precision data available).
// A natural join over purely discrete shared dimensions is exact. An
// interpolation join is approximate. A natural join whose shared dimensions
// include a continuous one (exact equality on a continuous domain) ranks
// last: it is semantically fragile, per §4.3 ordered elements compare by
// distance, not equality.
const (
	classNaturalDiscrete = 3_000_000
	classInterp          = 2_000_000
	classNaturalCont     = 1_000_000
	bucketPerShared      = 1_000
)

// sharedHasContinuous reports whether any shared domain dimension is
// ordered and continuous.
func (e *Engine) sharedHasContinuous(shared []string) bool {
	for _, d := range shared {
		if dim, ok := e.dict.LookupDimension(d); ok && dim.Ordered && dim.Continuous {
			return true
		}
	}
	return false
}

// interpWindow sizes an interpolation-join correspondence window from the
// sampling cadences annotated on the two schemas' datetime domain columns
// (§4.2: each tool records at its own frequency). The window is the
// coarsest cadence involved — any instant of the finer stream then has a
// neighbour of the coarser one within the window. Unknown cadences fall
// back to the engine's configured default.
func (e *Engine) interpWindow(a, b semantics.Schema) float64 {
	w := 0.0
	for _, s := range []semantics.Schema{a, b} {
		for _, c := range s.DomainColumns() {
			entry := s[c]
			if entry.Units == "datetime" && entry.CadenceSeconds > w {
				w = entry.CadenceSeconds
			}
		}
	}
	if w <= 0 {
		return e.opts.WindowSeconds
	}
	return w
}

// variantFine scores how desirable a variant is as a join operand for this
// query: each queried value dimension it already carries is a win (the
// paper derives heat before joining, rates before joining); each structural
// (list/span) domain column left unexploded is a liability; extra steps
// cost a little.
func variantFine(v variant, wanted map[string]bool) int {
	fine := 0
	for dim := range wanted {
		if v.schema.HasValueDimension(dim) {
			fine += 10
		}
	}
	for _, c := range v.schema.DomainColumns() {
		u := v.schema[c].Units
		if u == "timespan" || strings.HasPrefix(u, "list<") {
			fine -= 5
		}
	}
	return fine - v.steps
}

// tryCombine attempts to combine two concrete variants.
func (e *Engine) tryCombine(a, b variant, wanted map[string]bool) (combineResult, bool) {
	shared := a.schema.SharedDomainDimensions(b.schema)
	if len(shared) == 0 {
		return combineResult{}, false
	}
	hasCont := e.sharedHasContinuous(shared)
	mk := func(c derive.Combination, s semantics.Schema, class int) combineResult {
		fine := variantFine(a, wanted) + variantFine(b, wanted)
		if class == classInterp {
			// The left side of an interpolation join is the probe: it
			// keeps its rows and receives interpolated right-side values.
			// Prefer probing with the more finely attributed dataset (more
			// domain dimensions), as the paper does in Figure 5 where the
			// per-job, per-node, per-instant data probes the rack heat.
			fine += len(a.schema.DomainDimensions()) - len(b.schema.DomainDimensions())
		}
		node := pipeline.CombineNode(c, a.node, b.node)
		r := combineResult{
			ok: true,
			variant: variant{
				node:   node,
				schema: s,
				steps:  a.steps + b.steps + 1,
			},
			bucket: class + bucketPerShared*len(shared),
			fine:   fine,
			class:  class,
		}
		if e.est != nil {
			if class != classInterp {
				// Hand the estimator the join-key columns before costing:
				// only the planner knows the schemas, and the NDV-based
				// cardinality estimate needs a column per shared dimension
				// on each side.
				e.est.registerJoin(node, joinKeysFor(a.schema, b.schema, shared))
			}
			r.cost = e.est.cost(node)
		}
		return r
	}
	nj := &derive.NaturalJoin{}
	njSchema, njErr := nj.DeriveSchema(a.schema, b.schema, e.dict)
	if njErr == nil && !hasCont {
		return mk(nj, njSchema, classNaturalDiscrete), true
	}
	ij := &derive.InterpolationJoin{WindowSeconds: e.interpWindow(a.schema, b.schema)}
	if s, err := ij.DeriveSchema(a.schema, b.schema, e.dict); err == nil {
		return mk(ij, s, classInterp), true
	}
	if njErr == nil {
		return mk(nj, njSchema, classNaturalCont), true
	}
	return combineResult{}, false
}

// joinKeysFor picks, per shared domain dimension, the representative column
// each join side aligns on — the NDV lookups behind informed join
// cardinality. Dimensions where either side lacks a domain column are
// skipped (the join cannot align on them anyway).
func joinKeysFor(a, b semantics.Schema, shared []string) []joinKey {
	var keys []joinKey
	for _, dim := range shared {
		la := a.ColumnsOnDimension(semantics.Domain, dim)
		lb := b.ColumnsOnDimension(semantics.Domain, dim)
		if len(la) == 0 || len(lb) == 0 {
			continue
		}
		keys = append(keys, joinKey{left: la[0], right: lb[0]})
	}
	return keys
}

// better orders candidate combinations within one pair of groups: the
// structural heuristic first (precision bucket, then fine preference), and
// only on full structural ties the estimated cost — restricted to natural
// joins, whose operand order cannot change the result multiset. Flipping an
// interpolation join flips which side keeps its rows, so the physical phase
// never touches it. Remaining ties keep the first candidate, preserving the
// historical deterministic order.
func (e *Engine) better(a, b combineResult) bool {
	if !b.ok {
		return a.ok
	}
	if a.bucket != b.bucket {
		return a.bucket > b.bucket
	}
	if a.fine != b.fine {
		return a.fine > b.fine
	}
	if a.class != classInterp && b.class != classInterp &&
		a.cost.Informed && b.cost.Informed {
		return a.cost.Total() < b.cost.Total()
	}
	return false
}

// combinePair finds the best combination between any variant of ga and any
// variant of gb, memoized by the dataset-name sets involved and the queried
// value dimensions.
func (e *Engine) combinePair(ga, gb *group, wanted map[string]bool, wantedKey string) *combineResult {
	memoKey := ga.key() + "|" + gb.key() + "|" + wantedKey
	if !e.opts.DisableMemo {
		if r, ok := e.pairMemo[memoKey]; ok {
			e.memoHits++
			return r
		}
	}
	best := combineResult{}
	for _, va := range ga.variants {
		for _, vb := range gb.variants {
			if r, ok := e.tryCombine(va, vb, wanted); ok && e.better(r, best) {
				best = r
			}
			// Direction matters for interpolation joins (the left side is
			// the probe that keeps its rows); try the reverse too.
			if r, ok := e.tryCombine(vb, va, wanted); ok && e.better(r, best) {
				best = r
			}
		}
	}
	out := &best
	if !e.opts.DisableMemo {
		e.pairMemo[memoKey] = out
	}
	return out
}

// satisfies reports whether a schema answers the query: every queried domain
// dimension appears as a domain, every queried value dimension as a value
// (with convertible units when units were requested).
func (e *Engine) satisfies(s semantics.Schema, q Query) bool {
	for _, d := range q.Domains {
		if !s.HasDomainDimension(d) {
			return false
		}
	}
	for _, v := range q.Values {
		cols := s.ColumnsOnDimension(semantics.Value, v.Dimension)
		if len(cols) == 0 {
			return false
		}
		if v.Units != "" {
			convertible := false
			for _, c := range cols {
				if s[c].Units == v.Units || e.dict.Units.Convertible(s[c].Units, v.Units) {
					convertible = true
					break
				}
			}
			if !convertible {
				return false
			}
		}
	}
	return true
}

// contributes reports whether any variant of the dataset carries one of the
// queried dimensions (as domain or value).
func (e *Engine) contributes(variants []variant, q Query) bool {
	for _, v := range variants {
		for _, d := range q.Domains {
			if v.schema.HasDomainDimension(d) {
				return true
			}
		}
		for _, qv := range q.Values {
			if v.schema.HasValueDimension(qv.Dimension) {
				return true
			}
		}
	}
	return false
}

// finalize picks the best satisfying variant and appends unit conversions
// requested by the query.
func (e *Engine) finalize(g *group, q Query) (*pipeline.Plan, error) {
	for _, v := range g.variants {
		if !e.satisfies(v.schema, q) {
			continue
		}
		node, schema := v.node, v.schema
		for _, qv := range q.Values {
			if qv.Units == "" {
				continue
			}
			cols := schema.ColumnsOnDimension(semantics.Value, qv.Dimension)
			col := ""
			for _, c := range cols {
				if schema[c].Units == qv.Units {
					col = ""
					break
				}
				if e.dict.Units.Convertible(schema[c].Units, qv.Units) && col == "" {
					col = c
				}
			}
			if col != "" {
				t := &derive.ConvertUnits{Column: col, To: qv.Units}
				ns, err := t.DeriveSchema(schema, e.dict)
				if err != nil {
					return nil, err
				}
				node = pipeline.TransformNode(t, node)
				schema = ns
			}
		}
		if e.est != nil {
			e.est.annotate(node)
		}
		return &pipeline.Plan{Root: node}, nil
	}
	return nil, fmt.Errorf("engine: combined result does not satisfy %s", q)
}

// Solve finds a derivation plan answering the query, or an error when no
// sequence of known derivations can relate the requested dimensions. ctx
// bounds the search: a cancellation or expired deadline aborts between
// closure expansions and combination rounds (serving-layer requests carry
// per-request deadlines all the way into the search).
func (e *Engine) Solve(ctx context.Context, q Query) (*pipeline.Plan, error) {
	return e.solve(ctx, q, nil)
}

// SolveTraced is Solve plus an explain trace of the search decisions.
func (e *Engine) SolveTraced(ctx context.Context, q Query) (*pipeline.Plan, *Trace, error) {
	tr := &Trace{}
	plan, err := e.solve(ctx, q, tr)
	return plan, tr, err
}

func (e *Engine) solve(ctx context.Context, q Query, tr *Trace) (*pipeline.Plan, error) {
	// Per-solve state: memo hits count this search only, and memo tables
	// built against an older statistics epoch are stale — learned facts
	// change candidate costs, so cached combination outcomes must re-rank.
	e.memoHits = 0
	if e.est != nil {
		if ep := e.opts.Stats.Epoch(); ep != e.lastEpoch {
			e.pairMemo = map[string]*combineResult{}
			e.est.reset()
			e.lastEpoch = ep
			tr.eventf("stats", "statistics epoch moved to %d: combination memo invalidated", ep)
		}
	}
	plan, err := e.solveInner(ctx, q, tr)
	if err == nil {
		tr.eventf("memo", "pairwise combination memo hits this solve: %d", e.memoHits)
	}
	return plan, err
}

func (e *Engine) solveInner(ctx context.Context, q Query, tr *Trace) (*pipeline.Plan, error) {
	if len(q.Domains) == 0 && len(q.Values) == 0 {
		return nil, fmt.Errorf("engine: empty query")
	}
	// Build the transformation closure of every catalog dataset.
	groups := make([]*group, 0, len(e.schemas))
	names := make([]string, 0, len(e.schemas))
	for n := range e.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		base := variant{node: pipeline.SourceNode(n), schema: e.schemas[n]}
		g := &group{names: []string{n}, variants: e.closure(base)}
		groups = append(groups, g)
		tr.eventf("closure", "closure of %q: %d reachable schema variants", n, len(g.variants))
	}

	// Derivations cannot invent domain dimensions: if a queried domain is
	// nowhere, there is no solution (§5.2).
	for _, d := range q.Domains {
		found := false
		for _, g := range groups {
			for _, v := range g.variants {
				if v.schema.HasDomainDimension(d) {
					found = true
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("engine: no dataset carries queried domain dimension %q", d)
		}
	}

	// Restrict to datasets that can contribute a queried dimension — the
	// paper's DF set. The rest of the catalog stays available: Algorithm 1
	// extends DF one dataset at a time when DF alone cannot be combined
	// (bridging tables like a node/rack layout contribute no queried
	// dimension themselves but relate datasets that do).
	var df, rest []*group
	for _, g := range groups {
		if e.contributes(g.variants, q) {
			df = append(df, g)
		} else {
			rest = append(rest, g)
		}
	}
	// With informed statistics, try cheap bridging datasets first; without,
	// keep catalog order (the sort is stable and uninformed keys are equal).
	if e.est != nil {
		sort.SliceStable(rest, func(i, j int) bool {
			return e.bridgeCost(rest[i]) < e.bridgeCost(rest[j])
		})
	}
	if len(df) == 0 {
		return nil, fmt.Errorf("engine: no dataset contributes to %s", q)
	}
	dfNames := make([]string, len(df))
	for i, g := range df {
		dfNames[i] = g.key()
	}
	tr.eventf("df", "DF (datasets contributing queried dimensions): %s", strings.Join(dfNames, ", "))

	// A single dataset may already satisfy the query.
	for _, g := range df {
		if plan, err := e.finalize(g, q); err == nil {
			tr.eventf("solution", "single dataset %q satisfies the query", g.key())
			return plan, nil
		}
	}

	wanted := map[string]bool{}
	var wantedKeys []string
	for _, v := range q.Values {
		wanted[v.Dimension] = true
		wantedKeys = append(wantedKeys, v.Dimension)
	}
	sort.Strings(wantedKeys)
	wantedKey := strings.Join(wantedKeys, ",")

	// Try DF alone, then extend it one dataset at a time from D - DF, as
	// in Algorithm 1 (a bridging dataset like a node/rack layout may be
	// needed to relate the contributing datasets).
	var lastErr error
	for {
		plan, err := e.agglomerate(ctx, df, wanted, wantedKey, q, tr)
		if err == nil {
			return plan, nil
		}
		lastErr = err
		if len(rest) == 0 {
			tr.eventf("failure", "failed: %v", lastErr)
			return nil, lastErr
		}
		tr.eventf("extend", "DF insufficient (%v); extending with bridging dataset %q", err, rest[0].key())
		df = append(df, rest[0])
		rest = rest[1:]
	}
}

// bridgeCost keys the bridging-extension order: a bridging dataset's
// estimated source cost when informed, +Inf (order-preserving) otherwise.
// The base variant (step 0 of the closure) is the raw source.
func (e *Engine) bridgeCost(g *group) float64 {
	if len(g.variants) == 0 {
		return math.Inf(1)
	}
	c := e.est.cost(g.variants[0].node)
	if !c.Informed {
		return math.Inf(1)
	}
	return c.Total()
}

// pairBetter orders candidate pairs across the agglomeration frontier: the
// precision bucket first (the logical phase), then estimated cost when both
// estimates are informed (the physical phase). Ties keep the earlier pair
// in catalog order, so plans stay deterministic and, absent statistics,
// byte-identical to the historical heuristic.
func (e *Engine) pairBetter(a, b *combineResult) bool {
	if a.bucket != b.bucket {
		return a.bucket > b.bucket
	}
	if a.cost.Informed && b.cost.Informed {
		return a.cost.Total() < b.cost.Total()
	}
	return false
}

// agglomerate greedily combines the best pair of groups — highest
// precision, then cheapest by informed cost estimate — re-runs the
// transformation closure over each combined schema (joins can unlock new
// derivations, e.g. active frequency after joining CPU specs), and stops as
// soon as a combined group satisfies the query. Pair selection is
// strictly-better, so ties resolve to the earliest pair in catalog order,
// keeping plans deterministic.
func (e *Engine) agglomerate(ctx context.Context, initial []*group, wanted map[string]bool, wantedKey string, q Query, tr *Trace) (*pipeline.Plan, error) {
	work := append([]*group(nil), initial...)
	for len(work) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		bestI, bestJ := -1, -1
		var bestRes *combineResult
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				res := e.combinePair(work[i], work[j], wanted, wantedKey)
				if res.ok && (bestRes == nil || e.pairBetter(res, bestRes)) {
					bestI, bestJ, bestRes = i, j, res
				}
			}
		}
		if bestRes == nil {
			return nil, fmt.Errorf("engine: datasets cannot be related: no combinable pair among %d groups", len(work))
		}
		if bestRes.cost.Informed {
			tr.eventf("cost", "picked pair {%s}+{%s}: estimated rows %.0f, cpu %.0f, shuffle %.0f B",
				work[bestI].key(), work[bestJ].key(),
				bestRes.cost.Rows, bestRes.cost.CPU, bestRes.cost.ShuffleBytes)
		}
		tr.eventf("combine", "combine {%s} with {%s} via %s -> domains [%s]",
			work[bestI].key(), work[bestJ].key(), className(bestRes.bucket),
			strings.Join(bestRes.variant.schema.DomainDimensions(), ","))
		merged := &group{
			names:    sortedUnion(work[bestI].names, work[bestJ].names),
			variants: e.closure(bestRes.variant),
		}
		var next []*group
		for k, g := range work {
			if k != bestI && k != bestJ {
				next = append(next, g)
			}
		}
		work = append(next, merged)
		if plan, err := e.finalize(merged, q); err == nil {
			tr.eventf("solution", "combined group {%s} satisfies the query", merged.key())
			return plan, nil
		}
	}
	return nil, fmt.Errorf("engine: no derivation sequence satisfies %s", q)
}

func sortedUnion(a, b []string) []string {
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
