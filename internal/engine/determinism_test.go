package engine

import (
	"context"
	"math/rand"
	"testing"

	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
)

// shuffledSchemas rebuilds the schema map with randomized insertion order,
// perturbing Go's map iteration layout. The engine must not care.
func shuffledSchemas(rng *rand.Rand, src map[string]semantics.Schema) map[string]semantics.Schema {
	names := make([]string, 0, len(src))
	for n := range src {
		names = append(names, n) //sjvet:ignore determinism -- the test shuffles names immediately below; nondeterministic order is the fixture's whole purpose
	}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	out := make(map[string]semantics.Schema, len(src))
	for _, n := range names {
		out[n] = src[n]
	}
	return out
}

// populatedStore builds a statistics store with table cardinalities and an
// observed join, so costed decisions are exercised, not just defaults.
func populatedStore() *stats.Store {
	s := stats.NewStore()
	s.SetTable("job_queue_log", stats.TableStats{Rows: 120})
	s.SetTable("node_layout", stats.TableStats{Rows: 24})
	s.SetTable("rack_temperatures", stats.TableStats{Rows: 4800})
	s.Observe("natural_join|job_queue_log|node_layout",
		stats.DerivationStats{Observations: 3, RowsIn: 900, RowsOut: 870, Micros: 4000})
	return s
}

// TestSolveDeterministicProperty: Solve must return a byte-identical plan
// across 50 runs under shuffled schema-map iteration order — with no stats
// store, with an empty store, and with a populated store (where cost
// tie-breaks are active and must themselves be deterministic).
func TestSolveDeterministicProperty(t *testing.T) {
	cases := []struct {
		name  string
		store func() *stats.Store
	}{
		{"no_store", func() *stats.Store { return nil }},
		{"empty_store", stats.NewStore},
		{"populated_store", populatedStore},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want []byte
			for run := 0; run < 50; run++ {
				opts := DefaultOptions()
				opts.Stats = tc.store()
				e := New(semantics.DefaultDictionary(), shuffledSchemas(rng, fig5Schemas()), opts)
				plan, err := e.Solve(context.Background(), fig5Query())
				if err != nil {
					t.Fatal(err)
				}
				got, err := plan.Encode()
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if string(got) != string(want) {
					t.Fatalf("run %d produced a different plan:\n%s\nvs first run:\n%s", run, got, want)
				}
			}
		})
	}
}
