package engine

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"scrubjay/internal/semantics"
	"scrubjay/internal/stats"
)

// goldenCases is the Fig-5 query family: every solvable query shape the
// engine tests exercise against the case-study catalogs. The golden files
// under testdata/golden pin the exact plan bytes the structural heuristic
// produced before cost-based planning existed; Solve with no statistics
// store must keep producing them byte for byte.
func goldenCases() []struct {
	name    string
	schemas map[string]semantics.Schema
	query   Query
} {
	bridging := map[string]semantics.Schema{
		"cpu_metrics": semantics.NewSchema(
			"cpu", semantics.IDDomain("cpu"),
			"ipc", semantics.ValueEntry("instructions/time_duration", "count/seconds"),
		),
		"rack_power": semantics.NewSchema(
			"rack", semantics.IDDomain("rack"),
			"power", semantics.ValueEntry("power", "watts"),
		),
		"cpu_rack_map": semantics.NewSchema(
			"cpu_id", semantics.IDDomain("cpu"),
			"rack_id", semantics.IDDomain("rack"),
		),
	}
	return []struct {
		name    string
		schemas map[string]semantics.Schema
		query   Query
	}{
		{"fig5", fig5Schemas(), fig5Query()},
		{"fig7", fig7Schemas(), fig7Query()},
		{"single_source", fig5Schemas(), Query{
			Domains: []string{"rack"},
			Values:  []QueryValue{{Dimension: "temperature"}},
		}},
		{"single_transform", fig5Schemas(), Query{
			Domains: []string{"rack"},
			Values:  []QueryValue{{Dimension: "temperature_difference"}},
		}},
		{"unit_conversion", fig5Schemas(), Query{
			Domains: []string{"rack"},
			Values:  []QueryValue{{Dimension: "temperature", Units: "degrees_fahrenheit"}},
		}},
		{"bridging", bridging, Query{
			Domains: []string{"cpu", "rack"},
			Values:  []QueryValue{{Dimension: "instructions/time_duration"}, {Dimension: "power"}},
		}},
	}
}

// TestSolveGoldenPlans pins the no-stats engine to the pre-cost-model
// heuristic: byte-identical plan JSON for the whole query family.
// Regenerate with SJ_UPDATE=1 only for a deliberate plan change.
func TestSolveGoldenPlans(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			e := New(semantics.DefaultDictionary(), tc.schemas, DefaultOptions())
			plan, err := e.Solve(context.Background(), tc.query)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if os.Getenv("SJ_UPDATE") == "1" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with SJ_UPDATE=1 to create): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("plan bytes changed for %s:\ngot:\n%s\nwant:\n%s", tc.name, got, want)
			}
		})
	}
}

// TestSolveEmptyStatsMatchesGolden proves the cost model is inert without
// history: an engine holding an empty (but present) statistics store must
// pick exactly the golden plans — estimates are annotated, but no choice
// changes. Structural identity is compared via the canonical plan hash,
// which excludes estimate annotations by design.
func TestSolveEmptyStatsMatchesGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			cold := New(semantics.DefaultDictionary(), tc.schemas, DefaultOptions())
			coldPlan, err := cold.Solve(context.Background(), tc.query)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Stats = stats.NewStore()
			warm := New(semantics.DefaultDictionary(), tc.schemas, opts)
			warmPlan, err := warm.Solve(context.Background(), tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if coldPlan.Hash() != warmPlan.Hash() {
				t.Errorf("empty stats store changed the plan:\ncold:\n%s\nwarm:\n%s", coldPlan, warmPlan)
			}
			if warmPlan.Root.Estimate == nil {
				t.Error("stats-equipped engine should annotate estimates on the plan root")
			}
		})
	}
}
