package engine

import (
	"sort"

	"scrubjay/internal/pipeline"
	"scrubjay/internal/stats"
)

// Cost is the physical-cost estimate for a candidate plan subtree. Rows is
// the predicted output cardinality; CPU accumulates per-row work across the
// subtree; ShuffleBytes predicts distributed-exchange volume. Informed is
// set only when every source cardinality in the subtree came from real
// statistics — uninformed costs never influence plan choice, so an empty
// store reproduces the structural heuristic exactly.
type Cost struct {
	Rows         float64
	ShuffleBytes float64
	CPU          float64
	Informed     bool
	// inputs names the statistics-store facts the estimate used.
	inputs []string
}

// Total collapses the cost vector into one comparable scalar. Shuffle bytes
// are discounted (wire volume is cheaper than per-row compute, and several
// hundred bytes encode one row), so row work dominates unless exchange
// volume is extreme.
func (c Cost) Total() float64 { return c.CPU + c.Rows + c.ShuffleBytes/256 }

// Conservative defaults used when the store has no evidence. Source rows
// assume a mid-sized table; explode fanouts reflect typical list lengths
// and timespan/cadence ratios in the case-study data.
const (
	defaultSourceRows     = 1000
	defaultDiscreteFanout = 4
	defaultContFanout     = 8
)

// estimator computes Cost for plan subtrees against a statistics store,
// memoized by node identity (candidate nodes are shared across variants and
// across queries via the pair memo, so the cache pays off within one search
// and across a served workload).
type estimator struct {
	store *stats.Store
	memo  map[*pipeline.Node]Cost
	// joinCols remembers, per combine node, the domain columns each side
	// aligns on — registered by the planner (which holds the schemas) and
	// consumed by combineCost's NDV-based output-cardinality estimate.
	// Combine nodes outlive individual searches via the pair memo, so this
	// table survives reset().
	joinCols map[*pipeline.Node][]joinKey
}

// joinKey pairs the representative domain columns the two join sides align
// on for one shared dimension.
type joinKey struct {
	left, right string
}

func newEstimator(store *stats.Store) *estimator {
	return &estimator{store: store, memo: map[*pipeline.Node]Cost{}, joinCols: map[*pipeline.Node][]joinKey{}}
}

// registerJoin records the join-key columns of a combine node before its
// first cost() call. Safe to call for nodes the estimator never costs.
func (e *estimator) registerJoin(n *pipeline.Node, keys []joinKey) {
	if len(keys) > 0 {
		e.joinCols[n] = keys
	}
}

func (e *estimator) reset() {
	e.memo = map[*pipeline.Node]Cost{}
}

// cost estimates a plan subtree.
func (e *estimator) cost(n *pipeline.Node) Cost {
	if c, ok := e.memo[n]; ok {
		return c
	}
	c := e.compute(n)
	e.memo[n] = c
	return c
}

func (e *estimator) compute(n *pipeline.Node) Cost {
	switch n.Kind {
	case pipeline.KindSource:
		if t, ok := e.store.Table(n.Dataset); ok {
			return Cost{
				Rows:     float64(t.Rows),
				Informed: true,
				inputs:   []string{"table:" + n.Dataset},
			}
		}
		return Cost{Rows: defaultSourceRows}
	case pipeline.KindCombine:
		return e.combineCost(n)
	default:
		return e.transformCost(n)
	}
}

// transformCost models a one-input derivation: output rows scale by a
// selectivity (observed when the store has seen this derivation over these
// sources, a per-derivation default otherwise), CPU charges one unit per
// input row (observed microseconds per row when known).
func (e *estimator) transformCost(n *pipeline.Node) Cost {
	in := e.cost(n.Inputs[0])
	sel := defaultSelectivity(n.Derivation)
	cpuPerRow, bytesPerRow := 1.0, 0.0
	c := Cost{Informed: in.Informed, inputs: in.inputs}
	key := stats.NodeKey(n)
	if d, ok := e.store.Derivation(key); ok {
		used := false
		if s, ok := d.Selectivity(); ok {
			sel, used = s, true
		}
		if m, ok := d.MicrosPerRow(); ok {
			cpuPerRow, used = m, true
		}
		if b, ok := d.BytesPerRow(); ok {
			bytesPerRow, used = b, true
		}
		if used {
			c.inputs = append(append([]string(nil), c.inputs...), "deriv:"+key)
		}
	}
	c.Rows = in.Rows * sel
	c.CPU = in.CPU + in.Rows*cpuPerRow
	c.ShuffleBytes = in.ShuffleBytes + in.Rows*bytesPerRow
	return c
}

// combineCost models a two-input join: both sides shuffle to align on the
// shared dimensions, CPU charges the rows flowing through the exchange, and
// output cardinality follows observed selectivity when available. Without
// evidence a natural join is assumed row-preserving over the union of
// inputs and an interpolation join keeps its probe (left) rows — matching
// how the derivations actually behave on well-correlated data.
func (e *estimator) combineCost(n *pipeline.Node) Cost {
	l, r := e.cost(n.Inputs[0]), e.cost(n.Inputs[1])
	inRows := l.Rows + r.Rows
	outRows := inRows
	if n.Derivation == "interpolation_join" {
		outRows = l.Rows
	}
	bytesPerRow := 64.0
	c := Cost{Informed: l.Informed && r.Informed}
	c.inputs = append(append([]string(nil), l.inputs...), r.inputs...)
	key := stats.NodeKey(n)
	selObserved := false
	if d, ok := e.store.Derivation(key); ok {
		used := false
		if s, ok := d.Selectivity(); ok {
			outRows, used, selObserved = inRows*s, true, true
		}
		if b, ok := d.BytesPerRow(); ok {
			bytesPerRow, used = b, true
		}
		if used {
			c.inputs = append(c.inputs, "deriv:"+key)
		}
	}
	// Without an observed selectivity for this exact join, fall back to the
	// textbook distinct-value estimate when the store has NDV facts for the
	// join keys: |L ⋈ R| ≈ |L|·|R| / Π max(ndv_L, ndv_R). Observed behavior
	// of the real derivation always outranks it.
	if !selObserved && n.Derivation == "natural_join" && c.Informed {
		if rows, facts, ok := e.ndvJoinRows(n, l, r); ok {
			outRows = rows
			c.inputs = append(c.inputs, facts...)
		}
	}
	c.Rows = outRows
	c.CPU = l.CPU + r.CPU + inRows
	c.ShuffleBytes = l.ShuffleBytes + r.ShuffleBytes + inRows*bytesPerRow
	return c
}

// ndvJoinRows estimates a natural join's output cardinality from join-key
// distinct counts. It applies only when both subtrees draw from a single
// source dataset (so table-level NDVs describe the rows actually arriving at
// the join) and the store has a positive NDV for every join-key column on
// both sides — partial evidence would skew the product. Returns the
// estimate plus the "ndv:dataset.column" facts it consumed.
func (e *estimator) ndvJoinRows(n *pipeline.Node, l, r Cost) (float64, []string, bool) {
	keys := e.joinCols[n]
	if len(keys) == 0 || len(n.Inputs) != 2 {
		return 0, nil, false
	}
	lname, lt, ok := e.singleSourceTable(n.Inputs[0])
	if !ok {
		return 0, nil, false
	}
	rname, rt, ok := e.singleSourceTable(n.Inputs[1])
	if !ok {
		return 0, nil, false
	}
	denom := 1.0
	var facts []string
	for _, k := range keys {
		ndvL := lt.Columns[k.left].NDV
		ndvR := rt.Columns[k.right].NDV
		if ndvL <= 0 || ndvR <= 0 {
			return 0, nil, false
		}
		denom *= float64(max(ndvL, ndvR))
		facts = append(facts, "ndv:"+lname+"."+k.left, "ndv:"+rname+"."+k.right)
	}
	return l.Rows * r.Rows / denom, facts, true
}

// singleSourceTable resolves a subtree to its table statistics when exactly
// one source dataset feeds it and the store has seen that dataset.
func (e *estimator) singleSourceTable(n *pipeline.Node) (string, stats.TableStats, bool) {
	srcs := stats.NodeSources(n)
	if len(srcs) != 1 {
		return "", stats.TableStats{}, false
	}
	t, ok := e.store.Table(srcs[0])
	if !ok {
		return "", stats.TableStats{}, false
	}
	return srcs[0], t, true
}

// defaultSelectivity is the uninformed rows-out-per-row-in guess for a
// transform. Explodes fan out; everything else is row-preserving.
func defaultSelectivity(derivation string) float64 {
	switch derivation {
	case "explode_discrete":
		return defaultDiscreteFanout
	case "explode_continuous":
		return defaultContFanout
	default:
		return 1.0
	}
}

// annotate stamps the estimator's predictions onto every non-source step of
// a finished plan, so executed traces and -explain-json can show estimated
// next to actual cost. Source nodes carry their table-cardinality estimate
// too — it is the evidence everything above builds on.
func (e *estimator) annotate(n *pipeline.Node) {
	if n == nil {
		return
	}
	for _, in := range n.Inputs {
		e.annotate(in)
	}
	c := e.cost(n)
	n.Estimate = &pipeline.StepEstimate{
		Rows:         int64(c.Rows),
		CPU:          int64(c.CPU),
		ShuffleBytes: int64(c.ShuffleBytes),
		Informed:     c.Informed,
		StatsInputs:  dedupSorted(c.inputs),
	}
}

// CostPlan costs an existing plan against a statistics store: every node
// gets a StepEstimate annotation and the root's is returned (nil for an
// empty plan). Solve annotates its own plans automatically; this entry
// point lets benchmarks and tooling compare alternative plan shapes under
// one set of statistics.
func CostPlan(plan *pipeline.Plan, store *stats.Store) *pipeline.StepEstimate {
	if plan == nil || plan.Root == nil {
		return nil
	}
	newEstimator(store).annotate(plan.Root)
	return plan.Root.Estimate
}

func dedupSorted(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
