package engine

import (
	"fmt"
	"strings"

	"scrubjay/internal/obs"
)

// Trace records the derivation engine's search decisions for one query —
// which datasets were deemed relevant, which pairs were combinable at what
// precision, and why the returned plan won. It is the engine's "explain"
// output, surfaced as text by `scrubjay query -explain`, as JSON by
// -explain-json, and as events on the plan-search span of a query trace.
type Trace struct {
	Events []TraceEvent `json:"events"`
}

// TraceEvent is one structured search decision: Kind classifies the
// decision (closure, df, combine, solution, extend, failure), Text is the
// human-readable rendering String() emits.
type TraceEvent struct {
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// eventf appends a kinded event. Nil traces discard (tracing disabled).
func (t *Trace) eventf(kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, TraceEvent{Kind: kind, Text: fmt.Sprintf(format, args...)})
}

// addf appends an unclassified note event. Nil traces discard.
func (t *Trace) addf(format string, args ...any) {
	t.eventf("note", format, args...)
}

// String renders the trace one event per line.
func (t *Trace) String() string {
	if t == nil || len(t.Events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString(e.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

// AttachTo mirrors the trace's events onto a span (the query trace's
// plan-search span), preserving order and kinds. Nil traces and nil spans
// are both no-ops.
func (t *Trace) AttachTo(sp *obs.Span) {
	if t == nil {
		return
	}
	for _, e := range t.Events {
		sp.Event(e.Kind, e.Text, nil)
	}
}

// className names a combination precision class for traces.
func className(bucket int) string {
	switch {
	case bucket >= classNaturalDiscrete:
		return "natural join (exact)"
	case bucket >= classInterp:
		return "interpolation join"
	default:
		return "natural join over a continuous dimension (low precision)"
	}
}
