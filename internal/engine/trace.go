package engine

import (
	"fmt"
	"strings"
)

// Trace records the derivation engine's search decisions for one query —
// which datasets were deemed relevant, which pairs were combinable at what
// precision, and why the returned plan won. It is the engine's "explain"
// output, surfaced by `scrubjay query -explain`.
type Trace struct {
	Events []string
}

func (t *Trace) addf(format string, args ...any) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, fmt.Sprintf(format, args...))
}

// String renders the trace one event per line.
func (t *Trace) String() string {
	if t == nil || len(t.Events) == 0 {
		return ""
	}
	return strings.Join(t.Events, "\n") + "\n"
}

// className names a combination precision class for traces.
func className(bucket int) string {
	switch {
	case bucket >= classNaturalDiscrete:
		return "natural join (exact)"
	case bucket >= classInterp:
		return "interpolation join"
	default:
		return "natural join over a continuous dimension (low precision)"
	}
}
