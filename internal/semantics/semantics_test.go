package semantics

import (
	"encoding/json"
	"testing"
)

func TestRelationTypeRoundTrip(t *testing.T) {
	for _, r := range []RelationType{Domain, Value} {
		got, err := RelationFromString(r.String())
		if err != nil || got != r {
			t.Errorf("relation round trip %v: %v %v", r, got, err)
		}
	}
	if _, err := RelationFromString("middle"); err == nil {
		t.Error("bad relation should fail")
	}
	data, err := json.Marshal(Value)
	if err != nil || string(data) != `"value"` {
		t.Errorf("marshal relation: %s %v", data, err)
	}
	var r RelationType
	if err := json.Unmarshal([]byte(`"domain"`), &r); err != nil || r != Domain {
		t.Errorf("unmarshal relation: %v %v", r, err)
	}
	if err := json.Unmarshal([]byte(`"wat"`), &r); err == nil {
		t.Error("bad relation JSON should fail")
	}
	if err := json.Unmarshal([]byte(`5`), &r); err == nil {
		t.Error("numeric relation JSON should fail")
	}
}

func TestRegisterDimension(t *testing.T) {
	d := NewDictionary(nil)
	dim := Dimension{Name: "time", Ordered: true, Continuous: true}
	if err := d.RegisterDimension(dim); err != nil {
		t.Fatal(err)
	}
	// Identical re-registration OK.
	if err := d.RegisterDimension(dim); err != nil {
		t.Errorf("identical re-registration: %v", err)
	}
	// Homonym fails.
	if err := d.RegisterDimension(Dimension{Name: "time", Ordered: false}); err == nil {
		t.Error("homonym should fail")
	}
	if err := d.RegisterDimension(Dimension{Name: ""}); err == nil {
		t.Error("empty name should fail")
	}
	if err := d.RegisterDimension(Dimension{Name: "a/b"}); err == nil {
		t.Error("composite syntax should fail")
	}
}

func TestLookupDimensionComposites(t *testing.T) {
	d := DefaultDictionary()
	if dim, ok := d.LookupDimension("time"); !ok || !dim.Ordered || !dim.Continuous {
		t.Errorf("time = %+v %v", dim, ok)
	}
	if dim, ok := d.LookupDimension("compute_node"); !ok || dim.Ordered || dim.Continuous {
		t.Errorf("compute_node = %+v %v", dim, ok)
	}
	// Rate dimension: ordered (numerator ordered), continuous.
	rate, ok := d.LookupDimension("instructions/time_duration")
	if !ok || !rate.Ordered || !rate.Continuous {
		t.Errorf("rate dim = %+v %v", rate, ok)
	}
	// List dimension: unordered, discrete.
	l, ok := d.LookupDimension("list<compute_node>")
	if !ok || l.Ordered || l.Continuous {
		t.Errorf("list dim = %+v %v", l, ok)
	}
	if _, ok := d.LookupDimension("list<bogus>"); ok {
		t.Error("list of unknown dim should fail")
	}
	if _, ok := d.LookupDimension("bogus/time"); ok {
		t.Error("rate with unknown dim should fail")
	}
	if _, ok := d.LookupDimension("nope"); ok {
		t.Error("unknown dim should fail")
	}
}

func TestValidateEntry(t *testing.T) {
	d := DefaultDictionary()
	good := []struct {
		col string
		e   Entry
	}{
		{"timestamp", TimeDomain()},
		{"timespan", SpanDomain()},
		{"node_id", IDDomain("compute_node")},
		{"nodelist", IDListDomain("compute_node")},
		{"node_temp", ValueEntry("temperature", "degrees_celsius")},
		{"ipc", ValueEntry("instructions/time_duration", "instructions/seconds")},
		{"heat", ValueEntry("temperature_difference", "delta_celsius")},
	}
	for _, g := range good {
		if err := d.ValidateEntry(g.col, g.e); err != nil {
			t.Errorf("ValidateEntry(%q, %v): %v", g.col, g.e, err)
		}
	}
	bad := []struct {
		col string
		e   Entry
	}{
		{"", TimeDomain()},
		{"x", DomainEntry("nope", "identifier")},
		{"x", DomainEntry("time", "furlongs")},
		{"x", ValueEntry("temperature", "watts")},
	}
	for _, b := range bad {
		if err := d.ValidateEntry(b.col, b.e); err == nil {
			t.Errorf("ValidateEntry(%q, %v) should fail", b.col, b.e)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := NewSchema(
		"timestamp", TimeDomain(),
		"node_id", IDDomain("compute_node"),
		"node_temp", ValueEntry("temperature", "degrees_celsius"),
		"node_power", ValueEntry("power", "watts"),
	)
	wantCols := []string{"node_id", "node_power", "node_temp", "timestamp"}
	for i, c := range s.Columns() {
		if c != wantCols[i] {
			t.Fatalf("Columns() = %v", s.Columns())
		}
	}
	if got := s.DomainColumns(); len(got) != 2 || got[0] != "node_id" || got[1] != "timestamp" {
		t.Errorf("DomainColumns = %v", got)
	}
	if got := s.ValueColumns(); len(got) != 2 {
		t.Errorf("ValueColumns = %v", got)
	}
	if got := s.DomainDimensions(); len(got) != 2 || got[0] != "compute_node" || got[1] != "time" {
		t.Errorf("DomainDimensions = %v", got)
	}
	if got := s.ValueDimensions(); len(got) != 2 || got[0] != "power" || got[1] != "temperature" {
		t.Errorf("ValueDimensions = %v", got)
	}
	if got := s.ColumnsOnDimension(Value, "power"); len(got) != 1 || got[0] != "node_power" {
		t.Errorf("ColumnsOnDimension = %v", got)
	}
	if !s.HasDomainDimension("time") || s.HasDomainDimension("power") {
		t.Error("HasDomainDimension")
	}
	if !s.HasValueDimension("power") || s.HasValueDimension("time") {
		t.Error("HasValueDimension")
	}
}

func TestSchemaSharedAndMerge(t *testing.T) {
	a := NewSchema(
		"timestamp", TimeDomain(),
		"node_id", IDDomain("compute_node"),
		"temp", ValueEntry("temperature", "degrees_celsius"),
	)
	b := NewSchema(
		"node", IDDomain("compute_node"),
		"rack", IDDomain("rack"),
	)
	shared := a.SharedDomainDimensions(b)
	if len(shared) != 1 || shared[0] != "compute_node" {
		t.Errorf("SharedDomainDimensions = %v", shared)
	}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 5 {
		t.Errorf("merged schema size = %d", len(m))
	}
	// Conflict: same column different entry.
	c := NewSchema("timestamp", IDDomain("compute_node"))
	if _, err := a.Merge(c); err == nil {
		t.Error("conflicting merge should fail")
	}
	// Same column identical entry is fine.
	d := NewSchema("timestamp", TimeDomain())
	if _, err := a.Merge(d); err != nil {
		t.Errorf("identical-column merge: %v", err)
	}
}

func TestSchemaEqualCloneFingerprint(t *testing.T) {
	a := NewSchema("x", TimeDomain(), "y", ValueEntry("power", "watts"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be equal")
	}
	b["z"] = IDDomain("rack")
	if a.Equal(b) {
		t.Error("modified clone should differ")
	}
	if a.Equal(NewSchema("x", TimeDomain(), "y", ValueEntry("power", "kilowatts"))) {
		t.Error("different units should differ")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprints should differ")
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Error("fingerprint should be deterministic")
	}
}

func TestSchemaValidate(t *testing.T) {
	d := DefaultDictionary()
	ok := NewSchema("t", TimeDomain(), "p", ValueEntry("power", "watts"))
	if err := ok.Validate(d); err != nil {
		t.Errorf("valid schema: %v", err)
	}
	bad := NewSchema("t", DomainEntry("bogus", "identifier"))
	if err := bad.Validate(d); err == nil {
		t.Error("invalid schema should fail")
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := NewSchema(
		"timestamp", TimeDomain(),
		"node_id", IDDomain("compute_node"),
		"temp", ValueEntry("temperature", "degrees_celsius"),
	)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schema
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip: %v != %v", got, s)
	}
}

func TestNewSchemaPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd", func() { NewSchema("a") })
	assertPanics("non-string", func() { NewSchema(1, TimeDomain()) })
	assertPanics("non-entry", func() { NewSchema("a", 2) })
}

func TestSchemaString(t *testing.T) {
	s := NewSchema("t", TimeDomain())
	want := "{t: domain:time(datetime)}"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
}

func TestDimensionNames(t *testing.T) {
	d := DefaultDictionary()
	names := d.DimensionNames()
	if len(names) < 10 {
		t.Fatalf("expected many default dimensions, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}
