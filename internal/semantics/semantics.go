// Package semantics implements ScrubJay's data-semantics layer (§4.2 of the
// paper). Every column of a dataset is annotated with a semantic Entry: a
// relation type (domain or value), a dimension, and units. A Dictionary
// holds the vocabulary of dimensions and units, forbidding synonyms and
// homonyms, and the derivation engine reasons over Schemas (column→Entry
// maps) without touching data.
package semantics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"scrubjay/internal/units"
)

// RelationType says whether a column describes the resource being measured
// (a domain: node id, rack, point in time) or the measurement itself
// (a value: temperature, instruction rate).
type RelationType uint8

// The two relation types.
const (
	Domain RelationType = iota
	Value
)

// String returns the annotation keyword for the relation type.
func (r RelationType) String() string {
	if r == Domain {
		return "domain"
	}
	return "value"
}

// RelationFromString parses "domain" or "value".
func RelationFromString(s string) (RelationType, error) {
	switch s {
	case "domain":
		return Domain, nil
	case "value":
		return Value, nil
	default:
		return Domain, fmt.Errorf("semantics: unknown relation type %q", s)
	}
}

// MarshalJSON encodes the relation type as its keyword.
func (r RelationType) MarshalJSON() ([]byte, error) { return json.Marshal(r.String()) }

// UnmarshalJSON decodes the keyword form.
func (r *RelationType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := RelationFromString(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// Dimension describes an aspect along which data may be defined: physical
// (time, temperature) or conceptual (the identity of a compute node).
type Dimension struct {
	// Name is the canonical dimension name; unique within a dictionary.
	Name string `json:"name"`
	// Ordered dimensions admit comparison and distance (time, temperature);
	// unordered dimensions admit only equality (node ids).
	Ordered bool `json:"ordered"`
	// Continuous dimensions may be halved indefinitely (time, temperature);
	// discrete dimensions may not (event counts, identifiers).
	Continuous bool `json:"continuous"`
}

// Entry is the semantic annotation of one dataset column.
type Entry struct {
	Relation  RelationType `json:"relation"`
	Dimension string       `json:"dimension"`
	Units     string       `json:"units"`
	// CadenceSeconds, when positive on a datetime domain column, records
	// the sampling interval of the recordings (the paper stresses that
	// every tool collects at its own frequency). The derivation engine
	// uses it to size interpolation-join correspondence windows.
	CadenceSeconds float64 `json:"cadence_seconds,omitempty"`
}

// String renders the entry compactly for plans and error messages.
func (e Entry) String() string {
	if e.CadenceSeconds > 0 {
		return fmt.Sprintf("%s:%s(%s)@%gs", e.Relation, e.Dimension, e.Units, e.CadenceSeconds)
	}
	return fmt.Sprintf("%s:%s(%s)", e.Relation, e.Dimension, e.Units)
}

// WithCadence returns a copy of the entry annotated with a sampling cadence.
func (e Entry) WithCadence(seconds float64) Entry {
	e.CadenceSeconds = seconds
	return e
}

// Dictionary is the semantic dictionary: the vocabulary of dimensions plus
// the unit dictionary. No synonyms or homonyms may exist (§4.2).
type Dictionary struct {
	dims  map[string]Dimension
	Units *units.Dict
}

// NewDictionary returns an empty dictionary backed by the given unit
// dictionary (nil means an empty unit dictionary).
func NewDictionary(u *units.Dict) *Dictionary {
	if u == nil {
		u = units.NewDict()
	}
	return &Dictionary{dims: make(map[string]Dimension), Units: u}
}

// RegisterDimension adds a dimension. Re-registering an identical definition
// is a no-op; a conflicting redefinition (homonym) is an error.
func (d *Dictionary) RegisterDimension(dim Dimension) error {
	if dim.Name == "" {
		return fmt.Errorf("semantics: dimension name must be non-empty")
	}
	if strings.ContainsAny(dim.Name, "/<>") {
		return fmt.Errorf("semantics: dimension name %q may not contain composite syntax", dim.Name)
	}
	if prev, ok := d.dims[dim.Name]; ok {
		if prev != dim {
			return fmt.Errorf("semantics: homonym: dimension %q already registered with different properties", dim.Name)
		}
		return nil
	}
	d.dims[dim.Name] = dim
	return nil
}

// MustRegisterDimension is RegisterDimension but panics on error.
func (d *Dictionary) MustRegisterDimension(dim Dimension) {
	if err := d.RegisterDimension(dim); err != nil {
		panic(err)
	}
}

// LookupDimension resolves a dimension name, including the structural
// composites "num/den" (rates: ordered iff the numerator is ordered,
// continuous) and "list<elem>" (unordered, discrete).
func (d *Dictionary) LookupDimension(name string) (Dimension, bool) {
	if dim, ok := d.dims[name]; ok {
		return dim, true
	}
	if elem, ok := units.IsList(name); ok {
		if _, ok := d.LookupDimension(elem); !ok {
			return Dimension{}, false
		}
		return Dimension{Name: name, Ordered: false, Continuous: false}, true
	}
	if i := strings.LastIndex(name, "/"); i > 0 {
		num, ok1 := d.LookupDimension(name[:i])
		_, ok2 := d.LookupDimension(name[i+1:])
		if ok1 && ok2 {
			return Dimension{Name: name, Ordered: num.Ordered, Continuous: true}, true
		}
	}
	return Dimension{}, false
}

// DimensionNames returns the registered (non-composite) dimension names,
// sorted.
func (d *Dictionary) DimensionNames() []string {
	names := make([]string, 0, len(d.dims))
	for n := range d.dims {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ValidateEntry checks that an entry's dimension and units exist in the
// dictionary and that the units are usable on the dimension: the unit's own
// dimension must equal the entry's dimension, or be the "identity" wildcard
// (identifiers label any discrete dimension), or belong to the time family
// (datetime/timespan units annotate the "time" dimension).
func (d *Dictionary) ValidateEntry(col string, e Entry) error {
	if col == "" {
		return fmt.Errorf("semantics: empty column name")
	}
	if _, ok := d.LookupDimension(e.Dimension); !ok {
		return fmt.Errorf("semantics: column %q: unknown dimension %q", col, e.Dimension)
	}
	udim, err := d.Units.Dimension(e.Units)
	if err != nil {
		return fmt.Errorf("semantics: column %q: %w", col, err)
	}
	if compatibleDims(e.Dimension, udim) {
		return nil
	}
	return fmt.Errorf("semantics: column %q: units %q (dimension %s) are not valid on dimension %q",
		col, e.Units, udim, e.Dimension)
}

// compatibleDims reports whether units of dimension udim may annotate a
// column of dimension dim.
func compatibleDims(dim, udim string) bool {
	if dim == udim {
		return true
	}
	// Identifier units label any dimension (conceptual identities), and
	// plain counts count events on any dimension (instruction counts,
	// memory reads, APERF cycles, ...).
	if udim == "identity" || udim == "list<identity>" || udim == "count" {
		return true
	}
	// Time instants and intervals both live on the "time" dimension.
	if dim == "time" && (udim == "time" || udim == "time_interval") {
		return true
	}
	// Active frequency is measured in frequency units.
	if dim == "active_frequency" && udim == "frequency" {
		return true
	}
	// Composite dimensions match componentwise (e.g. instructions/time
	// units on an instructions/time_duration dimension when the numerator
	// matches and denominators are the duration of the same family).
	if i := strings.LastIndex(dim, "/"); i > 0 {
		if j := strings.LastIndex(udim, "/"); j > 0 {
			return compatibleDims(dim[:i], udim[:j]) && compatibleDims(dim[i+1:], udim[j+1:])
		}
	}
	if de, ok := units.IsList(dim); ok {
		if ue, ok := units.IsList(udim); ok {
			return compatibleDims(de, ue)
		}
	}
	return false
}
