package semantics

import "scrubjay/internal/units"

// DefaultDictionary returns the dictionary of dimensions and units that ship
// with ScrubJay, covering the paper's case-study data sources: scheduler
// logs, facility sensors, node/CPU counters, and static layout tables.
func DefaultDictionary() *Dictionary {
	d := NewDictionary(units.Default())
	for _, dim := range []Dimension{
		// Physical, ordered, continuous dimensions.
		{Name: "time", Ordered: true, Continuous: true},
		{Name: "time_duration", Ordered: true, Continuous: true},
		{Name: "time_interval", Ordered: true, Continuous: true},
		{Name: "temperature", Ordered: true, Continuous: true},
		{Name: "temperature_difference", Ordered: true, Continuous: true},
		{Name: "power", Ordered: true, Continuous: true},
		{Name: "energy", Ordered: true, Continuous: true},
		{Name: "current", Ordered: true, Continuous: true},
		{Name: "fan_speed", Ordered: true, Continuous: true},
		{Name: "frequency", Ordered: true, Continuous: true},
		// The measured (throttled) CPU frequency derived from APERF/MPERF
		// is semantically distinct from the static base frequency, so a
		// query can name it directly (§7.3).
		{Name: "active_frequency", Ordered: true, Continuous: true},
		{Name: "humidity", Ordered: true, Continuous: true},
		{Name: "fraction", Ordered: true, Continuous: true},

		// Ordered, discrete dimensions (event counts). APERF/MPERF get their
		// own dimensions so the active-frequency derivation (§7.3) can
		// identify them semantically rather than by column name.
		{Name: "count", Ordered: true, Continuous: false},
		{Name: "instructions", Ordered: true, Continuous: false},
		{Name: "cycles", Ordered: true, Continuous: false},
		{Name: "aperf_cycles", Ordered: true, Continuous: false},
		{Name: "mperf_cycles", Ordered: true, Continuous: false},
		{Name: "operations", Ordered: true, Continuous: false},
		{Name: "memory_reads", Ordered: true, Continuous: false},
		{Name: "memory_writes", Ordered: true, Continuous: false},
		{Name: "information", Ordered: true, Continuous: false},

		// Unordered, discrete identity dimensions — the HPC resources from
		// Figure 1 of the paper.
		{Name: "identity", Ordered: false, Continuous: false},
		{Name: "compute_node", Ordered: false, Continuous: false},
		{Name: "rack", Ordered: false, Continuous: false},
		{Name: "rack_location", Ordered: false, Continuous: false},
		{Name: "rack_aisle", Ordered: false, Continuous: false},
		{Name: "cpu", Ordered: false, Continuous: false},
		{Name: "cpu_socket", Ordered: false, Continuous: false},
		{Name: "job", Ordered: false, Continuous: false},
		{Name: "application", Ordered: false, Continuous: false},
		{Name: "user", Ordered: false, Continuous: false},
		{Name: "cluster", Ordered: false, Continuous: false},
		{Name: "filesystem", Ordered: false, Continuous: false},
		{Name: "network_link", Ordered: false, Continuous: false},
	} {
		d.MustRegisterDimension(dim)
	}
	return d
}

// Convenience constructors for the most common entry shapes.

// DomainEntry builds a domain entry.
func DomainEntry(dim, units string) Entry {
	return Entry{Relation: Domain, Dimension: dim, Units: units}
}

// ValueEntry builds a value entry.
func ValueEntry(dim, units string) Entry {
	return Entry{Relation: Value, Dimension: dim, Units: units}
}

// TimeDomain is the standard entry for a timestamp domain column.
func TimeDomain() Entry { return DomainEntry("time", "datetime") }

// SpanDomain is the standard entry for a timespan domain column.
func SpanDomain() Entry { return DomainEntry("time", "timespan") }

// IDDomain is the standard entry for an identifier domain column on dim.
func IDDomain(dim string) Entry { return DomainEntry(dim, "identifier") }

// IDListDomain is the standard entry for a list-of-identifiers domain column.
func IDListDomain(dim string) Entry {
	return DomainEntry(dim, units.ListOf("identifier"))
}
