package semantics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Schema maps dataset column names to their semantic entries. Schemas are
// the sole input to the derivation engine's search: derivations compute
// derived schemas without touching data (§5.2).
type Schema map[string]Entry

// NewSchema builds a schema from alternating column name / Entry pairs.
func NewSchema(pairs ...any) Schema {
	if len(pairs)%2 != 0 {
		panic("semantics.NewSchema: odd number of arguments")
	}
	s := make(Schema, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("semantics.NewSchema: column name must be a string")
		}
		e, ok := pairs[i+1].(Entry)
		if !ok {
			panic("semantics.NewSchema: entry must be a semantics.Entry")
		}
		s[name] = e
	}
	return s
}

// Clone returns an independent copy of the schema.
func (s Schema) Clone() Schema {
	c := make(Schema, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Columns returns all column names, sorted.
func (s Schema) Columns() []string {
	cols := make([]string, 0, len(s))
	for c := range s {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// ColumnsWhere returns the sorted columns whose entry satisfies pred.
func (s Schema) ColumnsWhere(pred func(Entry) bool) []string {
	var cols []string
	for c, e := range s {
		if pred(e) {
			cols = append(cols, c)
		}
	}
	sort.Strings(cols)
	return cols
}

// DomainColumns returns the sorted domain columns.
func (s Schema) DomainColumns() []string {
	return s.ColumnsWhere(func(e Entry) bool { return e.Relation == Domain })
}

// ValueColumns returns the sorted value columns.
func (s Schema) ValueColumns() []string {
	return s.ColumnsWhere(func(e Entry) bool { return e.Relation == Value })
}

// DomainDimensions returns the sorted set of dimensions covered by domain
// columns.
func (s Schema) DomainDimensions() []string {
	set := map[string]bool{}
	for _, e := range s {
		if e.Relation == Domain {
			set[e.Dimension] = true
		}
	}
	dims := make([]string, 0, len(set))
	for d := range set {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	return dims
}

// ValueDimensions returns the sorted set of dimensions covered by value
// columns.
func (s Schema) ValueDimensions() []string {
	set := map[string]bool{}
	for _, e := range s {
		if e.Relation == Value {
			set[e.Dimension] = true
		}
	}
	dims := make([]string, 0, len(set))
	for d := range set {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	return dims
}

// ColumnsOnDimension returns the sorted columns with the given relation type
// and dimension.
func (s Schema) ColumnsOnDimension(rel RelationType, dim string) []string {
	return s.ColumnsWhere(func(e Entry) bool {
		return e.Relation == rel && e.Dimension == dim
	})
}

// HasDomainDimension reports whether any domain column lies on dim.
func (s Schema) HasDomainDimension(dim string) bool {
	for _, e := range s {
		if e.Relation == Domain && e.Dimension == dim {
			return true
		}
	}
	return false
}

// HasValueDimension reports whether any value column lies on dim.
func (s Schema) HasValueDimension(dim string) bool {
	for _, e := range s {
		if e.Relation == Value && e.Dimension == dim {
			return true
		}
	}
	return false
}

// SharedDomainDimensions returns the sorted dimensions that appear as
// domains in both schemas — the precondition for a combination (§4.3).
func (s Schema) SharedDomainDimensions(o Schema) []string {
	mine := map[string]bool{}
	for _, e := range s {
		if e.Relation == Domain {
			mine[e.Dimension] = true
		}
	}
	var shared []string
	seen := map[string]bool{}
	for _, e := range o {
		if e.Relation == Domain && mine[e.Dimension] && !seen[e.Dimension] {
			shared = append(shared, e.Dimension)
			seen[e.Dimension] = true
		}
	}
	sort.Strings(shared)
	return shared
}

// Merge combines two schemas for a join result. Columns present in both must
// carry identical entries; otherwise the merge fails (a homonym across
// datasets).
func (s Schema) Merge(o Schema) (Schema, error) {
	m := s.Clone()
	for c, e := range o {
		if prev, ok := m[c]; ok && prev != e {
			return nil, fmt.Errorf("semantics: column %q has conflicting entries %s vs %s", c, prev, e)
		}
		m[c] = e
	}
	return m, nil
}

// Equal reports whether two schemas are identical.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for c, e := range s {
		oe, ok := o[c]
		if !ok || oe != e {
			return false
		}
	}
	return true
}

// Validate checks every entry against the dictionary.
func (s Schema) Validate(d *Dictionary) error {
	for _, c := range s.Columns() {
		if err := d.ValidateEntry(c, s[c]); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint returns a canonical string identifying the schema, used as a
// memoization key in the derivation engine and as a cache key component.
func (s Schema) Fingerprint() string {
	var b strings.Builder
	for _, c := range s.Columns() {
		e := s[c]
		fmt.Fprintf(&b, "%s=%s;", c, e)
	}
	return b.String()
}

// String renders the schema deterministically.
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range s.Columns() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", c, s[c])
	}
	b.WriteByte('}')
	return b.String()
}

// MarshalJSON encodes the schema as an object.
func (s Schema) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]Entry(s))
}

// UnmarshalJSON decodes the object form.
func (s *Schema) UnmarshalJSON(data []byte) error {
	var m map[string]Entry
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*s = Schema(m)
	return nil
}
