// Package provenance is ScrubJay's bench provenance ledger, in the spirit
// of ProvDB: an append-only JSONL file (BENCH_history.jsonl) holding one
// record per benchmark experiment and per CI run, so a performance number
// is never an orphan — every figure ties back to the commit, time, bench
// report, and trace summary that produced it.
package provenance

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"scrubjay/internal/obs"
)

// Schema identifies the record layout; readers reject records whose schema
// they do not speak, so the ledger can evolve without silent misreads.
const Schema = "scrubjay.bench.v1"

// DefaultLedger is the conventional ledger filename at the repo root.
const DefaultLedger = "BENCH_history.jsonl"

// Record is one ledger entry. Bench and VetTiming hold the producing
// tool's own JSON report verbatim (raw, not re-modeled), so the ledger
// never lags the report formats.
type Record struct {
	Schema     string          `json:"schema"`
	Time       string          `json:"time"` // RFC 3339
	GitSHA     string          `json:"git_sha,omitempty"`
	Kind       string          `json:"kind"`                 // "sjbench" | "ci"
	Experiment string          `json:"experiment,omitempty"` // sjbench -exp name
	Bench      json.RawMessage `json:"bench,omitempty"`
	VetTiming  json.RawMessage `json:"vet_timing,omitempty"`
	Trace      *TraceSummary   `json:"trace,omitempty"`
	Note       string          `json:"note,omitempty"`
}

// TraceSummary condenses one query trace for the ledger: enough to spot a
// distributed run (worker-origin spans present) without storing the tree.
type TraceSummary struct {
	TraceID     string `json:"trace_id"`
	Spans       int    `json:"spans"`
	WorkerSpans int    `json:"worker_spans"`
	Workers     int    `json:"workers"`
}

// Validate checks the invariants every ledger record must hold.
func (r *Record) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("provenance: schema %q, want %q", r.Schema, Schema)
	}
	if _, err := time.Parse(time.RFC3339, r.Time); err != nil {
		return fmt.Errorf("provenance: bad time %q: %v", r.Time, err)
	}
	switch r.Kind {
	case "sjbench", "ci":
	default:
		return fmt.Errorf("provenance: kind %q, want sjbench or ci", r.Kind)
	}
	if len(r.Bench) > 0 && !json.Valid(r.Bench) {
		return fmt.Errorf("provenance: bench payload is not valid JSON")
	}
	if len(r.VetTiming) > 0 && !json.Valid(r.VetTiming) {
		return fmt.Errorf("provenance: vet_timing payload is not valid JSON")
	}
	return nil
}

// Append validates rec, stamps the schema when unset, and appends it as one
// JSON line to the ledger at path (created if absent). The single-line
// invariant keeps the file greppable and each write atomic at the
// filesystem level for line-sized payloads.
func Append(path string, rec *Record) error {
	if rec.Schema == "" {
		rec.Schema = Schema
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if bytes.ContainsRune(data, '\n') {
		return fmt.Errorf("provenance: record encodes to multiple lines")
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses and validates every record in the ledger at path. Any
// invalid line fails the whole read with its line number — the ledger is
// evidence, and evidence with holes is worse than none.
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []*Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		rec := new(Record)
		if err := json.Unmarshal(raw, rec); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return recs, nil
}

// Summarize condenses a trace artifact: total spans, worker-origin spans
// (those the scheduler grafted from shipped worker subtrees), and distinct
// workers seen.
func Summarize(a *obs.Artifact) *TraceSummary {
	if a == nil || a.Root == nil {
		return nil
	}
	s := &TraceSummary{TraceID: a.TraceID}
	workers := map[string]bool{}
	var walk func(r *obs.SpanRecord)
	walk = func(r *obs.SpanRecord) {
		s.Spans++
		if origin, ok := r.Attrs[obs.AttrOrigin].(string); ok && origin != "" {
			s.WorkerSpans++
			workers[origin] = true
		}
		for _, c := range r.Children {
			walk(c)
		}
	}
	walk(a.Root)
	s.Workers = len(workers)
	return s
}

// GitHead resolves the current commit SHA of the repository at dir by
// reading .git directly (no exec): HEAD, then the named ref file, then
// packed-refs. Empty when dir is not a git work tree — provenance degrades,
// it does not fail.
func GitHead(dir string) string {
	gitDir := filepath.Join(dir, ".git")
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	h := strings.TrimSpace(string(head))
	if !strings.HasPrefix(h, "ref:") {
		return h // detached HEAD holds the SHA itself
	}
	ref := strings.TrimSpace(strings.TrimPrefix(h, "ref:"))
	if b, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(b))
	}
	packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(packed), "\n") {
		if fields := strings.Fields(line); len(fields) == 2 && fields[1] == ref {
			return fields[0]
		}
	}
	return ""
}
