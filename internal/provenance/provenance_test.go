package provenance

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scrubjay/internal/obs"
)

func validRecord() *Record {
	return &Record{
		Time:       "2026-08-08T12:00:00Z",
		GitSHA:     "0123abcd",
		Kind:       "sjbench",
		Experiment: "obs",
		Bench:      json.RawMessage(`{"median_overhead":1.01}`),
	}
}

func TestAppendAndReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	r1 := validRecord()
	r2 := validRecord()
	r2.Kind = "ci"
	r2.Experiment = ""
	r2.Note = "full gate"
	r2.Trace = &TraceSummary{TraceID: "t1", Spans: 10, WorkerSpans: 4, Workers: 2}
	if err := Append(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, r2); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	if recs[0].Schema != Schema {
		t.Fatalf("schema not stamped: %q", recs[0].Schema)
	}
	if recs[1].Trace == nil || recs[1].Trace.WorkerSpans != 4 {
		t.Fatalf("trace summary did not round-trip: %+v", recs[1].Trace)
	}
	// One line per record: the greppable-ledger invariant.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("ledger has %d lines, want 2", n)
	}
}

func TestValidateRejectsBadRecords(t *testing.T) {
	cases := map[string]func(*Record){
		"bad schema": func(r *Record) { r.Schema = "scrubjay.bench.v0" },
		"bad time":   func(r *Record) { r.Time = "yesterday" },
		"bad kind":   func(r *Record) { r.Kind = "vibes" },
		"bad bench":  func(r *Record) { r.Bench = json.RawMessage(`{"x":`) },
	}
	for name, mutate := range cases {
		r := validRecord()
		r.Schema = Schema
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, r)
		}
	}
}

func TestReadFileFailsOnInvalidLineWithNumber(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	good, _ := json.Marshal(func() *Record { r := validRecord(); r.Schema = Schema; return r }())
	content := string(good) + "\n" + `{"schema":"nope"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil {
		t.Fatal("invalid line accepted")
	}
	if !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestSummarizeCountsWorkerSpans(t *testing.T) {
	tr := obs.NewTracer("t9", obs.StepClock(time.Millisecond))
	root := tr.Start(obs.KindQuery, "q")
	ex := root.Child(obs.KindStage, "heat|shuffle-fetch")
	for _, w := range []string{"worker@a:1", "worker@a:1", "worker@b:2"} {
		c := ex.Child("worker-shuffle", "heat#1")
		c.SetStr(obs.AttrOrigin, w)
		c.End()
	}
	ex.End()
	root.End()
	s := Summarize(tr.Artifact())
	if s.TraceID != "t9" || s.Spans != 5 || s.WorkerSpans != 3 || s.Workers != 2 {
		t.Fatalf("summary = %+v, want 5 spans, 3 worker spans, 2 workers", s)
	}
}

func TestGitHeadReadsRefAndPackedRefs(t *testing.T) {
	dir := t.TempDir()
	git := filepath.Join(dir, ".git")
	if err := os.MkdirAll(filepath.Join(git, "refs", "heads"), 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(git, "HEAD"), []byte("ref: refs/heads/main\n"), 0o644)
	os.WriteFile(filepath.Join(git, "refs", "heads", "main"), []byte("aaaa1111\n"), 0o644)
	if got := GitHead(dir); got != "aaaa1111" {
		t.Fatalf("loose ref: got %q", got)
	}
	os.Remove(filepath.Join(git, "refs", "heads", "main"))
	os.WriteFile(filepath.Join(git, "packed-refs"),
		[]byte("# pack-refs with: peeled\nbbbb2222 refs/heads/main\n"), 0o644)
	if got := GitHead(dir); got != "bbbb2222" {
		t.Fatalf("packed ref: got %q", got)
	}
	os.WriteFile(filepath.Join(git, "HEAD"), []byte("cccc3333\n"), 0o644)
	if got := GitHead(dir); got != "cccc3333" {
		t.Fatalf("detached head: got %q", got)
	}
	if got := GitHead(t.TempDir()); got != "" {
		t.Fatalf("non-repo: got %q, want empty", got)
	}
}
