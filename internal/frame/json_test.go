package frame

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"scrubjay/internal/value"
)

// TestAppendRowJSONMatches is the property that keeps columnar NDJSON
// streaming honest: for arbitrary rows — nasty strings, NaN/Inf floats,
// explicit nulls, lists, absent cells — AppendRowJSON must produce exactly
// the bytes encoding/json produces for the boxed value.Row.
func TestAppendRowJSONMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rows := randRows(rng, 1+rng.Intn(10))
		f := FromRows(rows)
		keys := f.EncodedKeys()
		for i, r := range rows {
			want, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			got := f.AppendRowJSON(nil, i, keys)
			if string(got) != string(want) {
				t.Fatalf("trial %d row %d:\n got %s\nwant %s", trial, i, got, want)
			}
		}
	}
}

// TestAppendRowJSONEdgeCases pins the encodings that are easy to get
// subtly wrong: float formats at the e/f boundary, exponent trimming,
// HTML-escaped keys, and RFC3339Nano truncation.
func TestAppendRowJSONEdgeCases(t *testing.T) {
	rows := []value.Row{
		{
			"f1": value.Float(1e-7), "f2": value.Float(1e21), "f3": value.Float(-2.5e-9),
			"f4": value.Float(0.0), "f5": value.Float(math.Copysign(0, -1)),
			"f6": value.Float(math.Inf(-1)), "f7": value.Float(math.NaN()),
			"f8": value.Float(123456789.123456789),
		},
		{
			"<key>&": value.Str("<script>&\u2028\u2029\xff"),
			"t1":     value.TimeNanos(0),
			"t2":     value.TimeNanos(1500000000123456789),
			"sp":     value.Span(10, 1e9),
			"l":      value.List(value.Null(), value.Float(math.NaN()), value.Str("<>")),
			"n":      value.Null(),
			"b":      value.Bool(true),
		},
	}
	f := FromRows(rows)
	keys := f.EncodedKeys()
	for i, r := range rows {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := f.AppendRowJSON(nil, i, keys)
		if string(got) != string(want) {
			t.Fatalf("row %d:\n got %s\nwant %s", i, got, want)
		}
	}
}
