package frame

import (
	"math"

	"scrubjay/internal/value"
)

// The columnar join/group key is a 64-bit FNV-style hash over the key
// columns' (kind, payload) pairs, computed column-at-a-time into one hash
// vector — replacing the row path's per-row KeyStringOn string building.
// Hash equality is a candidate filter only; kernels verify candidates with
// ValuesEqualOn (value.Value.Equal semantics) before acting, so hash
// collisions cost time, never correctness.
const (
	hashSeed  uint64 = 1469598103934665603
	hashPrime uint64 = 1099511628211
)

func mix(h, x uint64) uint64 { return (h ^ x) * hashPrime }

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hashPrime
	}
	return h
}

// HashValue folds one boxed value into a running hash, tagging the kind so
// Int(3) and Float(3) (or Str("3")) never collide structurally.
func HashValue(h uint64, v value.Value) uint64 {
	k := v.Kind()
	h = mix(h, uint64(k))
	switch k {
	case value.KindNull:
	case value.KindBool:
		if v.BoolVal() {
			h = mix(h, 1)
		} else {
			h = mix(h, 0)
		}
	case value.KindInt:
		h = mix(h, uint64(v.IntVal()))
	case value.KindFloat:
		h = mix(h, math.Float64bits(v.FloatVal()))
	case value.KindString:
		h = mixString(h, v.StrVal())
	case value.KindTime:
		h = mix(h, uint64(v.TimeNanosVal()))
	case value.KindSpan:
		s, e := v.SpanBounds()
		h = mix(mix(h, uint64(s)), uint64(e))
	case value.KindList:
		l := v.ListVal()
		h = mix(h, uint64(len(l)))
		for _, e := range l {
			h = HashValue(h, e)
		}
	}
	return h
}

// HashOn computes the per-row composite hash over cols, column-at-a-time.
// convs, when non-nil, holds one optional value converter per column
// (applied before hashing — the join kernels rescale right-side units into
// left-side units this way). A column the frame lacks hashes as Null for
// every row, mirroring value.Row.Get.
func (f *Frame) HashOn(cols []string, convs []func(value.Value) value.Value) []uint64 {
	h := make([]uint64, f.n)
	for i := range h {
		h[i] = hashSeed
	}
	for j, name := range cols {
		var conv func(value.Value) value.Value
		if convs != nil {
			conv = convs[j]
		}
		c := f.Col(name)
		if c == nil {
			for i := range h {
				h[i] = mix(h[i], uint64(value.KindNull))
			}
			continue
		}
		if conv != nil || c.kind == value.KindNull {
			for i := range h {
				v := c.Value(i)
				if conv != nil {
					v = conv(v)
				}
				h[i] = HashValue(h[i], v)
			}
			continue
		}
		// Typed fast paths: one branch-free-ish pass per column vector.
		kindTag := uint64(c.kind)
		nullTag := uint64(value.KindNull)
		switch c.kind {
		case value.KindFloat:
			for i := range h {
				if c.Present(i) {
					h[i] = mix(mix(h[i], kindTag), math.Float64bits(c.flts[i]))
				} else {
					h[i] = mix(h[i], nullTag)
				}
			}
		case value.KindString:
			for i := range h {
				if c.Present(i) {
					h[i] = mixString(mix(h[i], kindTag), c.strs[i])
				} else {
					h[i] = mix(h[i], nullTag)
				}
			}
		case value.KindSpan:
			for i := range h {
				if c.Present(i) {
					h[i] = mix(mix(mix(h[i], kindTag), uint64(c.ints[i])), uint64(c.ends[i]))
				} else {
					h[i] = mix(h[i], nullTag)
				}
			}
		default: // bool, int, time share the ints vector
			for i := range h {
				if c.Present(i) {
					h[i] = mix(mix(h[i], kindTag), uint64(c.ints[i]))
				} else {
					h[i] = mix(h[i], nullTag)
				}
			}
		}
	}
	return h
}

// ValuesEqualOn reports whether row ai of a equals row bi of b across the
// paired key columns (acols[j] against bcols[j], both resolved with
// ColIndex; -1 reads as Null). convs, when non-nil, converts b's value
// before comparing. Equality is value.Value.Equal — kind-strict, floats by
// bit pattern.
func ValuesEqualOn(a *Frame, ai int, acols []int, b *Frame, bi int, bcols []int, convs []func(value.Value) value.Value) bool {
	for j := range acols {
		var av, bv value.Value
		if acols[j] >= 0 {
			av = a.cols[acols[j]].Value(ai)
		}
		if bcols[j] >= 0 {
			bv = b.cols[bcols[j]].Value(bi)
		}
		if convs != nil && convs[j] != nil {
			bv = convs[j](bv)
		}
		if !av.Equal(bv) {
			return false
		}
	}
	return true
}
