package frame

import "scrubjay/internal/value"

// Builder accumulates one output column cell-by-cell for kernels whose
// output types are not statically known (join coalescing, explode
// payloads). Cells default to absent; Finish picks dense typed storage
// when the present cells share one scalar kind.
type Builder struct {
	name string
	vals []value.Value
	set  []bool
	nset int
}

// NewBuilder returns a builder for an n-cell column.
func NewBuilder(name string, n int) *Builder {
	return &Builder{name: name, vals: make([]value.Value, n), set: make([]bool, n)}
}

// Reset reuses the builder's scratch for a new n-cell column, growing the
// vals/set slices only past their high-water mark. Finish copies cells into
// fresh typed vectors and never retains the scratch, so a caller building
// many columns of the same frame (join coalescing builds one per output
// column) pays the two scratch allocations once instead of per column.
func (b *Builder) Reset(name string, n int) *Builder {
	b.name = name
	b.nset = 0
	if cap(b.vals) < n {
		b.vals = make([]value.Value, n)
		b.set = make([]bool, n)
		return b
	}
	b.vals = b.vals[:n]
	b.set = b.set[:n]
	for i := range b.vals {
		b.vals[i] = value.Value{}
		b.set[i] = false
	}
	return b
}

// Set makes cell i present with value v (explicit nulls allowed).
func (b *Builder) Set(i int, v value.Value) {
	if !b.set[i] {
		b.set[i] = true
		b.nset++
	}
	b.vals[i] = v
}

// Finish freezes the accumulated cells into a Column.
func (b *Builder) Finish() Column {
	n := len(b.vals)
	c := Column{name: b.name, n: n}
	uniform := value.KindNull
	boxed := false
	for i, v := range b.vals {
		if !b.set[i] {
			continue
		}
		k := v.Kind()
		switch {
		case k == value.KindNull || k == value.KindList:
			boxed = true
		case uniform == value.KindNull:
			uniform = k
		case uniform != k:
			boxed = true
		}
	}
	if boxed || uniform == value.KindNull {
		c.kind = value.KindNull
		c.boxd = make([]value.Value, n)
		for i, v := range b.vals {
			if b.set[i] {
				c.boxd[i] = v
			}
		}
	} else {
		c.kind = uniform
		switch uniform {
		case value.KindFloat:
			c.flts = make([]float64, n)
		case value.KindString:
			c.strs = make([]string, n)
		case value.KindSpan:
			c.ints = make([]int64, n)
			c.ends = make([]int64, n)
		default:
			c.ints = make([]int64, n)
		}
		for i, v := range b.vals {
			if !b.set[i] {
				continue
			}
			switch uniform {
			case value.KindBool:
				if v.BoolVal() {
					c.ints[i] = 1
				}
			case value.KindInt:
				c.ints[i] = v.IntVal()
			case value.KindFloat:
				c.flts[i] = v.FloatVal()
			case value.KindString:
				c.strs[i] = v.StrVal()
			case value.KindTime:
				c.ints[i] = v.TimeNanosVal()
			case value.KindSpan:
				c.ints[i], c.ends[i] = v.SpanBounds()
			}
		}
	}
	if b.nset < n {
		bits := newBits(n)
		for i, s := range b.set {
			if s {
				setBit(bits, i)
			}
		}
		c.pres = bits
	}
	return c
}

// ColumnOf builds a fully present column from boxed values (typed storage
// when the values share one scalar kind).
func ColumnOf(name string, vals []value.Value) Column {
	b := NewBuilder(name, len(vals))
	for i, v := range vals {
		b.Set(i, v)
	}
	return b.Finish()
}

// TimeColumn builds a fully present time-kinded column from Unix
// nanosecond instants.
func TimeColumn(name string, nanos []int64) Column {
	vals := make([]int64, len(nanos))
	copy(vals, nanos)
	return Column{name: name, kind: value.KindTime, ints: vals, n: len(vals)}
}

// FloatColumn builds a fully present float-kinded column.
func FloatColumn(name string, vals []float64) Column {
	return Column{name: name, kind: value.KindFloat, flts: vals, n: len(vals)}
}

// withFloats returns a copy of a float-kinded column with its payload
// vector replaced (presence and name preserved). Used by the vectorized
// unit-conversion kernel; the input column is not modified.
func (c *Column) withFloats(vals []float64) Column {
	out := *c
	out.flts = vals
	return out
}
