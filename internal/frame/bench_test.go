package frame

import (
	"math"
	"testing"

	"scrubjay/internal/value"
)

// The two hot-path allocation fixes surfaced by sjvet's hotalloc analyzer
// are gated here with allocation-counting benchmarks:
//
//   - AppendRowJSON's non-finite float cells used to render through
//     fmt.Sprintf("%g"), two allocations per NaN/Inf cell on the NDJSON
//     streaming path; they now append constant bytes (zero allocations).
//   - Merge's coalescing loop used to construct a fresh Builder (vals +
//     set, two allocations) per overlapping column; it now Reset-reuses
//     one builder across all columns of the merge.

// benchStreamFrame builds a frame shaped like a streamed result: time,
// string, finite float, and a float column that is entirely NaN/Inf (the
// shape a rate/derivative column takes over sparse input).
func benchStreamFrame(n int) *Frame {
	times := make([]int64, n)
	finite := make([]float64, n)
	rough := make([]float64, n)
	names := make([]value.Value, n)
	for i := 0; i < n; i++ {
		times[i] = int64(i) * 1_000_000_000
		finite[i] = float64(i) * 1.25
		if i%2 == 0 {
			rough[i] = math.NaN()
		} else {
			rough[i] = math.Inf(1 - 2*(i%3))
		}
		names[i] = value.Str("node-17")
	}
	return New(
		TimeColumn("time", times),
		ColumnOf("node", names),
		FloatColumn("cpu", finite),
		FloatColumn("rate", rough),
	)
}

func BenchmarkAppendRowJSON(b *testing.B) {
	f := benchStreamFrame(256)
	keys := f.EncodedKeys()
	var dst []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = f.AppendRowJSON(dst[:0], i%f.NumRows(), keys)
	}
	if len(dst) == 0 {
		b.Fatal("no output")
	}
}

func BenchmarkMergeCoalesce(b *testing.B) {
	const n, cols = 512, 8
	acols := make([]Column, 0, cols)
	bcols := make([]Column, 0, cols)
	names := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}
	for j, name := range names {
		full := make([]float64, n)
		for i := range full {
			full[i] = float64(i * (j + 1))
		}
		acols = append(acols, FloatColumn(name, full))
		// b's column is half-present so Merge must coalesce cell-wise.
		bb := NewBuilder(name, n)
		for i := 0; i < n; i += 2 {
			bb.Set(i, value.Float(float64(i)-0.5))
		}
		bcols = append(bcols, bb.Finish())
	}
	fa, fb := New(acols...), New(bcols...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Merge(fa, fb).NumRows() != n {
			b.Fatal("bad merge")
		}
	}
}
