package frame

import (
	"math"
	"math/rand"
	"testing"

	"scrubjay/internal/value"
)

// randValue draws a random scalar of a random kind, biased toward the
// kinds HPC datasets actually hold, with a sprinkle of nasties.
func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(9) {
	case 0:
		return value.Int(rng.Int63n(1000) - 500)
	case 1:
		return value.Float(rng.NormFloat64() * 100)
	case 2:
		return value.Str(randString(rng))
	case 3:
		return value.TimeNanos(rng.Int63n(1e18))
	case 4:
		s := rng.Int63n(1e18)
		return value.Span(s, s+rng.Int63n(1e12))
	case 5:
		return value.Bool(rng.Intn(2) == 0)
	case 6:
		return value.Null()
	case 7:
		return value.List(value.Int(rng.Int63n(10)), value.Str("x"))
	default:
		return value.Float(math.NaN())
	}
}

func randString(rng *rand.Rand) string {
	alphabet := []rune("abcXYZ 0\"\\<>&\n\t\u00e9\u2028\u2029\uffff")
	n := rng.Intn(8)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// randRows draws rows with randomly absent cells over a fixed column set.
// Columns c0..c2 are kind-stable (typed storage); c3+ mix kinds (boxed).
func randRows(rng *rand.Rand, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		r := value.Row{}
		if rng.Intn(10) > 0 {
			r["c0"] = value.Int(rng.Int63n(100))
		}
		if rng.Intn(10) > 0 {
			r["c1"] = value.Float(rng.Float64())
		}
		if rng.Intn(10) > 0 {
			r["c2"] = value.Str(randString(rng))
		}
		if rng.Intn(3) > 0 {
			r["c3"] = randValue(rng)
		}
		rows[i] = r
	}
	return rows
}

func rowsEqual(t *testing.T, want, got []value.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row count: want %d got %d", len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("row %d: want %v got %v", i, want[i], got[i])
		}
	}
}

func TestFromRowsToRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows := randRows(rng, rng.Intn(40))
		f := FromRows(rows)
		if f.NumRows() != len(rows) {
			t.Fatalf("NumRows: want %d got %d", len(rows), f.NumRows())
		}
		rowsEqual(t, rows, f.ToRows())
	}
}

func TestTypedStorageChosen(t *testing.T) {
	rows := []value.Row{
		{"i": value.Int(1), "f": value.Float(1.5), "s": value.Str("a"), "t": value.TimeNanos(9)},
		{"i": value.Int(2), "f": value.Float(2.5), "s": value.Str("b"), "t": value.TimeNanos(10)},
	}
	f := FromRows(rows)
	for col, kind := range map[string]value.Kind{
		"i": value.KindInt, "f": value.KindFloat, "s": value.KindString, "t": value.KindTime,
	} {
		if got := f.Col(col).Kind(); got != kind {
			t.Errorf("col %s: storage kind %v, want %v", col, got, kind)
		}
	}
	// A null forces boxed storage but still round-trips.
	rows2 := []value.Row{{"i": value.Int(1)}, {"i": value.Null()}}
	f2 := FromRows(rows2)
	if f2.Col("i").Kind() != value.KindNull {
		t.Errorf("null-bearing column should be boxed")
	}
	rowsEqual(t, rows2, f2.ToRows())
}

func TestGatherFilterSelectDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randRows(rng, 30)
	f := FromRows(rows)

	idx := []int32{5, 0, 5, 29, 12}
	g := f.Gather(idx)
	want := make([]value.Row, len(idx))
	for i, s := range idx {
		want[i] = rows[s]
	}
	rowsEqual(t, want, g.ToRows())

	keep := make([]bool, len(rows))
	var kept []value.Row
	for i := range keep {
		keep[i] = i%3 == 0
		if keep[i] {
			kept = append(kept, rows[i])
		}
	}
	rowsEqual(t, kept, f.FilterMask(keep).ToRows())

	sel := f.Select([]string{"c2", "c0", "missing"})
	for i, r := range sel.ToRows() {
		if !r.Equal(rows[i].Project("c0", "c2")) {
			t.Fatalf("select row %d: got %v", i, r)
		}
	}
	dr := f.Drop("c1", "c3")
	for i, r := range dr.ToRows() {
		if !r.Equal(rows[i].Project("c0", "c2")) {
			t.Fatalf("drop row %d: got %v", i, r)
		}
	}
}

func TestConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randRows(rng, 7)
	b := []value.Row{{"c0": value.Str("not-an-int"), "extra": value.Int(1)}}
	c := randRows(rng, 5)
	f := Concat([]*Frame{FromRows(a), FromRows(b), Empty(), FromRows(c)})
	var want []value.Row
	want = append(want, a...)
	want = append(want, b...)
	want = append(want, c...)
	rowsEqual(t, want, f.ToRows())
}

func TestHashOnAgreesWithEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := randRows(rng, 200)
	f := FromRows(rows)
	cols := []string{"c0", "c3"}
	h := f.HashOn(cols, nil)
	ai := []int{f.ColIndex("c0"), f.ColIndex("c3")}
	for i := 0; i < 50; i++ {
		x, y := rng.Intn(len(rows)), rng.Intn(len(rows))
		eq := rows[x].Get("c0").Equal(rows[y].Get("c0")) && rows[x].Get("c3").Equal(rows[y].Get("c3"))
		if eq && h[x] != h[y] {
			t.Fatalf("equal key rows %d,%d hash differently", x, y)
		}
		if got := ValuesEqualOn(f, x, ai, f, y, ai, nil); got != eq {
			t.Fatalf("ValuesEqualOn(%d,%d)=%v want %v", x, y, got, eq)
		}
	}
	// Hash must match the boxed HashValue fold (typed fast paths agree).
	for i := 0; i < 20; i++ {
		x := rng.Intn(len(rows))
		want := hashSeed
		for _, c := range cols {
			want = HashValue(want, rows[x].Get(c))
		}
		if h[x] != want {
			t.Fatalf("row %d: vector hash %x, boxed fold %x", x, h[x], want)
		}
	}
}

func TestBuilderAndWith(t *testing.T) {
	b := NewBuilder("out", 4)
	b.Set(0, value.Int(1))
	b.Set(2, value.Int(3))
	col := b.Finish()
	if col.Kind() != value.KindInt {
		t.Fatalf("uniform ints should stay typed, got %v", col.Kind())
	}
	f := New(ColumnOf("a", []value.Value{value.Str("w"), value.Str("x"), value.Str("y"), value.Str("z")}))
	f2 := f.With(col)
	want := []value.Row{
		{"a": value.Str("w"), "out": value.Int(1)},
		{"a": value.Str("x")},
		{"a": value.Str("y"), "out": value.Int(3)},
		{"a": value.Str("z")},
	}
	rowsEqual(t, want, f2.ToRows())
	if len(f.Columns()) != 1 {
		t.Fatalf("With must not mutate the receiver")
	}
}

func TestMaskKernels(t *testing.T) {
	rows := []value.Row{
		{"x": value.Int(1)}, {"x": value.Int(5)}, {}, {"x": value.Null()},
	}
	f := FromRows(rows)
	gotV := MaskValues(f, "x", func(v value.Value) bool { return v.Kind() == value.KindInt && v.IntVal() > 2 })
	wantV := []bool{false, true, false, false}
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("MaskValues[%d]=%v", i, gotV[i])
		}
	}
	gotR := MaskRows(f, func(r value.Row) bool { return r.Has("x") })
	wantR := []bool{true, true, false, false} // Has is false for explicit nulls too
	for i := range wantR {
		if gotR[i] != wantR[i] {
			t.Fatalf("MaskRows[%d]=%v", i, gotR[i])
		}
	}
}

func TestTimeColumnHelpers(t *testing.T) {
	const now int64 = 1500000000123456789
	f := New(TimeColumn("t", []int64{now, now + 1}), FloatColumn("v", []float64{1, 2}))
	want := []value.Row{
		{"t": value.TimeNanos(now), "v": value.Float(1)},
		{"t": value.TimeNanos(now + 1), "v": value.Float(2)},
	}
	rowsEqual(t, want, f.ToRows())
}
