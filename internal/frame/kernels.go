package frame

import "scrubjay/internal/value"

// Closure-taking kernels. These run inside rdd compute bodies, so the
// closures handed to them inherit the rdd compute contract: pure with
// respect to lineage, no writes to captured state. cmd/sjvet's purity
// analyzer checks function literals passed to these entry points exactly
// as it checks rdd.Map/Filter arguments.

// MaskRows evaluates pred over each row (boxed via RowAt) and returns the
// keep mask. It is the generic row-predicate kernel behind Dataset.Where
// on columnar datasets; vectorized operators avoid it on typed columns.
func MaskRows(f *Frame, pred func(value.Row) bool) []bool {
	keep := make([]bool, f.n)
	for i := 0; i < f.n; i++ {
		keep[i] = pred(f.RowAt(i))
	}
	return keep
}

// MaskValues evaluates pred over one column's cells (absent cells box to
// Null, mirroring value.Row.Get) and returns the keep mask. A frame
// lacking the column yields an all-Null scan, matching the row path.
func MaskValues(f *Frame, col string, pred func(value.Value) bool) []bool {
	keep := make([]bool, f.n)
	c := f.Col(col)
	if c == nil {
		null := value.Null()
		for i := range keep {
			keep[i] = pred(null)
		}
		return keep
	}
	for i := 0; i < f.n; i++ {
		keep[i] = pred(c.Value(i))
	}
	return keep
}
