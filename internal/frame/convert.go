package frame

import (
	"scrubjay/internal/units"
	"scrubjay/internal/value"
)

// Convert rescales a float payload vector from unit from to unit to,
// returning a new vector (the input is never modified — frames are
// immutable). It is the vectorized core of the convert_units kernel: one
// factor lookup per column instead of one per row. cmd/sjvet's unitsafety
// analyzer tracks the unit tag through this call exactly as it does for
// units.Dict.Convert.
func Convert(d *units.Dict, vals []float64, from, to string) ([]float64, error) {
	out := make([]float64, len(vals))
	for i, v := range vals {
		conv, err := d.Convert(v, from, to)
		if err != nil {
			return nil, err
		}
		out[i] = conv
	}
	return out, nil
}

// ConvertColumn applies Convert to a float-kinded column, preserving name
// and presence. The second result is false when the column is not
// float-typed (callers fall back to the row path) or conversion fails.
func ConvertColumn(d *units.Dict, c *Column, from, to string) (Column, bool) {
	if c.kind != value.KindFloat {
		return Column{}, false
	}
	vals, err := Convert(d, c.flts, from, to)
	if err != nil {
		return Column{}, false
	}
	return c.withFloats(vals), true
}
