package frame

import (
	"encoding/json"
	"math"
	"strconv"
	"time"
	"unicode/utf8"

	"scrubjay/internal/value"
)

// NDJSON emission straight out of column vectors. The server streams query
// results as JSON lines; the row path marshals one map[string]Value per
// row through encoding/json. AppendRowJSON produces byte-for-byte the same
// object — same sorted key order, same HTML escaping, same float
// formatting — without materializing the map, so a columnar result frame
// streams with zero per-row map allocations. TestAppendRowJSONMatches
// holds the two encoders equal property-style.

// EncodedKeys precomputes the JSON-encoded column-name keys (quoted,
// escaped, colon-terminated) in canonical column order. Compute once per
// frame, pass to every AppendRowJSON call.
func (f *Frame) EncodedKeys() [][]byte {
	keys := make([][]byte, len(f.cols))
	for i := range f.cols {
		k, err := json.Marshal(f.cols[i].name)
		if err != nil { // cannot happen for strings
			panic(err)
		}
		keys[i] = append(k, ':')
	}
	return keys
}

// AppendRowJSON appends row i of the frame, encoded exactly as
// encoding/json renders the equivalent value.Row, to dst. keys must come
// from EncodedKeys on the same frame.
func (f *Frame) AppendRowJSON(dst []byte, i int, keys [][]byte) []byte {
	dst = append(dst, '{')
	first := true
	for j := range f.cols {
		c := &f.cols[j]
		if !c.Present(i) {
			continue
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = append(dst, keys[j]...)
		dst = appendValueJSON(dst, c, i)
	}
	return append(dst, '}')
}

// appendValueJSON renders one cell in the value wire format (the jsonValue
// struct in internal/value/json.go): a kind tag plus one payload field.
func appendValueJSON(dst []byte, c *Column, i int) []byte {
	switch c.kind {
	case value.KindBool:
		if c.ints[i] != 0 {
			return append(dst, `{"k":"bool","b":true}`...)
		}
		return append(dst, `{"k":"bool","b":false}`...)
	case value.KindInt:
		dst = append(dst, `{"k":"int","n":`...)
		dst = strconv.AppendInt(dst, c.ints[i], 10)
		return append(dst, '}')
	case value.KindFloat:
		return appendFloatValueJSON(dst, c.flts[i])
	case value.KindString:
		dst = append(dst, `{"k":"string","s":`...)
		dst = appendJSONString(dst, c.strs[i])
		return append(dst, '}')
	case value.KindTime:
		dst = append(dst, `{"k":"time","t":"`...)
		dst = appendRFC3339(dst, c.ints[i])
		return append(dst, '"', '}')
	case value.KindSpan:
		dst = append(dst, `{"k":"span","t":"`...)
		dst = appendRFC3339(dst, c.ints[i])
		dst = append(dst, `","t2":"`...)
		dst = appendRFC3339(dst, c.ends[i])
		return append(dst, '"', '}')
	default:
		return appendBoxedJSON(dst, c.boxd[i])
	}
}

// appendBoxedJSON renders a boxed value, recursing into lists.
func appendBoxedJSON(dst []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(dst, `{"k":"null"}`...)
	case value.KindBool:
		if v.BoolVal() {
			return append(dst, `{"k":"bool","b":true}`...)
		}
		return append(dst, `{"k":"bool","b":false}`...)
	case value.KindInt:
		dst = append(dst, `{"k":"int","n":`...)
		dst = strconv.AppendInt(dst, v.IntVal(), 10)
		return append(dst, '}')
	case value.KindFloat:
		return appendFloatValueJSON(dst, v.FloatVal())
	case value.KindString:
		dst = append(dst, `{"k":"string","s":`...)
		dst = appendJSONString(dst, v.StrVal())
		return append(dst, '}')
	case value.KindTime:
		dst = append(dst, `{"k":"time","t":"`...)
		dst = appendRFC3339(dst, v.TimeNanosVal())
		return append(dst, '"', '}')
	case value.KindSpan:
		s, e := v.SpanBounds()
		dst = append(dst, `{"k":"span","t":"`...)
		dst = appendRFC3339(dst, s)
		dst = append(dst, `","t2":"`...)
		dst = appendRFC3339(dst, e)
		return append(dst, '"', '}')
	default: // list
		dst = append(dst, `{"k":"list","l":[`...)
		for i, e := range v.ListVal() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendBoxedJSON(dst, e)
		}
		return append(dst, ']', '}')
	}
}

// appendFloatValueJSON renders a float cell. Finite floats use the exact
// encoding/json float formatter; NaN/Inf travel in the string slot, as
// value.Value.MarshalJSON does — spelled exactly as fmt's %g verb renders
// them ("NaN", "+Inf", "-Inf"), appended directly so the non-finite path
// allocates nothing.
func appendFloatValueJSON(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		dst = append(dst, `{"k":"float","s":"`...)
		switch {
		case math.IsNaN(f):
			dst = append(dst, `NaN`...)
		case f > 0:
			dst = append(dst, `+Inf`...)
		default:
			dst = append(dst, `-Inf`...)
		}
		return append(dst, '"', '}')
	}
	dst = append(dst, `{"k":"float","f":`...)
	dst = appendJSONFloat(dst, f)
	return append(dst, '}')
}

// appendJSONFloat replicates encoding/json's float64 encoder: shortest
// round-trip form, 'f' format unless the magnitude calls for 'e', with the
// exponent's leading zero trimmed.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans e-09 to e-9.
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendRFC3339 renders Unix nanoseconds as UTC RFC3339Nano — the time
// wire format. No output byte needs JSON escaping.
func appendRFC3339(dst []byte, nanos int64) []byte {
	return time.Unix(0, nanos).UTC().AppendFormat(dst, time.RFC3339Nano)
}

// appendJSONString replicates encoding/json's string encoder with HTML
// escaping on (the package default, and what the server's json.Encoder
// uses): quotes, backslashes, control characters, <, >, &, invalid UTF-8,
// and U+2028/U+2029 are escaped; everything else passes through.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

const hexDigits = "0123456789abcdef"

// jsonSafe reports whether an ASCII byte passes through encoding/json's
// HTML-escaping encoder unescaped.
func jsonSafe(b byte) bool {
	if b < 0x20 || b == '"' || b == '\\' {
		return false
	}
	if b == '<' || b == '>' || b == '&' {
		return false
	}
	return true
}
