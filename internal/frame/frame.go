// Package frame implements ScrubJay's columnar batch representation: a
// Frame is a fixed-length batch of rows stored as dense typed column
// vectors (int64 / float64 / string / time / span) with presence bitmaps,
// the Tungsten-style substrate beneath the vectorized derivation kernels
// (§5.3). value.Row remains the boundary format — FromRows/ToRows convert
// at ingest and egress — and every cell observable through Value/RowAt is
// bit-for-bit identical to the row it came from, so the row-at-a-time
// reference implementations in internal/derive stay directly comparable.
//
// Frames are IMMUTABLE after construction: kernels never mutate a frame in
// place, they build new frames (sharing column storage where the operation
// is a pure column subset, as Select/Drop do). This is what makes it safe
// for rdd partitions to carry *Frame batches under the rdd compute
// contract and for the server to share one set of catalog frames across
// concurrent requests.
package frame

import (
	"sort"

	"scrubjay/internal/value"
)

// Column is one named column vector of a Frame. Cells of a uniform scalar
// kind are stored densely in a typed slice; columns holding mixed kinds,
// lists, or explicit nulls fall back to boxed value.Value storage (kind ==
// value.KindNull marks the boxed representation). A nil presence bitmap
// means every cell is present.
type Column struct {
	name string
	kind value.Kind // uniform kind of the cells; KindNull => boxed storage
	ints []int64    // int / bool (0,1) / time payloads; span starts
	flts []float64
	strs []string
	ends []int64 // span ends
	boxd []value.Value
	pres []uint64 // presence bitmap; nil = all cells present
	n    int
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the uniform kind of the column's cells; value.KindNull
// reports boxed (mixed/list/null-bearing) storage.
func (c *Column) Kind() value.Kind { return c.kind }

// Len returns the number of cells (present or absent).
func (c *Column) Len() int { return c.n }

// Present reports whether cell i holds a value (the source row had the
// column, even if its value was an explicit null).
func (c *Column) Present(i int) bool {
	return c.pres == nil || c.pres[i>>6]&(1<<(uint(i)&63)) != 0
}

// AllPresent reports whether every cell is present.
func (c *Column) AllPresent() bool { return c.pres == nil }

// Ints exposes the typed payload vector of an int-, bool-, or time-kinded
// column (span starts for span columns). Callers must treat it as
// read-only; frames are immutable.
func (c *Column) Ints() []int64 { return c.ints }

// Floats exposes the typed payload vector of a float-kinded column.
// Read-only.
func (c *Column) Floats() []float64 { return c.flts }

// Strs exposes the typed payload vector of a string-kinded column.
// Read-only.
func (c *Column) Strs() []string { return c.strs }

// SpanEnds exposes the span-end vector of a span-kinded column. Read-only.
func (c *Column) SpanEnds() []int64 { return c.ends }

// Value boxes cell i back into a value.Value. Absent cells box to Null,
// exactly like value.Row.Get on a row missing the column.
func (c *Column) Value(i int) value.Value {
	if !c.Present(i) {
		return value.Null()
	}
	switch c.kind {
	case value.KindBool:
		return value.Bool(c.ints[i] != 0)
	case value.KindInt:
		return value.Int(c.ints[i])
	case value.KindFloat:
		return value.Float(c.flts[i])
	case value.KindString:
		return value.Str(c.strs[i])
	case value.KindTime:
		return value.TimeNanos(c.ints[i])
	case value.KindSpan:
		return value.Span(c.ints[i], c.ends[i])
	default:
		return c.boxd[i]
	}
}

// Frame is an immutable batch of n rows stored column-wise. Columns are
// kept sorted by name so batch layout (and every ordered emission derived
// from it) is canonical regardless of source-map iteration order.
type Frame struct {
	cols  []Column
	index map[string]int
	n     int
}

func newFrame(cols []Column, n int) *Frame {
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	index := make(map[string]int, len(cols))
	for i := range cols {
		index[cols[i].name] = i
	}
	return &Frame{cols: cols, index: index, n: n}
}

// Empty returns a frame with no rows and no columns.
func Empty() *Frame { return newFrame(nil, 0) }

// New builds a frame from fully constructed columns, which must all have
// equal length. It panics on ragged input — kernel bugs, not data errors.
func New(cols ...Column) *Frame {
	n := 0
	if len(cols) > 0 {
		n = cols[0].n
	}
	for i := range cols {
		if cols[i].n != n {
			panic("frame.New: ragged columns")
		}
	}
	own := make([]Column, len(cols))
	copy(own, cols)
	return newFrame(own, n)
}

// NumRows returns the number of rows in the batch.
func (f *Frame) NumRows() int { return f.n }

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Columns returns the column names in canonical (sorted) order.
func (f *Frame) Columns() []string {
	out := make([]string, len(f.cols))
	for i := range f.cols {
		out[i] = f.cols[i].name
	}
	return out
}

// Col returns the named column, or nil if the frame has no such column.
func (f *Frame) Col(name string) *Column {
	if i, ok := f.index[name]; ok {
		return &f.cols[i]
	}
	return nil
}

// ColIndex returns the position of the named column, or -1.
func (f *Frame) ColIndex(name string) int {
	if i, ok := f.index[name]; ok {
		return i
	}
	return -1
}

// ColAt returns the column at position i in canonical order.
func (f *Frame) ColAt(i int) *Column { return &f.cols[i] }

// RowAt boxes row i back into a value.Row. Absent cells are omitted from
// the map; present explicit nulls are kept, so FromRows(rows) followed by
// RowAt reproduces each source row exactly (value.Row.Equal).
func (f *Frame) RowAt(i int) value.Row {
	r := make(value.Row, len(f.cols))
	for j := range f.cols {
		c := &f.cols[j]
		if c.Present(i) {
			r[c.name] = c.Value(i)
		}
	}
	return r
}

// ToRows converts the whole batch back to boundary-format rows.
func (f *Frame) ToRows() []value.Row {
	rows := make([]value.Row, f.n)
	for i := range rows {
		rows[i] = f.RowAt(i)
	}
	return rows
}

// FromRows builds a frame from boundary-format rows. Columns whose present
// cells share one scalar kind get dense typed storage; columns with mixed
// kinds, list values, or explicit nulls use boxed storage. The rows are
// not retained.
func FromRows(rows []value.Row) *Frame {
	n := len(rows)
	// Pass 1: discover the column set and each column's storage kind.
	type colInfo struct {
		kind  value.Kind
		seen  bool
		boxed bool
	}
	infos := map[string]*colInfo{}
	for _, r := range rows {
		for name, v := range r {
			ci := infos[name]
			if ci == nil {
				ci = &colInfo{}
				infos[name] = ci
			}
			k := v.Kind()
			switch {
			case k == value.KindNull || k == value.KindList:
				ci.boxed = true
			case !ci.seen:
				ci.kind, ci.seen = k, true
			case ci.kind != k:
				ci.boxed = true
			}
		}
	}
	names := make([]string, 0, len(infos))
	for name := range infos {
		names = append(names, name)
	}
	sort.Strings(names)

	// Pass 2: fill the vectors.
	cols := make([]Column, len(names))
	for j, name := range names {
		ci := infos[name]
		c := Column{name: name, n: n}
		if ci.boxed || !ci.seen {
			c.kind = value.KindNull
			c.boxd = make([]value.Value, n)
		} else {
			c.kind = ci.kind
			switch ci.kind {
			case value.KindFloat:
				c.flts = make([]float64, n)
			case value.KindString:
				c.strs = make([]string, n)
			case value.KindSpan:
				c.ints = make([]int64, n)
				c.ends = make([]int64, n)
			default: // bool, int, time
				c.ints = make([]int64, n)
			}
		}
		absent := false
		for i, r := range rows {
			v, ok := r[name]
			if !ok {
				if !absent {
					absent = true
					c.pres = newBits(n)
					for k := 0; k < i; k++ {
						setBit(c.pres, k)
					}
				}
				continue
			}
			if absent {
				setBit(c.pres, i)
			}
			switch {
			case c.kind == value.KindNull:
				c.boxd[i] = v
			case c.kind == value.KindBool:
				if v.BoolVal() {
					c.ints[i] = 1
				}
			case c.kind == value.KindInt:
				c.ints[i] = v.IntVal()
			case c.kind == value.KindFloat:
				c.flts[i] = v.FloatVal()
			case c.kind == value.KindString:
				c.strs[i] = v.StrVal()
			case c.kind == value.KindTime:
				c.ints[i] = v.TimeNanosVal()
			case c.kind == value.KindSpan:
				c.ints[i], c.ends[i] = v.SpanBounds()
			}
		}
		cols[j] = c
	}
	return newFrame(cols, n)
}

// Select returns a frame holding only the named columns (those the frame
// actually has), sharing their storage. Row count is unchanged.
func (f *Frame) Select(names []string) *Frame {
	cols := make([]Column, 0, len(names))
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		if i, ok := f.index[name]; ok {
			cols = append(cols, f.cols[i])
		}
	}
	return newFrame(cols, f.n)
}

// Drop returns a frame without the named columns, sharing the remaining
// columns' storage.
func (f *Frame) Drop(names ...string) *Frame {
	drop := map[string]bool{}
	for _, name := range names {
		drop[name] = true
	}
	cols := make([]Column, 0, len(f.cols))
	for i := range f.cols {
		if !drop[f.cols[i].name] {
			cols = append(cols, f.cols[i])
		}
	}
	return newFrame(cols, f.n)
}

// With returns a frame with col added (or replacing a same-named column).
// The column length must match the frame's row count.
func (f *Frame) With(col Column) *Frame {
	if col.n != f.n {
		panic("frame.With: column length mismatch")
	}
	cols := make([]Column, 0, len(f.cols)+1)
	replaced := false
	for i := range f.cols {
		if f.cols[i].name == col.name {
			cols = append(cols, col)
			replaced = true
			continue
		}
		cols = append(cols, f.cols[i])
	}
	if !replaced {
		cols = append(cols, col)
	}
	return newFrame(cols, f.n)
}

// Gather returns a new frame holding the rows idx (in that order). Indices
// may repeat; each must be in range.
func (f *Frame) Gather(idx []int32) *Frame {
	cols := make([]Column, len(f.cols))
	for j := range f.cols {
		cols[j] = f.cols[j].gather(idx)
	}
	return newFrame(cols, len(idx))
}

func (c *Column) gather(idx []int32) Column {
	out := Column{name: c.name, kind: c.kind, n: len(idx)}
	switch {
	case c.kind == value.KindNull:
		out.boxd = make([]value.Value, len(idx))
		for i, s := range idx {
			out.boxd[i] = c.boxd[s]
		}
	case c.kind == value.KindFloat:
		out.flts = make([]float64, len(idx))
		for i, s := range idx {
			out.flts[i] = c.flts[s]
		}
	case c.kind == value.KindString:
		out.strs = make([]string, len(idx))
		for i, s := range idx {
			out.strs[i] = c.strs[s]
		}
	case c.kind == value.KindSpan:
		out.ints = make([]int64, len(idx))
		out.ends = make([]int64, len(idx))
		for i, s := range idx {
			out.ints[i] = c.ints[s]
			out.ends[i] = c.ends[s]
		}
	default: // bool, int, time
		out.ints = make([]int64, len(idx))
		for i, s := range idx {
			out.ints[i] = c.ints[s]
		}
	}
	if c.pres != nil {
		bits := newBits(len(idx))
		absent := false
		for i, s := range idx {
			if c.Present(int(s)) {
				setBit(bits, i)
			} else {
				absent = true
			}
		}
		if absent {
			out.pres = bits
		}
	}
	return out
}

// FilterMask returns a new frame holding the rows where keep[i] is true,
// in order. len(keep) must equal NumRows.
func (f *Frame) FilterMask(keep []bool) *Frame {
	n := 0
	for _, k := range keep {
		if k {
			n++
		}
	}
	idx := make([]int32, 0, n)
	for i, k := range keep {
		if k {
			idx = append(idx, int32(i))
		}
	}
	return f.Gather(idx)
}

// Concat concatenates frames vertically into one batch. The column set is
// the union; rows from a frame lacking a column are absent there. Columns
// typed identically everywhere stay typed; disagreeing columns fall back
// to boxed storage.
func Concat(frames []*Frame) *Frame {
	n := 0
	type colInfo struct {
		kind  value.Kind
		seen  bool
		boxed bool
		part  bool // missing from at least one frame
	}
	infos := map[string]*colInfo{}
	for _, f := range frames {
		n += f.n
	}
	for _, f := range frames {
		if f.n == 0 {
			continue
		}
		for j := range f.cols {
			c := &f.cols[j]
			ci := infos[c.name]
			if ci == nil {
				ci = &colInfo{}
				infos[c.name] = ci
			}
			switch {
			case c.kind == value.KindNull:
				ci.boxed = true
			case !ci.seen:
				ci.kind, ci.seen = c.kind, true
			case ci.kind != c.kind:
				ci.boxed = true
			}
		}
	}
	names := make([]string, 0, len(infos))
	for name := range infos {
		names = append(names, name)
	}
	sort.Strings(names)

	cols := make([]Column, len(names))
	for j, name := range names {
		ci := infos[name]
		out := Column{name: name, kind: ci.kind, n: n}
		if ci.boxed || !ci.seen {
			out.kind = value.KindNull
			out.boxd = make([]value.Value, 0, n)
		} else {
			switch ci.kind {
			case value.KindFloat:
				out.flts = make([]float64, 0, n)
			case value.KindString:
				out.strs = make([]string, 0, n)
			case value.KindSpan:
				out.ints = make([]int64, 0, n)
				out.ends = make([]int64, 0, n)
			default:
				out.ints = make([]int64, 0, n)
			}
		}
		bits := newBits(n)
		absent := false
		pos := 0
		for _, f := range frames {
			if f.n == 0 {
				continue
			}
			c := f.Col(name)
			if c == nil {
				absent = true
				out = appendZeros(out, f.n)
				pos += f.n
				continue
			}
			for i := 0; i < f.n; i++ {
				if c.Present(i) {
					setBit(bits, pos)
				} else {
					absent = true
				}
				if out.kind == value.KindNull {
					if c.Present(i) {
						out.boxd = append(out.boxd, c.Value(i))
					} else {
						out.boxd = append(out.boxd, value.Value{})
					}
					pos++
					continue
				}
				switch out.kind {
				case value.KindFloat:
					out.flts = append(out.flts, c.flts[i])
				case value.KindString:
					out.strs = append(out.strs, c.strs[i])
				case value.KindSpan:
					out.ints = append(out.ints, c.ints[i])
					out.ends = append(out.ends, c.ends[i])
				default:
					out.ints = append(out.ints, c.ints[i])
				}
				pos++
			}
		}
		if absent {
			out.pres = bits
		}
		cols[j] = out
	}
	return newFrame(cols, n)
}

// appendZeros extends a column's storage by m absent cells.
func appendZeros(out Column, m int) Column {
	if out.kind == value.KindNull {
		for k := 0; k < m; k++ {
			out.boxd = append(out.boxd, value.Value{})
		}
		return out
	}
	switch out.kind {
	case value.KindFloat:
		out.flts = append(out.flts, make([]float64, m)...)
	case value.KindString:
		out.strs = append(out.strs, make([]string, m)...)
	case value.KindSpan:
		out.ints = append(out.ints, make([]int64, m)...)
		out.ends = append(out.ends, make([]int64, m)...)
	default:
		out.ints = append(out.ints, make([]int64, m)...)
	}
	return out
}

// Merge combines two equal-length frames column-wise, exactly as
// value.Row.Merge combines maps: the result has the union of the columns,
// and where both frames have a column, b's cell wins wherever b has the
// cell at all (explicit nulls included), falling back to a's. Disjoint
// columns share storage.
func Merge(a, b *Frame) *Frame {
	if a.n != b.n {
		panic("frame.Merge: row count mismatch")
	}
	cols := make([]Column, 0, len(a.cols)+len(b.cols))
	// One builder serves every coalesced column: Finish copies the cells
	// out, so the vals/set scratch is reusable across iterations.
	var bld *Builder
	for i := range a.cols {
		ac := &a.cols[i]
		bc := b.Col(ac.name)
		switch {
		case bc == nil:
			cols = append(cols, *ac)
		case bc.AllPresent():
			cols = append(cols, *bc)
		default:
			if bld == nil {
				//sjvet:ignore hotalloc -- constructed once per Merge, then Reset-reused for every later column
				bld = NewBuilder(ac.name, a.n)
			} else {
				//sjvet:ignore hotalloc -- Reset only reallocates past the high-water mark; amortized it is allocation-free
				bld.Reset(ac.name, a.n)
			}
			for r := 0; r < a.n; r++ {
				if bc.Present(r) {
					bld.Set(r, bc.Value(r))
				} else if ac.Present(r) {
					bld.Set(r, ac.Value(r))
				}
			}
			cols = append(cols, bld.Finish())
		}
	}
	for i := range b.cols {
		if a.Col(b.cols[i].name) == nil {
			cols = append(cols, b.cols[i])
		}
	}
	return newFrame(cols, a.n)
}

func newBits(n int) []uint64 { return make([]uint64, (n+63)/64) }

func setBit(b []uint64, i int) { b[i>>6] |= 1 << (uint(i) & 63) }
