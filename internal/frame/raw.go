package frame

import (
	"fmt"

	"scrubjay/internal/value"
)

// Raw column access for the shuffle wire codec (internal/shuffle). A
// Column's storage is private so kernels cannot violate frame immutability;
// the codec needs to read the vectors verbatim and to rebuild a column from
// decoded vectors without a per-cell boxing round trip. These accessors
// return the live slices — callers must treat them as read-only, exactly
// like Ints/Floats/Strs.

// BoxedValues exposes the boxed payload of a mixed/list/null-bearing column
// (kind == value.KindNull). Nil for typed columns. Read-only.
func (c *Column) BoxedValues() []value.Value { return c.boxd }

// PresenceBits exposes the presence bitmap words (LSB-first within each
// word, 64 cells per word). Nil when every cell is present. Read-only.
func (c *Column) PresenceBits() []uint64 { return c.pres }

// RawFrame builds a frame from decoded columns with an explicit row count.
// Unlike New it can express a frame that has rows but no columns (FromRows
// over rows whose maps are empty produces one), which the wire codec must
// round-trip exactly. The cols slice is retained.
func RawFrame(n int, cols []Column) (*Frame, error) {
	if n < 0 {
		return nil, fmt.Errorf("frame: raw frame: negative row count %d", n)
	}
	for i := range cols {
		if cols[i].n != n {
			return nil, fmt.Errorf("frame: raw frame: column %q has %d rows, want %d", cols[i].name, cols[i].n, n)
		}
	}
	return newFrame(cols, n), nil
}

// RawColumn rebuilds a column from raw storage vectors, the inverse of the
// accessors above. It validates that exactly the vectors the kind requires
// are present with the right lengths, so a corrupt or truncated wire
// payload surfaces as an error rather than an out-of-range panic later.
// The slices are retained, not copied: the caller hands over ownership.
func RawColumn(name string, kind value.Kind, n int, ints []int64, flts []float64, strs []string, ends []int64, boxd []value.Value, pres []uint64) (Column, error) {
	if n < 0 {
		return Column{}, fmt.Errorf("frame: raw column %q: negative length %d", name, n)
	}
	if pres != nil && len(pres) != (n+63)/64 {
		return Column{}, fmt.Errorf("frame: raw column %q: presence bitmap has %d words, want %d", name, len(pres), (n+63)/64)
	}
	want := func(cond bool, what string) error {
		if !cond {
			return fmt.Errorf("frame: raw column %q (kind %v): bad %s vector", name, kind, what)
		}
		return nil
	}
	c := Column{name: name, kind: kind, n: n, pres: pres}
	switch kind {
	case value.KindNull:
		if err := want(len(boxd) == n && ints == nil && flts == nil && strs == nil && ends == nil, "boxed"); err != nil {
			return Column{}, err
		}
		c.boxd = boxd
	case value.KindBool, value.KindInt, value.KindTime:
		if err := want(len(ints) == n && flts == nil && strs == nil && ends == nil && boxd == nil, "int"); err != nil {
			return Column{}, err
		}
		c.ints = ints
	case value.KindFloat:
		if err := want(len(flts) == n && ints == nil && strs == nil && ends == nil && boxd == nil, "float"); err != nil {
			return Column{}, err
		}
		c.flts = flts
	case value.KindString:
		if err := want(len(strs) == n && ints == nil && flts == nil && ends == nil && boxd == nil, "string"); err != nil {
			return Column{}, err
		}
		c.strs = strs
	case value.KindSpan:
		if err := want(len(ints) == n && len(ends) == n && flts == nil && strs == nil && boxd == nil, "span"); err != nil {
			return Column{}, err
		}
		c.ints, c.ends = ints, ends
	default:
		return Column{}, fmt.Errorf("frame: raw column %q: unknown kind %d", name, kind)
	}
	return c, nil
}
