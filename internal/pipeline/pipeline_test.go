package pipeline

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"scrubjay/internal/cache"
	"scrubjay/internal/dataset"
	"scrubjay/internal/derive"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/value"
	"scrubjay/internal/wrappers"
)

func testCatalog(ctx *rdd.Context) (Catalog, map[string]semantics.Schema) {
	jobsSchema := semantics.NewSchema(
		"job_id", semantics.IDDomain("job"),
		"nodelist", semantics.IDListDomain("compute_node"),
		"job_name", semantics.ValueEntry("application", "identifier"),
	)
	layoutSchema := semantics.NewSchema(
		"node", semantics.IDDomain("compute_node"),
		"rack", semantics.IDDomain("rack"),
	)
	jobs := dataset.FromRows(ctx, "jobs", []value.Row{
		value.NewRow("job_id", value.Str("j1"), "nodelist", value.StrList("n1", "n2"), "job_name", value.Str("AMG")),
		value.NewRow("job_id", value.Str("j2"), "nodelist", value.StrList("n3"), "job_name", value.Str("mg.C")),
	}, jobsSchema, 2)
	layout := dataset.FromRows(ctx, "layout", []value.Row{
		value.NewRow("node", value.Str("n1"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n2"), "rack", value.Str("r17")),
		value.NewRow("node", value.Str("n3"), "rack", value.Str("r18")),
	}, layoutSchema, 1)
	return Catalog{"jobs": jobs, "layout": layout},
		map[string]semantics.Schema{"jobs": jobsSchema, "layout": layoutSchema}
}

func testPlan() *Plan {
	exploded := TransformNode(&derive.ExplodeDiscrete{Column: "nodelist"}, SourceNode("jobs"))
	joined := CombineNode(&derive.NaturalJoin{}, exploded, SourceNode("layout"))
	return &Plan{Root: joined}
}

func TestExecutePlan(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	cat, _ := testCatalog(ctx)
	out, err := Execute(context.Background(), ctx, testPlan(), cat, dict, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows := out.SortedBy("nodelist_exploded")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Get("rack").StrVal() != "r17" || rows[2].Get("rack").StrVal() != "r18" {
		t.Errorf("join wrong: %v", rows)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := testPlan()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hash() != p2.Hash() {
		t.Error("hash changed across JSON round trip")
	}
	// The decoded plan executes identically.
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	cat, _ := testCatalog(ctx)
	a, err := Execute(context.Background(), ctx, p, cat, dict, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), ctx, p2, cat, dict, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.SortedBy("nodelist_exploded"), b.SortedBy("nodelist_exploded")
	if len(ra) != len(rb) {
		t.Fatal("row counts differ")
	}
	for i := range ra {
		if !ra[i].Equal(rb[i]) {
			t.Errorf("row %d differs", i)
		}
	}
}

func TestExecuteCanceled(t *testing.T) {
	dict := semantics.DefaultDictionary()
	goCtx, cancel := context.WithCancel(context.Background())

	// A pre-cancelled context fails before touching any data.
	ctx := rdd.NewContext(2).WithGoContext(goCtx)
	cat, _ := testCatalog(ctx)
	cancel()
	if _, err := Execute(goCtx, ctx, testPlan(), cat, dict, ExecOptions{}); err == nil {
		t.Fatal("cancelled Execute should fail")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancellation mid-derivation surfaces as an error, not a panic: the
	// catalog datasets are bound to the cancelled Go context, so the rdd
	// actions inside the join abort and Execute recovers them.
	goCtx2, cancel2 := context.WithCancel(context.Background())
	ctx2 := rdd.NewContext(2).WithGoContext(goCtx2)
	cat2, _ := testCatalog(ctx2)
	cancel2()
	if _, err := Execute(context.Background(), ctx2, testPlan(), cat2, dict, ExecOptions{}); err == nil {
		t.Fatal("Execute over cancelled rdd context should fail")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestDecodeRejectsBadPlans(t *testing.T) {
	bad := []string{
		`{`,
		`{}`,
		`{"root":{"kind":"wat"}}`,
		`{"root":{"kind":"source"}}`,
		`{"root":{"kind":"transform","derivation":"x"}}`,
		`{"root":{"kind":"combine","derivation":"x","inputs":[{"kind":"source","dataset":"a"}]}}`,
		`{"root":{"kind":"source","dataset":"a","inputs":[{"kind":"source","dataset":"b"}]}}`,
	}
	for _, s := range bad {
		if _, err := Decode([]byte(s)); err == nil {
			t.Errorf("Decode(%s) should fail", s)
		}
	}
}

func TestHashDistinguishesPlans(t *testing.T) {
	p1 := testPlan()
	p2 := &Plan{Root: CombineNode(&derive.NaturalJoin{},
		TransformNode(&derive.ExplodeDiscrete{Column: "nodelist", As: "other"}, SourceNode("jobs")),
		SourceNode("layout"))}
	if p1.Hash() == p2.Hash() {
		t.Error("different params should hash differently")
	}
	p3 := &Plan{Root: SourceNode("jobs")}
	p4 := &Plan{Root: SourceNode("layout")}
	if p3.Hash() == p4.Hash() {
		t.Error("different sources should hash differently")
	}
	if p1.Hash() != testPlan().Hash() {
		t.Error("identical plans should hash identically")
	}
}

func TestPlanStringAndSteps(t *testing.T) {
	p := testPlan()
	s := p.String()
	for _, want := range []string{"combine natural_join", "transform explode_discrete", "source jobs", "source layout"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	steps := p.Steps()
	want := []string{"source:jobs", "explode_discrete", "source:layout", "natural_join"}
	if len(steps) != len(want) {
		t.Fatalf("Steps = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("Steps[%d] = %q, want %q", i, steps[i], want[i])
		}
	}
}

func TestDeriveSchemaMatchesExecution(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	cat, schemas := testCatalog(ctx)
	p := testPlan()
	derived, err := p.DeriveSchema(schemas, dict)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(context.Background(), ctx, p, cat, dict, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !derived.Equal(out.Schema()) {
		t.Errorf("schema-only derivation %v != executed schema %v", derived, out.Schema())
	}
}

func TestExecuteErrors(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	cat, _ := testCatalog(ctx)
	// Unknown source.
	if _, err := Execute(context.Background(), ctx, &Plan{Root: SourceNode("nope")}, cat, dict, ExecOptions{}); err == nil {
		t.Error("unknown source should fail")
	}
	// Unknown derivation.
	p := &Plan{Root: &Node{Kind: KindTransform, Derivation: "bogus", Inputs: []*Node{SourceNode("jobs")}}}
	if _, err := Execute(context.Background(), ctx, p, cat, dict, ExecOptions{}); err == nil {
		t.Error("unknown derivation should fail")
	}
	// Derivation that does not apply.
	p2 := &Plan{Root: TransformNode(&derive.ExplodeDiscrete{Column: "rack"}, SourceNode("layout"))}
	if _, err := Execute(context.Background(), ctx, p2, cat, dict, ExecOptions{}); err == nil {
		t.Error("inapplicable derivation should fail")
	}
}

func TestExecuteWithCache(t *testing.T) {
	ctx := rdd.NewContext(2)
	dict := semantics.DefaultDictionary()
	cat, _ := testCatalog(ctx)
	c, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := testPlan()
	out1, err := Execute(context.Background(), ctx, p, cat, dict, ExecOptions{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	// Both the transform and the combine nodes are cached.
	if c.Len() != 2 {
		t.Errorf("cache entries = %d, want 2", c.Len())
	}
	if !c.Contains(p.Root.Hash()) {
		t.Error("root result should be cached")
	}
	out2, err := Execute(context.Background(), ctx, p, cat, dict, ExecOptions{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := out1.SortedBy("nodelist_exploded"), out2.SortedBy("nodelist_exploded")
	if len(r1) != len(r2) {
		t.Fatal("cached result differs in size")
	}
	for i := range r1 {
		if !r1[i].Equal(r2[i]) {
			t.Errorf("cached row %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	// A shared prefix reuses the cached transform result.
	p3 := &Plan{Root: TransformNode(&derive.ExplodeDiscrete{Column: "nodelist"}, SourceNode("jobs"))}
	if !c.Contains(p3.Root.Hash()) {
		t.Error("shared subtree should already be cached")
	}
}

func TestLoadNodeExecution(t *testing.T) {
	ctx := rdd.NewContext(1)
	dict := semantics.DefaultDictionary()
	cat, _ := testCatalog(ctx)

	// Unwrap the layout dataset to CSV, then execute a plan that loads it.
	path := filepath.Join(t.TempDir(), "layout.csv")
	if err := wrappers.Write(cat["layout"], wrappers.Source{Format: "csv", Path: path}); err != nil {
		t.Fatal(err)
	}
	p := &Plan{Root: LoadNode(wrappers.Source{Format: "csv", Path: path, Name: "layout"})}
	out, err := Execute(context.Background(), ctx, p, Catalog{}, dict, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 3 {
		t.Errorf("loaded count = %d", out.Count())
	}
	// The JSON round trip preserves the load spec.
	data, _ := p.Encode()
	p2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Execute(context.Background(), ctx, p2, Catalog{}, dict, ExecOptions{})
	if err != nil || out2.Count() != 3 {
		t.Errorf("decoded load plan failed: %v", err)
	}
}
