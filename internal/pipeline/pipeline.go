// Package pipeline implements ScrubJay's reproducible derivation sequences
// (§5.4 of the paper). A Plan is a tree of derivation steps over named
// source datasets; it serializes to compact, human-editable JSON containing
// everything needed to execute an identical processing run — the paper's
// answer to unshareable, unreproducible analysis scripts. Plans hash
// canonically, enabling the opt-in derivation-result cache.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"scrubjay/internal/cache"
	"scrubjay/internal/dataset"
	"scrubjay/internal/derive"
	"scrubjay/internal/obs"
	"scrubjay/internal/rdd"
	"scrubjay/internal/semantics"
	"scrubjay/internal/wrappers"
)

// Node kinds.
const (
	KindSource    = "source"
	KindTransform = "transform"
	KindCombine   = "combine"
)

// Node is one step of a derivation sequence.
type Node struct {
	// Kind is source, transform, or combine.
	Kind string `json:"kind"`
	// Dataset names a catalog dataset (source nodes).
	Dataset string `json:"dataset,omitempty"`
	// Load reads the source from storage instead of the catalog
	// (source nodes; optional).
	Load *wrappers.Source `json:"load,omitempty"`
	// Derivation and Params identify the derivation (transform/combine).
	Derivation string         `json:"derivation,omitempty"`
	Params     map[string]any `json:"params,omitempty"`
	// Inputs are the child steps: one for transforms, two for combines.
	Inputs []*Node `json:"inputs,omitempty"`
	// Estimate is the planner's predicted cost for this step, annotated when
	// the engine runs with a statistics store. Advisory only: it is excluded
	// from the canonical hash (identical derivations cache-share regardless
	// of what the planner predicted) and execution never reads it.
	Estimate *StepEstimate `json:"estimate,omitempty"`
}

// StepEstimate is the planner's cost prediction for one plan step.
type StepEstimate struct {
	// Rows is the predicted output row count.
	Rows int64 `json:"rows"`
	// CPU is the predicted cumulative per-row work (arbitrary units ~ rows
	// processed across the subtree).
	CPU int64 `json:"cpu"`
	// ShuffleBytes is the predicted distributed-exchange volume.
	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"`
	// Informed reports whether real statistics (rather than conservative
	// defaults) backed the prediction.
	Informed bool `json:"informed,omitempty"`
	// StatsInputs lists the statistics-store facts the prediction used
	// (e.g. "table:node_layout", "deriv:natural_join|...").
	StatsInputs []string `json:"stats_inputs,omitempty"`
}

// Plan is a complete derivation sequence.
type Plan struct {
	Root *Node `json:"root"`
}

// SourceNode builds a source step referencing a catalog dataset.
func SourceNode(name string) *Node { return &Node{Kind: KindSource, Dataset: name} }

// LoadNode builds a source step that loads from storage.
func LoadNode(src wrappers.Source) *Node {
	return &Node{Kind: KindSource, Load: &src, Dataset: src.Name}
}

// TransformNode wraps a child with a transformation.
func TransformNode(t derive.Transformation, in *Node) *Node {
	return &Node{Kind: KindTransform, Derivation: t.Name(), Params: t.Params(), Inputs: []*Node{in}}
}

// CombineNode joins two children with a combination.
func CombineNode(c derive.Combination, left, right *Node) *Node {
	return &Node{Kind: KindCombine, Derivation: c.Name(), Params: c.Params(), Inputs: []*Node{left, right}}
}

// Validate checks structural well-formedness.
func (n *Node) Validate() error {
	switch n.Kind {
	case KindSource:
		if n.Dataset == "" && n.Load == nil {
			return fmt.Errorf("pipeline: source node needs a dataset name or load spec")
		}
		if len(n.Inputs) != 0 {
			return fmt.Errorf("pipeline: source node must have no inputs")
		}
	case KindTransform:
		if n.Derivation == "" || len(n.Inputs) != 1 {
			return fmt.Errorf("pipeline: transform node needs a derivation and exactly one input")
		}
	case KindCombine:
		if n.Derivation == "" || len(n.Inputs) != 2 {
			return fmt.Errorf("pipeline: combine node needs a derivation and exactly two inputs")
		}
	default:
		return fmt.Errorf("pipeline: unknown node kind %q", n.Kind)
	}
	for _, in := range n.Inputs {
		if err := in.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// canonical renders a node as deterministic JSON-ish text for hashing.
func (n *Node) canonical(b *strings.Builder) {
	b.WriteByte('(')
	b.WriteString(n.Kind)
	b.WriteByte(':')
	if n.Dataset != "" {
		b.WriteString(n.Dataset)
	}
	if n.Load != nil {
		fmt.Fprintf(b, "load[%s %s %s]", n.Load.Format, n.Load.Path, n.Load.Table)
	}
	if n.Derivation != "" {
		b.WriteString(n.Derivation)
		keys := make([]string, 0, len(n.Params))
		for k := range n.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, ";%s=%v", k, n.Params[k])
		}
	}
	for _, in := range n.Inputs {
		in.canonical(b)
	}
	b.WriteByte(')')
}

// Hash returns a stable content hash of the subtree rooted at n, used as
// the derivation-cache key.
func (n *Node) Hash() string {
	var b strings.Builder
	n.canonical(&b)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// Hash returns the plan's content hash.
func (p *Plan) Hash() string { return p.Root.Hash() }

// MarshalJSON/Unmarshal use the natural struct encoding; provided as
// explicit helpers for CLI use.

// Encode renders the plan as indented JSON.
func (p *Plan) Encode() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// Decode parses a plan from JSON and validates it.
func Decode(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if p.Root == nil {
		return nil, fmt.Errorf("pipeline: plan has no root")
	}
	if err := p.Root.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// String renders the plan as an indented tree, bottom-up like the paper's
// Figure 5 (sources at the leaves, result at the root).
func (p *Plan) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		switch n.Kind {
		case KindSource:
			name := n.Dataset
			if name == "" && n.Load != nil {
				name = n.Load.Path
			}
			fmt.Fprintf(&b, "%ssource %s\n", indent, name)
		default:
			fmt.Fprintf(&b, "%s%s %s", indent, n.Kind, n.Derivation)
			if len(n.Params) > 0 {
				keys := make([]string, 0, len(n.Params))
				for k := range n.Params {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				b.WriteByte('(')
				for i, k := range keys {
					if i > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "%s=%v", k, n.Params[k])
				}
				b.WriteByte(')')
			}
			b.WriteByte('\n')
			for _, in := range n.Inputs {
				walk(in, depth+1)
			}
		}
	}
	walk(p.Root, 0)
	return b.String()
}

// Steps lists the derivation names in execution (post) order — useful for
// asserting plan structure in tests and experiments.
func (p *Plan) Steps() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, in := range n.Inputs {
			walk(in)
		}
		if n.Kind == KindSource {
			out = append(out, "source:"+n.Dataset)
		} else {
			out = append(out, n.Derivation)
		}
	}
	walk(p.Root)
	return out
}

// Catalog resolves source-node dataset names during execution.
type Catalog map[string]*dataset.Dataset

// ExecOptions configures plan execution.
type ExecOptions struct {
	// Cache, when non-nil, enables the derivation-result cache: every
	// non-source subtree is looked up by hash before computing and stored
	// after.
	Cache *cache.Cache
}

// Execute runs a plan against a catalog, reproducing the derivation
// sequence. ctx bounds the run: execution checks it between derivation
// steps, and when rc (or the catalog datasets' own rdd Context) is bound to
// the same Go context via rdd.Context.WithGoContext, a cancellation or
// deadline also aborts mid-derivation between partitions. A cancelled run
// returns an error wrapping ctx.Err().
func Execute(ctx context.Context, rc *rdd.Context, p *Plan, cat Catalog, dict *semantics.Dictionary, opts ExecOptions) (ds *dataset.Dataset, err error) {
	if err := p.Root.Validate(); err != nil {
		return nil, err
	}
	// Derivations abort deep inside rdd actions by panicking with
	// *rdd.Canceled (timeout/cancel) or *rdd.ExecFailure (a distributed
	// exchange died); surface those as ordinary errors here so callers
	// (the CLI, the serving layer) never see the panic.
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *rdd.Canceled:
				ds, err = nil, fmt.Errorf("pipeline: %w", e)
			case *rdd.ExecFailure:
				ds, err = nil, fmt.Errorf("pipeline: %w", e)
			default:
				panic(r)
			}
		}
	}()
	return execNode(ctx, rc, p.Root, cat, dict, opts)
}

func execNode(ctx context.Context, rc *rdd.Context, n *Node, cat Catalog, dict *semantics.Dictionary, opts ExecOptions) (*dataset.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if n.Kind != KindSource && opts.Cache != nil {
		if ds, ok := opts.Cache.Get(rc, n.Hash()); ok {
			if sp := rc.Span(); sp != nil {
				step := sp.Child(obs.KindStep, n.Derivation)
				step.SetBool(obs.AttrCacheHit, true)
				step.End()
			}
			return ds, nil
		}
	}
	var out *dataset.Dataset
	switch n.Kind {
	case KindSource:
		if n.Load != nil {
			ds, err := wrappers.Read(rc, *n.Load)
			if err != nil {
				return nil, err
			}
			out = ds
			break
		}
		ds, ok := cat[n.Dataset]
		if !ok {
			return nil, fmt.Errorf("pipeline: catalog has no dataset %q", n.Dataset)
		}
		out = ds
	case KindTransform:
		in, err := execNode(ctx, rc, n.Inputs[0], cat, dict, opts)
		if err != nil {
			return nil, err
		}
		t, err := derive.NewTransformation(n.Derivation, n.Params)
		if err != nil {
			return nil, err
		}
		out, err = applyStep(rc, n, func() (*dataset.Dataset, error) {
			return t.Apply(in, dict)
		})
		if err != nil {
			return nil, err
		}
	case KindCombine:
		left, err := execNode(ctx, rc, n.Inputs[0], cat, dict, opts)
		if err != nil {
			return nil, err
		}
		right, err := execNode(ctx, rc, n.Inputs[1], cat, dict, opts)
		if err != nil {
			return nil, err
		}
		c, err := derive.NewCombination(n.Derivation, n.Params)
		if err != nil {
			return nil, err
		}
		out, err = applyStep(rc, n, func() (*dataset.Dataset, error) {
			return c.Apply(left, right, dict)
		})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("pipeline: unknown node kind %q", n.Kind)
	}
	if n.Kind != KindSource && opts.Cache != nil {
		if err := opts.Cache.Put(n.Hash(), out); err != nil {
			return nil, fmt.Errorf("pipeline: caching %s: %w", n.Hash(), err)
		}
	}
	return out, nil
}

// applyStep runs one derivation under a step span: the rdd Context is
// re-scoped to the step so the derivation's stages nest beneath it, and
// restored afterwards (also on *rdd.Canceled panics, via defer). Untraced
// contexts take the nil-span fast path — no span, no allocation. Planner
// estimates annotated on the node are stamped onto the span so traces carry
// predicted next to actual cost.
func applyStep(rc *rdd.Context, n *Node, apply func() (*dataset.Dataset, error)) (*dataset.Dataset, error) {
	save := rc.Span()
	step := save.Child(obs.KindStep, n.Derivation)
	if est := n.Estimate; est != nil && step != nil {
		step.SetInt(obs.AttrEstRows, est.Rows)
		step.SetInt(obs.AttrEstCPU, est.CPU)
		if est.ShuffleBytes > 0 {
			step.SetInt(obs.AttrEstShuffleBytes, est.ShuffleBytes)
		}
	}
	rc.SetSpan(step)
	defer func() {
		rc.SetSpan(save)
		step.End()
	}()
	out, err := apply()
	if err != nil {
		step.SetStr(obs.AttrError, err.Error())
	}
	return out, err
}

// DeriveSchema computes the schema a plan will produce, given the catalog's
// schemas, without touching data — mirroring the engine's semantics-only
// reasoning.
func (p *Plan) DeriveSchema(schemas map[string]semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	return deriveNodeSchema(p.Root, schemas, dict)
}

func deriveNodeSchema(n *Node, schemas map[string]semantics.Schema, dict *semantics.Dictionary) (semantics.Schema, error) {
	switch n.Kind {
	case KindSource:
		s, ok := schemas[n.Dataset]
		if !ok {
			return nil, fmt.Errorf("pipeline: no schema for source %q", n.Dataset)
		}
		return s, nil
	case KindTransform:
		in, err := deriveNodeSchema(n.Inputs[0], schemas, dict)
		if err != nil {
			return nil, err
		}
		t, err := derive.NewTransformation(n.Derivation, n.Params)
		if err != nil {
			return nil, err
		}
		return t.DeriveSchema(in, dict)
	case KindCombine:
		l, err := deriveNodeSchema(n.Inputs[0], schemas, dict)
		if err != nil {
			return nil, err
		}
		r, err := deriveNodeSchema(n.Inputs[1], schemas, dict)
		if err != nil {
			return nil, err
		}
		c, err := derive.NewCombination(n.Derivation, n.Params)
		if err != nil {
			return nil, err
		}
		return c.DeriveSchema(l, r, dict)
	default:
		return nil, fmt.Errorf("pipeline: unknown node kind %q", n.Kind)
	}
}
