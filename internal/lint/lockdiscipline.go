package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// rddActions are the rdd (and pipeline) entry points that materialize data:
// they fan work out to the shared worker pool and block until every task
// finishes. Holding a mutex across one serializes the data-parallel engine
// at best and deadlocks it at worst (a task that needs the same mutex can
// never run).
var rddActions = map[string]bool{
	"Collect": true, "Count": true, "Take": true, "Reduce": true,
	"Aggregate": true, "SortBy": true, "CountByKey": true,
	"GroupByKey": true, "ReduceByKey": true, "CoGroup": true,
	"JoinHash": true, "BroadcastJoin": true, "Repartition": true,
	"Distinct": true, "Execute": true,
}

// LockDisciplineAnalyzer flags mutexes held across a channel operation or a
// call into rdd execution. Both are deadlock sources in cache, kvstore and
// rdd: the worker pool and the lock form a cycle the runtime cannot break.
func LockDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockdiscipline",
		Doc: "no sync.Mutex/RWMutex may be held across a channel send/receive, " +
			"a select, or a call into rdd execution (Collect, Count, shuffles, " +
			"pipeline.Execute); the worker pool plus a held lock is a deadlock cycle.",
		Run: runLockDiscipline,
	}
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					walkLocked(pass, fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				// Function literals have their own defer scope; they are
				// walked as independent bodies (a lock taken by the
				// enclosing function is invisible here — closures run on
				// arbitrary goroutines in this codebase).
				walkLocked(pass, fn.Body.List, map[string]bool{})
				return false
			}
			return true
		})
	}
}

// lockMethod classifies a call as a sync (RW)Mutex lock or unlock, returning
// the rendered receiver expression ("c.mu") as the lock identity.
func lockMethod(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFn := info.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), obj.Name(), true
	}
	return "", "", false
}

// walkLocked walks a statement list in order, tracking the set of held lock
// keys and reporting hazards that occur while any lock is held. Branch
// bodies are walked with a copy of the held set; a lock released inside a
// branch is (conservatively) still considered held after it.
func walkLocked(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	info := pass.Pkg.Info
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, method, ok := lockMethod(info, call); ok {
					switch method {
					case "Lock", "RLock":
						held[key] = true
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() pins the lock for the rest of the body;
			// the held set intentionally keeps it.
			if _, _, ok := lockMethod(info, s.Call); ok {
				continue
			}
		}
		if len(held) > 0 {
			reportLockedHazards(pass, stmt, held)
		}
		// Recurse into compound statements with a copy of the held set.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			walkLocked(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			walkLocked(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					walkLocked(pass, blk.List, copyHeld(held))
				} else {
					walkLocked(pass, []ast.Stmt{s.Else}, copyHeld(held))
				}
			}
		case *ast.ForStmt:
			walkLocked(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			walkLocked(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(pass, cc.Body, copyHeld(held))
				}
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// reportLockedHazards inspects one statement (excluding nested function
// literals and nested compound bodies, which the walker visits itself) for
// channel operations and rdd actions.
func reportLockedHazards(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	info := pass.Pkg.Info
	locks := heldNames(held)
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if sel, ok := node.(*ast.SelectStmt); ok {
				pass.Reportf(sel.Pos(), "select while holding %s: a blocked case deadlocks every other holder of the lock", locks)
			}
			return n == ast.Node(stmt) // only inspect the statement's own level
		case *ast.SendStmt:
			pass.Reportf(node.Arrow, "channel send while holding %s: if the channel blocks, every other acquirer of the lock deadlocks", locks)
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				pass.Reportf(node.OpPos, "channel receive while holding %s: if the channel blocks, every other acquirer of the lock deadlocks", locks)
			}
		case *ast.CallExpr:
			if pkg, name, ok := parallelCallee(info, node); ok && pkg == "rdd" && rddActions[name] {
				pass.Reportf(node.Pos(), "calls rdd.%s while holding %s: rdd actions block on the shared worker pool; a task needing the same lock deadlocks", name, locks)
			} else if name, pkg, ok := pkgCallee(info, node); ok && pkg == "pipeline" && rddActions[name] {
				pass.Reportf(node.Pos(), "calls pipeline.%s while holding %s: plan execution blocks on the shared worker pool; a task needing the same lock deadlocks", name, locks)
			} else if fi := pass.IP.StaticCallee(info, node); fi != nil && fi.Summary.Blocks {
				// Interprocedural: the blocking operation hides inside a
				// helper, but the summary chain names it.
				pass.Reportf(node.Pos(), "calls %s while holding %s: %s blocks (%s); if it blocks, every other acquirer of the lock deadlocks",
					fi.Obj.Name(), locks, fi.Obj.Name(), fi.Summary.BlockDetail)
			}
		}
		return true
	})
}

// pkgCallee resolves a call to (function name, defining package name).
func pkgCallee(info *types.Info, call *ast.CallExpr) (name, pkg string, ok bool) {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return "", "", false
	}
	obj, isFn := info.ObjectOf(id).(*types.Func)
	if !isFn || obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Name(), obj.Pkg().Name(), true
}

// heldNames renders the held lock set for messages.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
