package lint

import (
	"go/ast"
	"strings"
)

// goroleakPackages are the long-lived layers (PR-2's daemon, the rdd
// worker pool, and the distributed exchange — shuffle servers, the cluster
// registry/scheduler, and the sjworker process) where a leaked goroutine
// accumulates across queries instead of dying with the process.
var goroleakPackages = map[string]bool{
	"rdd":      true,
	"server":   true,
	"shuffle":  true,
	"cluster":  true,
	"sjworker": true,
}

// GoroLeakAnalyzer flags goroutines with no termination edge. Every `go`
// statement in internal/server and internal/rdd must be able to exit: via a
// context-Done check, a receive on a closable channel (including
// range-over-channel), or a return reached from the loop. The check is
// interprocedural — `go pump()` is flagged when pump's summary says it runs
// forever, even though the offending loop is in another function.
func GoroLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc: "goroutines spawned in internal/server and internal/rdd must have " +
			"a termination edge — context cancellation, a closed-channel receive, " +
			"or a WaitGroup-signalled return; unbounded loops are found through " +
			"function summaries even when the loop lives in a named callee.",
		AppliesTo: func(pkg *Package) bool {
			return goroleakPackages[pathBase(pkg.Path)] || goroleakPackages[pkg.Name]
		},
		Run: runGoroLeak,
	}
}

const goroRemedy = "give it a termination edge: a context-Done select, a receive on a channel the owner closes, or a WaitGroup-accounted return"

func runGoroLeak(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Test goroutines die with the test binary; the invariant guards
		// the long-lived daemon and worker pool.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fn := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				checkGoroLit(pass, gs, fn)
			default:
				if fi := pass.IP.StaticCallee(info, gs.Call); fi != nil && fi.Summary.RunsForever {
					pass.Reportf(gs.Pos(),
						"go %s: %s never terminates (%s) — %s",
						fi.Obj.Name(), fi.Obj.Name(), fi.Summary.ForeverDetail, goroRemedy)
				}
			}
			return true
		})
	}
}

// checkGoroLit inspects a `go func(){...}()` body: an unbounded for-loop
// with no exit edge, or an unconditional call to a function whose summary
// runs forever, leaks the goroutine.
func checkGoroLit(pass *Pass, gs *ast.GoStmt, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // a nested literal runs on whoever invokes it
		case *ast.ForStmt:
			if node.Cond == nil && loopRunsForever(info, node) {
				pass.Reportf(gs.Pos(),
					"goroutine runs an unbounded for-loop with no return, break, or channel/context edge — %s", goroRemedy)
				return false
			}
		case *ast.CallExpr:
			if fi := pass.IP.StaticCallee(info, node); fi != nil && fi.Summary.RunsForever {
				pass.Reportf(gs.Pos(),
					"goroutine calls %s, which never terminates (%s) — %s",
					fi.Obj.Name(), fi.Summary.ForeverDetail, goroRemedy)
				return false
			}
		}
		return true
	})
}
