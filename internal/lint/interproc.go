package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural layer of the analyzer framework: a call
// graph over the loaded module plus one dataflow summary per declared
// function, computed bottom-up over strongly connected components. Analyzers
// query summaries through Pass.IP, so a violation hidden behind a helper
// function ("the closure calls bump(), and bump writes a global") is as
// visible as a direct one. Summaries are deliberately coarse — sets of
// monotone facts, no path or context sensitivity — because every fact feeds
// a CI gate that must be fast, deterministic, and explainable in one
// finding message.

// ParamFacts are dataflow facts about one parameter (or receiver).
type ParamFacts uint8

const (
	// ParamMutated: data reachable through the parameter is written —
	// through a pointer, a slice/map element, or a reference field —
	// directly or by a transitive callee.
	ParamMutated ParamFacts = 1 << iota
	// ParamEscapes: the parameter is returned, stored into a global, a
	// field, an element, a channel, or a composite literal, or passed to a
	// callee that lets it escape. An escaping parameter may be retained
	// beyond the call ("published").
	ParamEscapes
	// ParamToGoroutine: the parameter flows into a go statement — it is
	// referenced by code that outlives the call frame on another goroutine.
	ParamToGoroutine
	// ParamToGlobal: the parameter is stored into package-level state,
	// directly or by a transitive callee — the strongest pin: it outlives
	// every call frame.
	ParamToGlobal
	// ParamRetained: the parameter is stored into heap-reachable storage —
	// a field, a slice/map element, a channel send, or a composite literal.
	// Unlike a plain ParamEscapes return (where the caller keeps custody of
	// the value it receives back), a retained parameter may be referenced
	// after the call returns, which forbids the caller from recycling the
	// buffer (arena/slab reuse would corrupt the retained view).
	ParamRetained
	// ParamBoxed: the parameter is converted to an interface (passed to an
	// interface-typed parameter or explicitly converted), allocating a box
	// when the value is not pointer-shaped.
	ParamBoxed
	// ParamCaptured: the parameter is referenced from a function literal.
	// Weaker than ParamToGoroutine — many captures are read-only and die
	// with the call (a sort.Slice comparator) — but a capturing literal
	// that itself escapes pins the parameter with it.
	ParamCaptured
	// ParamReleased: the function calls the parameter's release method —
	// Close, Stop, or End — directly, in a deferred/nested literal, or via
	// a transitive callee. leakcheck uses this so that handing a resource
	// to a helper that closes it counts as releasing it.
	ParamReleased
)

// Summary is the dataflow summary of one declared function.
type Summary struct {
	recv   *types.Var
	params []*types.Var
	facts  map[*types.Var]ParamFacts

	// WritesGlobal: the function (or a transitive callee, or a closure it
	// constructs) assigns package-level state.
	WritesGlobal bool
	// GlobalDetail names the offending write, e.g. `assigns package-level
	// variable "hits"` or `calls bump: assigns package-level variable "n"`.
	GlobalDetail string

	// Blocks: the function body — excluding nested function literals, which
	// run on whichever goroutine invokes them — performs a channel send or
	// receive, a select without default, ranges over a channel, or calls
	// into rdd/pipeline execution, directly or transitively.
	Blocks bool
	// BlockDetail describes the first blocking cause, chaining through
	// callees: "channel receive", "calls drain: channel send", ...
	BlockDetail string

	// RunsForever: the function contains an unbounded for-loop with no
	// return, break, goto, channel receive, or context-Done edge — or
	// unconditionally calls a function that does. A goroutine running such
	// a body can never terminate.
	RunsForever bool
	// ForeverDetail describes the loop or the call chain reaching it.
	ForeverDetail string

	// CtxParam is the first parameter of type context.Context, nil if none.
	CtxParam *types.Var
	// UsesCtx: the context parameter is referenced somewhere in the body
	// (threaded into a call, selected on, checked, or stored).
	UsesCtx bool

	// Allocs are the function's own heap allocation sites, in source order,
	// each classified loop-carried or once-per-call (see escape.go).
	Allocs []AllocSite
	// Allocates: the function (or a transitive callee outside a function
	// literal) performs at least one heap allocation per call.
	Allocates bool
	// AllocDetail describes the first allocation cause, chaining through
	// callees: "makes a new []value.Value", "calls NewBuilder: makes a new
	// []value.Value", ...
	AllocDetail string
}

// RecvFacts returns the facts for the method receiver.
func (s *Summary) RecvFacts() ParamFacts {
	if s.recv == nil {
		return 0
	}
	return s.facts[s.recv]
}

// ArgFacts returns the facts for the parameter bound to the i'th call
// argument (0-based, receiver not counted). Arguments past a variadic
// function's last parameter collapse onto that parameter.
func (s *Summary) ArgFacts(i int) ParamFacts {
	if len(s.params) == 0 {
		return 0
	}
	if i >= len(s.params) {
		i = len(s.params) - 1
	}
	return s.facts[s.params[i]]
}

// paramFact reports whether v is a parameter/receiver of this summary and
// returns its facts.
func (s *Summary) paramFact(v *types.Var) (ParamFacts, bool) {
	if v == nil {
		return 0, false
	}
	if v == s.recv {
		return s.facts[v], true
	}
	for _, p := range s.params {
		if p == v {
			return s.facts[v], true
		}
	}
	return 0, false
}

func (s *Summary) addFact(v *types.Var, f ParamFacts) bool {
	if v == nil {
		return false
	}
	if s.facts[v]&f == f {
		return false
	}
	s.facts[v] |= f
	return true
}

// FuncInfo is one node of the module call graph.
type FuncInfo struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Summary Summary

	calls     []callRec
	loopCalls []loopCall
}

// callRec records one static call site for the fixpoint fold: which
// module-internal function is called, and which of the caller's
// parameters/receiver alias the receiver and argument roots.
type callRec struct {
	callee   *types.Func
	recvRoot *types.Var
	argRoots []*types.Var
	inLit    bool
	pos      token.Pos
}

// Interproc is the queryable result of the module-wide summary computation.
type Interproc struct {
	fset  *token.FileSet
	funcs map[*types.Func]*FuncInfo
}

// FuncOf returns the call-graph node for a declared module function, nil
// for functions outside the module (stdlib) or dynamic callees.
func (ip *Interproc) FuncOf(obj *types.Func) *FuncInfo {
	if ip == nil || obj == nil {
		return nil
	}
	return ip.funcs[obj.Origin()]
}

// SummaryOf returns the summary for a declared module function.
func (ip *Interproc) SummaryOf(obj *types.Func) (*Summary, bool) {
	fi := ip.FuncOf(obj)
	if fi == nil {
		return nil, false
	}
	return &fi.Summary, true
}

// StaticCallee resolves a call expression to the module function it
// invokes, nil when the callee is dynamic (function value, interface
// method) or lives outside the module.
func (ip *Interproc) StaticCallee(info *types.Info, call *ast.CallExpr) *FuncInfo {
	return ip.FuncOf(calleeObj(info, call))
}

// calleeObj resolves the static *types.Func a call invokes, generic origins
// included; nil for dynamic calls.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.IndexExpr: // explicit generic instantiation
		if c, ok := unwrapIndexFun(fn.X); ok {
			id = c
		}
	case *ast.IndexListExpr:
		if c, ok := unwrapIndexFun(fn.X); ok {
			id = c
		}
	}
	if id == nil {
		return nil
	}
	obj, ok := info.ObjectOf(id).(*types.Func)
	if !ok || obj == nil {
		return nil
	}
	return obj.Origin()
}

func unwrapIndexFun(e ast.Expr) (*ast.Ident, bool) {
	switch fn := ast.Unparen(e).(type) {
	case *ast.Ident:
		return fn, true
	case *ast.SelectorExpr:
		return fn.Sel, true
	}
	return nil, false
}

// BuildInterproc computes the call graph and function summaries for every
// package of the module. Packages are already in dependency order; within
// mutually recursive functions the monotone facts are iterated to fixpoint
// over the call-graph SCCs, so the result is deterministic regardless of
// declaration order.
func BuildInterproc(m *Module) *Interproc {
	ip := &Interproc{fset: m.Fset, funcs: map[*types.Func]*FuncInfo{}}
	var order []*FuncInfo // declaration order: deterministic
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || obj == nil {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				ip.funcs[obj] = fi
				order = append(order, fi)
			}
		}
	}
	for _, fi := range order {
		collectIntra(fi)
		collectAllocs(fi)
	}
	for _, scc := range sccOrder(ip, order) {
		// Callee-first SCC order: facts below this component are final, so
		// one fold suffices unless the component is mutually recursive.
		for changed := true; changed; {
			changed = false
			for _, fi := range scc {
				if foldCalls(ip, fi) {
					changed = true
				}
			}
		}
	}
	return ip
}

// sccOrder groups the call graph into strongly connected components in
// callee-first (reverse topological) order, via Tarjan's algorithm.
func sccOrder(ip *Interproc, order []*FuncInfo) [][]*FuncInfo {
	index := map[*FuncInfo]int{}
	low := map[*FuncInfo]int{}
	onStack := map[*FuncInfo]bool{}
	var stack []*FuncInfo
	var sccs [][]*FuncInfo
	next := 0

	var strongconnect func(fi *FuncInfo)
	strongconnect = func(fi *FuncInfo) {
		index[fi] = next
		low[fi] = next
		next++
		stack = append(stack, fi)
		onStack[fi] = true
		for _, rec := range fi.calls {
			callee := ip.funcs[rec.callee]
			if callee == nil {
				continue
			}
			if _, seen := index[callee]; !seen {
				strongconnect(callee)
				if low[callee] < low[fi] {
					low[fi] = low[callee]
				}
			} else if onStack[callee] && index[callee] < low[fi] {
				low[fi] = index[callee]
			}
		}
		if low[fi] == index[fi] {
			var scc []*FuncInfo
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == fi {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fi := range order {
		if _, seen := index[fi]; !seen {
			strongconnect(fi)
		}
	}
	return sccs
}

// foldCalls merges callee summaries into fi's summary, returning whether
// any fact changed (the fixpoint driver).
func foldCalls(ip *Interproc, fi *FuncInfo) bool {
	s := &fi.Summary
	changed := false
	for _, rec := range fi.calls {
		callee := ip.funcs[rec.callee]
		if callee == nil {
			continue
		}
		cs := &callee.Summary
		name := rec.callee.Name()
		if cs.WritesGlobal && !s.WritesGlobal {
			s.WritesGlobal = true
			s.GlobalDetail = "calls " + name + ": " + cs.GlobalDetail
			changed = true
		}
		if cs.Blocks && !rec.inLit && !s.Blocks {
			s.Blocks = true
			s.BlockDetail = "calls " + name + ": " + cs.BlockDetail
			changed = true
		}
		if cs.RunsForever && !rec.inLit && !s.RunsForever {
			s.RunsForever = true
			s.ForeverDetail = "calls " + name + ": " + cs.ForeverDetail
			changed = true
		}
		if cs.Allocates && !rec.inLit && !s.Allocates {
			// A closure that calls an allocating helper only allocates when
			// the closure runs, so literals are excluded here; hotalloc sees
			// their call sites through loopCalls instead.
			s.Allocates = true
			s.AllocDetail = "calls " + name + ": " + cs.AllocDetail
			changed = true
		}
		if rec.recvRoot != nil {
			if _, ok := s.paramFact(rec.recvRoot); ok {
				if f := cs.RecvFacts(); f != 0 && s.addFact(rec.recvRoot, f) {
					changed = true
				}
			}
		}
		for i, root := range rec.argRoots {
			if root == nil {
				continue
			}
			if _, ok := s.paramFact(root); !ok {
				continue
			}
			f := cs.ArgFacts(i)
			if f&ParamMutated != 0 && !sharedRootType(root.Type()) {
				// A value copy passed by value cannot be mutated in place.
				f &^= ParamMutated
			}
			if f != 0 && s.addFact(root, f) {
				changed = true
			}
		}
	}
	return changed
}

// sharedRootType reports whether writes through a value of type t are
// visible to other holders of the same value: pointers, slices, maps and
// channels share their referent; plain structs and scalars are copies.
func sharedRootType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// sharedWritePath reports whether the LHS chain from root to the written
// cell passes through shared storage: the root itself is a reference type,
// or the chain crosses an index or pointer dereference (a write through a
// reference field of a value struct still lands in shared backing memory).
func sharedWritePath(lhs ast.Expr, rootType types.Type) bool {
	if sharedRootType(rootType) {
		return true
	}
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.IndexExpr, *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// collectIntra computes the intraprocedural facts and call records of one
// function declaration.
func collectIntra(fi *FuncInfo) {
	info := fi.Pkg.Info
	s := &fi.Summary
	s.facts = map[*types.Var]ParamFacts{}
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) == 1 && len(fi.Decl.Recv.List[0].Names) == 1 {
		if v, ok := info.Defs[fi.Decl.Recv.List[0].Names[0]].(*types.Var); ok {
			s.recv = v
		}
	}
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			for _, name := range field.Names {
				v, ok := info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				s.params = append(s.params, v)
				if s.CtxParam == nil && isContextType(v.Type()) {
					s.CtxParam = v
				}
			}
		}
	}

	isParam := func(v *types.Var) bool {
		if v == nil {
			return false
		}
		_, ok := s.paramFact(v)
		return ok
	}
	rootVar := func(e ast.Expr) *types.Var {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		v, _ := info.ObjectOf(id).(*types.Var)
		return v
	}
	// argRoot unwraps &x and slicings so bump(&sum) binds to sum.
	argRoot := func(e ast.Expr) *types.Var {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = sl.X
		}
		return rootVar(e)
	}
	isGlobal := func(v *types.Var) bool {
		return v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	}
	markEscape := func(e ast.Expr, facts ParamFacts) {
		e = ast.Unparen(e)
		// The result of append lands wherever the expression does, and so
		// do the appended values: global = append(global, p) publishes p.
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					for _, a := range call.Args {
						if v := argRoot(a); isParam(v) {
							s.addFact(v, facts)
						}
					}
					return
				}
			}
		}
		if v := argRoot(e); isParam(v) {
			s.addFact(v, facts)
		}
	}
	recordWrite := func(lhs ast.Expr, define bool) {
		v := rootVar(lhs)
		if v == nil {
			return
		}
		if isGlobal(v) {
			if !define && !s.WritesGlobal {
				s.WritesGlobal = true
				s.GlobalDetail = "assigns package-level variable \"" + v.Name() + "\""
			}
			return
		}
		if isParam(v) && !define {
			if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
				return // rebinding the parameter name is local
			}
			if sharedWritePath(ast.Unparen(lhs), v.Type()) {
				s.addFact(v, ParamMutated)
			}
		}
	}

	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncLit:
				// The literal's body contributes WritesGlobal and param
				// captures, but not Blocks/RunsForever: closures run on
				// whichever goroutine eventually invokes them.
				ast.Inspect(node.Body, func(cn ast.Node) bool {
					if id, ok := cn.(*ast.Ident); ok {
						if v, _ := info.ObjectOf(id).(*types.Var); isParam(v) {
							s.addFact(v, ParamCaptured)
							if v == s.CtxParam {
								s.UsesCtx = true
							}
						}
					}
					return true
				})
				walk(node.Body, true)
				return false
			case *ast.Ident:
				if s.CtxParam != nil && !s.UsesCtx {
					if v, _ := info.ObjectOf(node).(*types.Var); v == s.CtxParam {
						s.UsesCtx = true
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					recordWrite(lhs, node.Tok == token.DEFINE)
				}
				// Storing a parameter anywhere but a plain local variable
				// publishes it; the landing site grades the escape.
				var pub ParamFacts
				for _, lhs := range node.Lhs {
					if isGlobal(rootVar(lhs)) {
						pub |= ParamEscapes | ParamRetained | ParamToGlobal
					} else if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain {
						pub |= ParamEscapes | ParamRetained
					}
				}
				if pub != 0 {
					for _, rhs := range node.Rhs {
						markEscape(rhs, pub)
					}
				}
			case *ast.IncDecStmt:
				recordWrite(node.X, false)
			case *ast.SendStmt:
				if !inLit && !s.Blocks {
					s.Blocks = true
					s.BlockDetail = "channel send"
				}
				markEscape(node.Value, ParamEscapes|ParamRetained)
			case *ast.UnaryExpr:
				if node.Op == token.ARROW && !inLit && !s.Blocks {
					s.Blocks = true
					s.BlockDetail = "channel receive"
				}
			case *ast.SelectStmt:
				if !inLit && !s.Blocks && !selectHasDefault(node) {
					s.Blocks = true
					s.BlockDetail = "select"
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[node.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !inLit && !s.Blocks {
						s.Blocks = true
						s.BlockDetail = "range over channel"
					}
				}
			case *ast.ReturnStmt:
				// Returning hands custody back to the caller: an escape,
				// but not a retention.
				for _, res := range node.Results {
					markEscape(res, ParamEscapes)
				}
			case *ast.CompositeLit:
				for _, elt := range node.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					markEscape(elt, ParamEscapes|ParamRetained)
				}
			case *ast.GoStmt:
				for _, arg := range node.Call.Args {
					if v := argRoot(arg); isParam(v) {
						s.addFact(v, ParamToGoroutine)
					}
				}
			case *ast.ForStmt:
				if node.Cond == nil && !inLit && !s.RunsForever && loopRunsForever(info, node) {
					s.RunsForever = true
					s.ForeverDetail = "unbounded for-loop with no return, break, or channel/context edge"
				}
			case *ast.CallExpr:
				callIntra(fi, node, inLit, isParam, argRoot, rootVar)
			}
			return true
		})
	}
	walk(fi.Decl.Body, false)
}

// callIntra records one call site's contribution: Blocks facts for rdd and
// pipeline actions, escape facts for external callees, and a callRec edge
// for module-internal callees.
func callIntra(fi *FuncInfo, call *ast.CallExpr, inLit bool,
	isParam func(*types.Var) bool, argRoot func(ast.Expr) *types.Var, rootVar func(ast.Expr) *types.Var) {
	info := fi.Pkg.Info
	s := &fi.Summary
	if pkg, name, ok := parallelCallee(info, call); ok && pkg == "rdd" && rddActions[name] {
		if !inLit && !s.Blocks {
			s.Blocks = true
			s.BlockDetail = "rdd action " + name
		}
	} else if name, pkg, ok := pkgCallee(info, call); ok && pkg == "pipeline" && rddActions[name] {
		if !inLit && !s.Blocks {
			s.Blocks = true
			s.BlockDetail = "pipeline." + name
		}
	}
	// A parameter handed to an interface-typed slot is boxed, whoever the
	// callee is; the expression type of call.Fun carries the signature for
	// static and dynamic calls alike.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil && !tv.IsType() {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			np := sig.Params().Len()
			for i, arg := range call.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && i >= np-1:
					if call.Ellipsis.IsValid() {
						continue
					}
					pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
				case i < np:
					pt = sig.Params().At(i).Type()
				}
				if pt == nil || !types.IsInterface(pt) {
					continue
				}
				if v := argRoot(arg); isParam(v) && !types.IsInterface(v.Type()) {
					s.addFact(v, ParamBoxed)
				}
			}
		}
	}
	// A release-method call on the parameter itself (not on one of its
	// fields) records ParamReleased: `func drop(c *Conn) { c.Close() }`
	// releases its argument wherever it is called from.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && releaseMethods[sel.Sel.Name] {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if v, _ := info.ObjectOf(id).(*types.Var); isParam(v) {
				s.addFact(v, ParamReleased)
			}
		}
	}
	obj := calleeObj(info, call)
	if obj == nil {
		// Dynamic callee: conservatively treat reference-typed parameter
		// arguments as escaping.
		for _, arg := range call.Args {
			if v := argRoot(arg); isParam(v) && sharedRootType(v.Type()) {
				s.addFact(v, ParamEscapes)
			}
		}
		return
	}
	rec := callRec{callee: obj, inLit: inLit, pos: call.Pos()}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selObj, ok := info.ObjectOf(sel.Sel).(*types.Func); ok && selObj != nil {
			if sig, ok := selObj.Type().(*types.Signature); ok && sig.Recv() != nil {
				rec.recvRoot = rootVar(sel.X)
			}
		}
	}
	for _, arg := range call.Args {
		rec.argRoots = append(rec.argRoots, argRoot(arg))
	}
	fi.calls = append(fi.calls, rec)
	if obj.Pkg() == nil || fi.Pkg.Types == nil {
		return
	}
	modPath := modulePathOf(fi.Pkg)
	if modPath == "" || !samePathPrefix(obj.Pkg().Path(), modPath) {
		// External callee (stdlib): a reference-typed parameter handed to
		// unknown code must be assumed retained.
		for i, root := range rec.argRoots {
			_ = i
			if isParam(root) && sharedRootType(root.Type()) {
				s.addFact(root, ParamEscapes)
			}
		}
	}
}

// modulePathOf derives the module path from a package's import path and
// its position in the module (Path always has the module path as prefix).
func modulePathOf(pkg *Package) string {
	return pkg.modPath
}

func samePathPrefix(p, prefix string) bool {
	return p == prefix || (len(p) > len(prefix) && p[:len(prefix)] == prefix && p[len(prefix)] == '/')
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// loopRunsForever reports whether an unbounded for-loop (no condition) has
// no termination edge: no return/break/goto, no channel receive (unary or
// select case or range-over-channel), and no context-Done mention, anywhere
// in the body outside nested function literals.
func loopRunsForever(info *types.Info, loop *ast.ForStmt) bool {
	exits := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if exits {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if node.Tok == token.BREAK || node.Tok == token.GOTO {
				exits = true
			}
		case *ast.ReturnStmt:
			exits = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				exits = true // a closed channel unblocks the receive
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					exits = true
				}
			}
		case *ast.CallExpr:
			if isCtxDoneCall(info, node) {
				exits = true
			}
		}
		return !exits
	})
	return !exits
}

// isCtxDoneCall recognizes ctx.Done() on a context.Context value.
func isCtxDoneCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	if tv, ok := info.Types[sel.X]; ok {
		return isContextType(tv.Type)
	}
	return false
}
