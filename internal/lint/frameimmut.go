package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// frameContract is the invariant the frameimmut analyzer enforces, quoted in
// findings (DESIGN.md "Frame immutability").
const frameContract = "a *frame.Frame is immutable once published: batches are shared by downstream partitions, the plan cache, and in-flight streams without copies or locks"

// FrameImmutAnalyzer flags writes to frame.Frame/Column storage — column
// payload vectors, presence bitmaps, hash vectors — after the frame has
// been published (returned from a builder/constructor call, received as a
// parameter, captured by a closure, or stored). In-place mutation is only
// legal on storage the current function freshly allocated and has not yet
// published. The check is interprocedural: passing a published frame (or
// one of its live payload slices) to a helper whose summary mutates that
// parameter is flagged at the call site, and aliasing through slices
// captured by closures handed to rdd.ExchangePartitions/ZipPartitions is
// flagged inside the closure.
func FrameImmutAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "frameimmut",
		Doc: "no writes to frame.Frame/Column payload vectors, presence bitmaps, " +
			"or hash vectors after the frame is frozen/published (Builder.Freeze, " +
			"constructor return, parameter, capture); mutation helpers are found " +
			"through function summaries; " + frameContract + ".",
		Run: runFrameImmut,
	}
}

func runFrameImmut(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFrameFn(pass, fd)
			}
		}
	}
}

// frameDataName resolves t (through pointers, slices and arrays) to a named
// type declared in a package named "frame" and returns its name.
func frameDataName(t types.Type) (string, bool) {
	for {
		switch u := types.Unalias(t).(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		case *types.Named:
			pkg := u.Obj().Pkg()
			if pkg != nil && pkg.Name() == "frame" {
				return u.Obj().Name(), true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// isFrameData reports whether t stores frame data whose mutation the
// invariant forbids (Frame or Column, directly or via pointer/slice).
func isFrameData(t types.Type) bool {
	name, ok := frameDataName(t)
	return ok && (name == "Frame" || name == "Column")
}

// isFrameBuilder reports whether t is the frame Builder (pre-freeze
// accumulation, which owns its storage and may write freely).
func isFrameBuilder(t types.Type) bool {
	name, ok := frameDataName(t)
	return ok && name == "Builder"
}

// frameFnState is the per-function-declaration publication analysis.
type frameFnState struct {
	pass *Pass
	info *types.Info
	decl *ast.FuncDecl
	// pubPos records, per frame-typed local, the earliest source position
	// at which the value is published (escapes the function's private
	// ownership). Locals born from call results, parameters, captures and
	// range elements are published from their declaration.
	pubPos map[*types.Var]token.Pos
	// defined marks vars introduced by := / var / range inside this decl;
	// frame-typed vars inside the body that are NOT in this set are
	// function-literal parameters (published by definition).
	defined map[*types.Var]bool
}

func checkFrameFn(pass *Pass, fd *ast.FuncDecl) {
	st := &frameFnState{
		pass:    pass,
		info:    pass.Pkg.Info,
		decl:    fd,
		pubPos:  map[*types.Var]token.Pos{},
		defined: map[*types.Var]bool{},
	}
	st.collectPublications()
	st.checkWrites()
}

// localFrameVar resolves e's root identifier to a frame-data-typed variable
// declared inside this function declaration.
func (st *frameFnState) localFrameVar(e ast.Expr) *types.Var {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	v, ok := st.info.ObjectOf(id).(*types.Var)
	if !ok || v == nil || !isFrameData(v.Type()) {
		return nil
	}
	if v.Pos() < st.decl.Pos() || v.Pos() > st.decl.End() {
		return nil
	}
	return v
}

// publish records a publication event, keeping the earliest position.
func (st *frameFnState) publish(v *types.Var, pos token.Pos) {
	if v == nil {
		return
	}
	if old, ok := st.pubPos[v]; !ok || pos < old {
		st.pubPos[v] = pos
	}
}

// freshExpr reports whether an initializer yields storage this function
// privately owns: composite literals, make/new, conversions and appends of
// fresh values. Call results, parameters, captures, loads from fields or
// elements are all published-born — some other owner may hold an alias.
func (st *frameFnState) freshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return st.freshExpr(x.X)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			switch b, _ := st.info.ObjectOf(id).(*types.Builtin); {
			case b != nil && (b.Name() == "make" || b.Name() == "new"):
				return true
			case b != nil && b.Name() == "append":
				return len(x.Args) > 0 && st.freshLocalOrSelf(x.Args[0])
			}
			// A conversion Column(x) keeps x's ownership.
			if tn, ok := st.info.ObjectOf(id).(*types.TypeName); ok && tn != nil {
				return len(x.Args) == 1 && st.freshExpr(x.Args[0])
			}
		}
	}
	return false
}

// freshLocalOrSelf reports whether e is a still-unpublished local or a
// fresh expression (the append-grows-own-slice idiom).
func (st *frameFnState) freshLocalOrSelf(e ast.Expr) bool {
	if v := st.localFrameVar(e); v != nil {
		if _, published := st.pubPos[v]; !published {
			return true
		}
		return false
	}
	return st.freshExpr(e)
}

// collectPublications walks the body once, classifying every frame-typed
// local as fresh or published and recording publication positions.
func (st *frameFnState) collectPublications() {
	info := st.info
	ast.Inspect(st.decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					// Storing into a field/element/global publishes any
					// frame mentioned on the matching RHS.
					if i < len(node.Rhs) {
						st.publishMentioned(node.Rhs[i])
					}
					continue
				}
				v, _ := info.ObjectOf(id).(*types.Var)
				if v == nil {
					continue
				}
				if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					// Assigning to a package-level variable publishes the
					// matching RHS frames.
					if i < len(node.Rhs) {
						st.publishMentioned(node.Rhs[i])
					}
					continue
				}
				if node.Tok == token.DEFINE {
					st.defined[v] = true
				}
				if !isFrameData(v.Type()) {
					continue
				}
				switch {
				case len(node.Rhs) == 1 && len(node.Lhs) > 1:
					// Multi-value: v, err := f() — call-born, published.
					st.publish(v, node.Pos())
				case i < len(node.Rhs) && st.freshExpr(node.Rhs[i]):
					// Fresh storage: private until a publication event.
				default:
					st.publish(v, node.Pos())
				}
			}
		case *ast.DeclStmt:
			if gd, ok := node.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						v, _ := info.Defs[name].(*types.Var)
						if v == nil {
							continue
						}
						st.defined[v] = true
						if isFrameData(v.Type()) && i < len(vs.Values) && !st.freshExpr(vs.Values[i]) {
							st.publish(v, vs.Pos())
						}
						// var x Column (zero value) is fresh.
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{node.Key, node.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if v, _ := info.ObjectOf(id).(*types.Var); v != nil {
						st.defined[v] = true
						if isFrameData(v.Type()) {
							// A range element aliases the ranged storage.
							st.publish(v, node.Pos())
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				st.publishMentioned(res)
			}
		case *ast.SendStmt:
			st.publishMentioned(node.Value)
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				st.publishMentioned(elt)
			}
		case *ast.CallExpr:
			st.publishCallArgs(node)
		case *ast.FuncLit:
			// Capture: every frame local referenced inside the literal is
			// published at the literal (it may run later, elsewhere).
			ast.Inspect(node.Body, func(cn ast.Node) bool {
				if id, ok := cn.(*ast.Ident); ok {
					if v, _ := info.ObjectOf(id).(*types.Var); v != nil && isFrameData(v.Type()) {
						if v.Pos() < node.Pos() || v.Pos() > node.End() {
							st.publish(v, node.Pos())
						}
					}
				}
				return true
			})
		}
		return true
	})
}

// publishMentioned publishes every frame-typed local mentioned in e.
func (st *frameFnState) publishMentioned(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // captures are handled at the literal itself
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := st.localFrameVar(id); v != nil {
				st.publish(v, id.Pos())
			}
		}
		return true
	})
}

// publishCallArgs publishes frame locals passed to calls that may retain
// them. Module-internal callees whose summary shows the parameter neither
// escapes, mutates, nor flows to a goroutine are pure readers and do not
// publish; builtins len/cap/copy read only; everything else (external or
// dynamic callees, append into another slice) is conservatively a
// publication.
func (st *frameFnState) publishCallArgs(call *ast.CallExpr) {
	info := st.info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, _ := info.ObjectOf(id).(*types.Builtin); b != nil {
			switch b.Name() {
			case "len", "cap", "copy", "delete", "clear":
				return
			case "append":
				for _, arg := range call.Args[1:] {
					st.publishMentioned(arg)
				}
				return
			}
		}
	}
	var sum *Summary
	if fi := st.pass.IP.StaticCallee(info, call); fi != nil {
		sum = &fi.Summary
	}
	// Mutation by a callee does not publish — a builder-phase helper may
	// legitimately fill a still-private frame's vectors (checkCall flags
	// mutation of frames that are already published). Only retention
	// (escape, goroutine capture) transfers ownership.
	const retains = ParamEscapes | ParamToGoroutine | ParamCaptured
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sum == nil || sum.RecvFacts()&retains != 0 {
			st.publishMentioned(sel.X)
		}
	}
	for i, arg := range call.Args {
		if sum != nil && sum.ArgFacts(i)&retains == 0 {
			continue
		}
		st.publishMentioned(arg)
	}
}

// published reports whether the frame value rooted at root was published
// before pos: parameters, receivers, captures, globals and accessor chains
// always are; locals only after their recorded publication event.
func (st *frameFnState) published(root ast.Expr, pos token.Pos) (string, bool) {
	id := rootIdent(root)
	if id == nil {
		// No identifier root: the chain starts at a call result
		// (f.Col(...).Ints()...) — published storage by definition.
		return "storage reached through a call result", true
	}
	v, ok := st.info.ObjectOf(id).(*types.Var)
	if !ok || v == nil {
		return "", false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "package-level frame state", true
	}
	if v.Pos() < st.decl.Pos() || v.Pos() > st.decl.End() {
		return "captured frame \"" + v.Name() + "\"", true
	}
	if !st.defined[v] {
		// Inside this declaration but never defined by :=/var/range: a
		// parameter of the declaration or of a nested function literal.
		return "parameter \"" + v.Name() + "\"", true
	}
	if pub, ok := st.pubPos[v]; ok && pos > pub {
		return "\"" + v.Name() + "\" (published at an earlier statement)", true
	}
	return "", false
}

// checkWrites reports mutation of published frame storage: direct writes,
// writes through payload accessors, and summary-mediated writes by callees.
func (st *frameFnState) checkWrites() {
	info := st.info
	// parallelLit tracks the innermost function literal passed to the
	// batch-exchange primitives, for the aliasing finding's message.
	var checkNode func(n ast.Node, parallel string)
	checkNode = func(n ast.Node, parallel string) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if pkg, name, ok := parallelCallee(info, node); ok && pkg == "rdd" &&
					(name == "ExchangePartitions" || name == "ZipPartitions") {
					for _, arg := range node.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkNode(lit.Body, "rdd."+name)
						}
					}
					// Non-literal args still need the call-mediated check.
					st.checkCall(node, parallel)
					return false
				}
				st.checkCall(node, parallel)
			case *ast.AssignStmt:
				if node.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range node.Lhs {
					st.checkWrite(lhs, node.Pos(), parallel)
				}
			case *ast.IncDecStmt:
				st.checkWrite(node.X, node.Pos(), parallel)
			}
			return true
		})
	}
	checkNode(st.decl.Body, "")
}

// chainHasFrameData reports whether any sub-expression along the selector/
// index chain of lhs is frame data, and returns the accessor call if the
// chain passes through one.
func (st *frameFnState) chainHasFrameData(lhs ast.Expr) (accessor *ast.CallExpr, has bool) {
	e := lhs
	for {
		if tv, ok := st.info.Types[e]; ok && isFrameData(tv.Type) {
			has = true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// Writing into an accessor result (f.Ints()[i] = x): record
			// and keep walking through the receiver.
			if recv, ok := frameAccessor(st.info, x); ok {
				accessor = x
				e = recv
				continue
			}
			return accessor, has
		default:
			return accessor, has
		}
	}
}

// frameAccessor reports whether call is a method call on frame data (the
// live-payload accessors Ints/Floats/Strs/... or Col/ColAt) and returns the
// receiver expression.
func frameAccessor(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || obj == nil {
		return nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isFrameData(sig.Recv().Type()) {
		return nil, false
	}
	return sel.X, true
}

// checkWrite flags one assignment target if it mutates published frame
// storage.
func (st *frameFnState) checkWrite(lhs ast.Expr, pos token.Pos, parallel string) {
	lhs = ast.Unparen(lhs)
	if _, ok := lhs.(*ast.Ident); ok {
		return // rebinding a variable is not a storage write
	}
	accessor, has := st.chainHasFrameData(lhs)
	if !has {
		return
	}
	root := rootIdent(lhs)
	if root != nil {
		if v, _ := st.info.ObjectOf(root).(*types.Var); v != nil {
			if isFrameBuilder(v.Type()) {
				return // builders own their cells until Freeze/Finish
			}
			if !sharedWritePath(lhs, v.Type()) {
				return // field assign on a value copy stays private
			}
		}
	}
	if accessor != nil {
		st.pass.Reportf(pos, "writes into the live payload returned by frame accessor %s — %s",
			types.ExprString(accessor.Fun), frameContract)
		return
	}
	who, pub := st.published(lhs, pos)
	if !pub {
		return
	}
	if parallel != "" {
		st.pass.Reportf(pos, "closure passed to %s writes frame storage through %s — batch partitions alias the same columns, so this is a cross-partition data race; %s",
			parallel, who, frameContract)
		return
	}
	st.pass.Reportf(pos, "writes frame storage through %s after publication — %s", who, frameContract)
}

// checkCall flags calls that hand published frame storage to a callee whose
// summary mutates the corresponding parameter — the violation is invisible
// without the interprocedural layer.
func (st *frameFnState) checkCall(call *ast.CallExpr, parallel string) {
	fi := st.pass.IP.StaticCallee(st.info, call)
	if fi == nil {
		return
	}
	sum := &fi.Summary
	report := func(argExpr ast.Expr, who string) {
		prefix := ""
		if parallel != "" {
			prefix = "closure passed to " + parallel + " "
		}
		st.pass.Reportf(call.Pos(), "%spasses %s to %s, which mutates it (function summary) — %s",
			prefix, who, fi.Obj.Name(), frameContract)
		_ = argExpr
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sum.RecvFacts()&ParamMutated != 0 {
		if tv, ok := st.info.Types[sel.X]; ok && isFrameData(tv.Type) && !isFrameBuilder(tv.Type) {
			if who, pub := st.published(sel.X, call.Pos()); pub {
				report(sel.X, "published frame receiver ("+who+")")
			}
		}
	}
	for i, arg := range call.Args {
		if sum.ArgFacts(i)&ParamMutated == 0 {
			continue
		}
		arg = ast.Unparen(arg)
		if tv, ok := st.info.Types[arg]; ok && isFrameData(tv.Type) {
			if who, pub := st.published(arg, call.Pos()); pub {
				report(arg, "published frame ("+who+")")
			}
			continue
		}
		// A live payload slice obtained from a frame accessor
		// (fr.Cells(), f.Col("x").Ints()) is published frame storage
		// even though its own type is a plain slice.
		if acc, recv, ok := payloadAccessorChain(st.info, arg); ok {
			if _, pub := st.published(recv, call.Pos()); pub {
				report(arg, "the live payload slice "+types.ExprString(acc))
			}
		}
	}
}

// payloadAccessorChain recognizes an argument expression that is (or
// indexes/slices into) the result of a frame accessor method, returning the
// accessor expression and the frame receiver it was called on.
func payloadAccessorChain(info *types.Info, e ast.Expr) (ast.Expr, ast.Expr, bool) {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			if recv, ok := frameAccessor(info, x); ok {
				return x, recv, true
			}
			return nil, nil, false
		default:
			return nil, nil, false
		}
	}
}
