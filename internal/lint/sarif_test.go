package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestEncodeSARIF checks schema shape: version, rule table, and one result
// per finding with physical location.
func TestEncodeSARIF(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "internal/rdd/rdd.go", Line: 12, Column: 3}, Analyzer: "purity", Message: "writes captured state"},
		{Pos: token.Position{Filename: "internal/server/server.go", Line: 40, Column: 9}, Analyzer: "goroleak", Message: "leaked goroutine"},
	}
	data, err := EncodeSARIF(findings, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q with %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sjvet" {
		t.Errorf("driver name = %q, want sjvet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("rule table has %d rules, want %d (one per analyzer)", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	for i := 1; i < len(run.Tool.Driver.Rules); i++ {
		if run.Tool.Driver.Rules[i-1].ID >= run.Tool.Driver.Rules[i].ID {
			t.Error("rules must be sorted by id")
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "purity" || r.Level != "error" ||
		r.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/rdd/rdd.go" ||
		r.Locations[0].PhysicalLocation.Region.StartLine != 12 {
		t.Errorf("first result mismatched: %+v", r)
	}

	// A clean run must still be a valid log with an empty results array.
	empty, err := EncodeSARIF(nil, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), `"results": []`) {
		t.Error("empty findings should encode an empty results array, not null")
	}
}
