package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPackages are the package-path segments whose code forms the
// reproducible derivation core: a stored derivation sequence replayed over
// the same inputs must produce bit-for-bit identical results (§5.4).
var deterministicPackages = map[string]bool{
	"derive":    true,
	"engine":    true,
	"semantics": true,
	"pipeline":  true,
	"dataset":   true,
	"frame":     true, // columnar kernels feed the same replayable sequences
	"stats":     true, // the statistics store steers plan choice; its encode/epoch logic must replay identically
}

// randConstructors are math/rand package-level functions that build seeded
// generators rather than drawing from the global (racily seeded) source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewZipf": true, "NewChaCha8": true,
}

// DeterminismAnalyzer flags nondeterminism in the derivation core: wall-clock
// reads, draws from the global math/rand source, and map iteration leaking
// into ordered output without a sort. Any of these breaks the paper's
// replayable-derivation-sequence guarantee (§5.4): the same stored sequence
// would produce different bytes on different runs.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "derivation/engine code must not call time.Now, draw from the " +
			"global math/rand source, or iterate a map into ordered output " +
			"without sorting; stored derivation sequences must replay " +
			"bit-for-bit (§5.4).",
		AppliesTo: func(pkg *Package) bool {
			return deterministicPackages[pathBase(pkg.Path)] || deterministicPackages[pkg.Name]
		},
		Run: runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, info, node)
			case *ast.RangeStmt:
				checkMapRangeOrder(pass, f, info, node)
			}
			return true
		})
	}
}

// checkNondetCall flags time.Now and global math/rand draws.
func checkNondetCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if obj == nil || !ok || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" {
			pass.Reportf(call.Pos(), "calls time.Now: derivation results must be reproducible across replays (§5.4); inject a clock or pass timestamps in as data")
		}
	case "math/rand", "math/rand/v2":
		// Methods on a *rand.Rand built from an explicit seed are fine;
		// package-level draws use the shared, unseeded global source.
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[obj.Name()] {
			pass.Reportf(call.Pos(), "draws from the global math/rand source via rand.%s: derivations must be deterministic (§5.4); use rand.New with a fixed seed", obj.Name())
		}
	}
}

// checkMapRangeOrder flags `for k := range m { out = append(out, ...) }`
// where out is declared outside the loop and never passed to a sort in the
// enclosing function: Go map iteration order is randomized, so the append
// order leaks nondeterminism into the output.
func checkMapRangeOrder(pass *Pass, file *ast.File, info *types.Info, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	body := enclosingFuncBody(file, rng.Pos())
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if b, ok := info.ObjectOf(fn).(*types.Builtin); !ok || b == nil {
			return true
		}
		target, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.ObjectOf(target).(*types.Var)
		if !ok || v == nil {
			return true
		}
		// A slice accumulated within the loop body itself is per-iteration
		// state; only slices outliving the loop carry the order out.
		if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
			return true
		}
		if body != nil && sortedInFunc(info, body, v) {
			return true
		}
		pass.Reportf(assign.Pos(), "appends to %q while iterating a map: map iteration order is randomized, so the output order is nondeterministic and breaks reproducible derivation sequences (§5.4); sort %q before it is consumed", v.Name(), v.Name())
		return true
	})
}

// sortedInFunc reports whether the function body contains a call into the
// sort or slices packages that mentions v anywhere in its arguments (e.g.
// sort.Strings(out), sort.Slice(out, ...), slices.SortFunc(out, ...)).
func sortedInFunc(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.ObjectOf(id) == v {
					found = true
					return false
				}
				return true
			})
		}
		return true
	})
	return found
}
