package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package of the loaded module.
type Package struct {
	// Path is the import path (modulePath + relative directory).
	Path string
	// Dir is the absolute directory the package lives in.
	Dir string
	// Name is the package name from the source files.
	Name string
	// Files are the parsed files, in deterministic (sorted filename) order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object facts.
	Info *types.Info

	// modPath is the owning module's path (for module-internal tests).
	modPath string
}

// Module is a loaded, fully type-checked Go module.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is the shared position table.
	Fset *token.FileSet
	// Pkgs are the module's packages in dependency (topological) order.
	Pkgs []*Package
}

// Lookup returns the package with the given import path.
func (m *Module) Lookup(importPath string) *Package {
	for _, p := range m.Pkgs {
		if p.Path == importPath {
			return p
		}
	}
	return nil
}

// LoadOptions tunes module loading.
type LoadOptions struct {
	// IncludeTests parses _test.go files belonging to the package under
	// test (external  _test packages are always skipped).
	IncludeTests bool
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package of the module rooted at
// root. Standard-library imports are type-checked from GOROOT source via the
// stdlib "source" importer; imports outside the module and the standard
// library are an error (the ScrubJay module is dependency-free).
func LoadModule(root string, opts LoadOptions) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	match := moduleRe.FindSubmatch(modData)
	if match == nil {
		return nil, fmt.Errorf("lint: %s/go.mod has no module directive", root)
	}
	m := &Module{Root: root, Path: string(match[1]), Fset: token.NewFileSet()}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := parseDir(m, dir, opts)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sorted, err := topoSort(m.Path, pkgs)
	if err != nil {
		return nil, err
	}
	if err := typeCheck(m, sorted); err != nil {
		return nil, err
	}
	m.Pkgs = sorted
	return m, nil
}

// packageDirs walks the module tree collecting directories that hold Go
// files, skipping testdata, vendor, hidden and underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			// A nested module is its own world.
			if p != root {
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses one directory into a Package (nil when the directory holds
// no files in scope).
func parseDir(m *Module, dir string, opts LoadOptions) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type parsed struct {
		name string
		file *ast.File
		test bool
	}
	var files []parsed
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !opts.IncludeTests {
			continue
		}
		// Honour build constraints (//go:build lines and _GOOS/_GOARCH
		// filename suffixes) for the current platform, as the go tool
		// would — otherwise per-platform file pairs type-check together
		// and collide on their shared declarations.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, parsed{name: f.Name.Name, file: f, test: isTest})
	}
	if len(files) == 0 {
		return nil, nil
	}
	// The package proper is named by its non-test files; external test
	// packages (package foo_test) are skipped — they exercise the public
	// API and hold no engine invariants of their own.
	pkgName := ""
	for _, f := range files {
		if !f.test {
			pkgName = f.name
			break
		}
	}
	if pkgName == "" {
		return nil, nil
	}
	pkg := &Package{Dir: dir, Name: pkgName, modPath: m.Path}
	for _, f := range files {
		if f.name == pkgName {
			pkg.Files = append(pkg.Files, f.file)
		}
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		pkg.Path = m.Path
	} else {
		pkg.Path = path.Join(m.Path, filepath.ToSlash(rel))
	}
	return pkg, nil
}

// imports lists the module-internal import paths of a package.
func imports(modPath string, pkg *Package) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders packages so every package follows its intra-module
// dependencies.
func topoSort(modPath string, pkgs []*Package) ([]*Package, error) {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p.Path] = visiting
		for _, dep := range imports(modPath, p) {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.Path] = done
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moduleImporter resolves module-internal imports to already-checked
// packages and everything else through the GOROOT source importer.
type moduleImporter struct {
	modPath string
	checked map[string]*types.Package
	std     types.Importer
}

func (mi *moduleImporter) Import(p string) (*types.Package, error) {
	if pkg, ok := mi.checked[p]; ok {
		return pkg, nil
	}
	if p == mi.modPath || strings.HasPrefix(p, mi.modPath+"/") {
		return nil, fmt.Errorf("lint: internal package %s not yet checked (import cycle?)", p)
	}
	return mi.std.Import(p)
}

// typeCheck runs go/types over the packages in dependency order.
func typeCheck(m *Module, pkgs []*Package) error {
	mi := &moduleImporter{
		modPath: m.Path,
		checked: map[string]*types.Package{},
		std:     importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, pkg := range pkgs {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: mi}
		tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		mi.checked[pkg.Path] = tpkg
	}
	return nil
}
