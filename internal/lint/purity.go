package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// computeContract is the rdd.RDD compute contract the purity analyzer
// enforces, quoted so findings cite the rule (see internal/rdd/rdd.go).
const computeContract = "rdd compute closures must be safe to call concurrently for distinct partitions and pure with respect to their input lineage (rdd.RDD compute contract)"

// rddClosureFuncs are the rdd entry points whose function-literal arguments
// execute data-parallel across partitions. Closures handed to any of these
// are "compute" bodies in the sense of the contract.
var rddClosureFuncs = map[string]bool{
	"Map": true, "FlatMap": true, "Filter": true, "MapPartitions": true,
	"Generate": true, "GroupByKey": true, "ReduceByKey": true,
	"CoGroup": true, "JoinHash": true, "BroadcastJoin": true,
	"Distinct": true, "CountByKey": true, "SortBy": true,
	"Reduce": true, "Aggregate": true, "Repartition": true,
	"ExchangePartitions": true, "ZipPartitions": true,
}

// frameClosureFuncs are the columnar kernel entry points (package frame)
// whose function-literal arguments run inside rdd compute bodies: a closure
// handed to a mask kernel executes once per row of every partition's
// batches concurrently, so it inherits the same contract.
var frameClosureFuncs = map[string]bool{
	"MaskRows": true, "MaskValues": true,
}

// PurityAnalyzer flags RDD compute closures that write captured variables or
// package-level state. Such writes race across partitions: the worker pool
// runs one closure invocation per partition concurrently (§5.3), so the only
// safe side channel is the closure's return value.
func PurityAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "purity",
		Doc: "RDD compute/Map/Filter/FlatMap closures and derive transform funcs " +
			"must not write captured variables or package-level state; " +
			computeContract + ".",
		Run: runPurity,
	}
}

func runPurity(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				pkg, name, ok := parallelCallee(info, node)
				if !ok {
					return true
				}
				var what string
				switch {
				case pkg == "rdd" && rddClosureFuncs[name]:
					what = "closure passed to rdd." + name
				case pkg == "frame" && frameClosureFuncs[name]:
					what = "kernel closure passed to frame." + name
				default:
					return true
				}
				for _, arg := range node.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkParallelClosure(pass, lit, what)
					}
				}
			case *ast.CompositeLit:
				// Inside package rdd itself, compute bodies are assigned
				// directly to the RDD literal's compute field.
				if !isRDDType(info.Types[ast.Expr(node)].Type) {
					return true
				}
				for _, elt := range node.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || key.Name != "compute" {
						continue
					}
					if lit, ok := kv.Value.(*ast.FuncLit); ok {
						checkParallelClosure(pass, lit, "RDD compute closure")
					}
				}
			}
			return true
		})
	}
}

// parallelCallee resolves a call's callee and reports its defining package
// name and function name when it is a function (or method) from one of the
// data-parallel substrates ("rdd" or "frame").
func parallelCallee(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.IndexExpr: // explicit generic instantiation rdd.Map[A, B](...)
		return parallelCallee(info, &ast.CallExpr{Fun: fn.X})
	case *ast.IndexListExpr:
		return parallelCallee(info, &ast.CallExpr{Fun: fn.X})
	default:
		return "", "", false
	}
	obj := info.ObjectOf(id)
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	pkg := obj.Pkg().Name()
	if pkg != "rdd" && pkg != "frame" {
		return "", "", false
	}
	if _, ok := obj.(*types.Func); !ok {
		return "", "", false
	}
	return pkg, obj.Name(), true
}

// isRDDType reports whether t is (a pointer to) a named type from a package
// named "rdd".
func isRDDType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "rdd"
}

// checkParallelClosure reports writes inside lit that escape the closure.
func checkParallelClosure(pass *Pass, lit *ast.FuncLit, what string) {
	info := pass.Pkg.Info
	captured := func(id *ast.Ident) (*types.Var, bool) {
		obj := info.ObjectOf(id)
		v, ok := obj.(*types.Var)
		if !ok || id.Name == "_" {
			return nil, false
		}
		// Declared outside the literal (including package level) = captured.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil, false
		}
		return v, true
	}
	report := func(pos token.Pos, form string, v *types.Var) {
		where := "captured variable"
		if v.Parent() == v.Pkg().Scope() {
			where = "package-level variable"
		}
		pass.Reportf(pos, "%s %s %s %q — this races across partitions: %s",
			what, form, where, v.Name(), computeContract)
	}
	checkWrite := func(target ast.Expr, define bool) {
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			if define {
				return
			}
			if v, ok := captured(t); ok {
				report(t.Pos(), "assigns to", v)
			}
		case *ast.IndexExpr:
			if root := rootIdent(t.X); root != nil {
				if v, ok := captured(root); ok {
					report(t.Pos(), "writes an element of", v)
				}
			}
		case *ast.StarExpr:
			if root := rootIdent(t.X); root != nil {
				if v, ok := captured(root); ok {
					report(t.Pos(), "writes through", v)
				}
			}
		case *ast.SelectorExpr:
			// Field write on a captured struct variable. Selections through
			// a package name are package-level writes caught via the root.
			if root := rootIdent(t.X); root != nil {
				if v, ok := captured(root); ok {
					report(t.Pos(), "writes a field of", v)
				}
			}
		}
	}
	// checkCall consults the interprocedural summary of a called helper: a
	// write that happens inside bump() is as impure as one written inline.
	checkCall := func(call *ast.CallExpr) {
		fi := pass.IP.StaticCallee(info, call)
		if fi == nil {
			return
		}
		sum := &fi.Summary
		if sum.WritesGlobal {
			pass.Reportf(call.Pos(), "%s calls %s, which %s (function summary) — this races across partitions: %s",
				what, fi.Obj.Name(), sum.GlobalDetail, computeContract)
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sum.RecvFacts()&ParamMutated != 0 {
			if root := rootIdent(sel.X); root != nil {
				if v, ok := captured(root); ok {
					pass.Reportf(call.Pos(), "%s calls %s, which mutates its receiver %q (function summary) — this races across partitions: %s",
						what, fi.Obj.Name(), v.Name(), computeContract)
				}
			}
		}
		for i, arg := range call.Args {
			if sum.ArgFacts(i)&ParamMutated == 0 {
				continue
			}
			arg = ast.Unparen(arg)
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				arg = u.X
			}
			if sl, ok := arg.(*ast.SliceExpr); ok {
				arg = sl.X
			}
			if root := rootIdent(arg); root != nil {
				if v, ok := captured(root); ok {
					pass.Reportf(call.Pos(), "%s passes captured variable %q to %s, which mutates it (function summary) — this races across partitions: %s",
						what, v.Name(), fi.Obj.Name(), computeContract)
				}
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(lhs, s.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			checkWrite(s.X, false)
		case *ast.SendStmt:
			if root := rootIdent(s.Chan); root != nil {
				if v, ok := captured(root); ok {
					report(s.Arrow, "sends on", v)
				}
			}
		case *ast.CallExpr:
			checkCall(s)
		}
		return true
	})
}

// rootIdent walks selector/index/star/paren chains to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
