// Package lockcycle exercises the lockorder analyzer: three independent
// acquisition-order cycles — a direct two-lock inversion, an inversion
// hidden behind a helper call, and a three-lock rotation — plus a pair of
// functions that take two locks in one consistent order and must stay
// clean.
package lockcycle

import "sync"

// ---- cycle 1: direct two-lock inversion ----

// Registry and Journal each own a mutex.
type Registry struct {
	mu sync.Mutex
	n  int
}

// Journal is the second lock class of the direct cycle.
type Journal struct {
	mu sync.Mutex
	n  int
}

// RegistryThenJournal acquires registry before journal.
func RegistryThenJournal(r *Registry, j *Journal) {
	r.mu.Lock()
	j.mu.Lock()
	j.n++
	r.n++
	j.mu.Unlock()
	r.mu.Unlock()
}

// JournalThenRegistry acquires them in the opposite order — the deadlock
// partner of RegistryThenJournal.
func JournalThenRegistry(r *Registry, j *Journal) {
	j.mu.Lock()
	r.mu.Lock()
	r.n++
	j.n++
	r.mu.Unlock()
	j.mu.Unlock()
}

// ---- cycle 2: inversion through a helper ----

// Catalog and Index form the helper-mediated cycle.
type Catalog struct {
	mu sync.Mutex
	n  int
}

// Index is locked only inside touchIndex.
type Index struct {
	mu sync.Mutex
	n  int
}

// touchIndex takes the index lock; callers holding the catalog lock create
// a catalog→index edge only visible through this helper's summary.
func touchIndex(ix *Index) {
	ix.mu.Lock()
	ix.n++
	ix.mu.Unlock()
}

// CatalogThenIndex holds the catalog lock across the helper call.
func CatalogThenIndex(c *Catalog, ix *Index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	touchIndex(ix)
}

// IndexThenCatalog inverts the order directly.
func IndexThenCatalog(c *Catalog, ix *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// ---- cycle 3: three-lock rotation ----

// Alpha, Beta and Gamma rotate: alpha→beta, beta→gamma, gamma→alpha.
type Alpha struct {
	mu sync.Mutex
	n  int
}

// Beta is the middle of the rotation.
type Beta struct {
	mu sync.Mutex
	n  int
}

// Gamma closes the rotation back to Alpha.
type Gamma struct {
	mu sync.Mutex
	n  int
}

// AlphaBeta takes alpha then beta.
func AlphaBeta(a *Alpha, b *Beta) {
	a.mu.Lock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

// BetaGamma takes beta then gamma.
func BetaGamma(b *Beta, g *Gamma) {
	b.mu.Lock()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	b.mu.Unlock()
}

// GammaAlpha takes gamma then alpha, closing the cycle.
func GammaAlpha(g *Gamma, a *Alpha) {
	g.mu.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	g.mu.Unlock()
}

// ---- clean: one consistent order ----

// Meta and Data are always taken meta-first.
type Meta struct {
	mu sync.Mutex
	n  int
}

// Data is the second lock of the clean pair.
type Data struct {
	mu sync.Mutex
	n  int
}

// WriteBoth takes meta then data.
func WriteBoth(m *Meta, d *Data) {
	m.mu.Lock()
	d.mu.Lock()
	d.n++
	m.n++
	d.mu.Unlock()
	m.mu.Unlock()
}

// SyncBoth also takes meta then data — same order, no cycle.
func SyncBoth(m *Meta, d *Data) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	m.n = d.n
}
