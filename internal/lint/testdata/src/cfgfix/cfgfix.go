// Package cfgfix exercises the CFG builder over the constructs that are
// easy to get wrong: defer inside loops, labeled break and goto, select
// with and without default, switch fallthrough, and panic exits. The
// package must stay finding-clean — its golden artifact is the block/edge
// dump per function (testdata/golden/cfg.txt), not analyzer output.
package cfgfix

import "errors"

// DeferInLoop registers a deferred call per iteration; all of them replay
// at the function's single exit block.
func DeferInLoop(closers []func()) {
	for i := 0; i < len(closers); i++ {
		defer closers[i]()
	}
}

// LabeledBreak breaks out of a nested loop via a label.
func LabeledBreak(grid [][]int, want int) bool {
	found := false
outer:
	for _, row := range grid {
		for _, v := range row {
			if v == want {
				found = true
				break outer
			}
		}
	}
	return found
}

// GotoRetry loops through a label with a bounded retry counter.
func GotoRetry(try func() error) error {
	attempts := 0
retry:
	err := try()
	if err != nil {
		attempts++
		if attempts < 3 {
			goto retry
		}
	}
	return err
}

// SelectDefault polls a channel without blocking.
func SelectDefault(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}

// SelectBlocking waits on two channels with no default.
func SelectBlocking(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// PanicExit panics on bad input; the panic edge reaches the exit block so
// deferred cleanup still runs.
func PanicExit(cleanup func(), n int) int {
	defer cleanup()
	if n < 0 {
		panic("negative")
	}
	return n * 2
}

// RecoverGuard converts a panic into an error return.
func RecoverGuard(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("panicked")
		}
	}()
	f()
	return nil
}

// SwitchFallthrough chains two cases through a fallthrough edge.
func SwitchFallthrough(n int) int {
	total := 0
	switch n {
	case 0:
		total++
		fallthrough
	case 1:
		total += 10
	default:
		total = -1
	}
	return total
}

// ContinueWithPost exercises the continue-to-post-block edge.
func ContinueWithPost(xs []int) int {
	sum := 0
	for i := 0; i < len(xs); i++ {
		if xs[i] < 0 {
			continue
		}
		sum += xs[i]
	}
	return sum
}
