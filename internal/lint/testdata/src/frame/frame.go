// Package frame is a miniature stand-in for the real columnar batch: just
// enough API surface (closure-taking mask kernels, the vectorized Convert)
// for the analyzers to recognize frame kernel closures and unit-tagged
// payload vectors.
package frame

import "sjvettest/units"

// Frame is a batch of rows, reduced to one int column.
type Frame struct {
	cells []int
}

// New wraps a slice as a single-column frame.
func New(cells []int) *Frame {
	return &Frame{cells: cells}
}

// MaskRows evaluates pred over each row and returns the keep mask.
func MaskRows(f *Frame, pred func(int) bool) []bool {
	keep := make([]bool, len(f.cells))
	for i, c := range f.cells {
		keep[i] = pred(c)
	}
	return keep
}

// MaskValues evaluates pred over one column's cells.
func MaskValues(f *Frame, col string, pred func(int) bool) []bool {
	_ = col
	keep := make([]bool, len(f.cells))
	for i, c := range f.cells {
		keep[i] = pred(c)
	}
	return keep
}

// Convert rescales a float payload vector from unit from to unit to.
func Convert(d *units.Dict, vals []float64, from, to string) ([]float64, error) {
	out := make([]float64, len(vals))
	for i, v := range vals {
		conv, err := d.Convert(v, from, to)
		if err != nil {
			return nil, err
		}
		out[i] = conv
	}
	return out, nil
}

// Column is one named payload vector of a frozen frame, sharing its storage.
type Column struct {
	Name string
	Ints []int
}

// Builder accumulates cells before freezing; it owns its storage until
// Freeze, after which the frame is immutable.
type Builder struct {
	cells []int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Append adds one cell to the builder's private storage.
func (b *Builder) Append(v int) { b.cells = append(b.cells, v) }

// Freeze publishes the accumulated cells as an immutable frame.
func (b *Builder) Freeze() *Frame { return &Frame{cells: b.cells} }

// Cells returns the live payload vector; callers must treat it as
// read-only.
func (f *Frame) Cells() []int { return f.cells }

// Cols returns column views sharing the frame's storage.
func (f *Frame) Cols() []Column {
	return []Column{{Name: "cells", Ints: f.cells}}
}
