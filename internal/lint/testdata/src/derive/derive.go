// Package derive exercises the determinism analyzer (the package name puts
// it in the reproducible-derivation-core scope).
package derive

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock inside derivation code.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from the global math/rand source.
func Jitter() float64 {
	return rand.Float64()
}

// SeededJitter is clean: draws come from an explicitly seeded generator.
func SeededJitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Keys leaks map iteration order into its output.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is clean: the output is sorted before use.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is clean: the accumulation is order-independent and nothing ordered
// escapes the loop.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// LoggedStamp is clean by suppression: the timestamp feeds a log line, not
// a derivation result.
func LoggedStamp() int64 {
	return time.Now().UnixNano() //sjvet:ignore determinism -- log timestamp only, never stored in a derivation result
}
