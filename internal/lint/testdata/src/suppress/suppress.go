// Package suppress exercises the //sjvet:ignore directive: same-line and
// line-above placement, bare (all-analyzer) form, and the case where the
// named analyzer does not match the finding (which must still be reported).
package suppress

import (
	"sjvettest/rdd"
	"sjvettest/units"
)

// Suppressed findings: none of these may be reported.
func Suppressed() int {
	r := rdd.Parallelize([]int{1})
	n := 0
	_ = rdd.Map(r, func(v int) int {
		n += v //sjvet:ignore purity -- single-partition fixture, provably no concurrent callers
		return v
	})
	_ = rdd.Map(r, func(v int) int {
		//sjvet:ignore -- bare form suppresses every analyzer on the next line
		n += v
		return v
	})
	return n
}

// WrongAnalyzer names determinism, so the purity finding still fires.
func WrongAnalyzer() int {
	r := rdd.Parallelize([]int{1})
	n := 0
	_ = rdd.Map(r, func(v int) int {
		n += v //sjvet:ignore determinism -- names the wrong analyzer on purpose
		return v
	})
	return n
}

// consume feeds a probe value through fn and offsets the quantity.
func consume(fn func(int) int, q float64) float64 {
	return float64(fn(0)) + q
}

// LeakedDirective: the directive sits inside the closure, so it must NOT
// suppress the unit-mix finding on the call's closing line, which belongs
// to the enclosing function body (one line below the directive).
func LeakedDirective(d *units.Dict, v float64) float64 {
	k, _ := d.Convert(v, "celsius", "kelvin")
	c, _ := d.Convert(v, "kelvin", "celsius")
	return consume(func(x int) int {
		return x //sjvet:ignore unitsafety -- scoped to this closure only
	}, k-c)
}

// ProperlyPlaced: the same shape with the directive in the enclosing
// scope, which does suppress the mix on its own line.
func ProperlyPlaced(d *units.Dict, v float64) float64 {
	k, _ := d.Convert(v, "celsius", "kelvin")
	c, _ := d.Convert(v, "kelvin", "celsius")
	return consume(func(x int) int {
		return x
	}, k-c) //sjvet:ignore unitsafety -- reviewed: display-only delta
}
