// Package suppress exercises the //sjvet:ignore directive: same-line and
// line-above placement, bare (all-analyzer) form, and the case where the
// named analyzer does not match the finding (which must still be reported).
package suppress

import "sjvettest/rdd"

// Suppressed findings: none of these may be reported.
func Suppressed() int {
	r := rdd.Parallelize([]int{1})
	n := 0
	_ = rdd.Map(r, func(v int) int {
		n += v //sjvet:ignore purity -- single-partition fixture, provably no concurrent callers
		return v
	})
	_ = rdd.Map(r, func(v int) int {
		//sjvet:ignore -- bare form suppresses every analyzer on the next line
		n += v
		return v
	})
	return n
}

// WrongAnalyzer names determinism, so the purity finding still fires.
func WrongAnalyzer() int {
	r := rdd.Parallelize([]int{1})
	n := 0
	_ = rdd.Map(r, func(v int) int {
		n += v //sjvet:ignore determinism -- names the wrong analyzer on purpose
		return v
	})
	return n
}
