// Package obs is a miniature stand-in for the real observability layer:
// a span type with an End method, enough for leakcheck's span-release
// tracking to resolve the obs.Span resource class.
package obs

// Span is one timed region; End closes it.
type Span struct {
	name  string
	ended bool
}

// StartSpan opens a span.
func StartSpan(name string) *Span {
	return &Span{name: name}
}

// End closes the span; calling it twice is harmless.
func (s *Span) End() {
	s.ended = true
}
