// Package purity exercises the purity analyzer: compute closures that write
// captured or package-level state race across partitions.
package purity

import "sjvettest/rdd"

var hits int

// Dirty closures write state that outlives one partition invocation.
func Dirty() int {
	r := rdd.Parallelize([]int{1, 2, 3})
	sum := 0
	_ = rdd.Map(r, func(v int) int {
		sum += v // assigns to captured variable
		return v
	})
	_ = rdd.Filter(r, func(v int) bool {
		hits++ // writes package-level state
		return v > 0
	})
	seen := map[int]bool{}
	_ = rdd.FlatMap(r, func(v int) []int {
		seen[v] = true // writes an element of a captured map
		return []int{v}
	})
	return sum
}

// Clean closures communicate only through their return values.
func Clean() []int {
	r := rdd.Parallelize([]int{1, 2, 3})
	offset := 10
	doubled := rdd.Map(r, func(v int) int {
		local := v * 2 // locals are fine
		return local + offset
	})
	return doubled.Collect()
}

// bumpGlobal increments package state — impurity hidden in a helper.
func bumpGlobal() { hits++ }

// addTo accumulates into *dst — mutation hidden in a helper.
func addTo(dst *int, v int) { *dst += v }

// pureSq is a pure helper: calling it from a compute closure is fine.
func pureSq(v int) int { return v * v }

// HiddenWrites routes the captured-state writes through helpers; only the
// function summaries expose them.
func HiddenWrites() int {
	r := rdd.Parallelize([]int{1, 2})
	sum := 0
	_ = rdd.Map(r, func(v int) int {
		bumpGlobal()
		addTo(&sum, v)
		return pureSq(v)
	})
	return sum
}
