// Package cache exercises the leakcheck analyzer: resources acquired and
// then lost on some control-flow path — a conn leaked past a later error
// return, a ticker never stopped, a file leaked on a stat failure, a span
// never ended on an early return — next to the clean idioms: deferred
// release, close-on-error, nil-guarded close, release through a helper
// whose summary proves it closes its argument, and ownership transfer.
package cache

import (
	"net"
	"os"
	"time"

	"sjvettest/obs"
)

// handshake uses the conn without closing or retaining it.
func handshake(c net.Conn) error {
	_, err := c.Write([]byte("hello"))
	return err
}

// closeQuiet closes its argument, swallowing the error; its ParamReleased
// summary is what lets callers count it as a release.
func closeQuiet(c net.Conn) {
	_ = c.Close()
}

// DirtyConnOnError leaks the conn when the handshake fails: the early
// return exits with c live.
func DirtyConnOnError(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := handshake(c); err != nil {
		return nil, err
	}
	return c, nil
}

// DirtyTicker never stops the ticker it creates.
func DirtyTicker(every time.Duration) int {
	t := time.NewTicker(every)
	select {
	case <-t.C:
		return 1
	default:
		return 0
	}
}

// DirtyFileOnError leaks the file when Stat fails: err is reassigned, so
// the error return no longer implies the file was never opened.
func DirtyFileOnError(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	_ = f.Close()
	return size, nil
}

// DirtySpanEarlyReturn opens a span and returns before ending it on the
// not-ok path.
func DirtySpanEarlyReturn(ok bool, work func() int) int {
	sp := obs.StartSpan("work")
	if !ok {
		return 0
	}
	n := work()
	sp.End()
	return n
}

// CleanDefer releases via defer; the deferred close replays at the exit
// block on every path.
func CleanDefer(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// CleanHelperClose releases through closeQuiet on both the error and the
// success path — visible only through the helper's ParamReleased summary.
func CleanHelperClose(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if err := handshake(c); err != nil {
		closeQuiet(c)
		return err
	}
	closeQuiet(c)
	return nil
}

// CleanNilGuard closes behind a nil check; the nil branch has nothing to
// release.
func CleanNilGuard(dial func() (net.Conn, error)) {
	c, err := dial()
	if err == nil {
		_ = handshake(c)
	}
	if c != nil {
		_ = c.Close()
	}
}

// CleanTransfer hands the ticker to the caller — ownership moves with it.
func CleanTransfer(every time.Duration) *time.Ticker {
	t := time.NewTicker(every)
	return t
}

// CleanStop stops the ticker on every path.
func CleanStop(every time.Duration, ready chan struct{}) bool {
	t := time.NewTicker(every)
	select {
	case <-t.C:
		t.Stop()
		return false
	case <-ready:
		t.Stop()
		return true
	}
}
