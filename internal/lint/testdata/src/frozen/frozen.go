// Package frozen exercises the frameimmut analyzer: writes to frame storage
// after Freeze/publication, including cases visible only through a helper's
// function summary and aliasing through closures handed to the partition
// exchange primitives.
package frozen

import (
	"sjvettest/frame"
	"sjvettest/rdd"
)

var sink []frame.Column

// zero blanks a payload slice in place. Its own body is silent (a []int is
// not frame data); only the summary exposes the mutation to callers that
// hand it live frame payload.
func zero(xs []int) {
	for i := range xs {
		xs[i] = 0
	}
}

// fill overwrites a column's payload in place — a direct violation (the
// column parameter is published storage) that also taints every call site.
func fill(c frame.Column, v int) {
	for i := range c.Ints {
		c.Ints[i] = v
	}
}

// DirtyAccessor writes through the live payload accessor of a frozen frame.
func DirtyAccessor() *frame.Frame {
	b := frame.NewBuilder()
	b.Append(1)
	fr := b.Freeze()
	fr.Cells()[0] = 9
	return fr
}

// DirtyHelper hands a frozen frame's live payload to the mutating helper:
// the violation is only visible through zero's summary.
func DirtyHelper() *frame.Frame {
	b := frame.NewBuilder()
	b.Append(4)
	fr := b.Freeze()
	zero(fr.Cells())
	return fr
}

// DirtyColumnHelper passes a published column view to fill, whose summary
// says it mutates the parameter.
func DirtyColumnHelper(fr *frame.Frame) {
	cols := fr.Cols()
	fill(cols[0], 7)
}

// DirtyShared keeps writing a column after storing it in package state.
func DirtyShared() frame.Column {
	c := frame.Column{Name: "x", Ints: make([]int, 4)}
	sink = append(sink, c)
	c.Ints[0] = 1
	return c
}

// DirtyExchange mutates captured frame storage from a partition-exchange
// closure: every partition aliases the same columns.
func DirtyExchange(fr *frame.Frame) {
	cols := fr.Cols()
	rdd.ExchangePartitions(len(cols), func(i int) {
		cols[i].Ints[0] = -1
	})
}

// CleanBuilder accumulates through the builder and only reads after Freeze.
func CleanBuilder(vals []int) int {
	b := frame.NewBuilder()
	for _, v := range vals {
		b.Append(v)
	}
	fr := b.Freeze()
	total := 0
	for _, c := range fr.Cells() {
		total += c
	}
	return total
}

// CleanFresh writes only storage it freshly allocated and has not yet
// published — the legal in-place pattern.
func CleanFresh(n int) frame.Column {
	c := frame.Column{Name: "fresh", Ints: make([]int, n)}
	for i := range c.Ints {
		c.Ints[i] = i
	}
	return c
}

// CleanZip runs a partition closure that writes only its own fresh storage.
func CleanZip(n int) {
	rdd.ZipPartitions(n, func(i int) {
		tmp := frame.Column{Name: "t", Ints: make([]int, 1)}
		tmp.Ints[0] = i
		_ = tmp
	})
}
