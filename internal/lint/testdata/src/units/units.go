// Package units is a miniature stand-in for the real unit dictionary: the
// unitsafety analyzer recognizes Convert calls on any Dict from a package
// named units.
package units

// Dict converts scalars between named units.
type Dict struct{}

// Convert converts v from one unit expression to another.
func (d *Dict) Convert(v float64, from, to string) (float64, error) {
	_, _ = from, to
	return v, nil
}
