// Package cluster exercises the errflow analyzer: an error overwritten
// before any read, an error discarded on the way to function exit, and an
// *rdd.ExecFailure matched by a handler but flattened into a generic error
// that loses the stage and cause — next to the clean check-then-reassign
// and wrap-with-%w idioms.
package cluster

import (
	"errors"
	"fmt"

	"sjvettest/rdd"
)

// DirtyOverwrite assigns err twice without reading in between: the first
// failure is silently replaced.
func DirtyOverwrite(push, drain func() error) error {
	err := push()
	err = drain()
	return err
}

// DirtyDiscard reads the flush error only on the verbose path; the quiet
// path reaches function exit with the error unread.
func DirtyDiscard(flush func() error, log func(string), verbose bool) {
	err := flush()
	if verbose {
		log(err.Error())
	}
	log("flushed")
}

// DirtySwallowAs matches an ExecFailure with errors.As and then returns a
// fresh generic error: the stage and cause are gone.
func DirtySwallowAs(err error) error {
	var ef *rdd.ExecFailure
	if errors.As(err, &ef) {
		return errors.New("stage failed")
	}
	return err
}

// DirtySwallowSwitch does the same through a type switch and fmt.Errorf
// without %w.
func DirtySwallowSwitch(err error, host string) error {
	switch err.(type) {
	case *rdd.ExecFailure:
		return fmt.Errorf("exchange with %s failed", host)
	}
	return err
}

// CleanCheckThenReassign reads the first error before reassigning.
func CleanCheckThenReassign(push, drain func() error) error {
	err := push()
	if err != nil {
		return err
	}
	err = drain()
	return err
}

// CleanWrap propagates the matched failure with %w — nothing is lost.
func CleanWrap(err error) error {
	var ef *rdd.ExecFailure
	if errors.As(err, &ef) {
		return fmt.Errorf("stage %d failed: %w", ef.Stage, ef)
	}
	return err
}

// CleanNamedResult publishes the deferred error through a named result and
// a bare return.
func CleanNamedResult(begin, commit func() error) (err error) {
	err = begin()
	if err != nil {
		return
	}
	err = commit()
	return
}
