package hot

// Directive-placement regression cases: a //sjvet:hotpath on a bound method
// value must root the underlying func, and a directive inside a function
// literal must not root references made by the enclosing body on an
// adjacent line (the same innermost-function scoping //sjvet:ignore uses).

type pump struct {
	n int
}

// step allocates in a loop; it is hot only because Register roots it
// through a method value.
func (p *pump) step() {
	for i := 0; i < 8; i++ {
		x := make([]int, 4)
		p.n += len(x)
	}
}

// Register hands out a bound method value; the directive on the binding
// line must root (*pump).step itself.
func Register() func() {
	p := &pump{}
	//sjvet:hotpath -- the bound method runs per row in the fixture harness
	f := p.step
	return f
}

// helperCold must stay cold: the only directive near its reference lives
// inside a function literal, and directives do not leak across function
// scopes.
func helperCold() int {
	n := 0
	for i := 0; i < 4; i++ {
		buf := make([]byte, 8)
		n += len(buf)
	}
	return n
}

// apply exists so Scoped can reference helperCold on the source line
// directly after a directive that lives inside a function literal.
func apply(f func() int, n int) int {
	return f() + n
}

// Scoped passes a literal whose body ends with a directive; the helperCold
// reference on the very next source line belongs to Scoped's body, a
// different scope, and must not be rooted.
func Scoped() int {
	return apply(func() int {
		return 0
		//sjvet:hotpath -- scoped to this literal; must not leak outward
	}, helperCold())
}

// colder must also stay cold: the directive below sits in Inward's body,
// and the colder reference on the next line sits inside a nested literal —
// a different innermost function, so it is out of the directive's scope.
func colder() int {
	n := 0
	for i := 0; i < 4; i++ {
		n += len(make([]string, 2))
	}
	return n
}

// Inward holds the outer-directive/inner-reference direction of the
// scoping rule.
func Inward() func() int {
	//sjvet:hotpath -- outer directive; the ref below is inside a literal
	return func() int { return colder() }
}
