// Package hot exercises the hot-path analyzers: hotalloc (loop-carried
// allocation on a //sjvet:hotpath-rooted function and its transitive
// callees, plus a suppression) and retain (a hot-path callee pinning a
// caller buffer in a field or in package-level state).
package hot

// lastBuf makes Keep a global-retaining callee.
var lastBuf []byte

// Keep pins its argument in package-level state: a retain finding at every
// hot call site.
func Keep(buf []byte) {
	lastBuf = buf
}

type sink struct {
	kept []byte
}

// stash retains the buffer in a field and returns nothing, so the caller
// cannot be receiving ownership back.
func (s *sink) stash(buf []byte) {
	s.kept = buf
}

// Serve is the fixture's per-row loop, rooted by directive.
//
//sjvet:hotpath -- fixture hot-path root
func Serve(rows [][]byte) int {
	total := 0
	for _, r := range rows {
		key := string(r) // loop-carried conversion: hotalloc
		total += len(key)
		total += helper(r) // helper allocates per call: hotalloc
	}
	for i := 0; i < 3; i++ {
		//sjvet:ignore hotalloc -- fixture: scratch grows to a high-water mark once
		tmp := make([]byte, i)
		total += len(tmp)
	}
	s := &sink{}
	s.stash(rows[0]) // field retention by a void callee: retain
	Keep(rows[0])    // global retention: retain
	return total
}

// helper is hot only transitively (reachable from hot.Serve); its own
// loop-carried make is reported at this declaration.
func helper(r []byte) int {
	n := 0
	for _, b := range r {
		chunk := make([]byte, 1)
		chunk[0] = b
		n += int(chunk[0])
	}
	return n
}
