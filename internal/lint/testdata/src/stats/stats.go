// Package stats exercises the determinism analyzer over statistics-store
// shaped code (the package name puts it in the reproducible-derivation-core
// scope: stored statistics steer plan choice, so their encoding and epoch
// logic must replay bit-for-bit) plus the purity analyzer for compute
// closures that accumulate observations into shared state.
package stats

import (
	"math/rand"
	"sort"
	"time"

	"sjvettest/rdd"
)

// TableFact is a toy statistics-store entry.
type TableFact struct {
	Rows    int64
	Updated int64
}

// ObserveNow stamps a fact with the wall clock: replaying the same
// observation stream would encode different bytes.
func ObserveNow(rows int64) TableFact {
	return TableFact{Rows: rows, Updated: time.Now().UnixNano()}
}

// SampleRows draws a reservoir index from the global math/rand source.
func SampleRows(n int) int {
	return rand.Intn(n)
}

// SeededSample is clean: the generator is explicitly seeded.
func SeededSample(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// EncodeOrder leaks map iteration order into the serialized fact list.
func EncodeOrder(facts map[string]TableFact) []string {
	var names []string
	for name := range facts {
		names = append(names, name)
	}
	return names
}

// EncodeSorted is clean: names are sorted before they escape.
func EncodeSorted(facts map[string]TableFact) []string {
	var names []string
	for name := range facts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TotalRows is clean: the accumulation is order-independent.
func TotalRows(facts map[string]TableFact) int64 {
	var total int64
	for _, f := range facts {
		total += f.Rows
	}
	return total
}

// ProfilePartitions accumulates per-partition row counts into captured
// state from inside a compute closure — racy across partitions.
func ProfilePartitions(rows []int) int {
	r := rdd.Parallelize(rows)
	observed := 0
	_ = rdd.Map(r, func(v int) int {
		observed += v // assigns to captured variable
		return v
	})
	return observed
}

// ProfileCollected is clean: the action returns the rows and the counting
// happens outside any compute closure.
func ProfileCollected(rows []int) int {
	r := rdd.Parallelize(rows)
	total := 0
	for _, v := range r.Collect() {
		total += v
	}
	return total
}
