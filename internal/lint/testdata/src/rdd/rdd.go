// Package rdd is a miniature stand-in for the real data-parallel substrate:
// just enough API surface (compute field, Map/Filter/FlatMap, one action)
// for the analyzers to recognize parallel closures.
package rdd

// RDD is a partitioned collection of ints.
type RDD struct {
	compute func(part int) []int
}

// Parallelize wraps a slice as a single-partition RDD.
func Parallelize(data []int) *RDD {
	return &RDD{compute: func(part int) []int { return data }}
}

// Map applies f elementwise.
func Map(r *RDD, f func(int) int) *RDD {
	return &RDD{compute: func(part int) []int {
		in := r.compute(part)
		out := make([]int, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out
	}}
}

// Filter keeps elements satisfying pred.
func Filter(r *RDD, pred func(int) bool) *RDD {
	return &RDD{compute: func(part int) []int {
		var out []int
		for _, v := range r.compute(part) {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out
	}}
}

// FlatMap applies f elementwise and concatenates the results.
func FlatMap(r *RDD, f func(int) []int) *RDD {
	return &RDD{compute: func(part int) []int {
		var out []int
		for _, v := range r.compute(part) {
			out = append(out, f(v)...)
		}
		return out
	}}
}

// Collect materializes the RDD.
func (r *RDD) Collect() []int { return r.compute(0) }

// Count returns the number of elements.
func (r *RDD) Count() int { return len(r.compute(0)) }

// ExchangePartitions redistributes n partitions, running fn data-parallel.
func ExchangePartitions(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ZipPartitions pairs partitions elementwise, running fn data-parallel.
func ZipPartitions(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ExecFailure mirrors the real placement layer's structured execution
// failure: the stage that died and the underlying cause. errflow's
// swallow check matches this type by name and package.
type ExecFailure struct {
	Stage int
	Cause error
}

// Error renders the failure.
func (e *ExecFailure) Error() string { return "stage failed" }

// Unwrap exposes the cause to errors.Is/As.
func (e *ExecFailure) Unwrap() error { return e.Cause }
