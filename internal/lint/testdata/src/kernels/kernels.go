// Package kernels exercises the analyzers over the columnar substrate:
// frame mask-kernel closures inherit the rdd compute contract (purity), and
// vectors built by frame.Convert carry their target unit into element
// arithmetic (unitsafety).
package kernels

import (
	"sjvettest/frame"
	"sjvettest/units"
)

var scanned int

// DirtyMasks hands the mask kernels closures that write state outliving one
// row evaluation.
func DirtyMasks(f *frame.Frame) []bool {
	matched := 0
	keep := frame.MaskRows(f, func(v int) bool {
		matched++ // assigns to captured variable
		return v > 0
	})
	_ = frame.MaskValues(f, "temp", func(v int) bool {
		scanned++ // writes package-level state
		return v < 100
	})
	_ = matched
	return keep
}

// CleanMasks communicates only through the predicate's return value.
func CleanMasks(f *frame.Frame) []bool {
	threshold := 50
	return frame.MaskValues(f, "temp", func(v int) bool {
		return v > threshold // reading captures is fine
	})
}

// DirtyVectorDelta differences elements of a kelvin vector against a
// celsius scalar.
func DirtyVectorDelta(d *units.Dict, raw []float64, ambient float64) float64 {
	hot, _ := frame.Convert(d, raw, "celsius", "kelvin")
	amb, _ := d.Convert(ambient, "fahrenheit", "celsius")
	return hot[0] - amb
}

// CleanVectorDelta converts both sides to a common unit first.
func CleanVectorDelta(d *units.Dict, raw []float64, ambient float64) float64 {
	hot, _ := frame.Convert(d, raw, "celsius", "kelvin")
	amb, _ := d.Convert(ambient, "fahrenheit", "kelvin")
	return hot[0] - amb
}
