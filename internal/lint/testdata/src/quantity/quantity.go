// Package quantity exercises the unitsafety analyzer: raw arithmetic mixing
// quantities obtained in different units.
package quantity

import "sjvettest/units"

// DirtyDelta differences a celsius quantity against a kelvin quantity.
func DirtyDelta(d *units.Dict, hot, cold float64) float64 {
	h, _ := d.Convert(hot, "fahrenheit", "celsius")
	c, _ := d.Convert(cold, "fahrenheit", "kelvin")
	return h - c
}

// DirtyCompare compares quantities in different units.
func DirtyCompare(d *units.Dict, a, b float64) bool {
	x, _ := d.Convert(a, "bytes", "megabytes")
	y, _ := d.Convert(b, "bytes", "gigabytes")
	return x > y
}

// DirtyAccum accumulates minutes into a seconds total.
func DirtyAccum(d *units.Dict, total float64, vals []float64) float64 {
	sum, _ := d.Convert(total, "seconds", "seconds")
	for _, v := range vals {
		m, _ := d.Convert(v, "seconds", "minutes")
		sum += m
	}
	return sum
}

// CleanDelta converts both sides to a common unit before differencing.
func CleanDelta(d *units.Dict, hot, cold float64) float64 {
	h, _ := d.Convert(hot, "fahrenheit", "kelvin")
	c, _ := d.Convert(cold, "fahrenheit", "kelvin")
	return h - c
}

// CleanScale is clean: scaling a tagged quantity by a bare factor keeps its
// unit; only mixing two differently-tagged quantities is unsafe.
func CleanScale(d *units.Dict, v float64) float64 {
	k, _ := d.Convert(v, "celsius", "kelvin")
	return k * 2
}
