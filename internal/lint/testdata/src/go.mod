module sjvettest

go 1.22
