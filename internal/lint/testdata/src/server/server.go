// Package server exercises the goroleak analyzer: goroutines without a
// termination edge, including the case where the unbounded loop hides in a
// named callee and is only visible through its summary.
package server

import (
	"context"
	"sync"
)

// pump spins forever with no exit edge; only its summary exposes that to
// the go statement that spawns it.
func pump(counts []int) {
	i := 0
	for {
		counts[i%len(counts)]++
		i++
	}
}

// DirtyNamed leaks a goroutine through a named callee.
func DirtyNamed(counts []int) {
	go pump(counts)
}

// DirtySpin leaks an inline busy-loop goroutine.
func DirtySpin() {
	n := 0
	go func() {
		for {
			n++
		}
	}()
}

// CleanRange drains a channel the producer closes — a termination edge.
func CleanRange(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// CleanCtx exits when the context is cancelled.
func CleanCtx(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// CleanWG runs a bounded worker accounted by a WaitGroup.
func CleanWG(wg *sync.WaitGroup, jobs []int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, j := range jobs {
			_ = j
		}
	}()
}
