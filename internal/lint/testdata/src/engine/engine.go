// Package engine exercises the ctxflow analyzer: blocking paths that drop
// or replace the caller's cancellable context, including the case visible
// only through a helper's blocking summary.
package engine

import "context"

// waitIdle blocks on the quiesce channel; its summary carries the blocking
// fact into callers.
func waitIdle(quiesce chan struct{}) {
	<-quiesce
}

// Solve threads its context through the blocking wait — the clean pattern.
func Solve(ctx context.Context, quiesce chan struct{}) {
	select {
	case <-ctx.Done():
	case <-quiesce:
	}
}

// DirtyBackground receives a context but roots a fresh background one.
func DirtyBackground(ctx context.Context, quiesce chan struct{}) {
	Solve(context.Background(), quiesce)
	_ = ctx
}

// DirtyDropped receives a context but never threads it into the blocking
// drain; the block itself hides inside waitIdle, so only the summary sees
// that cancellation cannot reach it.
func DirtyDropped(ctx context.Context, quiesce chan struct{}) {
	waitIdle(quiesce)
}

// DirtyFeed has no context of its own and feeds a fresh background root to
// the context-threading solver.
func DirtyFeed(quiesce chan struct{}) {
	Solve(context.Background(), quiesce)
}

// CleanIdle has an unused context but never blocks — not a propagation gap.
func CleanIdle(ctx context.Context, n int) int {
	return n * 2
}
