// Package locks exercises the lockdiscipline analyzer: mutexes held across
// channel operations or rdd actions.
package locks

import (
	"sync"

	"sjvettest/rdd"
)

// Box guards a channel with a mutex (badly).
type Box struct {
	mu sync.Mutex
	ch chan int
}

// DirtySend sends on a channel while holding the mutex.
func (b *Box) DirtySend(v int) {
	b.mu.Lock()
	b.ch <- v
	b.mu.Unlock()
}

// DirtyRecvDefer holds the mutex (via defer) across a receive.
func (b *Box) DirtyRecvDefer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch
}

// DirtyAction runs an rdd action while holding the mutex.
func (b *Box) DirtyAction(r *rdd.RDD) []int {
	b.mu.Lock()
	out := r.Collect()
	b.mu.Unlock()
	return out
}

// Clean releases the mutex before blocking operations.
func (b *Box) Clean(r *rdd.RDD, v int) []int {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- v
	return r.Collect()
}
