// Package locks exercises the lockdiscipline analyzer: mutexes held across
// channel operations or rdd actions.
package locks

import (
	"sync"

	"sjvettest/rdd"
)

// Box guards a channel with a mutex (badly).
type Box struct {
	mu sync.Mutex
	ch chan int
}

// DirtySend sends on a channel while holding the mutex.
func (b *Box) DirtySend(v int) {
	b.mu.Lock()
	b.ch <- v
	b.mu.Unlock()
}

// DirtyRecvDefer holds the mutex (via defer) across a receive.
func (b *Box) DirtyRecvDefer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch
}

// DirtyAction runs an rdd action while holding the mutex.
func (b *Box) DirtyAction(r *rdd.RDD) []int {
	b.mu.Lock()
	out := r.Collect()
	b.mu.Unlock()
	return out
}

// Clean releases the mutex before blocking operations.
func (b *Box) Clean(r *rdd.RDD, v int) []int {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- v
	return r.Collect()
}

// notify sends on the box's channel — blocking hidden in a helper; its
// summary carries the fact to call sites under a lock.
func (b *Box) notify(v int) { b.ch <- v }

// depth is read-only and safe to call under the lock.
func (b *Box) depth() int { return len(b.ch) }

// DirtyHelperSend calls the channel-sending helper while holding the
// mutex; only notify's summary exposes the block.
func (b *Box) DirtyHelperSend(v int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.notify(v)
	return b.depth()
}
