// Package bad fails type-checking: the loader must surface a diagnostic
// (sjvet exit 2), not panic.
package bad

var oops int = "not an int"
