module sjvetbroken

go 1.22
