// Package rdd is the multi-module fixture's miniature data-parallel substrate.
package rdd

// RDD is a partitioned collection of ints.
type RDD struct {
	compute func(part int) []int
}

// Parallelize wraps a slice as a single-partition RDD.
func Parallelize(data []int) *RDD {
	return &RDD{compute: func(part int) []int { return data }}
}

// Map applies f elementwise.
func Map(r *RDD, f func(int) int) *RDD {
	return &RDD{compute: func(part int) []int {
		in := r.compute(part)
		out := make([]int, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out
	}}
}

// Collect materializes the RDD.
func (r *RDD) Collect() []int { return r.compute(0) }
