module sjvetmulti

go 1.22
