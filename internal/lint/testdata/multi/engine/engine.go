// Package engine is the dirty half of the multi-package fixture: exactly one
// finding per analyzer.
package engine

import (
	"context"

	"sync"
	"time"

	"sjvetmulti/rdd"
	"sjvetmulti/units"
)

var hits int

// Server guards a channel with a mutex.
type Server struct {
	mu sync.Mutex
	ch chan int
}

// CountHits writes package state from a compute closure (purity).
func CountHits(r *rdd.RDD) *rdd.RDD {
	return rdd.Map(r, func(v int) int {
		hits++
		return v
	})
}

// Stamp reads the wall clock in engine code (determinism).
func Stamp() int64 { return time.Now().UnixNano() }

// Push sends on a channel while holding the mutex (lockdiscipline).
func (s *Server) Push(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v
}

// Mixed differences kelvin against fahrenheit (unitsafety).
func Mixed(d *units.Dict, a, b float64) float64 {
	x, _ := d.Convert(a, "celsius", "kelvin")
	y, _ := d.Convert(b, "celsius", "fahrenheit")
	return x - y
}

// Drain blocks on the done channel but never consults its context — the
// ctxflow violation (cancellation cannot reach the receive).
func Drain(ctx context.Context, done chan struct{}) {
	<-done
}
