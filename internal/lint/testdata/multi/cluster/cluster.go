// Package cluster is the multi-module fixture's flow-sensitive half: one
// lock-order cycle, one conn leaked on an error path, and one error
// overwritten before it is read — each the minimal demonstration of the
// lockorder, leakcheck and errflow analyzers on a second module.
package cluster

import "sync"

// Pool guards the free list.
type Pool struct {
	mu   sync.Mutex
	free int
}

// Gauge guards the counters.
type Gauge struct {
	mu sync.Mutex
	n  int
}

// TakeThenCount locks pool before gauge.
func TakeThenCount(p *Pool, g *Gauge) {
	p.mu.Lock()
	g.mu.Lock()
	g.n++
	p.free--
	g.mu.Unlock()
	p.mu.Unlock()
}

// CountThenTake locks gauge before pool — the inversion that completes the
// lockorder cycle.
func CountThenTake(p *Pool, g *Gauge) {
	g.mu.Lock()
	p.mu.Lock()
	p.free++
	g.n--
	p.mu.Unlock()
	g.mu.Unlock()
}

// Conn is a minimal closable connection.
type Conn struct {
	open bool
}

// Close releases the conn.
func (c *Conn) Close() error {
	c.open = false
	return nil
}

// dial opens a conn.
func dial() (*Conn, error) {
	return &Conn{open: true}, nil
}

// ping checks liveness without taking ownership.
func ping(c *Conn) error {
	if !c.open {
		return errClosed
	}
	return nil
}

var errClosed = &closedError{}

type closedError struct{}

func (*closedError) Error() string { return "closed" }

// Fetch leaks the conn when ping fails: the error return exits with c
// still open — the leakcheck finding.
func Fetch() (*Conn, error) {
	c, err := dial()
	if err != nil {
		return nil, err
	}
	if err := ping(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Exchange overwrites the push error with the drain error before anything
// reads it — the errflow finding.
func Exchange(push, drain func() error) error {
	err := push()
	err = drain()
	return err
}
