// Package units is the multi-module fixture's miniature unit dictionary.
package units

// Dict converts scalars between named units.
type Dict struct{}

// Convert converts v from one unit expression to another.
func (d *Dict) Convert(v float64, from, to string) (float64, error) {
	_, _ = from, to
	return v, nil
}
