// Package hot is the multi-module fixture's serving path: one
// directive-rooted loop with a per-row allocation (hotalloc) and one call
// that hands a buffer to a globally-retaining callee (retain).
package hot

// history makes Record a retaining callee.
var history [][]byte

// Record pins the row in package-level state and returns nothing.
func Record(row []byte) {
	history = append(history, row)
}

// Pump drains the batch on the serving path.
//
//sjvet:hotpath -- the multi fixture's per-row loop
func Pump(rows [][]byte) int {
	total := 0
	for _, r := range rows {
		line := string(r) // per-row conversion: hotalloc
		total += len(line)
	}
	Record(rows[0]) // global retention: retain
	return total
}
