// Package pipeline is the clean half of the multi-package fixture: it does
// the same kinds of work as engine, the invariant-respecting way, and must
// produce zero findings.
package pipeline

import (
	"context"

	"sort"
	"sync"

	"sjvetmulti/rdd"
	"sjvetmulti/units"
)

// Registry is a mutex-guarded name table.
type Registry struct {
	mu sync.Mutex
	m  map[string]int
}

// Names lists registered names deterministically (sorted after the map walk)
// and never blocks while holding the mutex.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k := range r.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Doubled uses a pure compute closure.
func Doubled(r *rdd.RDD) []int {
	return rdd.Map(r, func(v int) int { return v * 2 }).Collect()
}

// Delta converts both quantities to kelvin before differencing.
func Delta(d *units.Dict, a, b float64) float64 {
	x, _ := d.Convert(a, "celsius", "kelvin")
	y, _ := d.Convert(b, "fahrenheit", "kelvin")
	return x - y
}

// Wait threads its context through the blocking wait — the clean pattern.
func Wait(ctx context.Context, done chan struct{}) {
	select {
	case <-ctx.Done():
	case <-done:
	}
}
