// Package server is the multi-module fixture's goroutine-hygiene half:
// one leaked goroutine and one with a proper termination edge.
package server

// Spin leaks an unbounded goroutine — the goroleak violation.
func Spin(counter *int) {
	go func() {
		for {
			(*counter)++
		}
	}()
}

// Drain exits when jobs closes — a termination edge, clean.
func Drain(jobs chan int, total *int) {
	go func() {
		for j := range jobs {
			*total += j
		}
	}()
}
