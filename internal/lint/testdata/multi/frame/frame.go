// Package frame is the multi-module fixture's miniature columnar batch:
// dirty (post-freeze write) and clean (fresh-storage write) frameimmut
// cases.
package frame

// Frame is an immutable batch with one int column.
type Frame struct {
	cells []int
}

// Builder accumulates cells; it owns its storage until Freeze.
type Builder struct {
	cells []int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Append adds one cell.
func (b *Builder) Append(v int) { b.cells = append(b.cells, v) }

// Freeze publishes the cells as an immutable frame.
func (b *Builder) Freeze() *Frame { return &Frame{cells: b.cells} }

// Cells returns the live payload vector (read-only for callers).
func (f *Frame) Cells() []int { return f.cells }

// Scratch keeps writing after Freeze — the frameimmut violation.
func Scratch() *Frame {
	b := NewBuilder()
	b.Append(1)
	fr := b.Freeze()
	fr.cells[0] = 2
	return fr
}

// Fresh fills newly allocated storage before publishing it — clean.
func Fresh(n int) *Frame {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.Append(i)
	}
	return b.Freeze()
}
