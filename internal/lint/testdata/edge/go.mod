module sjvetedge

go 1.22
