// Package ok is the edge-layout fixture's one ordinary package.
package ok

// Two returns 2.
func Two() int { return 2 }
