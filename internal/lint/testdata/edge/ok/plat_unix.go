//go:build unix

package ok

// platform names the build the file was selected for. Its twin in
// plat_other.go declares the same function behind the inverse constraint:
// a loader that ignores //go:build lines type-checks both and fails on
// the redeclaration.
func platform() string { return "unix" }
