//go:build !unix

package ok

// platform names the build the file was selected for; see plat_unix.go.
func platform() string { return "other" }
