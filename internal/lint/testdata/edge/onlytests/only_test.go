// Package onlytests has no non-test files: the loader must skip it (there
// is no package proper to analyze) rather than panic.
package onlytests

import "testing"

func TestNothing(t *testing.T) {}
