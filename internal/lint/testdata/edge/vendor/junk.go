this is not Go source at all {{{ the loader must never parse vendored trees
