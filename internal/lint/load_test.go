package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadEdgeLayouts loads the edge-layout fixture module: a package
// directory holding only _test.go files (no package proper to analyze), a
// vendored subdirectory containing non-Go garbage, and a per-platform
// file pair in the ordinary package whose twin declarations collide
// unless build constraints are honoured. The loader must skip all of
// them — with and without -tests — and come back with just the ordinary
// package and the one platform file that matches.
func TestLoadEdgeLayouts(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "edge"))
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []LoadOptions{{}, {IncludeTests: true}} {
		m, err := LoadModule(root, opts)
		if err != nil {
			t.Fatalf("LoadModule(edge, %+v): %v", opts, err)
		}
		var paths []string
		for _, p := range m.Pkgs {
			paths = append(paths, p.Path)
		}
		if len(paths) != 1 || paths[0] != "sjvetedge/ok" {
			t.Errorf("LoadModule(edge, %+v) loaded %v, want exactly [sjvetedge/ok]", opts, paths)
			continue
		}
		if n := len(m.Pkgs[0].Files); n != 2 {
			t.Errorf("LoadModule(edge, %+v) parsed %d files in ok, want 2 (ok.go + one platform file)", opts, n)
		}
	}
}

// TestLoadBrokenModule loads the fixture module with a type error: the
// loader must return a diagnostic naming the package, never panic.
func TestLoadBrokenModule(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadModule(root, LoadOptions{})
	if err == nil {
		t.Fatal("LoadModule(broken) succeeded; want a type-check diagnostic")
	}
	if !strings.Contains(err.Error(), "type-checking") || !strings.Contains(err.Error(), "sjvetbroken/bad") {
		t.Errorf("diagnostic should name the failing package, got: %v", err)
	}
}
