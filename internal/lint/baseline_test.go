package lint

import (
	"go/token"
	"strings"
	"testing"
)

func bf(file, analyzer, msg string) Finding {
	return Finding{Pos: token.Position{Filename: file, Line: 3, Column: 1}, Analyzer: analyzer, Message: msg}
}

// TestBaselineRoundTrip: format → parse is lossless, sorted and
// deduplicated; comments and blank lines are ignored.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		bf("b.go", "purity", "writes sum"),
		bf("a.go", "ctxflow", "drops ctx"),
		bf("b.go", "purity", "writes sum"), // duplicate collapses
	}
	data := FormatBaseline(findings)
	entries, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("want 2 deduplicated entries, got %d", len(entries))
	}
	if entries[0].File != "a.go" || entries[1].File != "b.go" {
		t.Errorf("entries should be sorted by key: %+v", entries)
	}

	if _, err := ParseBaseline([]byte("# comment\n\nx.go\tonly-two-fields\n")); err == nil {
		t.Error("malformed line should be a parse error")
	}
}

// TestApplyBaseline: grandfathered findings are filtered, fresh ones
// survive, and entries with no matching finding are reported stale.
func TestApplyBaseline(t *testing.T) {
	findings := []Finding{
		bf("a.go", "purity", "old"),
		bf("a.go", "purity", "new"),
	}
	entries := []BaselineEntry{
		{File: "a.go", Analyzer: "purity", Message: "old"},
		{File: "gone.go", Analyzer: "ctxflow", Message: "fixed long ago"},
	}
	fresh, matched, stale := ApplyBaseline(findings, entries)
	if matched != 1 {
		t.Errorf("matched = %d, want 1", matched)
	}
	if len(fresh) != 1 || fresh[0].Message != "new" {
		t.Errorf("fresh = %v, want just the new finding", fresh)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %v, want just the gone.go entry", stale)
	}

	// Set semantics: one entry covers repeated identical findings.
	dup := []Finding{bf("a.go", "purity", "old"), bf("a.go", "purity", "old")}
	fresh, matched, stale = ApplyBaseline(dup, entries[:1])
	if len(fresh) != 0 || matched != 2 || len(stale) != 0 {
		t.Errorf("duplicate findings should both match one entry: fresh=%v matched=%d stale=%v", fresh, matched, stale)
	}
}

// TestBaselineHeader pins the self-documenting header.
func TestBaselineHeader(t *testing.T) {
	if !strings.HasPrefix(string(FormatBaseline(nil)), "# sjvet baseline") {
		t.Error("baseline should start with an explanatory header comment")
	}
}
