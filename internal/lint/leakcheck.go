package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// leakcheckPackages are the layers that own OS-level resources: TCP shuffle
// links, the cluster conn pools, the serving daemon, the cold cache's spill
// files, and the worker process. A conn or file leaked there accumulates
// across queries instead of dying with a short-lived command.
var leakcheckPackages = map[string]bool{
	"shuffle":    true,
	"cluster":    true,
	"server":     true,
	"cache":      true,
	"sjworker":   true,
	"provenance": true,
}

// releaseMethods are the method names that relinquish a tracked resource.
// interproc.go uses the same set to compute ParamReleased summaries. EndAt
// is the explicit-offset form of Span.End, used by the worker-side span
// shipper's instrumentation.
var releaseMethods = map[string]bool{"Close": true, "Stop": true, "End": true, "EndAt": true}

// LeakCheckAnalyzer proves must-release on every control-flow path: a
// connection, file, ticker, timer, or observability span acquired by a
// function must be released (Close/Stop/End), deferred, or handed off —
// returned, stored, sent, or passed to a callee whose summary says it
// retains or releases its argument — on every path to function exit.
// The check is flow-sensitive over the CFG (cfg.go) and interprocedurally
// aware through ParamReleased summaries, with lightweight path-sensitivity
// for `v != nil` and freshly paired `err != nil` guards so the idiomatic
// acquire-then-check-error prologue is not flagged.
func LeakCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "leakcheck",
		Doc: "resources acquired in the shuffle/cluster/server/cache layers — " +
			"net.Conn, os.File, time.Ticker/Timer, obs spans, and Close-able Conn " +
			"types — must be released on every path to function exit: close on " +
			"the error path, defer the release, or hand ownership to a helper " +
			"that provably releases or retains its argument.",
		AppliesTo: func(pkg *Package) bool {
			return leakcheckPackages[pathBase(pkg.Path)] || leakcheckPackages[pkg.Name]
		},
		Run: runLeakCheck,
	}
}

// resourceClass classifies a type as a tracked resource and names its
// release method. Pointers are unwrapped; the Conn rule is structural (any
// named Conn with a Close method) so the module's own shuffle.Conn and
// net.Conn are both covered.
func resourceClass(t types.Type) (class, release string, ok bool) {
	t = types.Unalias(t)
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(p.Elem())
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name()
	}
	switch {
	case pkg == "os" && obj.Name() == "File":
		return "os.File", "Close", true
	case pkg == "time" && obj.Name() == "Ticker":
		return "time.Ticker", "Stop", true
	case pkg == "time" && obj.Name() == "Timer":
		return "time.Timer", "Stop", true
	case pkg == "obs" && obj.Name() == "Span":
		return "obs.Span", "End", true
	case obj.Name() == "Conn" && hasMethodNamed(named, "Close"):
		return pkg + ".Conn", "Close", true
	}
	return "", "", false
}

// hasMethodNamed reports whether name is in the (pointer) method set of t.
func hasMethodNamed(t types.Type, name string) bool {
	recv := t
	if !types.IsInterface(t) {
		recv = types.NewPointer(t)
	}
	obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// leak-tracking lattice for one acquisition, ordered by "how leaky": merge
// at joins takes the max, so any live path survives to the exit check.
const (
	stNone      uint8 = iota // path does not hold the resource
	stDone                   // released or ownership handed off
	stLiveFresh              // held; the paired err var is still the acquisition's
	stLiveStale              // held; err has been reassigned since
)

// acquisition is one tracked resource: the assignment that created it, the
// variable holding it, and the error variable paired in the same statement
// (nil when the acquiring call returns no error).
type acquisition struct {
	assign  *ast.AssignStmt
	v       *types.Var
	errVar  *types.Var
	class   string
	release string
	block   *Block
	nodeIdx int
}

func runLeakCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if isTestFile(filename) {
			continue
		}
		for _, fn := range fileFuncs(file) {
			checkLeaksInFunc(pass, fn)
		}
	}
}

func checkLeaksInFunc(pass *Pass, fn funcUnit) {
	info := pass.Pkg.Info
	cfg := pass.Flow.CFG(fn.Name, fn.Body)
	for _, acq := range findAcquisitions(info, cfg) {
		checkAcquisition(pass, info, cfg, acq)
	}
}

// findAcquisitions scans the CFG for `v, err := acquiringCall(...)` style
// assignments whose left-hand side binds a tracked resource type.
func findAcquisitions(info *types.Info, cfg *CFG) []acquisition {
	var acqs []acquisition
	for _, blk := range cfg.Blocks {
		if blk == cfg.Exit {
			continue // deferred calls never acquire for this frame
		}
		for idx, node := range blk.Nodes {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
				continue
			}
			var errVar *types.Var
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if v, ok := lhsVar(info, id); ok && isErrorType(v.Type()) {
						errVar = v
					}
				}
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				v, ok := lhsVar(info, id)
				if !ok {
					continue
				}
				class, release, ok := resourceClass(v.Type())
				if !ok {
					continue
				}
				acqs = append(acqs, acquisition{
					assign: as, v: v, errVar: errVar,
					class: class, release: release,
					block: blk, nodeIdx: idx,
				})
			}
		}
	}
	return acqs
}

func lhsVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}

func isErrorType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkAcquisition runs the may-leak flow for one acquisition and reports
// when some path reaches function exit still holding the resource.
func checkAcquisition(pass *Pass, info *types.Info, cfg *CFG, acq acquisition) {
	spec := FlowSpec[uint8]{
		Init:  stNone,
		Merge: func(a, b uint8) uint8 { return max(a, b) },
		Equal: func(a, b uint8) bool { return a == b },
		Transfer: func(blk *Block, in uint8) uint8 {
			st := in
			for idx, node := range blk.Nodes {
				if blk == acq.block && idx == acq.nodeIdx {
					st = stLiveFresh
					if acq.errVar == nil {
						st = stLiveStale
					}
					continue
				}
				if st != stLiveFresh && st != stLiveStale {
					continue
				}
				eff := nodeEffect(pass, info, node, acq)
				switch {
				case eff.released, eff.transferred, eff.vRedefined:
					st = stDone
				case eff.errRedefined && st == stLiveFresh:
					st = stLiveStale
				}
			}
			return st
		},
		Edge: func(from, to *Block, out uint8) uint8 {
			if out != stLiveFresh && out != stLiveStale {
				return out
			}
			return refineNilGuard(info, from, to, out, acq)
		},
	}
	_, out := RunForward(cfg, spec)
	exit := out[cfg.Exit]
	if exit != stLiveFresh && exit != stLiveStale {
		return
	}
	steps := leakTrace(pass, cfg, acq, out)
	pass.ReportPath(acq.assign.Pos(), steps,
		"%s (%s) is not released on every path: a path reaches function exit without %s(); %s on the error path, defer it, or hand ownership to a helper that releases it",
		acq.v.Name(), acq.class, acq.release, acq.release)
}

// refineNilGuard is the path-sensitive part: a `v != nil` / `v == nil`
// guard kills the resource on the nil branch, and — while the paired error
// variable is still the acquisition's own — `err != nil` implies the
// resource is nil on the error branch (the universal Go convention for
// (T, error) returns).
func refineNilGuard(info *types.Info, from, to *Block, out uint8, acq acquisition) uint8 {
	cond, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.EQL && cond.Op != token.NEQ) {
		return out
	}
	operand, isNilCmp := nilComparand(cond)
	if !isNilCmp {
		return out
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return out
	}
	obj, _ := info.ObjectOf(id).(*types.Var)
	if obj == nil || len(from.Succs) < 2 {
		return out
	}
	onTrue := to == from.Succs[0]
	// cond `x == nil`: x is nil on the true edge; `x != nil`: on the false.
	nilEdge := (cond.Op == token.EQL) == onTrue
	if obj == acq.v && nilEdge {
		return stDone
	}
	if obj == acq.errVar && out == stLiveFresh {
		// err non-nil edge: the convention says the resource was not handed
		// out. err == nil on the true edge means non-nil on the false edge.
		errNonNil := (cond.Op == token.NEQ) == onTrue
		if errNonNil {
			return stDone
		}
	}
	return out
}

// nilComparand returns the non-nil side of a comparison against nil.
func nilComparand(cond *ast.BinaryExpr) (ast.Expr, bool) {
	if isNilIdent(cond.Y) {
		return cond.X, true
	}
	if isNilIdent(cond.X) {
		return cond.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// effect summarizes what one CFG node does to a tracked resource.
type effect struct {
	released     bool
	transferred  bool
	vRedefined   bool
	errRedefined bool
}

// nodeEffect classifies one node. Deferred statements contribute nothing at
// registration — their calls replay as Exit-block effects, so a deferred
// release is seen exactly where it runs.
func nodeEffect(pass *Pass, info *types.Info, node ast.Node, acq acquisition) effect {
	var eff effect
	if _, isDefer := node.(*ast.DeferStmt); isDefer {
		return eff
	}
	// The CFG stores a range statement whole in its head block; only the
	// ranged expression evaluates there, the body has its own blocks.
	if rs, ok := node.(*ast.RangeStmt); ok {
		node = rs.X
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure mentioning the resource takes shared custody; it may
			// release it later (goroutine teardown, defer wrapper).
			if mentionsVar(info, n.Body, acq.v) {
				eff.transferred = true
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj, _ := info.ObjectOf(id).(*types.Var); obj != nil {
						if obj == acq.v {
							eff.vRedefined = true
						}
						if obj == acq.errVar {
							eff.errRedefined = true
						}
					}
					continue
				}
				// v stored through a selector/index: ownership moves into
				// the structure.
				for _, rhs := range n.Rhs {
					if exprIsVar(info, rhs, acq.v) || mentionsVar(info, rhs, acq.v) {
						eff.transferred = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsVar(info, res, acq.v) {
					eff.transferred = true
				}
			}
		case *ast.SendStmt:
			if mentionsVar(info, n.Value, acq.v) {
				eff.transferred = true
			}
		case *ast.GoStmt:
			if mentionsVar(info, n.Call, acq.v) {
				eff.transferred = true
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if mentionsVar(info, elt, acq.v) {
					eff.transferred = true
				}
			}
		case *ast.CallExpr:
			classifyCall(pass, info, n, acq, &eff)
		}
		return true
	})
	return eff
}

// classifyCall decides what a call does with the resource: the release
// method on the variable itself releases it; a module-internal callee's
// summary decides between released / transferred / plain use; an external
// or dynamic callee receiving the resource is assumed to take ownership
// (conservative in the quiet direction — it can hide a leak, never invent
// one).
func classifyCall(pass *Pass, info *types.Info, call *ast.CallExpr, acq acquisition, eff *effect) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if exprIsVar(info, sel.X, acq.v) {
			if sel.Sel.Name == acq.release ||
				(acq.release == "End" && sel.Sel.Name == "EndAt") {
				eff.released = true
			}
			return // other methods on the resource are plain uses
		}
	}
	fi := pass.IP.StaticCallee(info, call)
	for i, arg := range call.Args {
		if !exprIsVar(info, arg, acq.v) {
			continue
		}
		if fi == nil {
			eff.transferred = true
			continue
		}
		f := fi.Summary.ArgFacts(i)
		switch {
		case f&ParamReleased != 0:
			eff.released = true
		case f&(ParamRetained|ParamToGoroutine|ParamToGlobal|ParamEscapes) != 0:
			eff.transferred = true
		}
	}
}

func exprIsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj, _ := info.ObjectOf(id).(*types.Var)
	return obj == v
}

func mentionsVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if obj, _ := info.ObjectOf(id).(*types.Var); obj == v {
				found = true
			}
		}
		return true
	})
	return found
}

// leakTrace reconstructs one concrete leaking path — acquisition to exit
// through live blocks — as trace steps for SARIF codeFlows and goldens.
func leakTrace(pass *Pass, cfg *CFG, acq acquisition, out map[*Block]uint8) []TraceStep {
	steps := []TraceStep{{
		Pos:  pass.Fset.Position(acq.assign.Pos()),
		Text: acq.v.Name() + " acquired (" + acq.class + ")",
	}}
	// BFS over blocks whose computed out-state still holds the resource.
	parent := map[*Block]*Block{acq.block: nil}
	queue := []*Block{acq.block}
	var reached *Block
	for len(queue) > 0 && reached == nil {
		b := queue[0]
		queue = queue[1:]
		if b == cfg.Exit {
			reached = b
			break
		}
		for _, s := range b.Succs {
			if _, seen := parent[s]; seen {
				continue
			}
			st, ok := out[s]
			if !ok || (s != cfg.Exit && st != stLiveFresh && st != stLiveStale) {
				continue
			}
			parent[s] = b
			queue = append(queue, s)
		}
	}
	if reached == nil {
		return steps
	}
	var path []*Block
	for b := reached; b != nil; b = parent[b] {
		path = append(path, b)
	}
	for i := len(path) - 2; i > 0; i-- {
		b := path[i]
		switch b.Kind {
		case "if.join", "case.join", "typecase.join", "select.join", "for.join", "range.join", "entry":
			continue
		}
		steps = append(steps, TraceStep{
			Pos:  pass.Fset.Position(b.Pos),
			Text: "path continues through " + b.Kind,
		})
	}
	steps = append(steps, TraceStep{
		Pos:  pass.Fset.Position(cfg.Exit.Pos),
		Text: "function exit reached without " + acq.release + "()",
	})
	return steps
}

// isTestFile reports whether a filename is a Go test file; the resource and
// error-flow invariants target production paths, and tests routinely leak
// short-lived fixtures on purpose.
func isTestFile(filename string) bool {
	const suffix = "_test.go"
	return len(filename) >= len(suffix) && filename[len(filename)-len(suffix):] == suffix
}
