package lint

import (
	"bytes"
	"encoding/json"
	"sort"
)

// SARIF 2.1.0 output, minimal but schema-valid: one run, one rule per
// analyzer, one result per finding. Struct-tag marshaling plus pre-sorted
// findings (SortFindings order) keeps the bytes reproducible, so the
// artifact diffs cleanly between CI runs.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifFlowLocation `json:"location"`
}

type sarifFlowLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          sarifMessage  `json:"message"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// EncodeSARIF renders findings as a SARIF 2.1.0 log. The rule table always
// lists every analyzer of the suite (sorted by name), so a clean run still
// documents what was checked.
func EncodeSARIF(findings []Finding, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		}
		// Flow-sensitive findings carry the path that demonstrates them; a
		// SARIF codeFlow lets viewers step through it location by location.
		if len(f.Steps) > 0 {
			tf := sarifThreadFlow{}
			for _, s := range f.Steps {
				tf.Locations = append(tf.Locations, sarifThreadFlowLocation{
					Location: sarifFlowLocation{
						PhysicalLocation: sarifPhysical{
							ArtifactLocation: sarifArtifact{URI: s.Pos.Filename},
							Region:           sarifRegion{StartLine: s.Pos.Line, StartColumn: s.Pos.Column},
						},
						Message: sarifMessage{Text: s.Text},
					},
				})
			}
			r.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{tf}}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sjvet", Rules: rules}},
			Results: results,
		}},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
