package lint

import (
	"encoding/json"
	"go/token"
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"// regular comment", nil, false},
		{"//sjvet:ignore", []string{"*"}, true},
		{"//sjvet:ignore -- reason only", []string{"*"}, true},
		{"//sjvet:ignore purity", []string{"purity"}, true},
		{"//sjvet:ignore purity,determinism", []string{"purity", "determinism"}, true},
		{"//sjvet:ignore purity, determinism -- both are fine here", []string{"purity", "determinism"}, true},
		{"//sjvet:ignore lockdiscipline -- the channel is buffered to len(workers)", []string{"lockdiscipline"}, true},
		{"// sjvet:ignore purity", nil, false}, // directives must not have a space after //
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if ok != c.ok || (ok && !reflect.DeepEqual(names, c.names)) {
			t.Errorf("parseIgnore(%q) = %v, %v; want %v, %v", c.text, names, ok, c.names, c.ok)
		}
	}
}

func TestSuppressedLineMatching(t *testing.T) {
	fileScope := func(names ...string) directive {
		return directive{names: names, scopeLo: -1, scopeHi: -1}
	}
	s := &suppressions{byLine: map[string]map[int][]directive{
		"a.go": {10: {fileScope("purity")}, 20: {fileScope("*")}},
	}}
	mk := func(file string, line int, analyzer string) Finding {
		return Finding{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer}
	}
	if !s.suppressed(mk("a.go", 10, "purity")) {
		t.Error("same-line directive should suppress")
	}
	if !s.suppressed(mk("a.go", 11, "purity")) {
		t.Error("line-above directive should suppress")
	}
	if s.suppressed(mk("a.go", 12, "purity")) {
		t.Error("directive two lines above must not suppress")
	}
	if s.suppressed(mk("a.go", 10, "determinism")) {
		t.Error("directive naming another analyzer must not suppress")
	}
	if !s.suppressed(mk("a.go", 21, "unitsafety")) {
		t.Error("bare directive should suppress every analyzer")
	}
	if s.suppressed(mk("b.go", 10, "purity")) {
		t.Error("directives are per-file")
	}
}

// TestSuppressedScopeMatching pins the function-scope rule: a directive
// carries the byte-offset range of the innermost function body it sits in,
// and only suppresses findings whose offset falls inside that range — a
// directive inside a closure must not silence the enclosing body even when
// the finding is on an adjacent line.
func TestSuppressedScopeMatching(t *testing.T) {
	scoped := directive{names: []string{"purity"}, scopeLo: 100, scopeHi: 200}
	s := &suppressions{byLine: map[string]map[int][]directive{
		"a.go": {10: {scoped}},
	}}
	mk := func(line, offset int) Finding {
		return Finding{Pos: token.Position{Filename: "a.go", Line: line, Offset: offset}, Analyzer: "purity"}
	}
	if !s.suppressed(mk(10, 150)) {
		t.Error("finding inside the directive's function scope should be suppressed")
	}
	if s.suppressed(mk(11, 250)) {
		t.Error("finding outside the directive's function scope must not be suppressed")
	}
	if s.suppressed(mk(11, 50)) {
		t.Error("finding before the directive's function scope must not be suppressed")
	}
}

// TestJSONRoundTrip asserts the -json schema is stable and lossless: every
// finding field survives encode/decode, and the wire keys are exactly
// {file, line, column, analyzer, message}.
func TestJSONRoundTrip(t *testing.T) {
	in := []Finding{
		{Pos: token.Position{Filename: "internal/rdd/rdd.go", Line: 12, Column: 3}, Analyzer: "purity", Message: `closure assigns to captured variable "sum"`},
		{Pos: token.Position{Filename: "internal/engine/engine.go", Line: 40, Column: 9}, Analyzer: "determinism", Message: "calls time.Now"},
	}
	data, err := EncodeJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, ToJSON(in)) {
		t.Errorf("round trip diverged: %v vs %v", out, ToJSON(in))
	}

	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	wantKeys := map[string]bool{"file": true, "line": true, "column": true, "analyzer": true, "message": true}
	for _, obj := range raw {
		if len(obj) != len(wantKeys) {
			t.Fatalf("wire object has keys %v, want exactly %v", obj, wantKeys)
		}
		for k := range obj {
			if !wantKeys[k] {
				t.Fatalf("unexpected wire key %q", k)
			}
		}
	}

	// An empty finding set must encode as [] (a JSON array), not null.
	empty, err := EncodeJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]" {
		t.Errorf("empty findings encode as %s, want []", empty)
	}
}

// TestAnalyzersComplete pins the suite composition: the ScrubJay invariants
// from the paper (and the PR-2/PR-3 lifecycle invariants) each have an
// analyzer, the hot-path allocation discipline pair, plus the flow-sensitive
// trio (errflow, leakcheck, lockorder) built on the CFG layer.
func TestAnalyzersComplete(t *testing.T) {
	want := []string{"ctxflow", "determinism", "errflow", "frameimmut", "goroleak", "hotalloc", "leakcheck", "lockdiscipline", "lockorder", "purity", "retain", "unitsafety"}
	if got := AnalyzerNames(Analyzers()); !reflect.DeepEqual(got, want) {
		t.Errorf("Analyzers() = %v, want %v", got, want)
	}
}
