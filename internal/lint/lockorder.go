package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer builds a module-wide lock-acquisition-order graph and
// reports cycles as potential deadlocks. A directed edge A→B is recorded
// whenever, on some CFG path, lock class B is acquired — directly or via a
// transitive callee — while lock class A is held. Lock classes are
// module-wide canonical identities (pkg.Type.field for struct-owned
// mutexes, pkg.var for package-level ones), so two goroutines taking
// engine/cluster/server locks in opposite orders meet in one graph even
// when the acquisitions live in different packages. Each cycle is reported
// once, anchored at its lexicographically first edge site, with every
// acquisition chain spelled out and a step-by-step path trace.
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc: "every pair of mutexes must be acquired in one consistent order " +
			"module-wide: a cycle in the acquisition-order graph (A held while " +
			"B is taken, B held while A is taken — directly or through callees) " +
			"is a potential deadlock between concurrent goroutines.",
		Run: runLockOrder,
	}
}

// lockOrderEdge is the first (deterministically chosen) witness that `to`
// was acquired while `from` was held.
type lockOrderEdge struct {
	from, to string
	fn       string // function containing the witness site
	chain    string // non-empty when the acquisition is via a callee
	pos      token.Pos
	pkg      *Package
}

// lockCycleFinding is one detected cycle, precomputed module-wide and
// emitted by whichever pass owns the anchor edge's package.
type lockCycleFinding struct {
	pkg     *Package
	pos     token.Pos
	message string
	steps   []TraceStep
}

type lockOrderGraph struct {
	cycles []lockCycleFinding
}

func runLockOrder(pass *Pass) {
	g := pass.Flow.lockOrder(pass.Fset)
	for _, c := range g.cycles {
		if c.pkg == pass.Pkg {
			pass.ReportPath(c.pos, c.steps, "%s", c.message)
		}
	}
}

// lockOrder builds (once per run) the module-wide acquisition graph and its
// cycles.
func (f *Flow) lockOrder(fset *token.FileSet) *lockOrderGraph {
	if f.lockOnce {
		return f.lockGraph
	}
	f.lockOnce = true
	f.lockGraph = buildLockOrder(f, fset)
	return f.lockGraph
}

func buildLockOrder(f *Flow, fset *token.FileSet) *lockOrderGraph {
	may := buildMayAcquire(f)

	// Walk every function unit's CFG in deterministic (package, file, decl)
	// order, tracking held lock classes, and record the first witness site
	// of each ordered pair.
	edges := map[[2]string]*lockOrderEdge{}
	for _, pkg := range f.mod.Pkgs {
		for _, file := range pkg.Files {
			if isTestFile(fset.Position(file.Pos()).Filename) {
				continue
			}
			for _, fn := range fileFuncs(file) {
				recordLockEdges(f, fset, pkg, fn, may, edges)
			}
		}
	}

	// Tarjan over the lock-class graph; every SCC with ≥2 classes holds at
	// least one cycle.
	adj := map[string][]string{}
	var nodes []string
	seen := map[string]bool{}
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		adj[k[0]] = append(adj[k[0]], k[1])
		for _, n := range []string{k[0], k[1]} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)

	g := &lockOrderGraph{}
	for _, scc := range lockSCCs(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		g.cycles = append(g.cycles, buildCycleFinding(fset, scc, edges))
	}
	sort.Slice(g.cycles, func(i, j int) bool { return g.cycles[i].message < g.cycles[j].message })
	return g
}

// lockSCCs computes strongly connected components of the acquisition-order
// graph with an iterative Tarjan. Nodes and adjacency lists arrive sorted,
// so component membership and order are deterministic.
func lockSCCs(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		succ int // next adjacency index to explore
	}
	for _, root := range nodes {
		if _, visited := index[root]; visited {
			continue
		}
		work := []frame{{node: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.node
			if fr.succ == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for fr.succ < len(adj[n]) {
				m := adj[n][fr.succ]
				fr.succ++
				if _, visited := index[m]; !visited {
					work = append(work, frame{node: m})
					advanced = true
					break
				}
				if onStack[m] && index[m] < low[n] {
					low[n] = index[m]
				}
			}
			if advanced {
				continue
			}
			// n is finished: fold lowlink into the parent, pop components.
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].node
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var scc []string
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// buildCycleFinding renders one SCC as a finding: the sorted lock classes,
// every internal edge with its witness function and call chain, anchored at
// the first edge site in file/offset order.
func buildCycleFinding(fset *token.FileSet, scc []string, edges map[[2]string]*lockOrderEdge) lockCycleFinding {
	inSCC := map[string]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	var cycleEdges []*lockOrderEdge
	for _, from := range scc {
		for _, to := range scc {
			if e, ok := edges[[2]string{from, to}]; ok && inSCC[e.from] && inSCC[e.to] {
				cycleEdges = append(cycleEdges, e)
			}
		}
	}
	sort.Slice(cycleEdges, func(i, j int) bool {
		if cycleEdges[i].from != cycleEdges[j].from {
			return cycleEdges[i].from < cycleEdges[j].from
		}
		return cycleEdges[i].to < cycleEdges[j].to
	})
	anchor := cycleEdges[0]
	for _, e := range cycleEdges[1:] {
		pa, pe := fset.Position(anchor.pos), fset.Position(e.pos)
		if pe.Filename < pa.Filename || (pe.Filename == pa.Filename && pe.Offset < pa.Offset) {
			anchor = e
		}
	}
	var chains []string
	var steps []TraceStep
	for _, e := range cycleEdges {
		desc := fmt.Sprintf("%s held when %s is acquired in %s", e.from, e.to, e.fn)
		if e.chain != "" {
			desc += " (" + e.chain + ")"
		}
		chains = append(chains, desc)
		steps = append(steps, TraceStep{Pos: fset.Position(e.pos), Text: desc})
	}
	return lockCycleFinding{
		pkg: anchor.pkg,
		pos: anchor.pos,
		message: fmt.Sprintf("lock-order cycle between %s — potential deadlock: %s; pick one order and use it everywhere",
			strings.Join(scc, ", "), strings.Join(chains, "; ")),
		steps: steps,
	}
}

// mayAcquireInfo maps a function to the lock classes it (or a transitive
// callee, outside function literals) may acquire, each with a human-readable
// call chain.
type mayAcquireInfo map[*types.Func]map[string]string

// buildMayAcquire computes the transitive may-acquire sets over the
// interprocedural call graph by monotone fixpoint, in deterministic order.
func buildMayAcquire(f *Flow) mayAcquireInfo {
	type fnEntry struct {
		obj *types.Func
		fi  *FuncInfo
	}
	var order []fnEntry
	for _, pkg := range f.mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				if fi := f.ip.FuncOf(obj); fi != nil {
					order = append(order, fnEntry{obj: obj.Origin(), fi: fi})
				}
			}
		}
	}

	may := mayAcquireInfo{}
	// Seed with direct acquisitions (outside literals — closures run on
	// other goroutines, so their locks belong to their own CFG walk).
	for _, e := range order {
		direct := map[string]string{}
		ast.Inspect(e.fi.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, method, ok := lockMethod(e.fi.Pkg.Info, call); ok && (method == "Lock" || method == "RLock") {
				if class := canonicalLockClass(e.fi.Pkg.Info, call); class != "" {
					if _, dup := direct[class]; !dup {
						direct[class] = "locks " + class
					}
				}
			}
			return true
		})
		may[e.obj] = direct
	}
	// Fold callee sets into callers to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, e := range order {
			mine := may[e.obj]
			for _, rec := range e.fi.calls {
				if rec.inLit {
					continue
				}
				for class, chain := range may[rec.callee.Origin()] {
					if _, ok := mine[class]; !ok {
						mine[class] = "calls " + rec.callee.Name() + ": " + chain
						changed = true
					}
				}
			}
		}
	}
	return may
}

// recordLockEdges walks one function unit's CFG with a held-class set and
// records order edges for direct acquisitions and for calls into functions
// that may acquire.
func recordLockEdges(f *Flow, fset *token.FileSet, pkg *Package, fn funcUnit, may mayAcquireInfo, edges map[[2]string]*lockOrderEdge) {
	info := pkg.Info
	cfg := f.CFG(fn.Name, fn.Body)

	// Forward flow: state is the held set, canonically rendered for Equal.
	type held = map[string]bool
	clone := func(h held) held {
		c := make(held, len(h))
		for k := range h {
			c[k] = true
		}
		return c
	}
	transfer := func(blk *Block, in held) held {
		st := clone(in)
		for _, node := range blk.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue // the call replays at Exit
			}
			applyLockNode(info, node, st, nil)
		}
		return st
	}
	_, out := RunForward(cfg, FlowSpec[held]{
		Init: held{},
		Merge: func(a, b held) held {
			u := clone(a)
			for k := range b {
				u[k] = true
			}
			return u
		},
		Equal: func(a, b held) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: transfer,
	})

	// Deterministic replay: revisit blocks in index order with their final
	// in-state and record edges at each acquisition event.
	record := func(heldNow held, class, chain string, pos token.Pos) {
		var hs []string
		for h := range heldNow {
			hs = append(hs, h)
		}
		sort.Strings(hs)
		for _, from := range hs {
			if from == class {
				continue
			}
			key := [2]string{from, class}
			if _, ok := edges[key]; ok {
				continue
			}
			edges[key] = &lockOrderEdge{from: from, to: class, fn: fn.Name, chain: chain, pos: pos, pkg: pkg}
		}
	}
	for _, blk := range cfg.Blocks {
		st, ok := blockInState(cfg, blk, out)
		if !ok {
			continue
		}
		for _, node := range blk.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue
			}
			applyLockNode(info, node, st, func(class, chain string, pos token.Pos) {
				record(st, class, chain, pos)
			})
			// Calls into may-acquire functions while something is held.
			if len(st) > 0 {
				scanMayAcquireCalls(info, node, may, func(class, chain string, pos token.Pos) {
					record(st, class, chain, pos)
				})
			}
		}
	}
}

// blockInState recomputes a block's in-state from its predecessors' final
// out-states (entry starts empty).
func blockInState(cfg *CFG, blk *Block, out map[*Block]map[string]bool) (map[string]bool, bool) {
	if blk == cfg.Entry {
		return map[string]bool{}, true
	}
	st := map[string]bool{}
	reached := false
	for _, p := range blk.Preds {
		po, ok := out[p]
		if !ok {
			continue
		}
		reached = true
		for k := range po {
			st[k] = true
		}
	}
	return st, reached
}

// applyLockNode updates the held set for direct lock/unlock calls in one
// node, invoking onAcquire (if non-nil) before each acquisition is added.
func applyLockNode(info *types.Info, node ast.Node, st map[string]bool, onAcquire func(class, chain string, pos token.Pos)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, method, ok := lockMethod(info, call)
		if !ok {
			return true
		}
		class := canonicalLockClass(info, call)
		if class == "" {
			return true
		}
		switch method {
		case "Lock", "RLock":
			if onAcquire != nil {
				onAcquire(class, "", call.Pos())
			}
			st[class] = true
		case "Unlock", "RUnlock":
			delete(st, class)
		}
		return true
	})
}

// scanMayAcquireCalls finds module-internal calls in the node whose callee
// may acquire locks, and reports each such class with its chain.
func scanMayAcquireCalls(info *types.Info, node ast.Node, may mayAcquireInfo, onAcquire func(class, chain string, pos token.Pos)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, _, isLock := lockMethod(info, call); isLock {
			return true
		}
		obj := calleeObj(info, call)
		if obj == nil {
			return true
		}
		classes := may[obj.Origin()]
		if len(classes) == 0 {
			return true
		}
		var sorted []string
		for c := range classes {
			sorted = append(sorted, c)
		}
		sort.Strings(sorted)
		for _, c := range sorted {
			onAcquire(c, classes[c], call.Pos())
		}
		return true
	})
}

// canonicalLockClass derives the module-wide identity of the mutex a
// lock/unlock call operates on. Struct-owned mutexes canonicalize to
// pkg.Type.field (instance-insensitive: lock order is a property of the
// type), package-level mutexes to pkg.var, and embedded mutexes locked
// through the owning struct to pkg.Type. Function-local mutexes have no
// module-wide identity and return "".
func canonicalLockClass(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return lockClassOfExpr(info, sel.X)
}

func lockClassOfExpr(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := info.ObjectOf(e).(*types.Var)
		if v == nil {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		// Receiver/param with an embedded mutex: identity is the named type.
		if named := namedOwner(v.Type()); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() != "sync" {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name()
		}
		return ""
	case *ast.SelectorExpr:
		// Field path: owner type + field name.
		if tv, ok := info.Types[e.X]; ok {
			if named := namedOwner(tv.Type); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return ""
	case *ast.IndexExpr:
		return lockClassOfExpr(info, e.X)
	}
	return ""
}

// namedOwner strips pointers/aliases down to a named type, nil otherwise.
func namedOwner(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}
