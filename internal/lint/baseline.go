package lint

import (
	"fmt"
	"sort"
	"strings"
)

// The baseline mechanism grandfathers reviewed findings: sjvet fails only
// on findings NOT in the baseline, and — symmetrically — fails when the
// baseline lists findings that no longer occur (a stale entry means the
// code was fixed, so the baseline must shrink in the same change, or it
// means someone shrank the baseline without fixing the source, which the
// resurfaced finding then catches). Entries are keyed by (file, analyzer,
// message) but not line, so unrelated edits that shift lines do not churn
// the file.

// BaselineEntry is one grandfathered finding.
type BaselineEntry struct {
	File     string
	Analyzer string
	Message  string
}

func (e BaselineEntry) key() string {
	return e.File + "\t" + e.Analyzer + "\t" + e.Message
}

// ParseBaseline reads the tab-separated baseline format: one
// "file<TAB>analyzer<TAB>message" entry per line; blank lines and lines
// starting with '#' are comments.
func ParseBaseline(data []byte) ([]BaselineEntry, error) {
	var entries []BaselineEntry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want file<TAB>analyzer<TAB>message, got %q", i+1, line)
		}
		entries = append(entries, BaselineEntry{File: parts[0], Analyzer: parts[1], Message: parts[2]})
	}
	return entries, nil
}

// FormatBaseline renders findings as a baseline file: a header comment plus
// one sorted, deduplicated entry per finding.
func FormatBaseline(findings []Finding) []byte {
	var b strings.Builder
	b.WriteString("# sjvet baseline — reviewed, grandfathered findings.\n")
	b.WriteString("# Format: file<TAB>analyzer<TAB>message. Regenerate with: sjvet -write-baseline ./...\n")
	b.WriteString("# Entries must be removed in the same change that fixes the source (stale entries fail CI).\n")
	seen := map[string]bool{}
	var keys []string
	for _, f := range findings {
		k := BaselineEntry{File: f.Pos.Filename, Analyzer: f.Analyzer, Message: f.Message}.key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	return []byte(b.String())
}

// ApplyBaseline splits findings into fresh (not grandfathered) and reports
// stale baseline entries (listed but no longer produced). Matching is set
// semantics on (file, analyzer, message): a second identical finding in the
// same file is covered by the same entry.
func ApplyBaseline(findings []Finding, entries []BaselineEntry) (fresh []Finding, matched int, stale []BaselineEntry) {
	inBaseline := map[string]bool{}
	for _, e := range entries {
		inBaseline[e.key()] = true
	}
	used := map[string]bool{}
	for _, f := range findings {
		k := BaselineEntry{File: f.Pos.Filename, Analyzer: f.Analyzer, Message: f.Message}.key()
		if inBaseline[k] {
			used[k] = true
			matched++
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range entries {
		if !used[e.key()] {
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].key() < stale[j].key() })
	return fresh, matched, stale
}
