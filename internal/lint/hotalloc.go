package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// allocFreeContract is the invariant hotalloc findings cite.
const allocFreeContract = "the serving path must stay allocation-free: hoist the allocation out of the loop, reuse a scratch buffer, or record a reviewed sjvet.baseline entry"

// HotAllocAnalyzer flags loop-carried heap allocation on the hot path: a
// make/new/composite literal, per-iteration append growth, string↔[]byte
// conversion, string concatenation, fmt call, interface box, or closure
// capture executed inside a loop of a function reachable from a hot-path
// root (see hotpath.go) — and in-loop calls to module functions whose
// summary says they allocate, with the chained detail ("calls NewBuilder:
// makes a new []value.Value"). Once-per-call allocations are not reported:
// the gate is about per-row/per-iteration cost, not about allocation ever.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "functions on the hot path (frame kernels, columnar operators, " +
			"rdd task bodies, the server streaming path, //sjvet:hotpath " +
			"roots, and everything they call) must not allocate inside " +
			"loops; " + allocFreeContract + ".",
		Run: runHotAlloc,
	}
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			fi := pass.IP.FuncOf(obj)
			if fi == nil {
				continue
			}
			why, hot := pass.Hot.Why(obj)
			if !hot {
				continue
			}
			name := fd.Name.Name
			for _, site := range fi.Summary.Allocs {
				if !site.Loop {
					continue
				}
				pass.Reportf(site.Pos, "%s is on the hot path (%s) and %s inside a loop — %s",
					name, why, site.What, allocFreeContract)
			}
			for _, lc := range fi.loopCalls {
				callee := pass.IP.FuncOf(lc.callee)
				if callee == nil || !callee.Summary.Allocates {
					continue
				}
				pass.Reportf(lc.pos, "%s is on the hot path (%s) and calls %s in a loop; %s allocates per call (function summary: %s) — %s",
					name, why, lc.callee.Name(), lc.callee.Name(), callee.Summary.AllocDetail, allocFreeContract)
			}
		}
	}
}
