package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// retainContract is the invariant retain findings cite.
const retainContract = "a hot-path callee must not pin its caller's buffer: the planned arena/slab reuse recycles hot-path buffers after each batch, and a retained reference would observe the recycled bytes"

// RetainAnalyzer flags hot-path calls that hand a caller-owned buffer (a
// slice, pointer, or map) to a module function whose summary says the
// parameter is pinned beyond the call: stored into package-level state,
// handed to a goroutine or closure, or — for callees that return nothing
// and so cannot be handing ownership back — retained in a field, element,
// channel, or composite. Constructors that retain an argument inside the
// value they return keep custody with the caller and are not reported.
func RetainAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "retain",
		Doc: "hot-path code must not pass buffers to callees that retain " +
			"them (per function summary: stored globally, captured by a " +
			"goroutine, or kept past a void call); " + retainContract + ".",
		Run: runRetain,
	}
}

func runRetain(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			why, hot := pass.Hot.Why(obj)
			if !hot {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkRetainCall(pass, name, why, call)
				return true
			})
		}
	}
}

// checkRetainCall reports buffer-pinning arguments of one call site.
func checkRetainCall(pass *Pass, caller, why string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	callee := pass.IP.StaticCallee(info, call)
	if callee == nil {
		return
	}
	sum := &callee.Summary
	sig, _ := callee.Obj.Type().(*types.Signature)
	void := sig != nil && sig.Results().Len() == 0

	report := func(what string, facts ParamFacts) {
		reason, ok := pinReason(facts, void)
		if !ok {
			return
		}
		pass.Reportf(call.Pos(), "%s is on the hot path (%s) and passes %s to %s, which %s (function summary) — %s",
			caller, why, what, callee.Obj.Name(), reason, retainContract)
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sum.RecvFacts() != 0 {
		if bufferLike(typeOfExpr(info, sel.X)) {
			report("its receiver "+exprLabel(sel.X), sum.RecvFacts())
		}
	}
	for i, arg := range call.Args {
		facts := sum.ArgFacts(i)
		if facts == 0 {
			continue
		}
		if !bufferLike(typeOfExpr(info, arg)) {
			continue
		}
		report(exprLabel(arg), facts)
	}
}

// pinReason grades the pinning facts, strongest first. ParamEscapes alone
// (e.g. the value is returned) keeps custody with the caller and is fine;
// ParamRetained only counts against void callees, because a callee with
// results may legitimately be building the value it returns.
func pinReason(facts ParamFacts, void bool) (string, bool) {
	switch {
	case facts&ParamToGlobal != 0:
		return "stores it into package-level state", true
	case facts&ParamToGoroutine != 0:
		return "hands it to a goroutine or captures it in a closure", true
	case facts&ParamRetained != 0 && void:
		return "retains it beyond the call despite returning nothing", true
	}
	return "", false
}

// bufferLike reports whether t is storage the caller could want to reuse:
// a slice, a pointer, or a map.
func bufferLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// exprLabel renders a short, line-stable description of an argument
// expression for the finding message.
func exprLabel(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return "\"" + s + "\""
}
