package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hot-path reachability: the serving path must stay allocation-free
// (ROADMAP: "close the vectorization gap and make the serving path
// allocation-free"), so the hotalloc/retain analyzers need to know which
// functions execute per row or per query. Roots are built in — the
// vectorized operators in internal/derive, the frame kernels, the rdd task
// bodies, and the server's streaming path — and extensible with a
//
//	//sjvet:hotpath [-- reason]
//
// directive: on (or directly above) a function declaration it roots that
// function; on a statement it roots every module function referenced on
// that line or the next — a call, a function value, or a bound method value
// (the underlying func, not just the wrapper) — scoped like //sjvet:ignore
// to the innermost enclosing function body. The hot set is the closure of
// the roots over the static call graph, including calls made from function
// literals the hot function constructs (a closure built on the hot path
// runs on the hot path).

const hotpathDirective = "sjvet:hotpath"

// hotRoots lists the built-in root functions by package basename. Derive's
// roots are selected by file instead (every columnar operator file).
var hotRoots = map[string]map[string]bool{
	"frame": {
		"HashOn": true, "MaskRows": true, "MaskValues": true,
		"Convert": true, "ConvertColumn": true,
		"AppendRowJSON": true, "EncodedKeys": true,
	},
	"rdd": {
		"materialize": true, "runTasks": true, "runTimed": true,
		"ExchangePartitions": true, "ZipPartitions": true,
		"shuffleExchange": true,
	},
	"server": {
		"execStream": true, "streamFrameRows": true,
	},
	"shuffle": {
		"AppendFrame": true, "DecodeFrame": true,
		"AppendBatch": true, "DecodeBatch": true,
	},
}

// HotPaths is the queryable hot-function set.
type HotPaths struct {
	why map[*types.Func]string
}

// Why returns the reachability reason for a hot function ("hot-path root
// (frame kernel)", "reachable from frame.HashOn", ...), or false when the
// function is not on the hot path.
func (h *HotPaths) Why(obj *types.Func) (string, bool) {
	if h == nil || obj == nil {
		return "", false
	}
	w, ok := h.why[obj.Origin()]
	return w, ok
}

// BuildHotPaths computes the hot-function closure for the module.
func BuildHotPaths(m *Module, ip *Interproc) *HotPaths {
	h := &HotPaths{why: map[*types.Func]string{}}

	// Built-in roots, in deterministic package/file/declaration order.
	type root struct {
		fi  *FuncInfo
		why string
	}
	var roots []root
	addRoot := func(fi *FuncInfo, why string) {
		if fi == nil {
			return
		}
		if _, seen := h.why[fi.Obj]; seen {
			return
		}
		h.why[fi.Obj] = why
		roots = append(roots, root{fi, why})
	}
	for _, pkg := range m.Pkgs {
		base := pathBase(pkg.Path)
		names := hotRoots[base]
		for _, file := range pkg.Files {
			fname := pathBase(m.Fset.Position(file.Pos()).Filename)
			columnarFile := base == "derive" && strings.Contains(fname, "columnar") && !strings.HasSuffix(fname, "_test.go")
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				switch {
				case columnarFile:
					addRoot(ip.FuncOf(obj), "hot-path root (columnar operator)")
				case names != nil && names[fd.Name.Name]:
					var kind string
					switch base {
					case "frame":
						kind = "frame kernel"
					case "rdd":
						kind = "rdd task body"
					case "server":
						kind = "streaming path"
					case "shuffle":
						kind = "shuffle codec"
					}
					addRoot(ip.FuncOf(obj), "hot-path root ("+kind+")")
				}
			}
		}
	}

	// Directive roots.
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !isHotpathComment(c.Text) {
						continue
					}
					for _, obj := range resolveHotpathDirective(m.Fset, pkg, file, c) {
						addRoot(ip.FuncOf(obj), "hot-path root (//sjvet:hotpath)")
					}
				}
			}
		}
	}

	// Close over the static call graph, breadth-first from the roots in
	// discovery order. Calls recorded inside function literals count: a
	// closure constructed by hot code executes on the hot path.
	queue := make([]root, len(roots))
	copy(queue, roots)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		rootName := rootLabel(cur.fi, cur.why)
		for _, rec := range cur.fi.calls {
			callee := ip.FuncOf(rec.callee)
			if callee == nil {
				continue
			}
			if _, seen := h.why[callee.Obj]; seen {
				continue
			}
			h.why[callee.Obj] = "reachable from " + rootName
			queue = append(queue, root{callee, h.why[callee.Obj]})
		}
	}
	return h
}

// rootLabel names the root a function descends from: for a root itself,
// its own package-qualified name; for a reachable function, the root named
// in its own why-string, so the label propagates unchanged down the walk.
func rootLabel(fi *FuncInfo, why string) string {
	if rest, ok := strings.CutPrefix(why, "reachable from "); ok {
		return rest
	}
	pkgName := ""
	if fi.Obj.Pkg() != nil {
		pkgName = fi.Obj.Pkg().Name() + "."
	}
	return pkgName + fi.Obj.Name()
}

// isHotpathComment reports whether a comment is a //sjvet:hotpath
// directive; like all Go directives it must follow the comment marker
// immediately.
func isHotpathComment(text string) bool {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	if !strings.HasPrefix(text, hotpathDirective) {
		return false
	}
	rest := text[len(hotpathDirective):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || strings.HasPrefix(rest, "--") || strings.HasPrefix(rest, "*/")
}

// resolveHotpathDirective maps one directive comment to the functions it
// roots. Two placements:
//
//  1. On a function declaration (its doc group, or the line directly above
//     the declaration): roots that declaration.
//  2. Inside a function body: roots every module function referenced on the
//     directive's line or the line below it — including the underlying
//     func of a bound method value like s.pump — restricted, exactly like
//     //sjvet:ignore, to references whose innermost enclosing function is
//     the directive's own (a directive inside a closure does not root
//     references made by the enclosing body on an adjacent line).
func resolveHotpathDirective(fset *token.FileSet, pkg *Package, file *ast.File, c *ast.Comment) []*types.Func {
	cpos := fset.Position(c.Pos())

	// Placement 1: declaration directive.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Doc != nil {
			for _, dc := range fd.Doc.List {
				if dc == c {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						return []*types.Func{obj}
					}
				}
			}
		}
		dline := fset.Position(fd.Pos()).Line
		if cpos.Line == dline || cpos.Line+1 == dline {
			if scopeBody := innermostFuncBody(file, c.Pos()); scopeBody == nil {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					return []*types.Func{obj}
				}
			}
		}
	}

	// Placement 2: statement directive inside a body.
	scope := innermostFuncBody(file, c.Pos())
	if scope == nil {
		return nil
	}
	var out []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(scope, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		line := fset.Position(id.Pos()).Line
		if line != cpos.Line && line != cpos.Line+1 {
			return true
		}
		if innermostFuncBody(file, id.Pos()) != scope {
			return true
		}
		obj, ok := pkg.Info.ObjectOf(id).(*types.Func)
		if !ok || obj == nil {
			return true
		}
		obj = obj.Origin()
		if !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}
