// Package lint is ScrubJay's static-analysis framework: a from-scratch
// analyzer harness on the standard library's go/ast, go/parser and go/types
// (no golang.org/x/tools dependency). It exists because the engine's core
// guarantees — data-parallel execution of derivation sequences and
// bit-for-bit reproducible query results (paper §5.3–§5.4) — rest on
// invariants the Go compiler does not check. Each Analyzer encodes one such
// invariant; cmd/sjvet runs them all over the module and fails the build on
// any finding.
//
// Findings are suppressible with a directive comment on the offending line
// or the line above it:
//
//	//sjvet:ignore <analyzer>[,<analyzer>...] -- reason the code is safe
//
// A bare "//sjvet:ignore" (no analyzer names) suppresses every analyzer on
// that line. The reason text after "--" is optional but encouraged: it
// should state the invariant that makes the flagged code correct.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Steps, when present, trace the control-flow path that produces the
	// finding (acquisition site, branch taken, exit), rendered into SARIF
	// codeFlows and indented under the finding in golden output. Steps
	// never participate in baseline matching — the baseline keys on
	// (file, analyzer, message) only.
	Steps []TraceStep
}

// TraceStep is one hop of a finding's path trace.
type TraceStep struct {
	Pos  token.Position
	Text string
}

// String renders the finding in the canonical file:line:col: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings and suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// AppliesTo restricts the analyzer to certain packages; nil means all.
	AppliesTo func(pkg *Package) bool
	// Run inspects one package and reports findings through the pass.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	// IP is the module-wide interprocedural layer: call graph plus
	// per-function dataflow summaries (see interproc.go). It is computed
	// once per Run over the whole module, so summaries see every package
	// even when analysis is scoped to a few.
	IP *Interproc
	// Hot is the module-wide hot-path closure (see hotpath.go): the
	// functions reachable from the serving-path roots, with the reason
	// each one is hot.
	Hot *HotPaths
	// Flow is the flow-sensitive layer (see cfg.go): a per-function CFG
	// cache plus the module-wide lock-order graph, shared across analyzers
	// so each function's graph is built once per run.
	Flow *Flow

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPath records a finding with a control-flow path trace attached.
func (p *Pass) ReportPath(pos token.Pos, steps []TraceStep, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Steps:    steps,
	})
}

// Analyzers returns the full ScrubJay analyzer suite, sorted by name.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		PurityAnalyzer(),
		DeterminismAnalyzer(),
		LockDisciplineAnalyzer(),
		UnitSafetyAnalyzer(),
		FrameImmutAnalyzer(),
		CtxFlowAnalyzer(),
		GoroLeakAnalyzer(),
		HotAllocAnalyzer(),
		RetainAnalyzer(),
		LockOrderAnalyzer(),
		LeakCheckAnalyzer(),
		ErrFlowAnalyzer(),
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// AnalyzerNames lists the names of the given analyzers.
func AnalyzerNames(as []*Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// Run executes every analyzer over every package of the module, applies
// suppression directives, and returns the surviving findings sorted by
// position.
func Run(m *Module, analyzers []*Analyzer) []Finding {
	return RunPackages(m, analyzers, m.Pkgs)
}

// RunPackages analyzes only the selected packages, but computes the
// interprocedural summaries over the whole module first, so helper
// functions in unselected packages still contribute their dataflow facts.
// Findings are sorted by (file, line, column, analyzer, message): two runs
// over the same sources emit byte-identical output.
func RunPackages(m *Module, analyzers []*Analyzer, pkgs []*Package) []Finding {
	findings, _ := RunPackagesTimed(m, analyzers, pkgs)
	return findings
}

// AnalyzerTiming is the wall-clock cost of one analyzer summed over every
// analyzed package (plus the shared "build/…" stages), for the CI budget
// report: an analyzer whose cost regresses shows up here before it blows
// the overall sjvet budget.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunPackagesTimed is RunPackages plus per-analyzer timings. The timing
// rows are in a fixed order (shared build stages first, then the analyzers
// in the given order); only the durations vary run to run.
func RunPackagesTimed(m *Module, analyzers []*Analyzer, pkgs []*Package) ([]Finding, []AnalyzerTiming) {
	start := time.Now()
	ip := BuildInterproc(m)
	ipElapsed := time.Since(start)
	start = time.Now()
	hot := BuildHotPaths(m, ip)
	hotElapsed := time.Since(start)
	flow := NewFlow(m, ip)

	perAnalyzer := make(map[string]time.Duration, len(analyzers))
	var findings []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(m.Fset, pkg)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg) {
				continue
			}
			var raw []Finding
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: m.Fset, IP: ip, Hot: hot, Flow: flow, findings: &raw}
			start = time.Now()
			a.Run(pass)
			perAnalyzer[a.Name] += time.Since(start)
			for _, f := range raw {
				if !sup.suppressed(f) {
					findings = append(findings, f)
				}
			}
		}
	}
	SortFindings(findings)

	timings := []AnalyzerTiming{
		{Name: "build/interproc", Elapsed: ipElapsed},
		{Name: "build/hotpath", Elapsed: hotElapsed},
	}
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: perAnalyzer[a.Name]})
	}
	return findings, timings
}

// SelectAnalyzers filters the suite down to the named analyzers
// (comma-separated), preserving order; an unknown name is an error listing
// what exists.
func SelectAnalyzers(all []*Analyzer, names string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	seen := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(AnalyzerNames(all), ", "))
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// SortFindings orders findings by (file, line, column, analyzer, message) —
// the canonical order every emitter (text, JSON, SARIF, baseline) relies on
// for stable CI diffs.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ---- Suppression directives ----

const ignoreDirective = "sjvet:ignore"

// directive is one //sjvet:ignore occurrence: the analyzer names it
// suppresses and the source-offset range of the innermost function body
// (declaration or literal) it sits in. A directive only suppresses findings
// within its own function scope — one placed on a statement inside a
// closure must not silence the enclosing function's body, even when the two
// are textually adjacent lines.
type directive struct {
	names            []string
	scopeLo, scopeHi int // byte offsets; scopeLo < 0 means file scope
}

// suppressions indexes //sjvet:ignore directives by file and line.
type suppressions struct {
	// byLine maps filename -> comment line -> directives on that line.
	byLine map[string]map[int][]directive
}

// collectSuppressions scans the package's comments for ignore directives.
func collectSuppressions(fset *token.FileSet, pkg *Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]directive{}}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				d := directive{names: names, scopeLo: -1, scopeHi: -1}
				if body := innermostFuncBody(file, c.Pos()); body != nil {
					d.scopeLo = fset.Position(body.Pos()).Offset
					d.scopeHi = fset.Position(body.End()).Offset
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]directive{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return s
}

// innermostFuncBody returns the body of the innermost function declaration
// or function literal whose body range contains pos, nil at file level.
func innermostFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos <= body.End() {
			best = body // Inspect visits outer before inner: last wins
		}
		return true
	})
	return best
}

// parseIgnore parses a comment's text as an ignore directive. It returns the
// suppressed analyzer names (["*"] when none were named) and whether the
// comment is a directive at all.
func parseIgnore(text string) ([]string, bool) {
	// Like all Go directives, "//sjvet:ignore" must follow the comment
	// marker immediately — "// sjvet:ignore" is prose, not a directive.
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	if !strings.HasPrefix(text, ignoreDirective) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
	// Strip the trailing "-- reason" clause.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return []string{"*"}, true
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	return fields, true
}

// suppressed reports whether a finding is covered by a directive on its own
// line or the line directly above it, within the same function scope: a
// directive inside a closure does not leak to the enclosing body (and an
// enclosing-scope directive still covers findings in closures it contains).
func (s *suppressions) suppressed(f Finding) bool {
	lines, ok := s.byLine[f.Pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[line] {
			if d.scopeLo >= 0 && (f.Pos.Offset < d.scopeLo || f.Pos.Offset > d.scopeHi) {
				continue
			}
			for _, name := range d.names {
				if name == "*" || name == f.Analyzer {
					return true
				}
			}
		}
	}
	return false
}

// pathBase returns the last segment of an import path.
func pathBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in file that encloses pos, preferring declarations so searches
// (e.g. "is this slice sorted later?") see the whole surrounding function.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			best = fd.Body
		}
		return true
	})
	return best
}
