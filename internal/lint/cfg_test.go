package lint

import (
	"strings"
	"testing"
)

// TestCFGGolden pins the CFG builder's block/edge structure over the tricky
// constructs in the cfgfix fixture — defer in a loop, labeled break, goto,
// select with and without default, panic, recover, fallthrough, continue
// with a post statement. The golden dump is the structural contract every
// flow-sensitive analyzer builds on.
func TestCFGGolden(t *testing.T) {
	m := loadFixture(t, "src")
	var b strings.Builder
	for _, pkg := range m.Pkgs {
		if pkg.Name != "cfgfix" {
			continue
		}
		for _, file := range pkg.Files {
			for _, fn := range fileFuncs(file) {
				cfg := BuildCFG(fn.Name, fn.Body)
				b.WriteString(cfg.Dump())
				b.WriteString("\n")
			}
		}
	}
	if b.Len() == 0 {
		t.Fatal("cfgfix fixture package not found")
	}
	checkGolden(t, "cfg.txt", b.String())
}

// TestCFGDeferCollection: deferred calls land in cfg.Defers in source order
// (replayed LIFO at exit by flow consumers), and DeferInLoop records its
// deferred close exactly once even though the defer sits inside a loop.
func TestCFGDeferCollection(t *testing.T) {
	m := loadFixture(t, "src")
	for _, pkg := range m.Pkgs {
		if pkg.Name != "cfgfix" {
			continue
		}
		for _, file := range pkg.Files {
			for _, fn := range fileFuncs(file) {
				cfg := BuildCFG(fn.Name, fn.Body)
				switch fn.Name {
				case "DeferInLoop":
					if len(cfg.Defers) != 1 {
						t.Errorf("DeferInLoop: %d deferred calls recorded, want 1", len(cfg.Defers))
					}
				case "RecoverGuard":
					if len(cfg.Defers) != 1 {
						t.Errorf("RecoverGuard: %d deferred calls recorded, want 1", len(cfg.Defers))
					}
				}
			}
		}
	}
}

// TestRunForwardReachability: RunForward only populates states for blocks
// reachable from entry, and the exit state reflects merged paths.
func TestRunForwardReachability(t *testing.T) {
	m := loadFixture(t, "src")
	for _, pkg := range m.Pkgs {
		if pkg.Name != "cfgfix" {
			continue
		}
		for _, file := range pkg.Files {
			for _, fn := range fileFuncs(file) {
				if fn.Name != "SelectBlocking" {
					continue
				}
				cfg := BuildCFG(fn.Name, fn.Body)
				// Count blocks visited on the way to exit: a trivial
				// "path length" flow whose merge takes the maximum.
				_, out := RunForward(cfg, FlowSpec[int]{
					Init:  0,
					Merge: func(a, b int) int { return max(a, b) },
					Equal: func(a, b int) bool { return a == b },
					Transfer: func(blk *Block, s int) int {
						return s + 1
					},
				})
				exitDepth, ok := out[cfg.Exit]
				if !ok {
					t.Fatal("SelectBlocking: exit block unreachable in flow")
				}
				if exitDepth < 2 {
					t.Errorf("SelectBlocking: exit depth = %d, want >= 2 (entry + case)", exitDepth)
				}
			}
		}
	}
}
