package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the allocation half of the interprocedural layer: a
// per-function inventory of heap allocation sites (make/new, allocating
// composite literals, append growth, string↔[]byte conversions, string
// concatenation, fmt formatting, interface boxing at call boundaries, and
// by-reference closure captures), each classified as loop-carried or
// once-per-call. The sites feed two things: the Summary.Allocates fact the
// SCC fixpoint chains through calls ("calls NewBuilder: makes a new
// []value.Value"), and the hotalloc analyzer, which only reports
// loop-carried sites reachable from a hot-path root (see hotpath.go). Like
// the rest of the summaries the analysis is deliberately path-insensitive:
// an allocation behind an error branch still counts, because a CI gate must
// be explainable from one finding message, not a path condition.

// AllocSite is one heap allocation in a function body. What is a verb
// phrase ("makes a new []uint64") so finding messages read naturally and
// stay line-stable for baseline keying.
type AllocSite struct {
	Pos  token.Pos
	What string
	// Loop marks the site as loop-carried: it executes on every iteration
	// of a loop in the same function scope (allocations inside a nested
	// function literal are charged to the literal's own invocation, not to
	// a loop that merely constructs the literal).
	Loop bool
}

// loopCall records a call issued inside a loop, for the hotalloc analyzer:
// if the callee's summary says it allocates, the caller pays that
// allocation once per iteration.
type loopCall struct {
	callee *types.Func
	pos    token.Pos
}

// span is a [lo, hi] source-position interval.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p <= s.hi }
func (s span) within(o span) bool        { return s.lo >= o.lo && s.hi <= o.hi }

// collectAllocs walks one function declaration and records its allocation
// sites and in-loop call sites. It runs after collectIntra (the facts are
// purely intraprocedural; chaining happens in foldCalls).
func collectAllocs(fi *FuncInfo) {
	info := fi.Pkg.Info
	body := fi.Decl.Body

	// First pass: gather the spans of loop bodies (plus for-statement
	// condition/post, which also run per iteration) and function-literal
	// bodies. A site is loop-carried iff some loop span contains it AND
	// that loop lies in the same function scope — the innermost literal
	// body enclosing the site, or the declaration body.
	var loops, lits []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
			if x.Cond != nil {
				loops = append(loops, span{x.Cond.Pos(), x.Cond.End()})
			}
			if x.Post != nil {
				loops = append(loops, span{x.Post.Pos(), x.Post.End()})
			}
		case *ast.RangeStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
		case *ast.FuncLit:
			lits = append(lits, span{x.Body.Pos(), x.Body.End()})
		}
		return true
	})
	scopeOf := func(p token.Pos) span {
		sc := span{body.Pos(), body.End()}
		for _, l := range lits {
			if l.contains(p) && l.within(sc) {
				sc = l
			}
		}
		return sc
	}
	inLoop := func(p token.Pos) bool {
		sc := scopeOf(p)
		for _, l := range loops {
			if l.contains(p) && l.within(sc) {
				return true
			}
		}
		return false
	}
	// innermostLoop returns the narrowest same-scope loop span containing p.
	innermostLoop := func(p token.Pos) (span, bool) {
		sc := scopeOf(p)
		best, found := sc, false
		for _, l := range loops {
			if l.contains(p) && l.within(sc) && l.within(best) {
				best, found = l, true
			}
		}
		return best, found
	}

	s := &fi.Summary
	add := func(pos token.Pos, what string) {
		s.Allocs = append(s.Allocs, AllocSite{Pos: pos, What: what, Loop: inLoop(pos)})
	}

	// covered suppresses inner operands of a string-concatenation chain:
	// a+b+c parses as (a+b)+c and should report one site, at the top.
	covered := map[token.Pos]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			collectCallAllocs(fi, node, add, inLoop)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if lit, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					covered[lit.Pos()] = true
					add(node.Pos(), "allocates "+compositeName(info, lit)+" on the heap")
				}
			}
		case *ast.CompositeLit:
			if covered[node.Pos()] {
				return true
			}
			tv, ok := info.Types[ast.Expr(node)]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				// Element literals are part of this allocation.
				for _, elt := range node.Elts {
					if inner, ok := elt.(*ast.CompositeLit); ok {
						covered[inner.Pos()] = true
					}
				}
				add(node.Pos(), "allocates a "+compositeName(info, node)+" literal")
			}
		case *ast.BinaryExpr:
			if node.Op != token.ADD || covered[node.Pos()] {
				return true
			}
			tv, ok := info.Types[ast.Expr(node)]
			if !ok || tv.Type == nil || tv.Value != nil {
				return true // constant folding: "a" + "b" costs nothing
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
				return true
			}
			for _, op := range []ast.Expr{node.X, node.Y} {
				if inner, ok := ast.Unparen(op).(*ast.BinaryExpr); ok && inner.Op == token.ADD {
					covered[inner.Pos()] = true
				}
			}
			add(node.Pos(), "builds a string with +")
		case *ast.AssignStmt:
			collectAssignAllocs(fi, node, add, innermostLoop)
		case *ast.FuncLit:
			if name, ok := firstCapture(info, node); ok {
				add(node.Pos(), "allocates a closure capturing "+quote(name)+" by reference")
			}
		}
		return true
	})
	if len(s.Allocs) > 0 {
		s.Allocates = true
		s.AllocDetail = s.Allocs[0].What
	}
}

// collectCallAllocs records the allocation sites a call expression implies:
// make/new, allocating conversions, fmt formatting, and interface boxing at
// the call boundary. It also records in-loop calls to module functions so
// hotalloc can chain the callee's summary.
func collectCallAllocs(fi *FuncInfo, call *ast.CallExpr, add func(token.Pos, string), inLoop func(token.Pos) bool) {
	info := fi.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if ok && tv.IsType() {
		// Conversion. The allocating ones: string↔[]byte/[]rune, and
		// boxing a concrete value into an interface.
		if len(call.Args) != 1 {
			return
		}
		dst, src := tv.Type, typeOf(info, call.Args[0])
		if src == nil {
			return
		}
		switch {
		case isString(dst) && isByteOrRuneSlice(src):
			add(call.Pos(), "converts a byte/rune slice to string")
		case isByteOrRuneSlice(dst) && isString(src):
			if cv, ok := info.Types[call.Args[0]]; !ok || cv.Value == nil {
				add(call.Pos(), "converts a string to a byte/rune slice")
			}
		case types.IsInterface(dst) && boxes(info, call.Args[0]):
			add(call.Pos(), "boxes a "+typeName(fi.Pkg, src)+" into "+typeName(fi.Pkg, dst))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if len(call.Args) > 0 {
					add(call.Pos(), "makes a new "+types.ExprString(call.Args[0]))
				}
			case "new":
				if len(call.Args) == 1 {
					add(call.Pos(), "allocates with new("+types.ExprString(call.Args[0])+")")
				}
			}
			return // append growth is handled at the assignment
		}
	}

	// fmt.* formats into fresh allocations and boxes every operand.
	if obj := staticFuncObj(info, call); obj != nil && obj.Pkg() != nil {
		if obj.Pkg().Path() == "fmt" {
			add(call.Pos(), "calls fmt."+obj.Name()+", which allocates to format its operands")
			return // the boxing below would double-count the variadic args
		}
	}

	// Record the in-loop call edge for hotalloc chaining.
	if obj := calleeObj(info, call); obj != nil && inLoop(call.Pos()) {
		fi.loopCalls = append(fi.loopCalls, loopCall{callee: obj, pos: call.Pos()})
	}

	// Interface boxing at an ordinary call boundary: a concrete
	// non-pointer-shaped argument passed to an interface-typed parameter
	// heap-allocates the value's box.
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through, no box
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if !boxes(info, arg) {
			continue
		}
		add(arg.Pos(), "boxes a "+typeName(fi.Pkg, typeOf(info, arg))+" into "+typeName(fi.Pkg, pt))
	}
}

// collectAssignAllocs flags append growth that cannot amortize: the result
// is bound to a variable declared inside the innermost loop containing the
// append, so every iteration regrows a fresh slice. Appends to an
// accumulator that outlives the loop amortize to O(1) allocations per
// element and are not reported.
func collectAssignAllocs(fi *FuncInfo, assign *ast.AssignStmt, add func(token.Pos, string), innermostLoop func(token.Pos) (span, bool)) {
	info := fi.Pkg.Info
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return
	}
	target, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := info.ObjectOf(target).(*types.Var)
	if !ok || v == nil {
		return
	}
	loop, inLoop := innermostLoop(assign.Pos())
	if !inLoop || !loop.contains(v.Pos()) {
		return
	}
	add(assign.Pos(), "grows a fresh slice with append on every iteration")
}

// boxes reports whether passing e to an interface-typed slot allocates: the
// expression has a concrete, non-pointer-shaped type and is not a constant
// (constant boxes are interned by the runtime or hoisted by the compiler in
// the cases this gate cares about).
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	return !pointerShaped(tv.Type)
}

// pointerShaped reports whether values of t fit in an interface word
// without a heap box: pointers, channels, maps, funcs, and unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := types.Unalias(t).Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// typeName renders t relative to the package, so finding messages say
// "value.Value", not the full import path.
func typeName(pkg *Package, t types.Type) string {
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(p *types.Package) string {
		if pkg.Types != nil && p == pkg.Types {
			return ""
		}
		return p.Name()
	})
}

// compositeName names a composite literal by its type, e.g. "[]int32{...}"
// or "&group{...}" — element expressions are elided to keep messages short
// and line-stable.
func compositeName(info *types.Info, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return types.ExprString(lit.Type) + "{...}"
	}
	if tv, ok := info.Types[ast.Expr(lit)]; ok && tv.Type != nil {
		return tv.Type.String() + "{...}"
	}
	return "composite{...}"
}

// staticFuncObj resolves a call's callee to its *types.Func regardless of
// module membership (calleeObj equivalent, but kept separate so the fmt
// special case reads clearly).
func staticFuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	return calleeObj(info, call)
}

// firstCapture returns the name of the first variable a function literal
// captures by reference: an identifier resolving to a non-package-level
// variable declared outside the literal. Capturing moves the variable to
// the heap and allocates the closure object itself.
func firstCapture(info *types.Info, lit *ast.FuncLit) (string, bool) {
	name, found := "", false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok || v == nil || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a capture
		}
		if v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		name, found = v.Name(), true
		return false
	})
	return name, found
}

func quote(s string) string { return "\"" + s + "\"" }
