package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// UnitSafetyAnalyzer flags raw float64 arithmetic that mixes quantities
// expressed in different units. A quantity's unit is established where it is
// produced by units.Dict.Convert with a constant target unit; the tag then
// flows through local assignments and accumulations. Combining two
// quantities tagged with different units (celsius + kelvin, bytes - seconds)
// without converting them to a common unit first is exactly the silent
// corruption the paper's unit dictionary exists to prevent (§4.2).
func UnitSafetyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "unitsafety",
		Doc: "float64 quantities obtained in distinct units (via units.Dict.Convert " +
			"with different target units) must not be combined with raw arithmetic " +
			"or comparisons; convert both to a common unit first (§4.2).",
		Run: runUnitSafety,
	}
}

// mixableOps are the binary operators whose operands must share a unit.
var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runUnitSafety(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnitFlow(pass, fd.Body)
		}
	}
}

// checkUnitFlow runs the local unit-tag dataflow over one function body
// (including its nested closures — tags flow into closures naturally since
// the variable objects are shared).
func checkUnitFlow(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	tags := map[*types.Var]string{}

	// exprTag resolves the unit tag of an expression, if any.
	var exprTag func(e ast.Expr) string
	exprTag = func(e ast.Expr) string {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.ObjectOf(x).(*types.Var); ok {
				return tags[v]
			}
		case *ast.IndexExpr:
			// Elements of a tagged vector (e.g. one built by frame.Convert)
			// carry the vector's unit.
			return exprTag(x.X)
		case *ast.CallExpr:
			if to, ok := convertTarget(info, x); ok {
				return to
			}
		case *ast.UnaryExpr:
			if x.Op == token.ADD || x.Op == token.SUB {
				return exprTag(x.X)
			}
		case *ast.BinaryExpr:
			// A scaled or accumulated quantity keeps its unit; mixing is
			// reported where it happens, so a mixed expression yields no tag.
			lt, rt := exprTag(x.X), exprTag(x.Y)
			switch {
			case lt != "" && (rt == "" || rt == lt):
				return lt
			case rt != "" && lt == "":
				return rt
			}
		}
		return ""
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				// Tag flows through x := expr and x = expr. The tuple form
				// k, err := dict.Convert(...) tags the first variable.
				if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
					if to, ok := convertTarget(info, s.Rhs[0]); ok {
						setTag(info, tags, s.Lhs[0], to)
					}
					return true
				}
				for i := range s.Lhs {
					if i < len(s.Rhs) {
						setTag(info, tags, s.Lhs[i], exprTag(s.Rhs[i]))
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				// x += expr both mixes and propagates.
				lt := exprTag(s.Lhs[0])
				rt := exprTag(s.Rhs[0])
				if lt != "" && rt != "" && lt != rt {
					pass.Reportf(s.TokPos, "accumulates a quantity in %q into a quantity in %q without units.Convert: convert both to a common unit before combining (§4.2 unit safety)", rt, lt)
				} else if lt == "" && rt != "" {
					setTag(info, tags, s.Lhs[0], rt)
				}
			}
		case *ast.BinaryExpr:
			if !mixableOps[s.Op] {
				return true
			}
			lt, rt := exprTag(s.X), exprTag(s.Y)
			if lt != "" && rt != "" && lt != rt {
				pass.Reportf(s.OpPos, "mixes a quantity in %q with a quantity in %q without units.Convert: quantities must share a unit before arithmetic or comparison (§4.2 unit safety)", lt, rt)
			}
		}
		return true
	})
}

// setTag records (or clears) the unit tag of an assignment target.
func setTag(info *types.Info, tags map[*types.Var]string, lhs ast.Expr, tag string) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || v == nil {
		return
	}
	if tag == "" {
		delete(tags, v)
		return
	}
	tags[v] = tag
}

// convertTarget recognizes the two unit-tag sources with a constant target
// unit, returning that unit:
//
//   - units.Dict.Convert(v, from, to) — the scalar conversion. The receiver
//     must be a named type from a package named "units" so testdata fixtures
//     and the real internal/units package both match.
//   - frame.Convert(d, vals, from, to) — the vectorized conversion over a
//     float column payload; the returned vector (and so, via exprTag, each
//     of its elements) is tagged with the target unit.
func convertTarget(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Convert" {
		return "", false
	}
	obj, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || obj == nil || obj.Pkg() == nil {
		return "", false
	}
	var to ast.Expr
	switch {
	case obj.Pkg().Name() == "units" && len(call.Args) == 3:
		to = call.Args[2]
	case obj.Pkg().Name() == "frame" && len(call.Args) == 4:
		to = call.Args[3]
	default:
		return "", false
	}
	tv, ok := info.Types[to]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
