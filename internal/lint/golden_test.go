package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one of the testdata modules.
func loadFixture(t *testing.T, rel string) *Module {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", rel))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root, LoadOptions{})
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", rel, err)
	}
	return m
}

// formatFindings renders findings with module-root-relative paths, one per
// line — the golden-file format. Path-trace steps (flow-sensitive findings)
// follow their finding as indented lines, so the goldens pin the explanation,
// not just the verdict.
func formatFindings(m *Module, findings []Finding) string {
	rel := func(name string) string {
		if r, err := filepath.Rel(m.Root, name); err == nil {
			return filepath.ToSlash(r)
		}
		return name
	}
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		for _, s := range f.Steps {
			fmt.Fprintf(&b, "    step %s:%d: %s\n", rel(s.Pos.Filename), s.Pos.Line, s.Text)
		}
	}
	return b.String()
}

// checkGolden compares got against the golden file, rewriting it when
// SJVET_UPDATE=1 is set.
func checkGolden(t *testing.T, goldenName, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", goldenName)
	if os.Getenv("SJVET_UPDATE") == "1" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with SJVET_UPDATE=1 to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenSrc runs the full suite over the per-analyzer fixture module and
// compares against the golden findings. Every analyzer must demonstrate at
// least one finding and every fixture package contributes a clean case.
func TestGoldenSrc(t *testing.T) {
	m := loadFixture(t, "src")
	findings := Run(m, Analyzers())
	checkGolden(t, "src.txt", formatFindings(m, findings))

	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	for _, a := range Analyzers() {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %q produced no findings on the fixture module", a.Name)
		}
	}
}

// TestGoldenMulti runs the suite over the multi-package fixture module: the
// engine package carries exactly one finding for each analyzer that applies
// to it, frame and server carry the frameimmut and goroleak findings, the
// pipeline package is clean, and module-wide every analyzer fires at least
// once.
func TestGoldenMulti(t *testing.T) {
	m := loadFixture(t, "multi")
	findings := Run(m, Analyzers())
	checkGolden(t, "multi.txt", formatFindings(m, findings))

	perPkg := map[string]map[string]int{}
	total := map[string]int{}
	for _, f := range findings {
		rel, err := filepath.Rel(m.Root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		pkg := filepath.ToSlash(filepath.Dir(rel))
		if perPkg[pkg] == nil {
			perPkg[pkg] = map[string]int{}
		}
		perPkg[pkg][f.Analyzer]++
		total[f.Analyzer]++
	}
	if len(perPkg["pipeline"]) != 0 {
		t.Errorf("clean package pipeline has findings: %v", perPkg["pipeline"])
	}
	for _, name := range []string{"ctxflow", "determinism", "lockdiscipline", "purity", "unitsafety"} {
		if n := perPkg["engine"][name]; n != 1 {
			t.Errorf("dirty package engine: analyzer %q reported %d findings, want exactly 1", name, n)
		}
	}
	if n := perPkg["frame"]["frameimmut"]; n == 0 {
		t.Error("frame package should carry at least one frameimmut finding")
	}
	if n := perPkg["server"]["goroleak"]; n == 0 {
		t.Error("server package should carry at least one goroleak finding")
	}
	for _, a := range Analyzers() {
		if total[a.Name] == 0 {
			t.Errorf("analyzer %q produced no findings on the multi fixture module", a.Name)
		}
	}
}

// TestDeterministicOutput loads and analyzes testdata/multi twice from
// scratch and byte-compares every emitter: text, JSON and SARIF output must
// be identical across runs so CI diffs and the baseline file are stable.
func TestDeterministicOutput(t *testing.T) {
	render := func() (string, string, string) {
		m := loadFixture(t, "multi")
		findings := Run(m, Analyzers())
		text := formatFindings(m, findings)
		j, err := EncodeJSON(findings)
		if err != nil {
			t.Fatal(err)
		}
		s, err := EncodeSARIF(findings, Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		return text, string(j), string(s)
	}
	t1, j1, s1 := render()
	t2, j2, s2 := render()
	if t1 != t2 {
		t.Errorf("text output differs between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Error("JSON output differs between runs")
	}
	if s1 != s2 {
		t.Error("SARIF output differs between runs")
	}
	if t1 == "" {
		t.Error("determinism test rendered no findings; fixture should be dirty")
	}
}

// TestSuppression verifies directive handling end to end: the suppress
// fixture package must report exactly two findings — the one whose
// directive names the wrong analyzer, and the one whose directive sits
// inside a closure and therefore must not suppress the enclosing body.
func TestSuppression(t *testing.T) {
	m := loadFixture(t, "src")
	var pkgs []*Package
	for _, p := range m.Pkgs {
		if p.Name == "suppress" {
			pkgs = append(pkgs, p)
		}
	}
	if len(pkgs) != 1 {
		t.Fatalf("suppress fixture package not loaded")
	}
	findings := RunPackages(m, Analyzers(), pkgs)
	if len(findings) != 2 {
		t.Fatalf("suppress package: got %d findings, want 2 (wrong-analyzer + closure-scoped directive): %v", len(findings), findings)
	}
	for _, f := range findings {
		if !strings.Contains(filepath.ToSlash(f.Pos.Filename), "suppress/suppress.go") {
			t.Errorf("finding outside suppress.go: %v", f)
		}
	}
	if findings[0].Analyzer != "purity" {
		t.Errorf("first surviving finding should be the wrong-analyzer purity one, got %v", findings[0])
	}
	if findings[1].Analyzer != "unitsafety" {
		t.Errorf("second surviving finding should be the leaked closure-directive unitsafety one, got %v", findings[1])
	}
}

// TestSelfClean enforces the acceptance criterion that sjvet runs clean on
// the ScrubJay module itself: every true positive has been fixed, every
// justified exception carries a //sjvet:ignore directive, and every
// grandfathered hot-path allocation sits in the reviewed sjvet.baseline —
// which must also carry no stale entries, so it can only shrink.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pkgs) < 20 {
		t.Fatalf("expected the full module to load, got %d packages", len(m.Pkgs))
	}
	findings := Run(m, Analyzers())
	relativizeTo(m, findings)
	data, err := os.ReadFile(filepath.Join(root, "sjvet.baseline"))
	if err != nil {
		t.Fatalf("reading reviewed baseline: %v", err)
	}
	entries, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, stale := ApplyBaseline(findings, entries)
	for _, f := range fresh {
		t.Errorf("fresh finding not in sjvet.baseline: %s", formatFindings(m, []Finding{f}))
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (finding no longer produced): %s\t%s\t%s", e.File, e.Analyzer, e.Message)
	}
}

// relativizeTo rewrites finding filenames relative to the module root, the
// form baseline entries are keyed on.
func relativizeTo(m *Module, fs []Finding) {
	for i := range fs {
		if rel, err := filepath.Rel(m.Root, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}
