package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// errflowPackages are the serving and cluster layers, where a dropped error
// turns a failed remote exchange into silently wrong query results.
var errflowPackages = map[string]bool{
	"server":   true,
	"cluster":  true,
	"sjworker": true,
}

// ErrFlowAnalyzer tracks error values along CFG paths in serving/cluster
// code. It reports three hazards: an error that is overwritten by a later
// assignment before any path reads it; an error that reaches function exit
// without ever being read; and an *rdd.ExecFailure that a handler matches
// but then swallows into a freshly built generic error, discarding the
// stage and cause the failure carried.
func ErrFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errflow",
		Doc: "error values in the server and cluster layers must be consumed " +
			"on every path: no overwriting an unread error, no returning with " +
			"an assigned-but-unchecked error, and no flattening a matched " +
			"*rdd.ExecFailure into a generic error that loses its stage/cause.",
		AppliesTo: func(pkg *Package) bool {
			return errflowPackages[pathBase(pkg.Path)] || errflowPackages[pkg.Name]
		},
		Run: runErrFlow,
	}
}

func runErrFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if isTestFile(filename) {
			continue
		}
		for _, fn := range fileFuncs(file) {
			checkErrFlowInFunc(pass, fn)
		}
		checkSwallowedExecFailure(pass, file)
	}
}

// errDef is one assignment of a non-nil expression to an error variable.
type errDef struct {
	assign  *ast.AssignStmt
	v       *types.Var
	source  string // callee name when the RHS is a call, for messages
	block   *Block
	nodeIdx int
}

func checkErrFlowInFunc(pass *Pass, fn funcUnit) {
	info := pass.Pkg.Info
	cfg := pass.Flow.CFG(fn.Name, fn.Body)

	// Error variables captured by closures (deferred err-wrapping, callbacks)
	// or named as results have reads the CFG cannot see; skip them.
	skip := closureTouchedErrVars(info, fn.Body)
	named := namedErrorResults(info, fn)

	for _, def := range findErrDefs(info, cfg, skip) {
		checkErrDef(pass, info, cfg, def, named)
	}
}

// findErrDefs collects assignments to error-typed local variables. Resets
// to nil are not defs (clearing an error carries no information to lose).
func findErrDefs(info *types.Info, cfg *CFG, skip map[*types.Var]bool) []errDef {
	var defs []errDef
	for _, blk := range cfg.Blocks {
		if blk == cfg.Exit {
			continue
		}
		for idx, node := range blk.Nodes {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for li, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				v, ok := lhsVar(info, id)
				if !ok || !isErrorType(v.Type()) || skip[v] {
					continue
				}
				// Find the defining expression; skip err = nil resets.
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[li]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs == nil || isNilIdent(rhs) {
					continue
				}
				source := "the assigned expression"
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if name, _, ok := pkgCallee(info, call); ok {
						source = name
					} else if txt := types.ExprString(call.Fun); txt != "" && len(txt) <= 40 {
						source = txt
					}
				}
				defs = append(defs, errDef{assign: as, v: v, source: source, block: blk, nodeIdx: idx})
			}
		}
	}
	return defs
}

// per-def flow lattice: is the def's value still unread along some path?
const (
	errNone    uint8 = iota // def not live here
	errPending              // assigned, not yet read on this path
)

// checkErrDef runs the def-use flow for one error assignment. The fixpoint
// computes block out-states; a deterministic replay then reports the first
// overwriting assignment reachable while the value is unread, and a pending
// state at Exit reports a discarded error.
func checkErrDef(pass *Pass, info *types.Info, cfg *CFG, def errDef, namedResults map[*types.Var]bool) {
	apply := func(node ast.Node, idx int, blk *Block, st uint8, onOverwrite func(ast.Node)) uint8 {
		if blk == def.block && idx == def.nodeIdx {
			// The defining assignment: RHS reads (err = wrap(err)) count
			// first, then the def arms the tracker.
			return errPending
		}
		if st != errPending {
			return st
		}
		if nodeReadsVar(info, node, def.v) {
			return errNone
		}
		if as, ok := node.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj, _ := info.ObjectOf(id).(*types.Var); obj == def.v {
						if onOverwrite != nil {
							onOverwrite(node)
						}
						return errNone
					}
				}
			}
		}
		if rs, ok := node.(*ast.ReturnStmt); ok {
			// A bare return publishes named error results.
			if len(rs.Results) == 0 && namedResults[def.v] {
				return errNone
			}
		}
		return st
	}

	_, out := RunForward(cfg, FlowSpec[uint8]{
		Init:  errNone,
		Merge: func(a, b uint8) uint8 { return max(a, b) },
		Equal: func(a, b uint8) bool { return a == b },
		Transfer: func(blk *Block, in uint8) uint8 {
			st := in
			for idx, node := range blk.Nodes {
				st = apply(node, idx, blk, st, nil)
			}
			return st
		},
	})

	// Replay for the overwrite report (first in block order wins; report
	// once per def).
	reported := false
	for _, blk := range cfg.Blocks {
		st, ok := errInState(cfg, blk, out)
		if !ok {
			continue
		}
		for idx, node := range blk.Nodes {
			st = apply(node, idx, blk, st, func(over ast.Node) {
				if reported || over == ast.Node(def.assign) {
					return
				}
				reported = true
				pass.ReportPath(def.assign.Pos(), []TraceStep{
					{Pos: pass.Fset.Position(def.assign.Pos()), Text: def.v.Name() + " assigned from " + def.source},
					{Pos: pass.Fset.Position(over.Pos()), Text: def.v.Name() + " overwritten before any read"},
				}, "error %q assigned from %s is overwritten before any path reads it — check or propagate it before reassigning",
					def.v.Name(), def.source)
			})
		}
	}
	if reported {
		return
	}
	if out[cfg.Exit] == errPending && pendingFallsOffEnd(cfg, out) {
		pass.ReportPath(def.assign.Pos(), []TraceStep{
			{Pos: pass.Fset.Position(def.assign.Pos()), Text: def.v.Name() + " assigned from " + def.source},
			{Pos: pass.Fset.Position(cfg.Exit.Pos), Text: "function exit reached with " + def.v.Name() + " unread"},
		}, "error %q assigned from %s is never read on some path to function exit — handle it or drop the assignment explicitly",
			def.v.Name(), def.source)
	}
}

// pendingFallsOffEnd reports whether some still-unread path reaches the exit
// by falling off the function end (or a bare return) rather than through an
// explicit `return <values>` or a panic. A valued return on the unread path
// is the retry-loop idiom — `lastErr = err; continue` with a later attempt
// succeeding — where the author visibly substituted another value; the
// error evaporating at an implicit function end is the real discard.
func pendingFallsOffEnd(cfg *CFG, out map[*Block]uint8) bool {
	for _, p := range cfg.Exit.Preds {
		if out[p] != errPending {
			continue
		}
		if len(p.Nodes) == 0 {
			return true
		}
		switch last := p.Nodes[len(p.Nodes)-1].(type) {
		case *ast.ReturnStmt:
			if len(last.Results) == 0 {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					continue
				}
			}
			return true
		default:
			return true
		}
	}
	return false
}

// errInState recomputes a block's in-state from predecessor out-states.
func errInState(cfg *CFG, blk *Block, out map[*Block]uint8) (uint8, bool) {
	if blk == cfg.Entry {
		return errNone, true
	}
	st, reached := errNone, false
	for _, p := range blk.Preds {
		po, ok := out[p]
		if !ok {
			continue
		}
		reached = true
		st = max(st, po)
	}
	return st, reached
}

// nodeReadsVar reports whether the node reads v — any mention that is not a
// plain assignment target. Defer statements read their closure bodies too
// (deferred err-handling is a read).
func nodeReadsVar(info *types.Info, node ast.Node, v *types.Var) bool {
	if rs, ok := node.(*ast.RangeStmt); ok {
		node = rs.X
	}
	assignTargets := map[*ast.Ident]bool{}
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				assignTargets[id] = true
			}
		}
	}
	reads := false
	ast.Inspect(node, func(n ast.Node) bool {
		if reads {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !assignTargets[id] {
			if obj, _ := info.ObjectOf(id).(*types.Var); obj == v {
				reads = true
			}
		}
		return true
	})
	return reads
}

// closureTouchedErrVars collects error variables referenced inside function
// literals: their reads happen on schedules the per-function CFG cannot
// order, so tracking them would be noise.
func closureTouchedErrVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	touched := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(cn ast.Node) bool {
			if id, ok := cn.(*ast.Ident); ok {
				if v, _ := info.ObjectOf(id).(*types.Var); v != nil && isErrorType(v.Type()) {
					touched[v] = true
				}
			}
			return true
		})
		return false
	})
	return touched
}

// namedErrorResults returns the unit's named error-typed result variables.
func namedErrorResults(info *types.Info, fn funcUnit) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if fn.Decl == nil || fn.Decl.Type.Results == nil {
		return out
	}
	for _, field := range fn.Decl.Type.Results.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isErrorType(v.Type()) {
				out[v] = true
			}
		}
	}
	return out
}

// ---- swallowed ExecFailure ----

// checkSwallowedExecFailure finds handlers that match *rdd.ExecFailure —
// via a type-switch case or an errors.As guard — and then return a freshly
// built generic error (fmt.Errorf without %w / errors.New) that references
// neither the matched failure nor the original error. The stage and cause
// the failure carried are lost at that return.
func checkSwallowedExecFailure(pass *Pass, file *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeSwitchStmt:
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CaseClause)
				if !caseMatchesExecFailure(info, cc) {
					continue
				}
				vars := typeSwitchVars(info, n, cc)
				reportGenericReturns(pass, info, cc.Body, vars)
			}
		case *ast.IfStmt:
			vars, ok := execFailureAsGuard(info, n.Cond)
			if !ok {
				return true
			}
			reportGenericReturns(pass, info, n.Body.List, vars)
		}
		return true
	})
}

// isExecFailureType matches *ExecFailure (or ExecFailure) declared in a
// package named rdd — the module's placement layer, or a fixture's stand-in.
func isExecFailureType(t types.Type) bool {
	named := namedOwner(t)
	return named != nil && named.Obj().Name() == "ExecFailure" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "rdd"
}

func caseMatchesExecFailure(info *types.Info, cc *ast.CaseClause) bool {
	for _, e := range cc.List {
		if tv, ok := info.Types[e]; ok && isExecFailureType(tv.Type) {
			return true
		}
	}
	return false
}

// typeSwitchVars collects the variables whose contents a matched handler
// may legitimately propagate: the per-clause implicit variable and the
// switched expression's root.
func typeSwitchVars(info *types.Info, sw *ast.TypeSwitchStmt, cc *ast.CaseClause) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	if v, ok := info.Implicits[cc].(*types.Var); ok {
		vars[v] = true
	}
	// switched expression: `switch f := err.(type)` — also allow err itself.
	ast.Inspect(sw.Assign, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, _ := info.ObjectOf(id).(*types.Var); v != nil {
				vars[v] = true
			}
		}
		return true
	})
	return vars
}

// execFailureAsGuard matches `errors.As(err, &ef)` where ef is
// *rdd.ExecFailure, returning the vars a handler may propagate (ef, err).
func execFailureAsGuard(info *types.Info, cond ast.Expr) (map[*types.Var]bool, bool) {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil, false
	}
	if name, pkgName, ok := pkgCallee(info, call); !ok || pkgName != "errors" || name != "As" {
		return nil, false
	}
	target := ast.Unparen(call.Args[1])
	un, ok := target.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, false
	}
	id, ok := ast.Unparen(un.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	if v == nil || !isExecFailureType(v.Type()) {
		return nil, false
	}
	vars := map[*types.Var]bool{v: true}
	if srcID, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if sv, _ := info.ObjectOf(srcID).(*types.Var); sv != nil {
			vars[sv] = true
		}
	}
	return vars, true
}

// reportGenericReturns flags returns inside a matched handler whose error
// result is a fresh fmt.Errorf (without %w) or errors.New referencing none
// of the allowed variables.
func reportGenericReturns(pass *Pass, info *types.Info, body []ast.Stmt, allowed map[*types.Var]bool) {
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			rs, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range rs.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				name, pkgName, ok := pkgCallee(info, call)
				if !ok {
					continue
				}
				generic := (pkgName == "errors" && name == "New") ||
					(pkgName == "fmt" && name == "Errorf" && !errorfWraps(call))
				if !generic {
					continue
				}
				if callMentionsAny(info, call, allowed) {
					continue
				}
				pass.Reportf(rs.Pos(),
					"ExecFailure matched here is swallowed into a generic %s.%s error — the stage and cause are lost; wrap the failure with %%w or return it unchanged",
					pkgName, name)
			}
			return true
		})
	}
}

// errorfWraps reports whether a fmt.Errorf call's format string uses %w.
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "%w")
}

func callMentionsAny(info *types.Info, call *ast.CallExpr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, _ := info.ObjectOf(id).(*types.Var); v != nil && vars[v] {
				found = true
			}
		}
		return true
	})
	return found
}
