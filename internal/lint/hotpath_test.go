package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// fixtureFunc resolves a fixture function (or method) object by package name
// and declaration name.
func fixtureFunc(t *testing.T, m *Module, pkgName, funcName string) *types.Func {
	t.Helper()
	for _, pkg := range m.Pkgs {
		if pkg.Name != pkgName {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != funcName {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					return obj
				}
			}
		}
	}
	t.Fatalf("fixture function %s.%s not found", pkgName, funcName)
	return nil
}

// TestHotPathClosure pins down the hot set over the src fixture: built-in
// roots get their kind labels, //sjvet:hotpath roots resolve through doc
// comments and bound method values, reachability propagates the root name,
// and directive scoping matches //sjvet:ignore (innermost function only).
func TestHotPathClosure(t *testing.T) {
	m := loadFixture(t, "src")
	h := BuildHotPaths(m, BuildInterproc(m))

	hot := []struct {
		pkg, fn, why string
	}{
		{"frame", "MaskRows", "hot-path root (frame kernel)"},
		{"frame", "MaskValues", "hot-path root (frame kernel)"},
		{"frame", "Convert", "hot-path root (frame kernel)"},
		{"rdd", "ExchangePartitions", "hot-path root (rdd task body)"},
		{"rdd", "ZipPartitions", "hot-path root (rdd task body)"},
		{"hot", "Serve", "hot-path root (//sjvet:hotpath)"},
		// helper is hot only transitively, labeled with the root it
		// descends from, not its direct caller.
		{"hot", "helper", "reachable from hot.Serve"},
		{"hot", "Keep", "reachable from hot.Serve"},
		{"hot", "stash", "reachable from hot.Serve"},
		// The directive above `f := p.step` must root the underlying
		// method, not just the wrapper value.
		{"hot", "step", "hot-path root (//sjvet:hotpath)"},
	}
	for _, tc := range hot {
		obj := fixtureFunc(t, m, tc.pkg, tc.fn)
		why, ok := h.Why(obj)
		if !ok {
			t.Errorf("%s.%s: expected hot, got cold", tc.pkg, tc.fn)
			continue
		}
		if why != tc.why {
			t.Errorf("%s.%s: why = %q, want %q", tc.pkg, tc.fn, why, tc.why)
		}
	}

	// Directive scoping negatives: a directive inside a function literal
	// does not root references made by the enclosing body on the adjacent
	// line (helperCold), and a directive in the enclosing body does not
	// root references inside a nested literal (colder). Register and
	// Scoped themselves are never called from a root.
	for _, fn := range []string{"helperCold", "colder", "apply", "Inward", "Register", "Scoped"} {
		obj := fixtureFunc(t, m, "hot", fn)
		if why, ok := h.Why(obj); ok {
			t.Errorf("hot.%s: expected cold, got hot (%q)", fn, why)
		}
	}
}

// TestHotPathMulti checks the multi fixture's directive root and its callee.
func TestHotPathMulti(t *testing.T) {
	m := loadFixture(t, "multi")
	h := BuildHotPaths(m, BuildInterproc(m))

	pump := fixtureFunc(t, m, "hot", "Pump")
	if why, ok := h.Why(pump); !ok || why != "hot-path root (//sjvet:hotpath)" {
		t.Errorf("hot.Pump: why = %q, ok = %v, want directive root", why, ok)
	}
	record := fixtureFunc(t, m, "hot", "Record")
	if why, ok := h.Why(record); !ok || why != "reachable from hot.Pump" {
		t.Errorf("hot.Record: why = %q, ok = %v, want reachable from hot.Pump", why, ok)
	}
}

// TestHotAnalyzerDeterminism loads and analyzes the src fixture twice with
// only the hot-path analyzers and byte-compares the rendered findings, so
// the new summary and reachability layers stay map-iteration-free.
func TestHotAnalyzerDeterminism(t *testing.T) {
	selected, err := SelectAnalyzers(Analyzers(), "hotalloc,retain")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		m := loadFixture(t, "src")
		return formatFindings(m, Run(m, selected))
	}
	r1, r2 := render(), render()
	if r1 != r2 {
		t.Errorf("hotalloc/retain output differs between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", r1, r2)
	}
	if r1 == "" {
		t.Error("hot-path analyzers rendered no findings; the hot fixture should be dirty")
	}
}
