package lint

import "encoding/json"

// JSONFinding is the machine-readable form of a Finding, the schema behind
// sjvet -json. The field set is stable: tools downstream (CI annotators,
// dashboards) key on it.
type JSONFinding struct {
	File     string     `json:"file"`
	Line     int        `json:"line"`
	Column   int        `json:"column"`
	Analyzer string     `json:"analyzer"`
	Message  string     `json:"message"`
	Steps    []JSONStep `json:"steps,omitempty"`
}

// JSONStep is one hop of a flow-sensitive finding's path trace.
type JSONStep struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Text string `json:"text"`
}

// ToJSON converts findings to their wire form. The slice is non-nil even
// when empty so the encoded output is always a JSON array.
func ToJSON(fs []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(fs))
	for _, f := range fs {
		jf := JSONFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		for _, s := range f.Steps {
			jf.Steps = append(jf.Steps, JSONStep{File: s.Pos.Filename, Line: s.Pos.Line, Text: s.Text})
		}
		out = append(out, jf)
	}
	return out
}

// EncodeJSON renders findings as indented JSON.
func EncodeJSON(fs []Finding) ([]byte, error) {
	return json.MarshalIndent(ToJSON(fs), "", "  ")
}

// DecodeJSON parses sjvet -json output back into wire findings.
func DecodeJSON(data []byte) ([]JSONFinding, error) {
	var out []JSONFinding
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
