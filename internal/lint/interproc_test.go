package lint

import (
	"go/types"
	"strings"
	"testing"
)

// lookupFunc finds a declared function (or method) by package name and
// function name in the fixture module's call graph.
func lookupFunc(t *testing.T, m *Module, ip *Interproc, pkgName, fnName string) *FuncInfo {
	t.Helper()
	for _, pkg := range m.Pkgs {
		if pkg.Name != pkgName {
			continue
		}
		if obj, ok := pkg.Types.Scope().Lookup(fnName).(*types.Func); ok {
			if fi := ip.FuncOf(obj); fi != nil {
				return fi
			}
		}
		// Methods: scan the call graph for receiver methods of this package.
		for obj, fi := range ip.funcs {
			if obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == fnName {
				return fi
			}
		}
	}
	t.Fatalf("function %s.%s not found in call graph", pkgName, fnName)
	return nil
}

// TestInterprocSummaries pins the per-function dataflow facts the analyzers
// rely on, computed over the src fixture module.
func TestInterprocSummaries(t *testing.T) {
	m := loadFixture(t, "src")
	ip := BuildInterproc(m)

	// frozen.zero mutates its slice parameter (frameimmut's interprocedural
	// hook) but is otherwise silent.
	zero := lookupFunc(t, m, ip, "frozen", "zero")
	if zero.Summary.ArgFacts(0)&ParamMutated == 0 {
		t.Error("zero: parameter 0 should carry ParamMutated")
	}
	if zero.Summary.WritesGlobal || zero.Summary.Blocks {
		t.Error("zero: should neither write globals nor block")
	}

	// purity helpers: the global write and the pointer mutation are summary
	// facts; the pure helper carries none.
	bump := lookupFunc(t, m, ip, "purity", "bumpGlobal")
	if !bump.Summary.WritesGlobal || !strings.Contains(bump.Summary.GlobalDetail, "hits") {
		t.Errorf("bumpGlobal: want WritesGlobal naming hits, got %q", bump.Summary.GlobalDetail)
	}
	addTo := lookupFunc(t, m, ip, "purity", "addTo")
	if addTo.Summary.ArgFacts(0)&ParamMutated == 0 {
		t.Error("addTo: parameter 0 should carry ParamMutated")
	}
	pureSq := lookupFunc(t, m, ip, "purity", "pureSq")
	if pureSq.Summary.WritesGlobal || pureSq.Summary.ArgFacts(0) != 0 {
		t.Error("pureSq: should carry no facts")
	}

	// engine: blocking facts chain through callees, and context facts
	// distinguish threaded from dropped parameters.
	waitIdle := lookupFunc(t, m, ip, "engine", "waitIdle")
	if !waitIdle.Summary.Blocks || waitIdle.Summary.BlockDetail != "channel receive" {
		t.Errorf("waitIdle: want Blocks via channel receive, got %q", waitIdle.Summary.BlockDetail)
	}
	dropped := lookupFunc(t, m, ip, "engine", "DirtyDropped")
	if !dropped.Summary.Blocks || !strings.Contains(dropped.Summary.BlockDetail, "waitIdle") {
		t.Errorf("DirtyDropped: Blocks should chain through waitIdle, got %q", dropped.Summary.BlockDetail)
	}
	if dropped.Summary.CtxParam == nil || dropped.Summary.UsesCtx {
		t.Error("DirtyDropped: should have an unused context parameter")
	}
	solve := lookupFunc(t, m, ip, "engine", "Solve")
	if solve.Summary.CtxParam == nil || !solve.Summary.UsesCtx {
		t.Error("Solve: should have a used context parameter")
	}

	// server.pump runs forever; the clean goroutine bodies do not.
	pump := lookupFunc(t, m, ip, "server", "pump")
	if !pump.Summary.RunsForever {
		t.Error("pump: should carry RunsForever")
	}

	// locks.notify blocks on a channel send through its receiver.
	notify := lookupFunc(t, m, ip, "locks", "notify")
	if !notify.Summary.Blocks || notify.Summary.BlockDetail != "channel send" {
		t.Errorf("notify: want Blocks via channel send, got %q", notify.Summary.BlockDetail)
	}
	depth := lookupFunc(t, m, ip, "locks", "depth")
	if depth.Summary.Blocks {
		t.Error("depth: len(chan) does not block")
	}

	// frame.Freeze lets its receiver's storage escape into the returned
	// frame; builder Append mutates the receiver.
	freeze := lookupFunc(t, m, ip, "frame", "Freeze")
	if freeze.Summary.RecvFacts()&ParamEscapes == 0 {
		t.Error("Freeze: receiver storage should escape into the result")
	}
	appendFn := lookupFunc(t, m, ip, "frame", "Append")
	if appendFn.Summary.RecvFacts()&ParamMutated == 0 {
		t.Error("Append: receiver should carry ParamMutated")
	}
}

// TestInterprocStaticCallee checks call-graph node lookup through the
// generic-origin path and that dynamic callees resolve to nil.
func TestInterprocStaticCallee(t *testing.T) {
	m := loadFixture(t, "src")
	ip := BuildInterproc(m)
	if ip.FuncOf(nil) != nil {
		t.Error("FuncOf(nil) should be nil")
	}
	fi := lookupFunc(t, m, ip, "frozen", "DirtyHelper")
	found := false
	for _, rec := range fi.calls {
		if rec.callee.Name() == "zero" {
			found = true
		}
	}
	if !found {
		t.Error("DirtyHelper should record a call edge to zero")
	}
}
